file(REMOVE_RECURSE
  "CMakeFiles/stat_placement.dir/stat_placement.cc.o"
  "CMakeFiles/stat_placement.dir/stat_placement.cc.o.d"
  "stat_placement"
  "stat_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
