# Empty compiler generated dependencies file for stat_placement.
# This may be replaced when dependencies are built.
