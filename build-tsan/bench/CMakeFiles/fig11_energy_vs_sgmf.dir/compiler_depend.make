# Empty compiler generated dependencies file for fig11_energy_vs_sgmf.
# This may be replaced when dependencies are built.
