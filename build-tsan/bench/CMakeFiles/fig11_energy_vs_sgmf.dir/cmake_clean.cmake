file(REMOVE_RECURSE
  "CMakeFiles/fig11_energy_vs_sgmf.dir/fig11_energy_vs_sgmf.cc.o"
  "CMakeFiles/fig11_energy_vs_sgmf.dir/fig11_energy_vs_sgmf.cc.o.d"
  "fig11_energy_vs_sgmf"
  "fig11_energy_vs_sgmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_energy_vs_sgmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
