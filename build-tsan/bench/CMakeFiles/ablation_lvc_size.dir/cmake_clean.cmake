file(REMOVE_RECURSE
  "CMakeFiles/ablation_lvc_size.dir/ablation_lvc_size.cc.o"
  "CMakeFiles/ablation_lvc_size.dir/ablation_lvc_size.cc.o.d"
  "ablation_lvc_size"
  "ablation_lvc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lvc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
