# Empty dependencies file for ablation_lvc_size.
# This may be replaced when dependencies are built.
