# Empty compiler generated dependencies file for fig03_lvc_vs_rf.
# This may be replaced when dependencies are built.
