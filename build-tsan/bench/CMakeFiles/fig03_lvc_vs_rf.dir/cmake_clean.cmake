file(REMOVE_RECURSE
  "CMakeFiles/fig03_lvc_vs_rf.dir/fig03_lvc_vs_rf.cc.o"
  "CMakeFiles/fig03_lvc_vs_rf.dir/fig03_lvc_vs_rf.cc.o.d"
  "fig03_lvc_vs_rf"
  "fig03_lvc_vs_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lvc_vs_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
