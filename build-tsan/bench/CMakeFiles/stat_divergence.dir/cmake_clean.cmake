file(REMOVE_RECURSE
  "CMakeFiles/stat_divergence.dir/stat_divergence.cc.o"
  "CMakeFiles/stat_divergence.dir/stat_divergence.cc.o.d"
  "stat_divergence"
  "stat_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
