# Empty compiler generated dependencies file for stat_divergence.
# This may be replaced when dependencies are built.
