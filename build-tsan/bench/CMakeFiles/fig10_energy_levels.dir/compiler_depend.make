# Empty compiler generated dependencies file for fig10_energy_levels.
# This may be replaced when dependencies are built.
