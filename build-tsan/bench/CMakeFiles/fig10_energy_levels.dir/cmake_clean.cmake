file(REMOVE_RECURSE
  "CMakeFiles/fig10_energy_levels.dir/fig10_energy_levels.cc.o"
  "CMakeFiles/fig10_energy_levels.dir/fig10_energy_levels.cc.o.d"
  "fig10_energy_levels"
  "fig10_energy_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_energy_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
