# Empty dependencies file for ablation_tile_size.
# This may be replaced when dependencies are built.
