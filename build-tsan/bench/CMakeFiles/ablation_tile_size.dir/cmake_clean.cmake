file(REMOVE_RECURSE
  "CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cc.o"
  "CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cc.o.d"
  "ablation_tile_size"
  "ablation_tile_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
