file(REMOVE_RECURSE
  "CMakeFiles/stat_config_overhead.dir/stat_config_overhead.cc.o"
  "CMakeFiles/stat_config_overhead.dir/stat_config_overhead.cc.o.d"
  "stat_config_overhead"
  "stat_config_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_config_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
