# Empty compiler generated dependencies file for stat_config_overhead.
# This may be replaced when dependencies are built.
