# Empty dependencies file for fig07_speedup_vs_fermi.
# This may be replaced when dependencies are built.
