file(REMOVE_RECURSE
  "CMakeFiles/fig07_speedup_vs_fermi.dir/fig07_speedup_vs_fermi.cc.o"
  "CMakeFiles/fig07_speedup_vs_fermi.dir/fig07_speedup_vs_fermi.cc.o.d"
  "fig07_speedup_vs_fermi"
  "fig07_speedup_vs_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_speedup_vs_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
