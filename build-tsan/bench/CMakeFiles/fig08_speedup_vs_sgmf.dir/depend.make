# Empty dependencies file for fig08_speedup_vs_sgmf.
# This may be replaced when dependencies are built.
