file(REMOVE_RECURSE
  "CMakeFiles/fig08_speedup_vs_sgmf.dir/fig08_speedup_vs_sgmf.cc.o"
  "CMakeFiles/fig08_speedup_vs_sgmf.dir/fig08_speedup_vs_sgmf.cc.o.d"
  "fig08_speedup_vs_sgmf"
  "fig08_speedup_vs_sgmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup_vs_sgmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
