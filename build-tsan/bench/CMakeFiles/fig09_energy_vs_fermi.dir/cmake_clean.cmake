file(REMOVE_RECURSE
  "CMakeFiles/fig09_energy_vs_fermi.dir/fig09_energy_vs_fermi.cc.o"
  "CMakeFiles/fig09_energy_vs_fermi.dir/fig09_energy_vs_fermi.cc.o.d"
  "fig09_energy_vs_fermi"
  "fig09_energy_vs_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_energy_vs_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
