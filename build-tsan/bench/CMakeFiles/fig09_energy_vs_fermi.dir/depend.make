# Empty dependencies file for fig09_energy_vs_fermi.
# This may be replaced when dependencies are built.
