# Empty compiler generated dependencies file for vgiw_tests.
# This may be replaced when dependencies are built.
