
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cgrf/block_splitter_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/block_splitter_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/block_splitter_test.cc.o.d"
  "/root/repo/tests/cgrf/dataflow_graph_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/dataflow_graph_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/dataflow_graph_test.cc.o.d"
  "/root/repo/tests/cgrf/grid_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/grid_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/grid_test.cc.o.d"
  "/root/repo/tests/cgrf/placement_quality_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/placement_quality_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/placement_quality_test.cc.o.d"
  "/root/repo/tests/cgrf/placer_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/placer_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/placer_test.cc.o.d"
  "/root/repo/tests/cgrf/splitter_property_test.cc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/splitter_property_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/cgrf/splitter_property_test.cc.o.d"
  "/root/repo/tests/common/bit_vector_test.cc" "tests/CMakeFiles/vgiw_tests.dir/common/bit_vector_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/common/bit_vector_test.cc.o.d"
  "/root/repo/tests/common/common_test.cc" "tests/CMakeFiles/vgiw_tests.dir/common/common_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/common/common_test.cc.o.d"
  "/root/repo/tests/driver/core_model_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/core_model_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/core_model_test.cc.o.d"
  "/root/repo/tests/driver/experiment_engine_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/experiment_engine_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/experiment_engine_test.cc.o.d"
  "/root/repo/tests/driver/occupancy_stats_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/occupancy_stats_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/occupancy_stats_test.cc.o.d"
  "/root/repo/tests/driver/random_kernel_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/random_kernel_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/random_kernel_test.cc.o.d"
  "/root/repo/tests/driver/runner_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/runner_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/runner_test.cc.o.d"
  "/root/repo/tests/driver/suite_property_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/suite_property_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/suite_property_test.cc.o.d"
  "/root/repo/tests/driver/trace_cache_test.cc" "tests/CMakeFiles/vgiw_tests.dir/driver/trace_cache_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/driver/trace_cache_test.cc.o.d"
  "/root/repo/tests/interp/interpreter_guard_test.cc" "tests/CMakeFiles/vgiw_tests.dir/interp/interpreter_guard_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/interp/interpreter_guard_test.cc.o.d"
  "/root/repo/tests/interp/interpreter_test.cc" "tests/CMakeFiles/vgiw_tests.dir/interp/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/interp/interpreter_test.cc.o.d"
  "/root/repo/tests/ir/builder_test.cc" "tests/CMakeFiles/vgiw_tests.dir/ir/builder_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/ir/builder_test.cc.o.d"
  "/root/repo/tests/ir/post_dominators_test.cc" "tests/CMakeFiles/vgiw_tests.dir/ir/post_dominators_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/ir/post_dominators_test.cc.o.d"
  "/root/repo/tests/ir/printer_test.cc" "tests/CMakeFiles/vgiw_tests.dir/ir/printer_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/ir/printer_test.cc.o.d"
  "/root/repo/tests/ir/verifier_internal_test.cc" "tests/CMakeFiles/vgiw_tests.dir/ir/verifier_internal_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/ir/verifier_internal_test.cc.o.d"
  "/root/repo/tests/mem/bank_merge_test.cc" "tests/CMakeFiles/vgiw_tests.dir/mem/bank_merge_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/mem/bank_merge_test.cc.o.d"
  "/root/repo/tests/mem/cache_test.cc" "tests/CMakeFiles/vgiw_tests.dir/mem/cache_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/mem/cache_test.cc.o.d"
  "/root/repo/tests/mem/memory_system_test.cc" "tests/CMakeFiles/vgiw_tests.dir/mem/memory_system_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/mem/memory_system_test.cc.o.d"
  "/root/repo/tests/power/energy_account_test.cc" "tests/CMakeFiles/vgiw_tests.dir/power/energy_account_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/power/energy_account_test.cc.o.d"
  "/root/repo/tests/sgmf/sgmf_core_test.cc" "tests/CMakeFiles/vgiw_tests.dir/sgmf/sgmf_core_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/sgmf/sgmf_core_test.cc.o.d"
  "/root/repo/tests/sgmf/sgmf_detail_test.cc" "tests/CMakeFiles/vgiw_tests.dir/sgmf/sgmf_detail_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/sgmf/sgmf_detail_test.cc.o.d"
  "/root/repo/tests/simt/coalescer_test.cc" "tests/CMakeFiles/vgiw_tests.dir/simt/coalescer_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/simt/coalescer_test.cc.o.d"
  "/root/repo/tests/simt/fermi_core_test.cc" "tests/CMakeFiles/vgiw_tests.dir/simt/fermi_core_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/simt/fermi_core_test.cc.o.d"
  "/root/repo/tests/simt/fermi_residency_test.cc" "tests/CMakeFiles/vgiw_tests.dir/simt/fermi_residency_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/simt/fermi_residency_test.cc.o.d"
  "/root/repo/tests/simt/simt_stack_test.cc" "tests/CMakeFiles/vgiw_tests.dir/simt/simt_stack_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/simt/simt_stack_test.cc.o.d"
  "/root/repo/tests/vgiw/control_vector_table_test.cc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/control_vector_table_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/control_vector_table_test.cc.o.d"
  "/root/repo/tests/vgiw/dynamic_dataflow_test.cc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/dynamic_dataflow_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/dynamic_dataflow_test.cc.o.d"
  "/root/repo/tests/vgiw/live_value_cache_test.cc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/live_value_cache_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/live_value_cache_test.cc.o.d"
  "/root/repo/tests/vgiw/vgiw_core_test.cc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/vgiw_core_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/vgiw/vgiw_core_test.cc.o.d"
  "/root/repo/tests/workloads/workload_golden_test.cc" "tests/CMakeFiles/vgiw_tests.dir/workloads/workload_golden_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/workloads/workload_golden_test.cc.o.d"
  "/root/repo/tests/workloads/workload_structure_test.cc" "tests/CMakeFiles/vgiw_tests.dir/workloads/workload_structure_test.cc.o" "gcc" "tests/CMakeFiles/vgiw_tests.dir/workloads/workload_structure_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/vgiwsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
