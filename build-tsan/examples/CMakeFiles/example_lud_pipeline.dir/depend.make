# Empty dependencies file for example_lud_pipeline.
# This may be replaced when dependencies are built.
