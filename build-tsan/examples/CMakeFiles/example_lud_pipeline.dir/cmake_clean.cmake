file(REMOVE_RECURSE
  "CMakeFiles/example_lud_pipeline.dir/lud_pipeline.cc.o"
  "CMakeFiles/example_lud_pipeline.dir/lud_pipeline.cc.o.d"
  "example_lud_pipeline"
  "example_lud_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lud_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
