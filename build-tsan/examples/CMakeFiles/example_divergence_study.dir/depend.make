# Empty dependencies file for example_divergence_study.
# This may be replaced when dependencies are built.
