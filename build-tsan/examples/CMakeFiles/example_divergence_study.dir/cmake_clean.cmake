file(REMOVE_RECURSE
  "CMakeFiles/example_divergence_study.dir/divergence_study.cc.o"
  "CMakeFiles/example_divergence_study.dir/divergence_study.cc.o.d"
  "example_divergence_study"
  "example_divergence_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_divergence_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
