# Empty dependencies file for example_bfs_demo.
# This may be replaced when dependencies are built.
