file(REMOVE_RECURSE
  "CMakeFiles/example_bfs_demo.dir/bfs_demo.cc.o"
  "CMakeFiles/example_bfs_demo.dir/bfs_demo.cc.o.d"
  "example_bfs_demo"
  "example_bfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
