
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgrf/block_splitter.cc" "src/CMakeFiles/vgiwsim.dir/cgrf/block_splitter.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/cgrf/block_splitter.cc.o.d"
  "/root/repo/src/cgrf/dataflow_graph.cc" "src/CMakeFiles/vgiwsim.dir/cgrf/dataflow_graph.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/cgrf/dataflow_graph.cc.o.d"
  "/root/repo/src/cgrf/grid.cc" "src/CMakeFiles/vgiwsim.dir/cgrf/grid.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/cgrf/grid.cc.o.d"
  "/root/repo/src/cgrf/placer.cc" "src/CMakeFiles/vgiwsim.dir/cgrf/placer.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/cgrf/placer.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/vgiwsim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/common/logging.cc.o.d"
  "/root/repo/src/common/scalar.cc" "src/CMakeFiles/vgiwsim.dir/common/scalar.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/common/scalar.cc.o.d"
  "/root/repo/src/driver/core_model.cc" "src/CMakeFiles/vgiwsim.dir/driver/core_model.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/driver/core_model.cc.o.d"
  "/root/repo/src/driver/experiment_engine.cc" "src/CMakeFiles/vgiwsim.dir/driver/experiment_engine.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/driver/experiment_engine.cc.o.d"
  "/root/repo/src/driver/runner.cc" "src/CMakeFiles/vgiwsim.dir/driver/runner.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/driver/runner.cc.o.d"
  "/root/repo/src/driver/system_config.cc" "src/CMakeFiles/vgiwsim.dir/driver/system_config.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/driver/system_config.cc.o.d"
  "/root/repo/src/driver/trace_cache.cc" "src/CMakeFiles/vgiwsim.dir/driver/trace_cache.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/driver/trace_cache.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/CMakeFiles/vgiwsim.dir/interp/interpreter.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/interp/interpreter.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/vgiwsim.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/kernel.cc" "src/CMakeFiles/vgiwsim.dir/ir/kernel.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/kernel.cc.o.d"
  "/root/repo/src/ir/op_counts.cc" "src/CMakeFiles/vgiwsim.dir/ir/op_counts.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/op_counts.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/vgiwsim.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/opcode.cc.o.d"
  "/root/repo/src/ir/post_dominators.cc" "src/CMakeFiles/vgiwsim.dir/ir/post_dominators.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/post_dominators.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/vgiwsim.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/vgiwsim.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/ir/verifier.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/vgiwsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/vgiwsim.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/vgiwsim.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/power/energy_model.cc" "src/CMakeFiles/vgiwsim.dir/power/energy_model.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/power/energy_model.cc.o.d"
  "/root/repo/src/sgmf/sgmf_core.cc" "src/CMakeFiles/vgiwsim.dir/sgmf/sgmf_core.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/sgmf/sgmf_core.cc.o.d"
  "/root/repo/src/simt/fermi_core.cc" "src/CMakeFiles/vgiwsim.dir/simt/fermi_core.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/simt/fermi_core.cc.o.d"
  "/root/repo/src/simt/simt_stack.cc" "src/CMakeFiles/vgiwsim.dir/simt/simt_stack.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/simt/simt_stack.cc.o.d"
  "/root/repo/src/vgiw/control_vector_table.cc" "src/CMakeFiles/vgiwsim.dir/vgiw/control_vector_table.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/vgiw/control_vector_table.cc.o.d"
  "/root/repo/src/vgiw/live_value_cache.cc" "src/CMakeFiles/vgiwsim.dir/vgiw/live_value_cache.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/vgiw/live_value_cache.cc.o.d"
  "/root/repo/src/vgiw/thread_batch.cc" "src/CMakeFiles/vgiwsim.dir/vgiw/thread_batch.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/vgiw/thread_batch.cc.o.d"
  "/root/repo/src/vgiw/vgiw_core.cc" "src/CMakeFiles/vgiwsim.dir/vgiw/vgiw_core.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/vgiw/vgiw_core.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/vgiwsim.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bpnn.cc" "src/CMakeFiles/vgiwsim.dir/workloads/bpnn.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/bpnn.cc.o.d"
  "/root/repo/src/workloads/cfd.cc" "src/CMakeFiles/vgiwsim.dir/workloads/cfd.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/cfd.cc.o.d"
  "/root/repo/src/workloads/gaussian.cc" "src/CMakeFiles/vgiwsim.dir/workloads/gaussian.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/gaussian.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/CMakeFiles/vgiwsim.dir/workloads/hotspot.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/hotspot.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/vgiwsim.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/lavamd.cc" "src/CMakeFiles/vgiwsim.dir/workloads/lavamd.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/lavamd.cc.o.d"
  "/root/repo/src/workloads/lud.cc" "src/CMakeFiles/vgiwsim.dir/workloads/lud.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/lud.cc.o.d"
  "/root/repo/src/workloads/nn.cc" "src/CMakeFiles/vgiwsim.dir/workloads/nn.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/nn.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/CMakeFiles/vgiwsim.dir/workloads/nw.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/nw.cc.o.d"
  "/root/repo/src/workloads/particle_filter.cc" "src/CMakeFiles/vgiwsim.dir/workloads/particle_filter.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/particle_filter.cc.o.d"
  "/root/repo/src/workloads/streamcluster.cc" "src/CMakeFiles/vgiwsim.dir/workloads/streamcluster.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/streamcluster.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/vgiwsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/vgiwsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
