file(REMOVE_RECURSE
  "libvgiwsim.a"
)
