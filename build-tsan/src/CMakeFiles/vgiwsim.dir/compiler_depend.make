# Empty compiler generated dependencies file for vgiwsim.
# This may be replaced when dependencies are built.
