file(REMOVE_RECURSE
  "CMakeFiles/vgiw_run.dir/vgiw_run.cc.o"
  "CMakeFiles/vgiw_run.dir/vgiw_run.cc.o.d"
  "vgiw_run"
  "vgiw_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgiw_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
