# Empty dependencies file for vgiw_run.
# This may be replaced when dependencies are built.
