#include "power/energy_model.hh"

namespace vgiw
{

const char *
energyComponentName(EnergyComponent c)
{
    switch (c) {
      case EnergyComponent::Datapath: return "datapath";
      case EnergyComponent::Frontend: return "frontend";
      case EnergyComponent::RegisterFile: return "register-file";
      case EnergyComponent::TokenFabric: return "token-fabric";
      case EnergyComponent::Lvc: return "lvc";
      case EnergyComponent::Cvt: return "cvt";
      case EnergyComponent::Config: return "config";
      case EnergyComponent::Scratchpad: return "scratchpad";
      case EnergyComponent::L1: return "l1";
      case EnergyComponent::L2: return "l2";
      case EnergyComponent::Dram: return "dram";
      case EnergyComponent::NumComponents: break;
    }
    return "?";
}

} // namespace vgiw
