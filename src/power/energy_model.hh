/**
 * @file
 * GPUWattch-style event energy model.
 *
 * The paper derives per-operation energies from RTL synthesis (65 nm,
 * extrapolated to 40 nm) and feeds them into GPUWattch (Section 4). We
 * cannot ship those synthesis results, so the table below encodes
 * per-event energies in picojoules drawn from the public literature the
 * paper builds on (GPUWattch's Fermi breakdown, Horowitz's energy-per-op
 * survey), scaled to a 40 nm-class process. Every value is a plain struct
 * field so a user with real synthesis numbers can override it.
 *
 * Two modelling decisions mirror the paper's argument:
 *  - the von Neumann front end (fetch/decode/schedule) plus the vector
 *    register file are priced so they amount to roughly 30% of a Fermi
 *    SM's core energy, the figure the paper cites from [3, 4];
 *  - VGIW replaces those with direct token communication (token-buffer
 *    read/write + interconnect hops) and the much smaller LVC/CVT.
 */

#ifndef VGIW_POWER_ENERGY_MODEL_HH
#define VGIW_POWER_ENERGY_MODEL_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace vgiw
{

/** Per-event energies in picojoules. */
struct EnergyTable
{
    // Datapath (identical circuits on every architecture).
    double intAluOp = 4.0;
    double fpAluOp = 12.0;
    double scuOp = 40.0;      ///< div/sqrt/transcendental circuit
    double ldstIssue = 5.0;   ///< LDST unit issue + reservation buffer

    // Dataflow fabric (VGIW and SGMF).
    double tokenBufferRw = 1.5;  ///< write + read of one 32-bit token
    double tokenHop = 1.0;       ///< one interconnect hop of one token
    double lvcAccessWord = 8.0;  ///< 64 KB banked LVC, word granularity
    double cvtAccessWord = 1.5;  ///< CVT 64-bit word read/write
    double configPerUnit = 3.0;  ///< loading one unit's configuration

    // Von Neumann SM (Fermi baseline).
    double rfAccessWarp = 700.0;   ///< 128 B vector RF access (per warp)
    double frontendWarpInstr = 600.0;  ///< fetch+decode+schedule per warp
    double sharedAccessWord = 8.0;

    // Statically scheduled CGRA (DICE).
    double operandBufferWord = 2.5;  ///< schedule-managed live-value word

    // Memory system (identical on both sides of every comparison).
    double l1AccessWord = 15.0;   ///< one bank access, word granularity
    double l1AccessLine = 80.0;   ///< one 128 B transaction (coalesced)
    double l2AccessLine = 260.0;
    double dramAccessLine = 16000.0;  ///< GDDR5, ~15 pJ/bit incl. I/O
};

/** Energy sinks tracked separately so Fig. 10's levels can be formed. */
enum class EnergyComponent : uint8_t
{
    Datapath,      ///< ALU/FPU/SCU/LDST-issue circuits
    Frontend,      ///< fetch/decode/schedule (von Neumann only)
    RegisterFile,  ///< vector RF (Fermi) / operand buffers (DICE)
    TokenFabric,   ///< token buffers + interconnect hops (dataflow only)
    Lvc,           ///< live value cache (VGIW only)
    Cvt,           ///< control vector table (VGIW only)
    Config,        ///< grid reconfiguration (VGIW/SGMF/DICE)
    Scratchpad,    ///< shared-memory scratchpad
    L1,
    L2,
    Dram,
    NumComponents,
};

constexpr size_t kNumEnergyComponents =
    size_t(EnergyComponent::NumComponents);

const char *energyComponentName(EnergyComponent c);

/** Accumulated energy, split by component. */
class EnergyAccount
{
  public:
    void
    add(EnergyComponent c, double pj)
    {
        pj_[size_t(c)] += pj;
    }

    double get(EnergyComponent c) const { return pj_[size_t(c)]; }

    /** Core level: the compute engine, incl. RF or LVC+CVT (Fig. 10). */
    double
    corePj() const
    {
        return get(EnergyComponent::Datapath) +
               get(EnergyComponent::Frontend) +
               get(EnergyComponent::RegisterFile) +
               get(EnergyComponent::TokenFabric) +
               get(EnergyComponent::Lvc) + get(EnergyComponent::Cvt) +
               get(EnergyComponent::Config) +
               get(EnergyComponent::Scratchpad);
    }

    /** Die level: core + L1 + L2 + memory controller/interconnect. */
    double
    diePj() const
    {
        return corePj() + get(EnergyComponent::L1) +
               get(EnergyComponent::L2);
    }

    /** System level: die + DRAM. */
    double systemPj() const { return diePj() + get(EnergyComponent::Dram); }

    void
    merge(const EnergyAccount &o)
    {
        for (size_t i = 0; i < kNumEnergyComponents; ++i)
            pj_[i] += o.pj_[i];
    }

  private:
    std::array<double, kNumEnergyComponents> pj_{};
};

} // namespace vgiw

#endif // VGIW_POWER_ENERGY_MODEL_HH
