#include "vgiw/vgiw_core.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "cgrf/config_cost.hh"
#include "cgrf/placer.hh"
#include "common/logging.hh"
#include "ir/op_counts.hh"
#include "mem/bank_merge.hh"
#include "mem/memory_system.hh"
#include "vgiw/control_vector_table.hh"
#include "vgiw/live_value_cache.hh"

namespace vgiw
{

namespace
{

/** Distinct live-value IDs a block reads (in first-use order). */
std::vector<uint16_t>
liveInIds(const BasicBlock &blk)
{
    std::vector<uint16_t> ids;
    auto note = [&ids](const Operand &o) {
        if (o.kind == OperandKind::LiveIn &&
            std::find(ids.begin(), ids.end(), o.index) == ids.end()) {
            ids.push_back(o.index);
        }
    };
    for (const auto &in : blk.instrs)
        for (const auto &s : in.src)
            note(s);
    for (const auto &lo : blk.liveOuts)
        note(lo.value);
    note(blk.term.cond);
    return ids;
}

} // namespace

int
VgiwCore::tileSizeFor(const Kernel &kernel, const LaunchParams &launch) const
{
    // tile = CVT capacity / #blocks, in threads (Section 3.2). Tiles are
    // rounded to whole CTAs so barriers never span tile boundaries.
    const int raw = int(cfg_.cvtCapacityBits) / kernel.numBlocks();
    int tile = (raw / launch.ctaSize) * launch.ctaSize;
    if (tile < launch.ctaSize) {
        vgiw_warn("kernel '", kernel.name, "': CTA of ", launch.ctaSize,
                  " threads exceeds the CVT tile budget; tiling by CTA");
        tile = launch.ctaSize;
    }
    return std::min(tile, launch.numThreads());
}

RunStats
VgiwCore::run(const TraceSet &traces) const
{
    const Kernel &k = *traces.kernel;
    const LaunchParams &launch = traces.launch;
    const int num_blocks = k.numBlocks();
    const int num_threads = launch.numThreads();

    RunStats rs;
    rs.arch = "vgiw";
    rs.kernelName = k.name;

    // --- Compile: per-block DFGs, placement, replication. -------------
    Placer placer(cfg_.grid);
    std::vector<Dfg> dfgs;
    std::vector<PlacedBlock> placed;
    std::vector<OpCounts> ops;
    std::vector<std::vector<uint16_t>> live_ins;
    double total_util = 0.0;
    for (const auto &blk : k.blocks) {
        dfgs.push_back(buildBlockDfg(blk, cfg_.timing));
        placed.push_back(placer.place(
            dfgs.back(), cfg_.enableReplication ? cfg_.maxReplicas : 1));
        if (!placed.back().fits) {
            vgiw_fatal("kernel '", k.name, "' block '", blk.name,
                       "' does not fit the MT-CGRF grid");
        }
        ops.push_back(staticOpCounts(blk));
        live_ins.push_back(liveInIds(blk));
        total_util += placed.back().utilization(cfg_.grid.numUnits());
    }
    rs.extra.set("placement.avg_utilization",
                 total_util / double(num_blocks));

    // --- Runtime structures. -------------------------------------------
    MemorySystem ms(vgiwL1Geometry());
    LiveValueCache lvc(lvcGeometry(cfg_.lvcBytes), ms,
                       uint32_t(num_threads), cfg_.lvcHitLatency);
    const uint32_t l1_banks = ms.l1().geometry().banks;
    const EnergyTable &e = cfg_.energy;
    const int reconfig_cost = reconfigCycles(cfg_.grid.numUnits());

    std::vector<uint32_t> exec_ptr(size_t(num_threads), 0);
    BankMergeModel l1_banks_model(l1_banks);
    BankMergeModel shared_banks_model(32);
    std::vector<std::vector<uint32_t>> succ_tids(
        static_cast<size_t>(num_blocks));

    const int tile = tileSizeFor(k, launch);
    uint64_t compute_cycles = 0;
    uint64_t shared_accesses = 0;
    uint64_t vector_sum = 0;       // Fig. 1d: coalesced vector sizes
    uint64_t vectors_scheduled = 0;

    for (int tile_start = 0; tile_start < num_threads;
         tile_start += tile) {
        const int tile_threads =
            std::min(tile, num_threads - tile_start);
        const int ctas_in_tile = tile_threads / launch.ctaSize;

        ControlVectorTable cvt(num_blocks, tile_threads, cfg_.cvtBanks);
        cvt.seedEntry(tile_threads);

        // Barrier pools, keyed by (cta-in-tile, block).
        std::vector<std::vector<std::pair<uint32_t, int>>> pools(
            size_t(ctas_in_tile) * num_blocks);
        std::vector<int> live_in_cta(size_t(ctas_in_tile),
                                     launch.ctaSize);
        int waiting = 0;

        auto release_pools = [&](int cta) {
            for (int b = 0; b < num_blocks; ++b) {
                auto &pool = pools[size_t(cta) * num_blocks + b];
                if (!pool.empty() &&
                    int(pool.size()) == live_in_cta[cta]) {
                    for (auto [rel, succ] : pool)
                        cvt.set(succ, rel);
                    waiting -= int(pool.size());
                    pool.clear();
                }
            }
        };

        int configured = -1;
        while (true) {
            const int b = cvt.firstPendingBlock();
            if (b < 0) {
                vgiw_assert(waiting == 0, "kernel '", k.name,
                            "': barrier deadlock in VGIW replay");
                break;
            }

            const std::vector<uint32_t> rel_tids = cvt.drain(b);
            const uint64_t v = rel_tids.size();
            vector_sum += v;
            ++vectors_scheduled;
            if (cfg_.blockObserver) {
                std::vector<uint32_t> gtids;
                gtids.reserve(rel_tids.size());
                for (uint32_t rel : rel_tids)
                    gtids.push_back(uint32_t(tile_start) + rel);
                cfg_.blockObserver(b, gtids);
            }
            const PlacedBlock &pb = placed[b];
            const int replicas =
                cfg_.enableReplication ? pb.replicas : 1;
            const BasicBlock &blk = k.blocks[b];

            // Reconfiguration (prefetched by the BBS; charged when the
            // loaded graph changes).
            if (b != configured) {
                rs.configCycles += uint64_t(reconfig_cost);
                ++rs.reconfigs;
                rs.energy.add(EnergyComponent::Config,
                              e.configPerUnit * cfg_.grid.numUnits());
                configured = b;
            }

            // --- Replay this block vector. ---------------------------
            l1_banks_model.reset();
            shared_banks_model.reset();
            for (auto &s : succ_tids)
                s.clear();
            uint64_t miss_latency = 0;
            // Lines already serviced for this vector when the
            // (future-work) coalescer is enabled; key = line*2 + isStore.
            std::unordered_set<uint64_t> coalesced;

            for (uint32_t rel : rel_tids) {
                const uint32_t gtid = uint32_t(tile_start) + rel;
                const ThreadTrace &tr = traces.threads[gtid];
                vgiw_assert(exec_ptr[gtid] < tr.execs.size(),
                            "trace underrun");
                const BlockExec &ex = tr.execs[exec_ptr[gtid]++];
                vgiw_assert(ex.block == b, "trace/schedule divergence");

                // Global/shared memory accesses (word granularity; the
                // VGIW LDST units do not coalesce).
                for (uint32_t a = ex.accessBegin; a < ex.accessEnd; ++a) {
                    const MemAccess &acc = tr.accesses[a];
                    if (acc.isShared) {
                        shared_banks_model.access((acc.addr / 4) % 32,
                                                  acc.addr / 4);
                        ++shared_accesses;
                        continue;
                    }
                    if (cfg_.enableMemoryCoalescing) {
                        const uint64_t key =
                            uint64_t(acc.addr / 128) * 2 + acc.isStore;
                        if (!coalesced.insert(key).second)
                            continue;  // merged into an earlier request
                    }
                    const MemAccessResult r =
                        ms.access(acc.addr, acc.isStore);
                    l1_banks_model.access(ms.l1().bankOf(acc.addr),
                                          acc.addr / 128);
                    if (r.servicedBy != MemLevel::L1)
                        miss_latency += r.latency;
                }

                // Live-value traffic through the LVC.
                for (uint16_t lvid : live_ins[b]) {
                    auto r = lvc.access(lvid, gtid, false);
                    if (!r.hit)
                        miss_latency += r.latency;
                }
                for (const auto &lo : blk.liveOuts) {
                    auto r = lvc.access(lo.lvid, gtid, true);
                    if (!r.hit)
                        miss_latency += r.latency;
                }

                // Successor registration via the terminator CVU.
                const int succ = ex.succ;
                const int cta = int(rel) / launch.ctaSize;
                if (succ < 0) {
                    --live_in_cta[cta];
                    release_pools(cta);
                } else if (blk.term.barrier) {
                    pools[size_t(cta) * num_blocks + b]
                        .emplace_back(rel, succ);
                    ++waiting;
                    release_pools(cta);
                } else {
                    succ_tids[succ].push_back(rel);
                }
            }

            // Batch updates back into the CVT (one word write each).
            for (int s = 0; s < num_blocks; ++s) {
                if (succ_tids[s].empty())
                    continue;
                for (const ThreadBatch &batch : packBatches(succ_tids[s]))
                    cvt.orBatch(s, batch);
            }

            // --- Cycle model for this vector. -------------------------
            const uint64_t issue = (v + replicas - 1) / replicas;
            const uint64_t bw = l1_banks_model.maxCycles();
            const uint64_t shared_cyc = shared_banks_model.maxCycles();
            const uint64_t lat = miss_latency / cfg_.missWindow;
            compute_cycles +=
                std::max({issue, bw, lat, shared_cyc}) +
                uint64_t(pb.criticalPathCycles);

            // --- Energy for this vector. ------------------------------
            const OpCounts &oc = ops[b];
            rs.energy.add(EnergyComponent::Datapath,
                          v * (oc.intAlu * e.intAluOp +
                               oc.fpAlu * e.fpAluOp + oc.scu * e.scuOp +
                               oc.mem() * e.ldstIssue));
            rs.energy.add(EnergyComponent::TokenFabric,
                          v * (pb.edgesPerThread * e.tokenBufferRw +
                               pb.edgeHopsPerThread * e.tokenHop));
            rs.dynBlockExecs += v;
            rs.dynThreadOps += v * oc.total();
        }

        rs.energy.add(EnergyComponent::Cvt,
                      cvt.stats().accesses() * e.cvtAccessWord);
    }

    // --- Totals. ---------------------------------------------------------
    rs.cycles = compute_cycles + rs.configCycles;
    rs.cycles = std::max(rs.cycles, ms.dramServiceCycles());

    rs.lvcAccesses = lvc.accesses();
    rs.energy.add(EnergyComponent::Lvc, lvc.accesses() * e.lvcAccessWord);
    rs.energy.add(EnergyComponent::Scratchpad,
                  shared_accesses * e.sharedAccessWord);
    rs.energy.add(EnergyComponent::L1,
                  ms.l1().stats().accesses() * e.l1AccessWord);
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.lvcStats = lvc.stats();
    rs.dramStats = ms.dram().stats();
    // Fig. 1d quantified: how many threads each scheduled block vector
    // coalesced. Large numbers are what amortise reconfiguration.
    rs.extra.set("vgiw.avg_vector_size",
                 vectors_scheduled ? double(vector_sum) /
                                         double(vectors_scheduled)
                                   : 0.0);
    return rs;
}

} // namespace vgiw
