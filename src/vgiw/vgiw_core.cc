#include "vgiw/vgiw_core.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <optional>
#include <string>
#include <vector>

#include "cgrf/config_cost.hh"
#include "cgrf/placed_serde.hh"
#include "cgrf/placer.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/scratch_set.hh"
#include "common/sim_error.hh"
#include "ir/op_counts.hh"
#include "mem/bank_merge.hh"
#include "mem/memory_system.hh"
#include "vgiw/control_vector_table.hh"
#include "vgiw/live_value_cache.hh"

namespace vgiw
{

namespace
{

/**
 * Distinct live-value IDs a block reads (in first-use order). Linear in
 * the operand count: a seen-bitmap over the kernel's live-value ID space
 * replaces the quadratic find-in-output scan.
 */
std::vector<uint16_t>
liveInIds(const BasicBlock &blk, int num_live_values)
{
    std::vector<uint16_t> ids;
    std::vector<uint64_t> seen(size_t(num_live_values + 63) / 64, 0);
    auto note = [&](const Operand &o) {
        if (o.kind != OperandKind::LiveIn)
            return;
        vgiw_assert(int(o.index) < num_live_values, "live-value id ",
                    o.index, " out of range");
        uint64_t &word = seen[o.index / 64];
        const uint64_t bit = uint64_t{1} << (o.index % 64);
        if (!(word & bit)) {
            word |= bit;
            ids.push_back(o.index);
        }
    };
    for (const auto &in : blk.instrs)
        for (const auto &s : in.src)
            note(s);
    for (const auto &lo : blk.liveOuts)
        note(lo.value);
    note(blk.term.cond);
    return ids;
}

} // namespace

std::string
VgiwConfig::validate() const
{
    if (std::string d = validateGridConfig(grid); !d.empty())
        return "vgiw: " + d;
    if (cvtCapacityBits == 0)
        return "vgiw: cvtCapacityBits must be positive (the CVT tile "
               "formula divides by it)";
    if (cvtBanks <= 0)
        return "vgiw: cvtBanks must be positive";
    if (maxReplicas < 1)
        return "vgiw: maxReplicas must be at least 1";
    if (missWindow == 0)
        return "vgiw: missWindow must be positive (latency hiding "
               "divides by it)";
    const CacheGeometry lvc = lvcGeometry(lvcBytes);
    const uint32_t lvc_min = lvc.lineBytes * lvc.ways;
    if (lvcBytes < lvc_min || lvcBytes % lvc_min != 0) {
        return "vgiw: lvcBytes (" + std::to_string(lvcBytes) +
               ") must be a positive multiple of lineBytes*ways (" +
               std::to_string(lvc_min) + ")";
    }
    return {};
}

std::string
VgiwCore::compileKey() const
{
    // Everything compile() reads: grid shape/counts (placement), unit
    // timings (critical paths), and the replication policy. LVC/CVT
    // sizes and the miss window are replay-side and deliberately absent.
    return "vgiw|" + gridFingerprint(cfg_.grid) + "|" +
           timingFingerprint(cfg_.timing) + "|rep:" +
           std::to_string(cfg_.enableReplication ? cfg_.maxReplicas : 1);
}

std::string
VgiwCore::replayKey() const
{
    // Everything run() reads that compileKey() does not: LVC capacity
    // and hit latency, CVT capacity/banking, the outstanding-miss
    // window and the coalescing extension. Watchdog budgets are
    // excluded by contract (see CoreModel::replayKey).
    return "lvc:" + std::to_string(cfg_.lvcBytes) + "," +
           std::to_string(cfg_.lvcHitLatency) +
           "|cvt:" + std::to_string(cfg_.cvtCapacityBits) + "," +
           std::to_string(cfg_.cvtBanks) +
           "|mw:" + std::to_string(cfg_.missWindow) +
           "|coal:" + (cfg_.enableMemoryCoalescing ? "1" : "0");
}

std::shared_ptr<const CompiledKernel>
VgiwCore::compile(const Kernel &k) const
{
    auto ck = std::make_shared<VgiwCompiledKernel>();
    Placer placer(cfg_.grid);
    double total_util = 0.0;
    ck->placed.reserve(k.blocks.size());
    ck->ops.reserve(k.blocks.size());
    ck->liveIns.reserve(k.blocks.size());
    for (const auto &blk : k.blocks) {
        const Dfg dfg = buildBlockDfg(blk, cfg_.timing);
        ck->placed.push_back(placer.place(
            dfg, cfg_.enableReplication ? cfg_.maxReplicas : 1));
        if (!ck->placed.back().fits) {
            // A compile-kind SimError, not vgiw_fatal: one oversized
            // kernel in a tile-size sweep is a per-job failure the
            // engine records and skips, never a sweep abort.
            throw SimError(SimErrorKind::Compile,
                           "kernel '" + k.name + "' block '" + blk.name +
                               "' does not fit the MT-CGRF grid");
        }
        ck->ops.push_back(staticOpCounts(blk));
        ck->liveIns.push_back(liveInIds(blk, k.numLiveValues));
        total_util += ck->placed.back().utilization(cfg_.grid.numUnits());
    }
    ck->avgUtilization = total_util / double(k.numBlocks());
    return ck;
}

namespace
{
/** Bumped when the VGIW artifact payload layout changes. */
constexpr uint32_t kVgiwArtifactVersion = 1;
} // namespace

std::string
VgiwCore::serializeArtifact(const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const VgiwCompiledKernel *>(&compiled);
    if (!ck)
        return {};
    std::string out;
    ByteWriter w(out);
    w.u32(kVgiwArtifactVersion);
    // placed/ops/liveIns are parallel per-block arrays: one count.
    w.u64(ck->placed.size());
    for (const PlacedBlock &b : ck->placed)
        writePlacedBlock(w, b);
    for (const OpCounts &oc : ck->ops) {
        w.u32(oc.intAlu);
        w.u32(oc.fpAlu);
        w.u32(oc.scu);
        w.u32(oc.loads);
        w.u32(oc.stores);
    }
    for (const auto &li : ck->liveIns) {
        w.u32(uint32_t(li.size()));
        w.raw(li.data(), li.size() * sizeof(uint16_t));
    }
    w.f64(ck->avgUtilization);
    return out;
}

std::shared_ptr<const CompiledKernel>
VgiwCore::deserializeArtifact(std::string_view bytes) const
{
    ByteReader r(bytes.data(), bytes.size());
    if (r.u32() != kVgiwArtifactVersion)
        return nullptr;
    const uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining())
        return nullptr;
    auto ck = std::make_shared<VgiwCompiledKernel>();
    ck->placed.resize(size_t(n));
    for (PlacedBlock &b : ck->placed)
        readPlacedBlock(r, b);
    ck->ops.resize(size_t(n));
    for (OpCounts &oc : ck->ops) {
        oc.intAlu = r.u32();
        oc.fpAlu = r.u32();
        oc.scu = r.u32();
        oc.loads = r.u32();
        oc.stores = r.u32();
    }
    ck->liveIns.resize(size_t(n));
    for (auto &li : ck->liveIns) {
        const uint32_t cnt = r.u32();
        const uint8_t *p = r.bytes(size_t(cnt) * sizeof(uint16_t));
        if (!p)
            return nullptr;
        li.resize(cnt);
        std::memcpy(li.data(), p, size_t(cnt) * sizeof(uint16_t));
    }
    ck->avgUtilization = r.f64();
    if (!r.done())
        return nullptr;
    return ck;
}

int
VgiwCore::tileSizeFor(const Kernel &kernel, const LaunchParams &launch) const
{
    // tile = CVT capacity / #blocks, in threads (Section 3.2). Tiles are
    // rounded to whole CTAs so barriers never span tile boundaries.
    const int raw = int(cfg_.cvtCapacityBits) / kernel.numBlocks();
    int tile = (raw / launch.ctaSize) * launch.ctaSize;
    if (tile < launch.ctaSize) {
        vgiw_warn("kernel '", kernel.name, "': CTA of ", launch.ctaSize,
                  " threads exceeds the CVT tile budget; tiling by CTA");
        tile = launch.ctaSize;
    }
    return std::min(tile, launch.numThreads());
}

RunStats
VgiwCore::run(const TraceSet &traces, const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const VgiwCompiledKernel *>(&compiled);
    vgiw_assert(ck, "VgiwCore::run needs a VGIW compile artifact");

    const Kernel &k = *traces.kernel;
    const LaunchParams &launch = traces.launch;
    const int num_blocks = k.numBlocks();
    const int num_threads = launch.numThreads();
    vgiw_assert(int(ck->placed.size()) == num_blocks,
                "compile artifact/kernel mismatch");

    RunStats rs;
    rs.arch = "vgiw";
    rs.kernelName = k.name;
    rs.extra.set("placement.avg_utilization", ck->avgUtilization);

    // --- Runtime structures. -------------------------------------------
    MemorySystem ms(vgiwL1Geometry());
    LiveValueCache lvc(lvcGeometry(cfg_.lvcBytes), ms,
                       uint32_t(num_threads), cfg_.lvcHitLatency);
    const uint32_t l1_banks = ms.l1().geometry().banks;
    const EnergyTable &e = cfg_.energy;
    const int reconfig_cost = reconfigCycles(cfg_.grid.numUnits());

    // One forward-only decode cursor per thread; the BBS consumes each
    // thread's trace strictly in order, one block execution per drain.
    std::vector<ThreadCursor> cursor(size_t{unsigned(num_threads)});
    for (int t = 0; t < num_threads; ++t)
        cursor[size_t(t)] = traces.thread(uint32_t(t));
    BankMergeModel l1_banks_model(l1_banks);
    BankMergeModel shared_banks_model(32);

    // Per-core replay scratch, allocated once and reused for every
    // scheduled block vector: the hot loop itself is allocation-free.
    std::vector<std::vector<uint32_t>> succ_tids(
        static_cast<size_t>(num_blocks));
    std::vector<uint32_t> rel_tids;   // CVT drain buffer
    std::vector<uint32_t> gtids;      // observer scratch
    std::vector<ThreadBatch> batches; // terminator CVU packets
    // Lines already serviced for this vector when the (future-work)
    // coalescer is enabled; key = line*2 + isStore.
    ScratchSet coalesced;

    // Livelock containment: a ceiling on model cycles and/or wall
    // clock, polled once per scheduled block vector (the BBS loop's
    // unit of forward progress).
    std::optional<Watchdog> wd;
    if (cfg_.watchdog.enabled())
        wd.emplace(cfg_.watchdog, "vgiw replay of '" + k.name + "'");

    // Per-block attribution for the observability layer: CVT drains,
    // LVC hit/miss traffic per block and the coalesced-vector-size
    // histogram (batch occupancy, power-of-two buckets). Deterministic
    // replay statistics only — safe for the "metrics" JSON contract.
    JobMetrics *jm = currentMetricSink();
    std::vector<double> m_drains, m_lvc_hits, m_lvc_misses;
    std::array<uint64_t, 32> m_vhist{};
    if (jm) {
        m_drains.assign(size_t(num_blocks), 0.0);
        m_lvc_hits.assign(size_t(num_blocks), 0.0);
        m_lvc_misses.assign(size_t(num_blocks), 0.0);
    }

    const int tile = tileSizeFor(k, launch);
    uint64_t compute_cycles = 0;
    uint64_t shared_accesses = 0;
    uint64_t vector_sum = 0;       // Fig. 1d: coalesced vector sizes
    uint64_t vectors_scheduled = 0;

    for (int tile_start = 0; tile_start < num_threads;
         tile_start += tile) {
        const int tile_threads =
            std::min(tile, num_threads - tile_start);
        const int ctas_in_tile = tile_threads / launch.ctaSize;

        ControlVectorTable cvt(num_blocks, tile_threads, cfg_.cvtBanks);
        cvt.seedEntry(tile_threads);

        // Barrier pools, keyed by (cta-in-tile, block).
        std::vector<std::vector<std::pair<uint32_t, int>>> pools(
            size_t(ctas_in_tile) * num_blocks);
        std::vector<int> live_in_cta(size_t(ctas_in_tile),
                                     launch.ctaSize);
        int waiting = 0;

        auto release_pools = [&](int cta) {
            for (int b = 0; b < num_blocks; ++b) {
                auto &pool = pools[size_t(cta) * num_blocks + b];
                if (!pool.empty() &&
                    int(pool.size()) == live_in_cta[cta]) {
                    for (auto [rel, succ] : pool)
                        cvt.set(succ, rel);
                    waiting -= int(pool.size());
                    pool.clear();
                }
            }
        };

        int configured = -1;
        while (true) {
            const int b = cvt.firstPendingBlock();
            if (b < 0) {
                vgiw_assert(waiting == 0, "kernel '", k.name,
                            "': barrier deadlock in VGIW replay");
                break;
            }

            cvt.drainInto(b, rel_tids);
            const uint64_t v = rel_tids.size();
            vector_sum += v;
            ++vectors_scheduled;
            if (jm) {
                ++m_drains[size_t(b)];
                ++m_vhist[v ? size_t(std::bit_width(v)) - 1 : 0];
            }
            if (cfg_.blockObserver) {
                gtids.clear();
                for (uint32_t rel : rel_tids)
                    gtids.push_back(uint32_t(tile_start) + rel);
                cfg_.blockObserver(b, gtids);
            }
            const PlacedBlock &pb = ck->placed[b];
            const int replicas =
                cfg_.enableReplication ? pb.replicas : 1;
            const BasicBlock &blk = k.blocks[b];

            // Reconfiguration (prefetched by the BBS; charged when the
            // loaded graph changes).
            if (b != configured) {
                rs.configCycles += uint64_t(reconfig_cost);
                ++rs.reconfigs;
                rs.energy.add(EnergyComponent::Config,
                              e.configPerUnit * cfg_.grid.numUnits());
                configured = b;
            }

            // --- Replay this block vector. ---------------------------
            l1_banks_model.reset();
            shared_banks_model.reset();
            for (auto &s : succ_tids)
                s.clear();
            uint64_t miss_latency = 0;
            coalesced.clear();

            for (uint32_t rel : rel_tids) {
                const uint32_t gtid = uint32_t(tile_start) + rel;
                ThreadCursor &cur = cursor[gtid];
                vgiw_assert(!cur.done(), "trace underrun");
                vgiw_assert(cur.block() == b, "trace/schedule divergence");

                // Global/shared memory accesses (word granularity; the
                // VGIW LDST units do not coalesce).
                const uint32_t nacc = cur.numAccesses();
                for (uint32_t a = 0; a < nacc; ++a) {
                    const MemAccess acc = cur.nextAccess();
                    if (acc.isShared) {
                        shared_banks_model.access((acc.addr / 4) % 32,
                                                  acc.addr / 4);
                        ++shared_accesses;
                        continue;
                    }
                    if (cfg_.enableMemoryCoalescing) {
                        const uint64_t key =
                            uint64_t(acc.addr / 128) * 2 + acc.isStore;
                        if (!coalesced.insert(key))
                            continue;  // merged into an earlier request
                    }
                    const MemAccessResult r =
                        ms.access(acc.addr, acc.isStore);
                    l1_banks_model.access(ms.l1().bankOf(acc.addr),
                                          acc.addr / 128);
                    if (r.servicedBy != MemLevel::L1)
                        miss_latency += r.latency;
                }

                // Live-value traffic through the LVC.
                for (uint16_t lvid : ck->liveIns[b]) {
                    auto r = lvc.access(lvid, gtid, false);
                    if (!r.hit)
                        miss_latency += r.latency;
                    if (jm)
                        ++(r.hit ? m_lvc_hits
                                 : m_lvc_misses)[size_t(b)];
                }
                for (const auto &lo : blk.liveOuts) {
                    auto r = lvc.access(lo.lvid, gtid, true);
                    if (!r.hit)
                        miss_latency += r.latency;
                    if (jm)
                        ++(r.hit ? m_lvc_hits
                                 : m_lvc_misses)[size_t(b)];
                }

                // Successor registration via the terminator CVU.
                const int succ = cur.succ();
                cur.nextExec();
                const int cta = int(rel) / launch.ctaSize;
                if (succ < 0) {
                    --live_in_cta[cta];
                    release_pools(cta);
                } else if (blk.term.barrier) {
                    pools[size_t(cta) * num_blocks + b]
                        .emplace_back(rel, succ);
                    ++waiting;
                    release_pools(cta);
                } else {
                    succ_tids[succ].push_back(rel);
                }
            }

            // Batch updates back into the CVT (one word write each).
            for (int s = 0; s < num_blocks; ++s) {
                if (succ_tids[s].empty())
                    continue;
                packBatchesInto(succ_tids[s], batches);
                for (const ThreadBatch &batch : batches)
                    cvt.orBatch(s, batch);
            }

            // --- Cycle model for this vector. -------------------------
            const uint64_t issue = (v + replicas - 1) / replicas;
            const uint64_t bw = l1_banks_model.maxCycles();
            const uint64_t shared_cyc = shared_banks_model.maxCycles();
            const uint64_t lat = miss_latency / cfg_.missWindow;
            compute_cycles +=
                std::max({issue, bw, lat, shared_cyc}) +
                uint64_t(pb.criticalPathCycles);

            // --- Energy for this vector. ------------------------------
            const OpCounts &oc = ck->ops[b];
            rs.energy.add(EnergyComponent::Datapath,
                          v * (oc.intAlu * e.intAluOp +
                               oc.fpAlu * e.fpAluOp + oc.scu * e.scuOp +
                               oc.mem() * e.ldstIssue));
            rs.energy.add(EnergyComponent::TokenFabric,
                          v * (pb.edgesPerThread * e.tokenBufferRw +
                               pb.edgeHopsPerThread * e.tokenHop));
            rs.dynBlockExecs += v;
            rs.dynThreadOps += v * oc.total();

            if (wd) {
                wd->poll(compute_cycles + rs.configCycles,
                         rs.dynBlockExecs, rs.dynThreadOps);
            }
        }

        rs.energy.add(EnergyComponent::Cvt,
                      cvt.stats().accesses() * e.cvtAccessWord);
    }

    // --- Totals. ---------------------------------------------------------
    rs.cycles = compute_cycles + rs.configCycles;
    rs.cycles = std::max(rs.cycles, ms.dramServiceCycles());

    rs.lvcAccesses = lvc.accesses();
    rs.energy.add(EnergyComponent::Lvc, lvc.accesses() * e.lvcAccessWord);
    rs.energy.add(EnergyComponent::Scratchpad,
                  shared_accesses * e.sharedAccessWord);
    rs.energy.add(EnergyComponent::L1,
                  ms.l1().stats().accesses() * e.l1AccessWord);
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.lvcStats = lvc.stats();
    rs.dramStats = ms.dram().stats();
    // Fig. 1d quantified: how many threads each scheduled block vector
    // coalesced. Large numbers are what amortise reconfiguration.
    rs.extra.set("vgiw.avg_vector_size",
                 vectors_scheduled ? double(vector_sum) /
                                         double(vectors_scheduled)
                                   : 0.0);

    if (jm) {
        jm->set("vgiw.vectors_scheduled", double(vectors_scheduled));
        jm->set("vgiw.avg_vector_size",
                vectors_scheduled ? double(vector_sum) /
                                        double(vectors_scheduled)
                                  : 0.0);
        jm->set("vgiw.tile_threads", double(tile));
        for (int b = 0; b < num_blocks; ++b) {
            const std::string p = "vgiw.block" + std::to_string(b);
            jm->set(p + ".cvt_drains", m_drains[size_t(b)]);
            jm->set(p + ".lvc_hits", m_lvc_hits[size_t(b)]);
            jm->set(p + ".lvc_misses", m_lvc_misses[size_t(b)]);
        }
        // Bucket i counts drained vectors of size [2^i, 2^(i+1));
        // empty buckets are omitted.
        for (size_t i = 0; i < m_vhist.size(); ++i) {
            if (m_vhist[i]) {
                jm->set("vgiw.vector_size_hist.p2_" + std::to_string(i),
                        double(m_vhist[i]));
            }
        }
    }
    return rs;
}

} // namespace vgiw
