/**
 * @file
 * Thread batch packets.
 *
 * Section 3.2: the BBS and the CVUs exchange threads as
 * <base threadID, bitmap> tuples — a 16-bit base thread ID plus a 64-bit
 * bitmap covering the 64 consecutive thread IDs starting at the base.
 * Batches are word-aligned so a batch ORs into exactly one CVT word.
 */

#ifndef VGIW_VGIW_THREAD_BATCH_HH
#define VGIW_VGIW_THREAD_BATCH_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"

namespace vgiw
{

/** One <base, bitmap> thread batch packet (80 bits of payload). */
struct ThreadBatch
{
    uint32_t base = 0;      ///< first thread ID covered (64-aligned)
    uint64_t bitmap = 0;

    int count() const { return __builtin_popcountll(bitmap); }

    /** Expand to the covered thread IDs in ascending order. */
    std::vector<uint32_t>
    threadIds() const
    {
        std::vector<uint32_t> out(size_t{unsigned(count())});
        bitops::expandWord(bitmap, base, out.data());
        return out;
    }
};

/**
 * Pack ascending thread IDs into aligned batches. Each 64-thread window
 * with at least one member yields one packet — which is also the number
 * of CVT word updates the BBS performs.
 */
std::vector<ThreadBatch> packBatches(const std::vector<uint32_t> &tids);

/**
 * Allocation-free packBatches: fills @p out (cleared first, capacity
 * reused) with the same packets packBatches would return.
 */
void packBatchesInto(const std::vector<uint32_t> &tids,
                     std::vector<ThreadBatch> &out);

} // namespace vgiw

#endif // VGIW_VGIW_THREAD_BATCH_HH
