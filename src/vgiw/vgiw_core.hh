/**
 * @file
 * The VGIW core timing/energy model — the paper's primary contribution.
 *
 * The model replays the functional traces under the machine organisation
 * of Section 3: the BBS repeatedly selects the smallest-numbered basic
 * block with a non-empty CVT vector, reconfigures the MT-CGRF with the
 * block's (replicated) dataflow graph, and streams the pending thread
 * vector through the grid. Execution time of one block vector is
 *
 *     max(ceil(V / replicas),            -- injection: 1 thread/replica/cyc
 *         max_bank L1 accesses,          -- banked-L1 throughput
 *         miss latency / MLP window,     -- latency not hidden by dynamic
 *         max_bank scratchpad accesses)      dataflow
 *     + placed critical path             -- pipeline drain
 *
 * plus 34 reconfiguration cycles whenever the scheduled block differs
 * from the currently loaded configuration. Threads are tiled so the CVT
 * capacity is never exceeded (Section 3.2's tile-size formula).
 */

#ifndef VGIW_VGIW_VGIW_CORE_HH
#define VGIW_VGIW_VGIW_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cgrf/dataflow_graph.hh"
#include "cgrf/grid.hh"
#include "cgrf/placer.hh"
#include "common/watchdog.hh"
#include "driver/core_model.hh"
#include "driver/run_stats.hh"
#include "interp/trace.hh"
#include "ir/op_counts.hh"
#include "power/energy_model.hh"

namespace vgiw
{

/** Configuration of one VGIW core. */
struct VgiwConfig
{
    GridConfig grid = GridConfig::makeTable1();
    CgrfTiming timing{};
    EnergyTable energy{};

    /** Total CVT bit capacity; tile = capacity / #blocks (Section 3.2). */
    uint32_t cvtCapacityBits = 64 * 1024;
    int cvtBanks = 8;

    /** Replication cap (the 16 CVUs allow at most 8 initiator pairs). */
    int maxReplicas = 8;
    /** Set false to ablate basic-block replication. */
    bool enableReplication = true;

    /**
     * Outstanding-miss window: LDST reservation buffers let this many
     * missing threads be overtaken (inter-thread dynamic dataflow).
     */
    uint32_t missWindow = 512;

    /**
     * EXTENSION (the paper's future work, Section 5: "We leave the
     * exploration of methods for memory coalescing on MT-CGRFs for
     * future work"): when enabled, the LDST crossbar merges a block
     * vector's accesses to the same cache line into one transaction —
     * an idealised inter-thread coalescer. Off by default to match the
     * paper's evaluated design; bench/ablation_coalescing quantifies
     * the headroom.
     */
    bool enableMemoryCoalescing = false;

    /** LVC capacity; sweepable for the design-space ablation. */
    uint32_t lvcBytes = 64 * 1024;
    uint32_t lvcHitLatency = 6;

    /** Replay ceilings (cycle budget / wall-clock deadline). */
    WatchdogConfig watchdog{};

    /**
     * Well-formedness check, run at job entry by the experiment engine
     * so a malformed sweep point fails fast as a `config`-kind error
     * instead of detonating as a deep assertion (zero CVT capacity
     * divides by zero in tiling, a degenerate grid breaks the placer,
     * an undersized LVC breaks the cache geometry). Returns an empty
     * string when valid, otherwise a one-line diagnostic.
     */
    std::string validate() const;

    /**
     * Observer invoked whenever the BBS schedules a block vector, with
     * the block ID and the (global) thread IDs streamed through the
     * grid — the Figure 2 machine-state walkthrough hook.
     */
    std::function<void(int block, const std::vector<uint32_t> &tids)>
        blockObserver;
};

/**
 * VGIW compile artifact: the per-block graph instruction words after
 * place-and-route, plus the static per-block properties replay consumes.
 * Immutable once built; shared across concurrent replays.
 */
struct VgiwCompiledKernel final : CompiledKernel
{
    std::vector<PlacedBlock> placed;          ///< one per basic block
    std::vector<OpCounts> ops;                ///< static op counts
    std::vector<std::vector<uint16_t>> liveIns;  ///< distinct live-in IDs
    double avgUtilization = 0.0;  ///< mean grid utilisation over blocks
};

/** Cycle-approximate VGIW core model. */
class VgiwCore final : public CoreModel
{
  public:
    explicit VgiwCore(const VgiwConfig &cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "vgiw"; }
    std::string compileKey() const override;
    std::string replayKey() const override;

    /** Build + place each block's DFG (Section 3.1's compiler step). */
    std::shared_ptr<const CompiledKernel>
    compile(const Kernel &kernel) const override;

    /** Replay @p traces against a compile() artifact. */
    RunStats run(const TraceSet &traces,
                 const CompiledKernel &compiled) const override;
    using CoreModel::run;

    /** Persist / rehydrate a VgiwCompiledKernel (artifact store). */
    std::string
    serializeArtifact(const CompiledKernel &compiled) const override;
    std::shared_ptr<const CompiledKernel>
    deserializeArtifact(std::string_view bytes) const override;

    /** Tile size for a kernel/launch pair (Section 3.2 formula). */
    int tileSizeFor(const Kernel &kernel, const LaunchParams &launch) const;

    const VgiwConfig &config() const { return cfg_; }

  private:
    VgiwConfig cfg_;
};

} // namespace vgiw

#endif // VGIW_VGIW_VGIW_CORE_HH
