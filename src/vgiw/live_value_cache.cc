#include "vgiw/live_value_cache.hh"

namespace vgiw
{

CacheGeometry
lvcGeometry(uint32_t size_bytes)
{
    CacheGeometry g;
    g.sizeBytes = size_bytes;
    g.lineBytes = 128;
    g.ways = 4;
    g.banks = 16;
    g.writePolicy = WritePolicy::WriteBack;
    g.allocPolicy = AllocPolicy::WriteAllocate;
    return g;
}

LiveValueCache::LiveValueCache(const CacheGeometry &geom, MemorySystem &ms,
                               uint32_t max_threads, uint32_t hit_latency)
    : cache_("LVC", geom), ms_(ms), maxThreads_(max_threads),
      hitLatency_(hit_latency)
{}

uint32_t
LiveValueCache::addressOf(uint16_t lvid, uint32_t tid) const
{
    // Row-major by live value ID: consecutive threads' instances of one
    // live value are contiguous, so a thread vector streams each live
    // value with full spatial locality.
    return kRegionBase + (uint32_t(lvid) * maxThreads_ + tid) * 4;
}

uint32_t
LiveValueCache::bankOf(uint16_t lvid, uint32_t tid) const
{
    return cache_.bankOf(addressOf(lvid, tid));
}

LiveValueCache::Result
LiveValueCache::access(uint16_t lvid, uint32_t tid, bool is_write)
{
    const uint32_t addr = addressOf(lvid, tid);
    Cache::Result r = cache_.access(addr, is_write);

    Result out;
    out.hit = r.hit;
    out.latency = hitLatency_;

    if (r.writeback)
        ms_.accessL2Direct(addr, true);
    if (r.fill)
        out.latency += ms_.accessL2Direct(addr, false).latency;
    return out;
}

} // namespace vgiw
