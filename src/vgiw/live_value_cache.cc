#include "vgiw/live_value_cache.hh"

namespace vgiw
{

CacheGeometry
lvcGeometry(uint32_t size_bytes)
{
    CacheGeometry g;
    g.sizeBytes = size_bytes;
    g.lineBytes = 128;
    g.ways = 4;
    g.banks = 16;
    g.writePolicy = WritePolicy::WriteBack;
    g.allocPolicy = AllocPolicy::WriteAllocate;
    return g;
}

LiveValueCache::LiveValueCache(const CacheGeometry &geom, MemorySystem &ms,
                               uint32_t max_threads, uint32_t hit_latency)
    : cache_("LVC", geom), ms_(ms), maxThreads_(max_threads),
      hitLatency_(hit_latency)
{}

uint32_t
LiveValueCache::bankOf(uint16_t lvid, uint32_t tid) const
{
    return cache_.bankOf(addressOf(lvid, tid));
}

} // namespace vgiw
