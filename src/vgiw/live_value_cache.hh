/**
 * @file
 * The Live Value Cache (Section 3.4).
 *
 * Live values are mapped to memory as a two-dimensional array indexed by
 * <live value ID (row), thread ID (column)>; the LVC is a 64 KB banked
 * cache over that array, accessed at word granularity and backed by the
 * L2 (which allows spilling when the LVC is contended — generally
 * prevented by thread tiling).
 */

#ifndef VGIW_VGIW_LIVE_VALUE_CACHE_HH
#define VGIW_VGIW_LIVE_VALUE_CACHE_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/memory_system.hh"

namespace vgiw
{

/** Default LVC geometry: 64 KB, 4x smaller than the Fermi RF. */
CacheGeometry lvcGeometry(uint32_t size_bytes = 64 * 1024);

/** The live-value cache of one VGIW core. */
class LiveValueCache
{
  public:
    /**
     * @param geom cache geometry (64 KB by default)
     * @param ms the memory system whose L2 backs the LVC
     * @param max_threads row pitch of the live-value matrix
     * @param hit_latency LVU-visible latency of an LVC hit
     */
    LiveValueCache(const CacheGeometry &geom, MemorySystem &ms,
                   uint32_t max_threads, uint32_t hit_latency = 6);

    struct Result
    {
        bool hit = false;
        uint32_t latency = 0;
    };

    /**
     * Access live value @p lvid of thread @p tid. Inline: this sits on
     * the per-thread-per-live-value replay path (tens of millions of
     * calls per sweep) and is a thin wrapper over Cache::access.
     */
    Result
    access(uint16_t lvid, uint32_t tid, bool is_write)
    {
        const uint32_t addr = addressOf(lvid, tid);
        Cache::Result r = cache_.access(addr, is_write);

        Result out;
        out.hit = r.hit;
        out.latency = hitLatency_;

        if (r.writeback)
            ms_.accessL2Direct(addr, true);
        if (r.fill)
            out.latency += ms_.accessL2Direct(addr, false).latency;
        return out;
    }

    /** Word accesses so far (the Fig. 3 numerator). */
    uint64_t accesses() const { return cache_.stats().accesses(); }

    const CacheStats &stats() const { return cache_.stats(); }
    uint32_t bankOf(uint16_t lvid, uint32_t tid) const;

  private:
    /**
     * Row-major by live value ID: consecutive threads' instances of one
     * live value are contiguous, so a thread vector streams each live
     * value with full spatial locality.
     */
    uint32_t
    addressOf(uint16_t lvid, uint32_t tid) const
    {
        return kRegionBase + (uint32_t(lvid) * maxThreads_ + tid) * 4;
    }

    Cache cache_;
    MemorySystem &ms_;
    uint32_t maxThreads_;
    uint32_t hitLatency_;

    /**
     * The live-value matrix lives in a dedicated memory region above the
     * workload heap so LVC spills contend with (but never alias) kernel
     * data in the L2.
     */
    static constexpr uint32_t kRegionBase = 0x8000'0000u;
};

} // namespace vgiw

#endif // VGIW_VGIW_LIVE_VALUE_CACHE_HH
