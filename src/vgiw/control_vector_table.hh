/**
 * @file
 * The Control Vector Table (Section 3.3): one bit vector per basic block,
 * indexed by thread ID within the current tile. A set bit means the
 * thread's control flow has reached that block. The structure delivers
 * 64-bit words, uses a read-and-reset read port (to avoid a second write
 * port) and ORs in resolved-branch bitmaps from the terminator CVUs. It
 * is partitioned into 8 banks so replicated graphs can update it in
 * parallel.
 */

#ifndef VGIW_VGIW_CONTROL_VECTOR_TABLE_HH
#define VGIW_VGIW_CONTROL_VECTOR_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bit_vector.hh"
#include "vgiw/thread_batch.hh"

namespace vgiw
{

/** Access counters for CVT energy/bandwidth accounting. */
struct CvtStats
{
    uint64_t wordReads = 0;   ///< read-and-reset word operations
    uint64_t wordWrites = 0;  ///< OR-merge word operations
    uint64_t accesses() const { return wordReads + wordWrites; }
};

/** Per-tile control vector table. */
class ControlVectorTable
{
  public:
    ControlVectorTable(int num_blocks, int tile_size, int banks = 8);

    int numBlocks() const { return int(vectors_.size()); }
    int tileSize() const { return tileSize_; }
    int banks() const { return banks_; }

    /** Seed the entry vector: threads [0, n) pend on block 0. */
    void seedEntry(int n);

    /** Register a single thread for @p block (non-batch path). */
    void set(int block, uint32_t tid);

    /** OR a terminator CVU batch into @p block's vector. */
    void orBatch(int block, const ThreadBatch &batch);

    /**
     * Smallest block ID with a non-empty vector, or -1. This is the
     * entire hardware scheduling policy (Section 3.1): compiler block
     * numbering guarantees control dependencies are respected.
     */
    int firstPendingBlock() const;

    bool anyPending() const;

    /** Threads pending on @p block. */
    size_t pendingCount(int block) const;

    /**
     * Read-and-reset @p block's vector, returning the pending thread IDs
     * in ascending order. Counts one word read per word scanned.
     */
    std::vector<uint32_t> drain(int block);

    /**
     * Allocation-free drain: read-and-reset @p block's vector into
     * @p out (cleared first; capacity is reused across calls). Counts
     * exactly like drain() — the BBS reuses one drain buffer for every
     * scheduled block vector of a tile.
     */
    void drainInto(int block, std::vector<uint32_t> &out);

    const CvtStats &stats() const { return stats_; }

  private:
    int tileSize_;
    int banks_;
    std::vector<BitVector> vectors_;
    std::vector<uint32_t> drainBuf_;  ///< scratch for drainToIndices
    CvtStats stats_;
};

} // namespace vgiw

#endif // VGIW_VGIW_CONTROL_VECTOR_TABLE_HH
