#include "vgiw/thread_batch.hh"

namespace vgiw
{

std::vector<ThreadBatch>
packBatches(const std::vector<uint32_t> &tids)
{
    std::vector<ThreadBatch> out;
    packBatchesInto(tids, out);
    return out;
}

void
packBatchesInto(const std::vector<uint32_t> &tids,
                std::vector<ThreadBatch> &out)
{
    out.clear();
    for (uint32_t tid : tids) {
        const uint32_t base = tid & ~63u;
        if (out.empty() || out.back().base != base) {
            out.push_back(ThreadBatch{base, 0});
        }
        out.back().bitmap |= uint64_t{1} << (tid & 63u);
    }
}

} // namespace vgiw
