#include "vgiw/thread_batch.hh"

#include "common/bitops.hh"

namespace vgiw
{

std::vector<ThreadBatch>
packBatches(const std::vector<uint32_t> &tids)
{
    std::vector<ThreadBatch> out;
    packBatchesInto(tids, out);
    return out;
}

void
packBatchesInto(const std::vector<uint32_t> &tids,
                std::vector<ThreadBatch> &out)
{
    out.clear();
    bitops::foreachAlignedWindow(
        tids.data(), tids.size(), [&out](uint32_t base, uint64_t bitmap) {
            out.push_back(ThreadBatch{base, bitmap});
        });
}

} // namespace vgiw
