#include "vgiw/control_vector_table.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vgiw
{

ControlVectorTable::ControlVectorTable(int num_blocks, int tile_size,
                                       int banks)
    : tileSize_(tile_size), banks_(banks)
{
    vgiw_assert(num_blocks > 0 && tile_size > 0, "bad CVT shape");
    vectors_.reserve(size_t(num_blocks));
    for (int b = 0; b < num_blocks; ++b)
        vectors_.emplace_back(size_t(tile_size));
    drainBuf_.resize(size_t(tile_size + 63) / 64 * 64);
}

void
ControlVectorTable::seedEntry(int n)
{
    vectors_[0].setFirstN(size_t(n));
    stats_.wordWrites += uint64_t(n + 63) / 64;
}

void
ControlVectorTable::set(int block, uint32_t tid)
{
    vgiw_assert(block >= 0 && block < numBlocks(), "bad block ", block);
    vectors_[block].set(tid);
    ++stats_.wordWrites;
}

void
ControlVectorTable::orBatch(int block, const ThreadBatch &batch)
{
    vgiw_assert(block >= 0 && block < numBlocks(), "bad block ", block);
    vgiw_assert(batch.base % 64 == 0, "unaligned batch");
    vgiw_assert(batch.base / 64 < vectors_[block].numWords(),
                "batch beyond tile");
    vectors_[block].orWord(batch.base / 64, batch.bitmap);
    ++stats_.wordWrites;
}

int
ControlVectorTable::firstPendingBlock() const
{
    for (int b = 0; b < numBlocks(); ++b)
        if (vectors_[b].any())
            return b;
    return -1;
}

bool
ControlVectorTable::anyPending() const
{
    return firstPendingBlock() >= 0;
}

size_t
ControlVectorTable::pendingCount(int block) const
{
    return vectors_[block].count();
}

std::vector<uint32_t>
ControlVectorTable::drain(int block)
{
    std::vector<uint32_t> out;
    drainInto(block, out);
    return out;
}

void
ControlVectorTable::drainInto(int block, std::vector<uint32_t> &out)
{
    vgiw_assert(block >= 0 && block < numBlocks(), "bad block ", block);
    BitVector &v = vectors_[block];
    const size_t n = bitops::drainToIndices(v.span(), drainBuf_.data());
    out.assign(drainBuf_.data(), drainBuf_.data() + n);
    stats_.wordReads += v.numWords();
}

} // namespace vgiw
