/**
 * @file
 * Top-level system configuration (Table 1) shared by the bench harnesses:
 * clock domains plus the per-architecture core configurations. The VGIW
 * and Fermi processors share the uncore (L2, DRAM); the cores differ.
 */

#ifndef VGIW_DRIVER_SYSTEM_CONFIG_HH
#define VGIW_DRIVER_SYSTEM_CONFIG_HH

#include <chrono>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/watchdog.hh"
#include "dice/dice_core.hh"
#include "sgmf/sgmf_core.hh"
#include "simt/fermi_core.hh"
#include "vgiw/vgiw_core.hh"

namespace vgiw
{

/** Clock domains and core configurations (Table 1). */
struct SystemConfig
{
    double coreGhz = 1.4;
    double interconnectGhz = 1.4;
    double l2Ghz = 0.7;
    double dramGhz = 0.924;

    VgiwConfig vgiw{};
    FermiConfig fermi{};
    SgmfConfig sgmf{};
    DiceConfig dice{};

    /**
     * Well-formedness check of the clock domains plus every core
     * configuration. Returns an empty string when valid, otherwise the
     * first diagnostic found.
     */
    std::string validate() const;

    /**
     * Validation scoped to one job: the clock domains plus only the
     * named architecture's core config — a sweep varying VGIW knobs
     * must not fail its Fermi baseline jobs over a VGIW diagnostic.
     * Unknown names (caught separately as a config error) and "all"
     * validate every core.
     */
    std::string validate(std::string_view arch) const;

    /**
     * Stable fingerprint of every configuration field that can change
     * a job's statistics on @p arch: the clock domains plus the named
     * architecture's compile and replay keys. This is the config slice
     * of the result journal's job key (see ExperimentEngine::jobKey);
     * watchdog budgets are excluded by contract — a resume or retry
     * may widen them without invalidating completed results.
     */
    std::string jobFingerprint(std::string_view arch) const;

    /** Apply the same replay ceilings to every core model. */
    void setWatchdog(const WatchdogConfig &wd);

    /**
     * Re-anchor every core's wall-clock deadline at @p t. The
     * experiment engine calls this with the job-entry time so tracing,
     * compilation and replay share one per-job budget.
     */
    void anchorWatchdogs(std::chrono::steady_clock::time_point t);

    /** Print the Table 1 configuration summary. */
    void printTable1(std::ostream &os) const;
};

} // namespace vgiw

#endif // VGIW_DRIVER_SYSTEM_CONFIG_HH
