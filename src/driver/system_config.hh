/**
 * @file
 * Top-level system configuration (Table 1) shared by the bench harnesses:
 * clock domains plus the per-architecture core configurations. The VGIW
 * and Fermi processors share the uncore (L2, DRAM); the cores differ.
 */

#ifndef VGIW_DRIVER_SYSTEM_CONFIG_HH
#define VGIW_DRIVER_SYSTEM_CONFIG_HH

#include <iosfwd>

#include "sgmf/sgmf_core.hh"
#include "simt/fermi_core.hh"
#include "vgiw/vgiw_core.hh"

namespace vgiw
{

/** Clock domains and core configurations (Table 1). */
struct SystemConfig
{
    double coreGhz = 1.4;
    double interconnectGhz = 1.4;
    double l2Ghz = 0.7;
    double dramGhz = 0.924;

    VgiwConfig vgiw{};
    FermiConfig fermi{};
    SgmfConfig sgmf{};

    /** Print the Table 1 configuration summary. */
    void printTable1(std::ostream &os) const;
};

} // namespace vgiw

#endif // VGIW_DRIVER_SYSTEM_CONFIG_HH
