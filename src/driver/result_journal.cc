#include "driver/result_journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/json.hh"

namespace vgiw
{

namespace
{

constexpr const char *kHeaderPrefix =
    "{\"journal\":\"vgiw-sweep\",\"version\":1,\"sweep\":\"";

void
setError(std::string *error, std::string what)
{
    if (error)
        *error = std::move(what);
}

/** Parse `"name":` at @p pos, advancing past it; false on mismatch. */
bool
expect(const std::string &line, size_t &pos, const std::string &token)
{
    if (line.compare(pos, token.size(), token) != 0)
        return false;
    pos += token.size();
    return true;
}

/** Parse a JSON bool at @p pos, advancing past it. */
bool
parseBool(const std::string &line, size_t &pos, bool &out)
{
    if (line.compare(pos, 4, "true") == 0) {
        out = true;
        pos += 4;
        return true;
    }
    if (line.compare(pos, 5, "false") == 0) {
        out = false;
        pos += 5;
        return true;
    }
    return false;
}

/**
 * Parse the escaped string literal starting at the opening quote at
 * @p pos; @p pos ends up past the closing quote. Only the escapes
 * jsonEscape emits occur (it never leaves a bare backslash before a
 * quote), so scanning for an unescaped '"' is exact.
 */
bool
parseString(const std::string &line, size_t &pos, std::string &out)
{
    if (pos >= line.size() || line[pos] != '"')
        return false;
    size_t end = pos + 1;
    while (end < line.size() && line[end] != '"') {
        if (line[end] == '\\')
            ++end;  // skip the escaped character
        ++end;
    }
    if (end >= line.size())
        return false;
    out = jsonUnescape(line.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    return true;
}

/** Parse one entry line; false on any malformation (truncated tail). */
bool
parseEntryLine(const std::string &line, JournalEntry &e)
{
    size_t pos = 0;
    if (!expect(line, pos, "{\"key\":"))
        return false;
    if (!parseString(line, pos, e.key))
        return false;
    if (!expect(line, pos, ",\"ok\":") || !parseBool(line, pos, e.ok))
        return false;
    if (!expect(line, pos, ",\"golden\":") ||
        !parseBool(line, pos, e.golden)) {
        return false;
    }
    if (!expect(line, pos, ",\"quarantined\":") ||
        !parseBool(line, pos, e.quarantined)) {
        return false;
    }
    if (!expect(line, pos, ",\"result\":"))
        return false;
    // The rest of the line is the verbatim result object plus the
    // wrapper's closing brace.
    if (pos >= line.size() || line.back() != '}')
        return false;
    e.jsonLine = line.substr(pos, line.size() - pos - 1);
    return !e.jsonLine.empty() && e.jsonLine.front() == '{' &&
           e.jsonLine.back() == '}';
}

} // namespace

std::string
ResultJournal::formatEntry(const JournalEntry &e)
{
    std::ostringstream os;
    os << "{\"key\":\"" << jsonEscape(e.key) << "\""
       << ",\"ok\":" << (e.ok ? "true" : "false")
       << ",\"golden\":" << (e.golden ? "true" : "false")
       << ",\"quarantined\":" << (e.quarantined ? "true" : "false")
       << ",\"result\":" << e.jsonLine << "}";
    return os.str();
}

ResultJournal::Loaded
ResultJournal::load(const std::string &path)
{
    Loaded out;
    std::ifstream in(path);
    if (!in) {
        out.error = "cannot open '" + path + "'";
        return out;
    }

    std::string line;
    if (!std::getline(in, line)) {
        out.error = "journal '" + path + "' is empty (no header)";
        return out;
    }
    // A header truncated mid-write has no terminating `"}`; reject it
    // like any other malformed header.
    const size_t prefix_len = std::strlen(kHeaderPrefix);
    if (line.compare(0, prefix_len, kHeaderPrefix) != 0 ||
        line.size() < prefix_len + 2 ||
        line.compare(line.size() - 2, 2, "\"}") != 0) {
        out.error = "journal '" + path + "' has a malformed header";
        return out;
    }
    out.sweepHash = jsonUnescape(
        line.substr(prefix_len, line.size() - prefix_len - 2));
    out.valid = true;

    while (std::getline(in, line)) {
        // getline() also returns a final line with no trailing '\n';
        // such a line may be a half-written append. Entries are only
        // trusted when they parse completely; a malformed line is
        // *dropped*, not treated as end-of-journal — a restarted
        // coordinator appends past its predecessor's torn tail (after
        // openAppend terminates it with a newline), so valid records
        // can legitimately follow a bad line.
        JournalEntry e;
        if (!parseEntryLine(line, e))
            continue;
        // Duplicate keys: last complete record wins. Re-appending a key
        // is normal across coordinator restarts (the job re-ran); both
        // records are complete and bit-identical for deterministic
        // jobs, and when they differ the most recent run is the one
        // the resume must trust.
        out.entries[e.key] = std::move(e);
    }
    return out;
}

bool
ResultJournal::openAppend(const std::string &path, std::string *error)
{
    file_ = std::fopen(path.c_str(), "a");
    if (!file_) {
        setError(error, "cannot open journal '" + path +
                            "' for append: " + std::strerror(errno));
        return false;
    }
    path_ = path;
    // Heal a torn tail: if the previous writer died mid-append the file
    // ends without a newline, and appending straight after it would
    // merge the new record into the torn fragment — corrupting a *good*
    // record with a bad one. Terminating the fragment turns it into one
    // malformed line load() drops on the next recovery.
    if (std::FILE *probe = std::fopen(path.c_str(), "rb")) {
        char last = '\n';
        if (std::fseek(probe, -1, SEEK_END) == 0)
            last = char(std::fgetc(probe));
        std::fclose(probe);
        if (last != '\n')
            std::fputc('\n', file_);
    }
    return true;
}

bool
ResultJournal::create(const std::string &path,
                      const std::string &sweepHash, std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    // Never silently destroy an old journal: rotate it aside first.
    if (std::string rot_err;
        !rotateFile(path, ".1", &rot_err)) {
        setError(error, "cannot rotate old journal: " + rot_err);
        return false;
    }
    if (!openAppend(path, error))
        return false;
    const std::string header =
        kHeaderPrefix + jsonEscape(sweepHash) + "\"}";
    if (std::fprintf(file_, "%s\n", header.c_str()) < 0 ||
        std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
        setError(error, "cannot write journal header to '" + path +
                            "': " + std::strerror(errno));
        std::fclose(file_);
        file_ = nullptr;
        return false;
    }
    return true;
}

bool
ResultJournal::openForResume(const std::string &path,
                             const std::string &sweepHash,
                             std::string *error)
{
    if (::access(path.c_str(), F_OK) != 0) {
        // Nothing to resume from: degrade to a fresh journal so
        // `--resume` is safe to pass unconditionally in scripts.
        return create(path, sweepHash, error);
    }

    Loaded loaded = load(path);
    if (!loaded.valid) {
        setError(error, loaded.error);
        return false;
    }
    if (loaded.sweepHash != sweepHash) {
        setError(error,
                 "journal '" + path + "' is stale: it records sweep " +
                     loaded.sweepHash + " but this run is sweep " +
                     sweepHash +
                     " (the job list or configuration changed); "
                     "refusing to merge");
        return false;
    }

    std::lock_guard<std::mutex> lock(mu_);
    entries_ = std::move(loaded.entries);
    return openAppend(path, error);
}

bool
ResultJournal::append(const JournalEntry &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_) {
        if (writeError_.empty())
            writeError_ = "journal is not open";
        return false;
    }
    const std::string line = formatEntry(entry);
    // fsync before returning: once the engine reports this job done,
    // no later crash may lose it.
    if (std::fprintf(file_, "%s\n", line.c_str()) < 0 ||
        std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
        if (writeError_.empty()) {
            writeError_ = "journal append to '" + path_ +
                          "' failed: " + std::strerror(errno);
        }
        return false;
    }
    return true;
}

std::string
ResultJournal::writeError() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return writeError_;
}

void
ResultJournal::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_) {
        std::fflush(file_);
        ::fsync(fileno(file_));
        std::fclose(file_);
        file_ = nullptr;
    }
}

} // namespace vgiw
