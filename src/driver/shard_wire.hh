/**
 * @file
 * The shard wire layer: everything the pipe transport (ShardSupervisor,
 * PR 8) and the socket transport (RemotePool / vgiw_sweepd) share.
 *
 * PR 8 kept the payload codecs, the worker main loop and the test-fault
 * harness as file-local details of worker_pool.cc. The remote sweep
 * service speaks the *same* frames over TCP, so those details are now a
 * contract between three parties — the forked pipe worker, the
 * coordinator, and the daemon relaying between a socket and its own
 * local fleet — and live here:
 *
 *  - **Payload codecs** — Result/Stats (worker -> coordinator), the
 *    Hello/HelloAck handshake (client <-> daemon) and JobCrash
 *    (daemon -> client). All ByteWriter/ByteReader over native layout;
 *    the frame layer adds length + checksum, the Hello version +
 *    sweep-hash check gates cross-binary skew.
 *  - **runShardWorker** — the forked worker's main loop: one
 *    ExperimentEngine for the worker's lifetime, a heartbeat thread
 *    sharing the result fd behind a mutex, drain awareness, the pidfile
 *    liveness breadcrumb, and the VGIW_TEST_FAULT arming point. The
 *    pipe supervisor and the daemon's local fleet both fork this.
 *  - **TestFault** — the VGIW_TEST_FAULT grammar. Process faults
 *    (segv/kill/abort/stall/mute/badframe) are armed inside workers;
 *    network faults (drop/corruptframe/stallframe/skew) are applied by
 *    the daemon on its client socket. Distinct kind names let one env
 *    var drive both layers: each side arms only the kinds it owns.
 *  - **JobQueues** — round-robin per-worker queues with
 *    steal-from-the-longest-victim's-back, used by both the pipe
 *    supervisor and the remote pool so the two transports cannot drift
 *    in scheduling behaviour.
 */

#ifndef VGIW_DRIVER_SHARD_WIRE_HH
#define VGIW_DRIVER_SHARD_WIRE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_error.hh"
#include "driver/experiment_engine.hh"

namespace vgiw
{

/** Version byte of the TCP handshake. Bump on any frame-layout or
 * payload-codec change: a daemon and client that disagree refuse each
 * other at Hello time instead of misparsing frames. */
constexpr uint32_t kRemoteProtocolVersion = 1;

// ---------------------------------------------------------------------
// Payload codecs. Native layout: pipe peers are fork()s of one process;
// TCP peers are gated by the Hello version + sweep-hash handshake and
// the documented same-architecture fleet assumption.

/** FrameType::Result payload, decoded. */
struct ResultMsg
{
    uint64_t index = 0;
    bool ok = false, golden = false, ran = false, supported = false;
    bool quarantined = false, drained = false;
    SimErrorKind kind = SimErrorKind::None;
    uint32_t attempts = 1;
    uint64_t cycles = 0;
    double systemPj = 0.0;
    double l1MissRate = 0.0;
    std::string error;
    std::string jsonLine;
};

std::string encodeResultMsg(uint64_t index, const JobResult &r,
                            std::string_view jsonLine);
bool decodeResultMsg(const std::string &payload, ResultMsg *out);

/** FrameType::Stats payload: final per-worker cache/store counters. */
struct StatsMsg
{
    uint64_t functionalExecutions = 0;
    uint64_t compilations = 0;
    uint64_t storeHits = 0;
    uint64_t storeMisses = 0;
    uint64_t storeBytesMapped = 0;
};

std::string encodeStatsMsg(const StatsMsg &m);
bool decodeStatsMsg(const std::string &payload, StatsMsg *out);

/**
 * FrameType::Hello payload (client -> daemon): protocol version, the
 * sweep definition, and execution options. The daemon rebuilds the
 * suite job list from the carried config knobs and *recomputes* the
 * sweep hash; a mismatch (different binary, different registry,
 * a config knob the handshake does not carry) refuses the handshake —
 * the client quarantines the worker and, if every worker refuses,
 * finishes locally. Job frames then carry only a u64 index into the
 * agreed list.
 */
struct HelloMsg
{
    uint32_t version = kRemoteProtocolVersion;
    std::string sweepHash; ///< ExperimentEngine::sweepHash of the jobs
    std::string archsCsv;  ///< comma-joined archs, client order
    // The sweepable config surface (mirrors the vgiw_run flags).
    uint32_t lvcBytes = 64 * 1024;
    uint32_t cvtCapacityBits = 64 * 1024;
    bool enableReplication = true;
    bool enableMemoryCoalescing = false;
    uint64_t maxReplayCycles = 0;
    double deadlineMs = 0.0;
    // Execution options the daemon's workers must honour.
    uint32_t retryMaxAttempts = 1;
    bool collectMetrics = false;
    /** Informational capability string: the client's --artifact-dir
     * (empty when none). The daemon uses its *own* store; this is
     * logged so operators can see mismatched cache topology. */
    std::string artifactDir;
};

std::string encodeHelloMsg(const HelloMsg &m);
bool decodeHelloMsg(const std::string &payload, HelloMsg *out);

/** FrameType::HelloAck payload (daemon -> client). */
struct HelloAckMsg
{
    uint32_t version = kRemoteProtocolVersion;
    bool ok = false;
    uint32_t shards = 0;      ///< daemon's local worker count
    bool daemonHasStore = false;
    std::string reason;       ///< refusal diagnostic when !ok
};

std::string encodeHelloAckMsg(const HelloAckMsg &m);
bool decodeHelloAckMsg(const std::string &payload, HelloAckMsg *out);

/** FrameType::JobCrash payload (daemon -> client): a local worker of
 * the daemon died with this job in flight. The daemon does not retry —
 * retry/quarantine accounting is owned by the client coordinator, so
 * "reassigned exactly once" has a single bookkeeper. */
struct JobCrashMsg
{
    uint64_t index = 0;
    std::string why;
};

std::string encodeJobCrashMsg(const JobCrashMsg &m);
bool decodeJobCrashMsg(const std::string &payload, JobCrashMsg *out);

// ---------------------------------------------------------------------
// Test faults: VGIW_TEST_FAULT="<kind>:<n>[:<millis>]".

/**
 * Parsed VGIW_TEST_FAULT. Process kinds fire inside a worker when it
 * reaches global job index n; network kinds fire in the daemon when it
 * has sent n frames on the client socket (Skew fires at handshake
 * time). Sides ignore kinds they do not own, so one env var can drive
 * a worker fault and be inherited harmlessly by the daemon, and vice
 * versa.
 */
struct TestFault
{
    enum class Kind
    {
        None,
        // Process faults (worker-side).
        Segv,
        Kill,
        Abort,
        Stall,
        Mute,
        BadFrame,     ///< emit one corrupt-checksum frame before job n
        // Network faults (daemon-side).
        Drop,         ///< close the client socket after n frames sent
        CorruptFrame, ///< corrupt the checksum of the nth frame sent
        StallFrame,   ///< dribble the nth frame byte-wise over millis
        Skew,         ///< refuse the handshake with a version mismatch
    };
    Kind kind = Kind::None;
    uint64_t index = 0;
    int millis = 0;

    bool isNetwork() const
    {
        return kind == Kind::Drop || kind == Kind::CorruptFrame ||
               kind == Kind::StallFrame || kind == Kind::Skew;
    }
};

TestFault parseTestFault(const char *spec);

/** Arm a process-kind fault on @p injector (the engine's Replay point).
 * BadFrame and network kinds are not injector faults and are ignored
 * here — their owners act on them directly. */
void armTestFault(const TestFault &f, FaultInjector &injector);

/**
 * Test hook (worker-process side): suppress heartbeat frames so the
 * coordinator's heartbeat timeout path can be exercised without
 * wedging the worker for real.
 */
void muteWorkerHeartbeatsForTest(bool mute);

// ---------------------------------------------------------------------
// The shared worker body.

/** Options for one forked shard worker (subset of ShardOptions /
 * the daemon's handshake-derived settings). */
struct ShardWorkerOptions
{
    RetryPolicy retry{};
    bool collectMetrics = false;
    ArtifactStore *artifactStore = nullptr; ///< not owned
    uint64_t heartbeatIntervalMs = 250;
    /** Test hook: runs in the worker with the global job index just
     * before the job executes. */
    std::function<void(size_t index)> preJob;
};

/**
 * The forked worker's main loop: read Job frames carrying u64 indices
 * into @p jobs, run each through a worker-lifetime ExperimentEngine,
 * stream back Result frames rendered with ResultTable::renderRow (the
 * byte-identity contract), heartbeat from a side thread, send a final
 * Stats frame, honour Shutdown/EOF/drain. Returns the worker exit
 * code. Both the pipe supervisor and the daemon's local fleet use this
 * as the spawnChild body.
 */
int runShardWorker(int in_fd, int out_fd,
                   const std::vector<ExperimentJob> &jobs,
                   const ShardWorkerOptions &opts);

// ---------------------------------------------------------------------
// Scheduling structure shared by both coordinators.

/**
 * Round-robin per-worker job queues with work stealing: a worker that
 * drains its own queue steals from the *back* of the longest other
 * queue — the victim keeps its front (likely warm in its worker's
 * caches), the thief takes the tail.
 */
class JobQueues
{
  public:
    explicit JobQueues(size_t workers) : queues_(workers ? workers : 1) {}

    /** Deal @p jobs round-robin across the queues. */
    void
    deal(const std::vector<size_t> &jobs)
    {
        for (size_t k = 0; k < jobs.size(); ++k)
            queues_[k % queues_.size()].push_back(jobs[k]);
    }

    void pushBack(size_t q, size_t job) { queues_[q].push_back(job); }
    /** Requeue at the front: a re-dispatched job keeps priority. */
    void pushFront(size_t q, size_t job) { queues_[q].push_front(job); }

    bool
    anyWork() const
    {
        for (const auto &q : queues_)
            if (!q.empty())
                return true;
        return false;
    }

    /** Take the next job for worker @p q: own front, else steal from
     * the longest other queue's back (counting it in @p steals). */
    std::optional<size_t>
    take(size_t q, uint64_t *steals)
    {
        if (!queues_[q].empty()) {
            const size_t j = queues_[q].front();
            queues_[q].pop_front();
            return j;
        }
        size_t victim = queues_.size();
        for (size_t o = 0; o < queues_.size(); ++o) {
            if (o == q || queues_[o].empty())
                continue;
            if (victim == queues_.size() ||
                queues_[o].size() > queues_[victim].size())
                victim = o;
        }
        if (victim == queues_.size())
            return std::nullopt;
        const size_t j = queues_[victim].back();
        queues_[victim].pop_back();
        if (steals)
            ++*steals;
        return j;
    }

    /** Drain every queue, invoking @p fn on each queued job. */
    template <typename Fn>
    void
    drainAll(Fn &&fn)
    {
        for (auto &q : queues_) {
            for (size_t j : q)
                fn(j);
            q.clear();
        }
    }

    size_t workers() const { return queues_.size(); }

  private:
    std::vector<std::deque<size_t>> queues_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_SHARD_WIRE_HH
