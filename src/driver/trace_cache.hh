/**
 * @file
 * Shared trace cache for sweep harnesses.
 *
 * A design-space sweep replays the same workload under many core
 * configurations, but the functional execution (interpreter run plus
 * golden check) is configuration-independent — doing it once per config
 * point is pure waste. The cache memoises TraceResults keyed by
 * (workload name, launch geometry, launch parameters) so each workload
 * is functionally executed exactly once per sweep, no matter how many
 * config points or worker threads request it.
 *
 * Thread-safety: get() may be called concurrently. The first requester
 * of a key performs the functional execution outside the cache lock;
 * concurrent requesters of the same key block on a shared future until
 * the traces are ready. Replays of the returned TraceSet are const and
 * can proceed in parallel.
 *
 * Lifetime: each cache entry owns the WorkloadInstance its TraceSet
 * borrows the Kernel from, and the returned TraceResult's shared_ptr
 * keeps the whole entry alive — results stay valid even after clear()
 * or cache destruction.
 */

#ifndef VGIW_DRIVER_TRACE_CACHE_HH
#define VGIW_DRIVER_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "driver/runner.hh"
#include "workloads/workload.hh"

namespace vgiw
{

class ArtifactStore;

/** Memoising, thread-safe front-end to Runner::trace(). */
class TraceCache
{
  public:
    /**
     * Attach a persistent artifact store (nullptr detaches). With a
     * store attached, a cache miss first tries to mmap-load previously
     * published traces — keyed by the kernel's IR content hash plus the
     * launch fingerprint, so the key survives workload renames — and a
     * fresh functional execution publishes its traces on success. A
     * store hit does NOT count as a functional execution. Call before
     * the first get(); the pointer must outlive the cache.
     */
    void setStore(ArtifactStore *store) { store_ = store; }
    /**
     * Traces for the named workload; @p make is invoked to build the
     * instance (its launch geometry/parameters complete the cache key).
     * The functional execution runs at most once per key.
     *
     * When @p nameIsUnique is true the caller promises that, until the
     * next resetNameMemo()/clear(), @p name fully determines the
     * instance @p make builds; repeat gets for the name then skip
     * make() entirely. The engine can promise this per sweep (its
     * jobKey rule requires unique labels for custom makes within one
     * run) and resets the memo at the start of each run; ad-hoc
     * callers that reuse a name across launches must leave it false.
     */
    TraceResult get(const std::string &name,
                    const std::function<WorkloadInstance()> &make,
                    bool nameIsUnique = false);

    /** Convenience overload for registry entries. */
    TraceResult get(const WorkloadEntry &entry);

    /**
     * The cache key for a (workload, launch) pair — workload name plus
     * launch geometry and parameter bits. Public so other per-kernel
     * caches (the CompileCache) can key on the same kernel identity.
     */
    static std::string keyFor(const std::string &name,
                              const LaunchParams &launch);

    /** Number of functional executions performed (cache misses). */
    uint64_t functionalExecutions() const { return execs_.load(); }

    /** Number of distinct (workload, launch) keys seen. */
    size_t size() const;

    /** Drop all entries; outstanding TraceResults remain valid. */
    void clear();

    /**
     * Forget the name->key memo while keeping the traces. The
     * nameIsUnique promise only holds within one sweep (labels are
     * unique per run, not per cache lifetime), so the engine calls
     * this at the start of each run(); a re-used label then rebuilds
     * its instance and is matched to cached traces by the full
     * launch-derived key, never by the stale name alone.
     */
    void resetNameMemo();

  private:
    /** Owns everything a cached TraceResult points into. */
    struct Entry
    {
        WorkloadInstance workload;  ///< owns the Kernel the traces borrow
        TraceResult result;
    };

    TraceResult resultFor(const std::shared_ptr<const Entry> &entry) const;

    /**
     * Try to satisfy a miss from the artifact store. On success fills
     * @p entry->result with store-backed traces (goldenPassed restored
     * from the blob) and returns true; any load or decode failure —
     * absent, corrupt, truncated, stale version — returns false and
     * the caller falls through to the functional execution.
     */
    bool tryLoadFromStore(Entry &entry, uint64_t contentHash,
                          const std::string &storeKey) const;

    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<std::shared_ptr<const Entry>>>
        entries_;
    /**
     * Memo from workload name to full cache key, so nameIsUnique gets
     * skip make() (building a WorkloadInstance lays out a whole
     * MemoryImage — by far the dominant per-job cost once traces are
     * cached). Only populated and consulted for nameIsUnique calls.
     */
    std::map<std::string, std::string> nameToKey_;
    std::atomic<uint64_t> execs_{0};
    ArtifactStore *store_ = nullptr;
};

} // namespace vgiw

#endif // VGIW_DRIVER_TRACE_CACHE_HH
