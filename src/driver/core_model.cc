#include "driver/core_model.hh"

#include "driver/system_config.hh"

namespace vgiw
{

const std::vector<std::string> &
knownArchitectures()
{
    static const std::vector<std::string> archs = {"vgiw", "fermi",
                                                   "sgmf", "dice"};
    return archs;
}

bool
isKnownArchitecture(std::string_view arch)
{
    for (const auto &a : knownArchitectures())
        if (a == arch)
            return true;
    return false;
}

std::unique_ptr<CoreModel>
makeCoreModel(std::string_view arch, const SystemConfig &cfg)
{
    if (arch == "vgiw")
        return std::make_unique<VgiwCore>(cfg.vgiw);
    if (arch == "fermi")
        return std::make_unique<FermiCore>(cfg.fermi);
    if (arch == "sgmf")
        return std::make_unique<SgmfCore>(cfg.sgmf);
    if (arch == "dice")
        return std::make_unique<DiceCore>(cfg.dice);
    return nullptr;
}

std::vector<std::unique_ptr<CoreModel>>
makeCoreModels(const SystemConfig &cfg, std::string_view archSelector)
{
    std::vector<std::unique_ptr<CoreModel>> out;
    if (archSelector == "all") {
        for (const auto &a : knownArchitectures())
            out.push_back(makeCoreModel(a, cfg));
    } else if (auto m = makeCoreModel(archSelector, cfg)) {
        out.push_back(std::move(m));
    }
    return out;
}

} // namespace vgiw
