/**
 * @file
 * The common result record every core model produces. The bench harnesses
 * compare RunStats across architectures to regenerate the paper's tables
 * and figures.
 */

#ifndef VGIW_DRIVER_RUN_STATS_HH
#define VGIW_DRIVER_RUN_STATS_HH

#include <cstdint>
#include <string>

#include "common/stat_set.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "power/energy_model.hh"

namespace vgiw
{

/** Result of running one kernel launch on one core model. */
struct RunStats
{
    std::string arch;        ///< "vgiw", "fermi", "sgmf" or "dice"
    std::string kernelName;
    /** SGMF cannot map kernels larger than its fabric. */
    bool supported = true;

    uint64_t cycles = 0;
    uint64_t configCycles = 0;  ///< included in cycles (VGIW/SGMF)
    uint64_t reconfigs = 0;

    uint64_t dynBlockExecs = 0;  ///< thread-level block executions
    uint64_t dynThreadOps = 0;   ///< per-thread dynamic operations
    uint64_t dynWarpInstrs = 0;  ///< warp-level instructions (Fermi)

    /** Register-file accesses, one per warp operand (Fermi, Fig. 3). */
    uint64_t rfAccesses = 0;
    /** LVC word accesses (VGIW, Fig. 3). */
    uint64_t lvcAccesses = 0;

    EnergyAccount energy;
    CacheStats l1Stats;
    CacheStats l2Stats;
    CacheStats lvcStats;
    DramStats dramStats;

    /** Free-form per-architecture extras (utilisation, replicas, ...). */
    StatSet extra;

    double
    configOverheadFraction() const
    {
        return cycles ? double(configCycles) / double(cycles) : 0.0;
    }
};

} // namespace vgiw

#endif // VGIW_DRIVER_RUN_STATS_HH
