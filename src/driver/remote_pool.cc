#include "driver/remote_pool.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/backoff.hh"
#include "common/metrics.hh"
#include "common/subprocess.hh"
#include "driver/artifact_store.hh"
#include "driver/core_model.hh"

namespace vgiw
{

namespace
{

using Clock = std::chrono::steady_clock;

uint64_t
envMsOverride(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    return (end && *end == '\0') ? n : fallback;
}

int64_t
msSince(Clock::time_point t, Clock::time_point now)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - t)
        .count();
}

/** See src/driver/worker_pool.cc — same rationale, same cap. */
constexpr unsigned kMaxConsecutiveCorrupt = 3;

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= csv.size()) {
        const size_t comma = csv.find(',', start);
        const size_t end = comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// SweepService (daemon side).

SweepService::SweepService(SweepServiceOptions opts)
    : opts_(std::move(opts))
{
    // The daemon arms only the network kinds; process kinds in the
    // same env var are inherited by the forked workers, which arm them
    // themselves — one variable can drive both layers.
    const TestFault f = parseTestFault(std::getenv("VGIW_TEST_FAULT"));
    if (f.isNetwork())
        fault_ = f;
}

bool
SweepService::sendToClient(int fd, FrameType type,
                           std::string_view payload)
{
    const uint64_t frameNo = ++framesSent_;
    if (fault_.kind == TestFault::Kind::Drop && !dropFired_ &&
        frameNo > fault_.index) {
        // Simulated link cut: stop sending and let the caller observe
        // a dead client socket. Fires once per process so the client's
        // reconnect finds a healthy daemon.
        dropFired_ = true;
        ::shutdown(fd, SHUT_RDWR);
        return false;
    }
    if (fault_.kind == TestFault::Kind::CorruptFrame && !corruptFired_ &&
        frameNo == fault_.index) {
        corruptFired_ = true;
        return writeCorruptFrameForTest(fd, type, payload);
    }
    if (fault_.kind == TestFault::Kind::StallFrame && !stallFired_ &&
        frameNo == fault_.index) {
        stallFired_ = true;
        return writeFrameStalledForTest(
            fd, type, payload, fault_.millis ? fault_.millis : 30000);
    }
    return writeFrame(fd, type, payload);
}

void
SweepService::serveConnection(int fd)
{
    ignoreSigpipe();
    // Handshake under a timeout: a connection that never speaks must
    // not wedge the (single-connection) daemon. The recv timeout stays
    // on for the sweep — reads are poll-gated, so it only fires on a
    // client stalled mid-frame, which is a dead link.
    setSocketTimeouts(fd, 10000, 10000);

    Frame f;
    if (readFrame(fd, &f) != ReadStatus::Ok ||
        f.type != FrameType::Hello) {
        if (opts_.verbose)
            std::fprintf(stderr, "sweepd: connection sent no Hello\n");
        closeFd(fd);
        return;
    }

    HelloMsg hello;
    HelloAckMsg ack;
    ack.version = fault_.kind == TestFault::Kind::Skew
                      ? opts_.advertiseVersion + 1
                      : opts_.advertiseVersion;
    ack.shards = std::max(opts_.shards, 1u);
    ack.daemonHasStore = opts_.artifactStore != nullptr;

    std::vector<ExperimentJob> jobs;
    if (!decodeHelloMsg(f.payload, &hello)) {
        ack.reason = "malformed Hello payload";
    } else if (hello.version != ack.version) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "protocol version skew (daemon %u, client %u)",
                      unsigned(ack.version), unsigned(hello.version));
        ack.reason = buf;
    } else {
        // Rebuild the sweep from the carried config knobs and
        // recompute its hash: any divergence — different binary,
        // different workload registry, a knob the handshake does not
        // carry — refuses cleanly here instead of misinterpreting job
        // indices later.
        if (!opts_.jobsOverride.empty()) {
            jobs = opts_.jobsOverride;
        } else {
            const auto archs = splitCsv(hello.archsCsv);
            std::string bad;
            for (const auto &a : archs) {
                if (!isKnownArchitecture(a)) {
                    bad = "unknown architecture '" + a + "'";
                    break;
                }
            }
            if (archs.empty())
                bad = "empty architecture list";
            if (!bad.empty()) {
                ack.reason = bad;
            } else {
                VgiwConfig vcfg;
                vcfg.lvcBytes = hello.lvcBytes;
                vcfg.cvtCapacityBits = hello.cvtCapacityBits;
                vcfg.enableReplication = hello.enableReplication;
                vcfg.enableMemoryCoalescing =
                    hello.enableMemoryCoalescing;
                WatchdogConfig wd;
                wd.maxReplayCycles = hello.maxReplayCycles;
                wd.deadlineMs = hello.deadlineMs;
                SystemConfig cfg;
                cfg.vgiw = vcfg;
                cfg.setWatchdog(wd);
                if (std::string msg = cfg.validate(archs.front());
                    !msg.empty()) {
                    ack.reason = "invalid configuration: " + msg;
                } else {
                    jobs = ExperimentEngine::suiteJobs(cfg, archs);
                }
            }
        }
        if (ack.reason.empty() && !jobs.empty()) {
            const std::string hash = ExperimentEngine::sweepHash(jobs);
            if (hash != hello.sweepHash) {
                ack.reason = "sweep hash mismatch (daemon " + hash +
                             ", client " + hello.sweepHash +
                             "): differing binaries or registries";
            }
        }
        ack.ok = ack.reason.empty() && !jobs.empty();
        if (!ack.ok && ack.reason.empty())
            ack.reason = "empty sweep";
    }

    if (opts_.verbose && !ack.ok)
        std::fprintf(stderr, "sweepd: handshake refused: %s\n",
                     ack.reason.c_str());
    if (!sendToClient(fd, FrameType::HelloAck, encodeHelloAckMsg(ack)) ||
        !ack.ok) {
        closeFd(fd);
        return;
    }
    if (opts_.verbose) {
        std::fprintf(stderr,
                     "sweepd: sweep accepted (%zu jobs, %u shards)\n",
                     jobs.size(), ack.shards);
    }

    // -----------------------------------------------------------------
    // The local fleet: the same forked runShardWorker body the pipe
    // supervisor uses, driven by Job frames relayed off the socket.
    struct WSlot
    {
        size_t id = 0;
        ChildProcess cp{};
        bool alive = false;
        bool busy = false;
        uint64_t job = 0;
        Clock::time_point backoffUntil{};
        unsigned consecutiveCrashes = 0;
        BackoffSchedule backoff{};
    };
    std::vector<WSlot> slots(ack.shards);
    for (size_t s = 0; s < slots.size(); ++s) {
        slots[s].id = s;
        slots[s].backoff.baseMs = 100;
        slots[s].backoff.capMs = 2000;
        slots[s].backoff.seed = (uint64_t(::getpid()) << 32) ^ (s + 1);
    }

    ShardWorkerOptions wopts;
    wopts.retry.maxAttempts = std::max(hello.retryMaxAttempts, 1u);
    wopts.collectMetrics = hello.collectMetrics;
    wopts.artifactStore = opts_.artifactStore;
    wopts.heartbeatIntervalMs = opts_.heartbeatIntervalMs;

    auto spawnW = [&](WSlot &s) {
        std::vector<int> other_fds;
        for (const WSlot &o : slots) {
            if (&o == &s || !o.alive)
                continue;
            other_fds.push_back(o.cp.toChild);
            other_fds.push_back(o.cp.fromChild);
        }
        other_fds.push_back(fd);  // the client socket stays ours
        std::string err;
        const bool ok = spawnChild(
            [&jobs, other_fds, wopts](int in_fd, int out_fd) {
                for (int ofd : other_fds)
                    ::close(ofd);
                return runShardWorker(in_fd, out_fd, jobs, wopts);
            },
            &s.cp, &err);
        if (!ok) {
            if (opts_.verbose)
                std::fprintf(stderr, "sweepd: worker %zu: %s\n", s.id,
                             err.c_str());
            s.backoffUntil = Clock::now() +
                             std::chrono::milliseconds(1000);
            return false;
        }
        s.alive = true;
        s.busy = false;
        return true;
    };
    for (WSlot &s : slots)
        spawnW(s);

    StatsMsg statsAccum;
    std::deque<uint64_t> backlog;  // Job indices awaiting an idle worker
    uint64_t jobsReceived = 0;     // Job frames accepted this connection
    bool clientGone = false;
    bool orderly = false;
    unsigned clientCorrupt = 0;
    auto nextBeat = Clock::now();

    auto killSlot = [&](WSlot &s) {
        if (!s.alive)
            return;
        if (s.cp.toChild >= 0)
            ::close(s.cp.toChild);
        if (s.cp.fromChild >= 0)
            ::close(s.cp.fromChild);
        s.cp.toChild = s.cp.fromChild = -1;
        killChild(s.cp.pid, SIGKILL);
        waitChild(s.cp.pid);
        s.alive = false;
    };

    while (!clientGone && !orderly) {
        // Dispatch relayed jobs onto idle workers.
        for (WSlot &s : slots) {
            if (backlog.empty())
                break;
            if (!s.alive || s.busy)
                continue;
            const uint64_t index = backlog.front();
            std::string payload;
            ByteWriter w(payload);
            w.u64(index);
            if (!writeFrame(s.cp.toChild, FrameType::Job, payload))
                continue;  // dying worker; the reap below handles it
            backlog.pop_front();
            s.busy = true;
            s.job = index;
        }
        // Respawn dead workers (they are needed even while idle: the
        // client sizes its in-flight window to ack.shards).
        const auto now = Clock::now();
        for (WSlot &s : slots) {
            if (!s.alive && now >= s.backoffUntil)
                spawnW(s);
        }

        std::vector<struct pollfd> fds;
        std::vector<int> owner;  // -1 = client, else slot id
        fds.push_back({fd, POLLIN, 0});
        owner.push_back(-1);
        for (size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].alive && slots[s].cp.fromChild >= 0) {
                fds.push_back({slots[s].cp.fromChild, POLLIN, 0});
                owner.push_back(int(s));
            }
        }
        const int n = ::poll(fds.data(), nfds_t(fds.size()), 50);
        if (n > 0) {
            for (size_t k = 0; k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                if (owner[k] == -1) {
                    // Client traffic.
                    Frame frame;
                    const ReadStatus st = readFrame(fd, &frame);
                    if (st == ReadStatus::Ok) {
                        clientCorrupt = 0;
                        if (frame.type == FrameType::Shutdown) {
                            orderly = true;
                        } else if (frame.type == FrameType::Job) {
                            ByteReader rd(frame.payload.data(),
                                          frame.payload.size());
                            const uint64_t index = rd.u64();
                            if (!rd.done() || index >= jobs.size()) {
                                clientGone = true;  // protocol breach
                            } else {
                                ++jobsReceived;
                                backlog.push_back(index);
                            }
                        }
                    } else if (st == ReadStatus::Interrupted) {
                        // re-poll
                    } else if (st == ReadStatus::CorruptRecord) {
                        if (++clientCorrupt >= kMaxConsecutiveCorrupt)
                            clientGone = true;
                    } else {
                        clientGone = true;
                    }
                } else {
                    WSlot &s = slots[size_t(owner[k])];
                    if (!s.alive)
                        continue;
                    Frame frame;
                    const ReadStatus st =
                        readFrame(s.cp.fromChild, &frame);
                    if (st == ReadStatus::Ok) {
                        switch (frame.type) {
                          case FrameType::Result:
                            s.busy = false;
                            s.consecutiveCrashes = 0;
                            // Verbatim relay: the worker-rendered
                            // bytes pass through untouched — the
                            // client's byte-identity rides on this.
                            if (!sendToClient(fd, FrameType::Result,
                                              frame.payload))
                                clientGone = true;
                            break;
                          case FrameType::Stats: {
                            StatsMsg m;
                            if (decodeStatsMsg(frame.payload, &m)) {
                                statsAccum.functionalExecutions +=
                                    m.functionalExecutions;
                                statsAccum.compilations +=
                                    m.compilations;
                                statsAccum.storeHits += m.storeHits;
                                statsAccum.storeMisses += m.storeMisses;
                                statsAccum.storeBytesMapped +=
                                    m.storeBytesMapped;
                            }
                            break;
                          }
                          case FrameType::Heartbeat:
                          default:
                            break;  // worker liveness is waitpid's job
                        }
                    } else if (st == ReadStatus::CorruptRecord) {
                        // Skip the record; a worker spewing garbage
                        // dies by the reap below soon enough.
                    } else if (st != ReadStatus::Interrupted) {
                        // Pipe broken: reap handles the death.
                    }
                }
            }
        }

        // Reap dead workers; a busy one's job becomes a JobCrash frame
        // — the client owns all retry/quarantine accounting.
        for (WSlot &s : slots) {
            if (!s.alive)
                continue;
            const ChildStatus st = pollChild(s.cp.pid);
            if (st.state != ChildState::Exited &&
                st.state != ChildState::Signaled &&
                st.state != ChildState::Lost)
                continue;
            if (s.cp.toChild >= 0)
                ::close(s.cp.toChild);
            if (s.cp.fromChild >= 0)
                ::close(s.cp.fromChild);
            s.cp.toChild = s.cp.fromChild = -1;
            s.alive = false;
            ++s.consecutiveCrashes;
            s.backoffUntil =
                Clock::now() +
                std::chrono::milliseconds(
                    s.backoff.delayMs(s.consecutiveCrashes));
            if (s.busy) {
                s.busy = false;
                JobCrashMsg m;
                m.index = s.job;
                m.why = describeChildStatus(st);
                if (opts_.verbose) {
                    std::fprintf(
                        stderr,
                        "sweepd: worker %zu lost job %llu: %s\n", s.id,
                        (unsigned long long)m.index, m.why.c_str());
                }
                if (!sendToClient(fd, FrameType::JobCrash,
                                  encodeJobCrashMsg(m)))
                    clientGone = true;
            }
        }

        // Heartbeat: busy count plus the cumulative Job frames this
        // connection has accepted. The received-count gives the client
        // causality — an idle beat only proves a Result was lost if
        // the daemon had already seen everything the client sent, so
        // beats that merely predate a dispatch can never false-alarm.
        if (Clock::now() >= nextBeat) {
            size_t busy = backlog.size();
            for (const WSlot &s : slots)
                busy += s.alive && s.busy;
            std::string payload;
            ByteWriter w(payload);
            w.u8(uint8_t(std::min<size_t>(busy, 255)));
            w.u64(jobsReceived);
            if (!sendToClient(fd, FrameType::Heartbeat, payload))
                clientGone = true;
            nextBeat = Clock::now() + std::chrono::milliseconds(int64_t(
                                          opts_.heartbeatIntervalMs));
        }
    }

    if (orderly) {
        // Drain the fleet exactly like the pipe supervisor: Shutdown
        // frames, collect final Stats, reap — escalate only if a
        // worker ignores both the frame and the pipe EOF.
        for (WSlot &s : slots) {
            if (!s.alive)
                continue;
            writeFrame(s.cp.toChild, FrameType::Shutdown, {});
            ::close(s.cp.toChild);
            s.cp.toChild = -1;
        }
        for (WSlot &s : slots) {
            if (!s.alive || s.cp.fromChild < 0)
                continue;
            const auto deadline =
                Clock::now() + std::chrono::milliseconds(3000);
            for (;;) {
                struct pollfd pfd = {s.cp.fromChild, POLLIN, 0};
                const int n = ::poll(&pfd, 1, 100);
                if (n > 0 && (pfd.revents & POLLIN)) {
                    Frame frame;
                    const ReadStatus st =
                        readFrame(s.cp.fromChild, &frame);
                    if (st == ReadStatus::CorruptRecord)
                        continue;
                    if (st != ReadStatus::Ok)
                        break;
                    if (frame.type == FrameType::Stats) {
                        StatsMsg m;
                        if (decodeStatsMsg(frame.payload, &m)) {
                            statsAccum.functionalExecutions +=
                                m.functionalExecutions;
                            statsAccum.compilations += m.compilations;
                            statsAccum.storeHits += m.storeHits;
                            statsAccum.storeMisses += m.storeMisses;
                            statsAccum.storeBytesMapped +=
                                m.storeBytesMapped;
                        }
                        break;
                    }
                    continue;
                }
                if (n > 0 && (pfd.revents & (POLLHUP | POLLERR)))
                    break;
                if (Clock::now() >= deadline)
                    break;
            }
        }
        for (WSlot &s : slots) {
            if (!s.alive)
                continue;
            if (s.cp.fromChild >= 0)
                ::close(s.cp.fromChild);
            s.cp.fromChild = -1;
            const auto deadline =
                Clock::now() + std::chrono::milliseconds(2000);
            ChildStatus st = pollChild(s.cp.pid);
            while (st.state == ChildState::Running &&
                   Clock::now() < deadline) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                st = pollChild(s.cp.pid);
            }
            if (st.state == ChildState::Running) {
                killChild(s.cp.pid, SIGKILL);
                waitChild(s.cp.pid);
            }
            s.alive = false;
        }
        sendToClient(fd, FrameType::Stats, encodeStatsMsg(statsAccum));
        if (opts_.verbose)
            std::fprintf(stderr, "sweepd: sweep complete\n");
    } else {
        // The client vanished mid-sweep: its coordinator will re-run
        // anything unreported, so in-flight work here is worthless.
        // SIGKILL the fleet — a vanished client must never leak
        // workers.
        for (WSlot &s : slots)
            killSlot(s);
        if (opts_.verbose)
            std::fprintf(stderr, "sweepd: client disconnected; "
                                 "fleet torn down\n");
    }
    closeFd(fd);
}

int
SweepService::serve(int listenFd, bool once, const std::atomic<bool> *stop)
{
    for (;;) {
        if (stop && stop->load(std::memory_order_acquire))
            return 0;
        const int fd = acceptTcp(listenFd, /*interruptible=*/true);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;  // drain flag is re-checked above
            }
            return 0;  // listen socket closed out from under us
        }
        serveConnection(fd);
        if (once)
            return 0;
    }
}

// ---------------------------------------------------------------------
// RemotePool (client side).

RemotePool::RemotePool(RemoteOptions opts) : opts_(std::move(opts))
{
    opts_.heartbeatTimeoutMs = envMsOverride(
        "VGIW_REMOTE_HEARTBEAT_TIMEOUT_MS", opts_.heartbeatTimeoutMs);
    opts_.connectTimeoutMs = envMsOverride("VGIW_REMOTE_CONNECT_TIMEOUT_MS",
                                           opts_.connectTimeoutMs);
    opts_.reconnectBackoffMs =
        envMsOverride("VGIW_REMOTE_BACKOFF_MS", opts_.reconnectBackoffMs);
    opts_.reconnectBackoffCapMs = envMsOverride(
        "VGIW_REMOTE_BACKOFF_CAP_MS", opts_.reconnectBackoffCapMs);
    opts_.failureBudget = unsigned(envMsOverride(
        "VGIW_REMOTE_FAILURE_BUDGET", opts_.failureBudget));
    if (opts_.heartbeatTimeoutMs == 0)
        opts_.heartbeatTimeoutMs = 10000;
    if (opts_.connectTimeoutMs == 0)
        opts_.connectTimeoutMs = 5000;
    if (opts_.failureBudget == 0)
        opts_.failureBudget = 1;
    if (opts_.reconnectBackoffCapMs < opts_.reconnectBackoffMs)
        opts_.reconnectBackoffCapMs = opts_.reconnectBackoffMs;
}

std::vector<ShardRow>
RemotePool::run(const std::vector<ExperimentJob> &jobs)
{
    std::vector<ShardRow> rows(jobs.size());
    table_.reset(jobs.size());
    stats_ = SupervisorStats{};
    degraded_ = false;
    for (size_t i = 0; i < jobs.size(); ++i) {
        rows[i].workload = jobs[i].workload;
        rows[i].arch = jobs[i].arch;
        rows[i].configLabel = jobs[i].configLabel;
    }
    if (jobs.empty())
        return rows;

    ignoreSigpipe();

    std::vector<std::string> keys(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        keys[i] = ExperimentEngine::jobKey(jobs[i]);
    const std::string sweepHash = ExperimentEngine::sweepHash(jobs);

    size_t done = 0;
    auto report = [&](size_t i) {
        const ShardRow &row = rows[i];
        try {
            if (opts_.onResult)
                opts_.onResult(i, row);
        } catch (...) {
        }
        if (!row.ok && !row.drained && opts_.onFailure) {
            try {
                opts_.onFailure(row);
            } catch (...) {
            }
        }
    };

    // Journal restore: identical semantics to the pipe supervisor.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalEntry *e = nullptr;
        if (opts_.journal) {
            auto it = opts_.journal->entries().find(keys[i]);
            if (it != opts_.journal->entries().end())
                e = &it->second;
        }
        if (!e) {
            pending.push_back(i);
            continue;
        }
        ShardRow &row = rows[i];
        row.restored = true;
        row.ok = e->ok;
        row.golden = e->golden;
        row.quarantined = e->quarantined;
        row.ran = e->ok;
        row.jsonLine = e->jsonLine;
        if (!e->ok) {
            row.error = "failed in the journaled run (restored "
                        "verbatim; see the journal entry)";
        }
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = e->jsonLine;
        jr.goldenPassed = e->golden;
        jr.quarantined = e->quarantined;
        if (e->ok)
            jr.ran = true;
        else
            jr.error = row.error;
        table_.fill(i, jr);
        ++done;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].restored)
            report(i);
    }
    if (pending.empty())
        return rows;

    struct Conn
    {
        size_t id = 0;
        HostPort hp;
        int fd = -1;
        bool quarantined = false;
        bool everConnected = false;
        uint32_t capacity = 1;  ///< daemon's shard count, from HelloAck
        std::map<size_t, Clock::time_point> inflight;
        Clock::time_point lastBeat{};
        Clock::time_point backoffUntil{};
        unsigned consecutiveFailures = 0;
        unsigned consecutiveCorrupt = 0;
        unsigned idleBeats = 0;  ///< daemon-idle beats with jobs in flight
        uint64_t jobsSent = 0;   ///< Job frames written this connection
        BackoffSchedule backoff{};
    };
    std::vector<Conn> conns(std::max<size_t>(opts_.workers.size(), 1));
    for (size_t c = 0; c < conns.size(); ++c) {
        conns[c].id = c;
        if (c < opts_.workers.size())
            conns[c].hp = opts_.workers[c];
        else
            conns[c].quarantined = true;  // no endpoint: never usable
        conns[c].backoff.baseMs = opts_.reconnectBackoffMs;
        conns[c].backoff.capMs = opts_.reconnectBackoffCapMs;
        conns[c].backoff.seed = (uint64_t(::getpid()) << 32) ^ (c + 1);
    }

    JobQueues queues(conns.size());
    queues.deal(pending);

    std::vector<unsigned> dispatches(jobs.size(), 0);
    const unsigned crash_budget =
        opts_.crashAttempts
            ? opts_.crashAttempts
            : 1 + std::max(opts_.retry.maxAttempts, 2u) - 1;

    bool draining = false;

    auto finalizeDrained = [&](size_t i) {
        rows[i].drained = true;
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.drained = true;
        table_.fill(i, jr);
        ++done;
    };

    // Terminal failure row for a job that exhausted its dispatch
    // budget, with the kind telling worker_crash from link_lost apart.
    auto finalizeFailed = [&](size_t i, SimErrorKind kind,
                              const std::string &why) {
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.error = why;
        jr.errorKind = kind;
        jr.attempts = std::max(dispatches[i], 1u);
        jr.quarantined = true;
        table_.fill(i, jr);
        ShardRow &row = rows[i];
        row.ok = false;
        row.golden = false;
        row.ran = false;
        row.quarantined = true;
        row.errorKind = kind;
        row.attempts = jr.attempts;
        row.error = why;
        row.jsonLine = std::string(table_.renderRow(i));
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = false;
            entry.golden = false;
            entry.quarantined = true;
            entry.jsonLine = row.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    auto finalizeResult = [&](const ResultMsg &m) {
        const size_t i = size_t(m.index);
        ShardRow &row = rows[i];
        row.ok = m.ok;
        row.golden = m.golden;
        row.ran = m.ran;
        row.supported = m.supported;
        row.quarantined = m.quarantined;
        row.errorKind = m.kind;
        row.attempts = m.attempts;
        row.error = m.error;
        row.cycles = m.cycles;
        row.energySystemPj = m.systemPj;
        row.l1MissRate = m.l1MissRate;
        row.jsonLine = m.jsonLine;
        // Verbatim re-emission of the worker-rendered bytes (which the
        // daemon relayed untouched): byte-identity by construction.
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = m.jsonLine;
        jr.goldenPassed = m.golden;
        jr.quarantined = m.quarantined;
        if (m.ok)
            jr.ran = true;
        else
            jr.error = m.error;
        table_.fill(i, jr);
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = m.ok;
            entry.golden = m.golden;
            entry.quarantined = m.quarantined;
            entry.jsonLine = m.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    /** The link to @p c died (refused, reset, stalled, desynchronised):
     * count it, reassign its in-flight jobs, back off or quarantine. */
    auto connFailure = [&](Conn &c, const std::string &why) {
        ++stats_.linkLosses;
        if (c.fd >= 0) {
            closeFd(c.fd);
            c.fd = -1;
        }
        std::fprintf(stderr, "remote worker %zu (%s:%u) link lost: %s\n",
                     c.id, c.hp.host.c_str(), unsigned(c.hp.port),
                     why.c_str());
        for (const auto &[i, t] : c.inflight) {
            (void)t;
            if (dispatches[i] >= crash_budget) {
                finalizeFailed(i, SimErrorKind::LinkLost,
                               "link lost: " + why);
            } else if (draining) {
                finalizeDrained(i);
            } else {
                queues.pushFront(c.id, i);
            }
        }
        c.inflight.clear();
        c.idleBeats = 0;
        c.consecutiveCorrupt = 0;
        ++c.consecutiveFailures;
        if (c.consecutiveFailures >= opts_.failureBudget) {
            c.quarantined = true;
            std::fprintf(stderr,
                         "remote worker %zu (%s:%u) quarantined after "
                         "%u consecutive failures\n",
                         c.id, c.hp.host.c_str(), unsigned(c.hp.port),
                         c.consecutiveFailures);
        } else {
            c.backoffUntil =
                Clock::now() +
                std::chrono::milliseconds(
                    c.backoff.delayMs(c.consecutiveFailures));
        }
    };

    auto tryConnect = [&](Conn &c) {
        std::string err;
        const int fd = connectTcp(c.hp.host, c.hp.port,
                                  opts_.connectTimeoutMs, &err);
        if (fd < 0) {
            connFailure(c, err);
            return;
        }
        setSocketTimeouts(fd, opts_.connectTimeoutMs,
                          opts_.connectTimeoutMs);
        HelloMsg hello = opts_.hello;
        hello.version = kRemoteProtocolVersion;
        hello.sweepHash = sweepHash;
        hello.retryMaxAttempts = opts_.retry.maxAttempts;
        hello.collectMetrics = opts_.collectMetrics;
        Frame f;
        if (!writeFrame(fd, FrameType::Hello, encodeHelloMsg(hello))) {
            closeFd(fd);
            connFailure(c, "handshake write failed");
            return;
        }
        const ReadStatus st = readFrame(fd, &f);
        if (st != ReadStatus::Ok || f.type != FrameType::HelloAck) {
            closeFd(fd);
            connFailure(c, st == ReadStatus::Timeout
                               ? "handshake timed out"
                               : "handshake read failed");
            return;
        }
        HelloAckMsg ack;
        if (!decodeHelloAckMsg(f.payload, &ack)) {
            closeFd(fd);
            connFailure(c, "malformed HelloAck");
            return;
        }
        if (!ack.ok || ack.version != kRemoteProtocolVersion) {
            closeFd(fd);
            connFailure(c, ack.reason.empty()
                               ? "handshake refused"
                               : "handshake refused: " + ack.reason);
            return;
        }
        setSocketTimeouts(fd, opts_.heartbeatTimeoutMs,
                          opts_.heartbeatTimeoutMs);
        c.fd = fd;
        c.capacity = std::max(ack.shards, 1u);
        c.lastBeat = Clock::now();
        c.consecutiveFailures = 0;
        c.consecutiveCorrupt = 0;
        c.idleBeats = 0;
        c.jobsSent = 0;
        if (c.everConnected)
            ++stats_.reconnects;
        c.everConnected = true;
        std::fprintf(stderr,
                     "remote worker %zu (%s:%u) connected (%u shards)\n",
                     c.id, c.hp.host.c_str(), unsigned(c.hp.port),
                     c.capacity);
    };

    auto handleFrame = [&](Conn &c, const Frame &frame) {
        switch (frame.type) {
          case FrameType::Heartbeat: {
            c.lastBeat = Clock::now();
            ByteReader rd(frame.payload.data(), frame.payload.size());
            const uint8_t busy = rd.u8();
            const uint64_t received = rd.u64();
            // An idle beat is only evidence of a lost Result when the
            // daemon had already accepted every Job frame we wrote on
            // this connection: it then sent a Result per job *before*
            // this beat, so any job still in our inflight map had its
            // Result vanish (e.g. skipped as a corrupt record). Beats
            // with received < jobsSent merely predate a dispatch (they
            // queue up while we block in a connect elsewhere) and
            // prove nothing. Two consecutive beats, for paranoia.
            if (rd.done() && busy == 0 && !c.inflight.empty() &&
                received == c.jobsSent) {
                if (++c.idleBeats >= 2) {
                    connFailure(c, "daemon idle with jobs believed "
                                   "in flight (results lost)");
                }
            } else {
                c.idleBeats = 0;
            }
            break;
          }
          case FrameType::Result: {
            ResultMsg m;
            if (!decodeResultMsg(frame.payload, &m) ||
                m.index >= jobs.size())
                break;  // defensive: checksum passed, layout did not
            auto it = c.inflight.find(size_t(m.index));
            if (it == c.inflight.end())
                break;  // stale/duplicate: drop
            c.inflight.erase(it);
            c.idleBeats = 0;
            c.lastBeat = Clock::now();
            finalizeResult(m);
            break;
          }
          case FrameType::JobCrash: {
            JobCrashMsg m;
            if (!decodeJobCrashMsg(frame.payload, &m))
                break;
            auto it = c.inflight.find(size_t(m.index));
            if (it == c.inflight.end())
                break;
            c.inflight.erase(it);
            c.lastBeat = Clock::now();
            ++stats_.crashes;
            const size_t i = size_t(m.index);
            std::fprintf(stderr,
                         "remote worker %zu (%s:%u) lost job %s [%s]: "
                         "%s (attempt %u/%u)\n",
                         c.id, c.hp.host.c_str(), unsigned(c.hp.port),
                         jobs[i].workload.c_str(), jobs[i].arch.c_str(),
                         m.why.c_str(), dispatches[i], crash_budget);
            if (dispatches[i] >= crash_budget) {
                finalizeFailed(i, SimErrorKind::WorkerCrash,
                               "worker crashed: " + m.why);
            } else if (draining) {
                finalizeDrained(i);
            } else {
                queues.pushFront(c.id, i);
            }
            break;
          }
          case FrameType::Stats: {
            StatsMsg m;
            if (!decodeStatsMsg(frame.payload, &m))
                break;
            stats_.functionalExecutions += m.functionalExecutions;
            stats_.compilations += m.compilations;
            stats_.storeHits += m.storeHits;
            stats_.storeMisses += m.storeMisses;
            stats_.storeBytesMapped += m.storeBytesMapped;
            break;
          }
          default:
            break;
        }
    };

    while (done < jobs.size()) {
        const auto now = Clock::now();

        if (!draining && opts_.stop &&
            opts_.stop->load(std::memory_order_acquire)) {
            draining = true;
        }
        if (draining) {
            // Queued jobs drain immediately; in-flight jobs are given
            // the chance to finish (their daemons keep running them).
            queues.drainAll(finalizeDrained);
            bool any_inflight = false;
            for (const Conn &c : conns)
                any_inflight |= !c.inflight.empty();
            if (!any_inflight)
                break;
        }

        // Quarantine sweep: when the whole fleet is out, finish the
        // rest in-process — a degraded sweep beats a dead one. vgiw_run
        // reports this as exit code 5.
        bool all_quarantined = true;
        for (const Conn &c : conns)
            all_quarantined &= c.quarantined;
        if (all_quarantined && done < jobs.size()) {
            std::vector<size_t> rem;
            queues.drainAll([&](size_t j) { rem.push_back(j); });
            std::sort(rem.begin(), rem.end());
            if (draining || rem.empty()) {
                // Draining (don't start local work the user just asked
                // to stop), or an accounting hole: either way every row
                // must end terminal — mark the leftovers drained
                // rather than spin forever. A pending row is one no
                // finalize* lambda has touched: not ok, not drained,
                // not restored, and no failure diagnostic either.
                for (size_t j : rem)
                    finalizeDrained(j);
                for (size_t i = 0; done < jobs.size() && i < jobs.size();
                     ++i) {
                    if (!rows[i].ok && !rows[i].drained &&
                        !rows[i].restored && rows[i].error.empty() &&
                        rows[i].jsonLine.empty())
                        finalizeDrained(i);
                }
                break;
            }
            {
                degraded_ = true;
                stats_.fallbackJobs += rem.size();
                std::fprintf(stderr,
                             "all %zu remote workers quarantined; "
                             "finishing %zu jobs locally\n",
                             opts_.workers.size(), rem.size());
                EngineOptions eopts;
                eopts.retry = opts_.retry;
                eopts.artifactStore = opts_.artifactStore;
                eopts.stop = opts_.stop;
                MetricsCollector collector;
                if (opts_.collectMetrics)
                    eopts.metrics = &collector;
                ExperimentEngine engine(eopts);
                std::vector<ExperimentJob> rjobs;
                rjobs.reserve(rem.size());
                for (size_t j : rem)
                    rjobs.push_back(jobs[j]);
                auto results = engine.run(rjobs);
                for (size_t k = 0; k < results.size(); ++k) {
                    const size_t i = rem[k];
                    const JobResult &r = results[k];
                    if (r.drained) {
                        finalizeDrained(i);
                        continue;
                    }
                    ShardRow &row = rows[i];
                    row.ok = r.ok();
                    row.golden = r.goldenPassed;
                    row.ran = r.ran;
                    row.supported = r.stats.supported;
                    row.quarantined = r.quarantined;
                    row.errorKind = r.errorKind;
                    row.attempts = r.attempts;
                    row.error = r.error;
                    row.cycles = r.stats.cycles;
                    row.energySystemPj = r.stats.energy.systemPj();
                    row.l1MissRate = r.stats.l1Stats.missRate();
                    row.jsonLine =
                        std::string(engine.resultTable().renderRow(k));
                    JobResult jr;
                    jr.workload = jobs[i].workload;
                    jr.arch = jobs[i].arch;
                    jr.configLabel = jobs[i].configLabel;
                    jr.restored = true;
                    jr.restoredJson = row.jsonLine;
                    jr.goldenPassed = r.goldenPassed;
                    jr.quarantined = r.quarantined;
                    if (row.ok)
                        jr.ran = true;
                    else
                        jr.error = r.error;
                    table_.fill(i, jr);
                    if (opts_.journal) {
                        JournalEntry entry;
                        entry.key = keys[i];
                        entry.ok = row.ok;
                        entry.golden = row.golden;
                        entry.quarantined = row.quarantined;
                        entry.jsonLine = row.jsonLine;
                        opts_.journal->append(entry);
                    }
                    report(i);
                    ++done;
                }
            }
            continue;
        }

        if (!draining) {
            for (Conn &c : conns) {
                if (!c.quarantined && c.fd < 0 &&
                    now >= c.backoffUntil &&
                    (queues.anyWork() || !c.inflight.empty()))
                    tryConnect(c);
            }
            for (Conn &c : conns) {
                if (c.fd < 0)
                    continue;
                while (c.inflight.size() < c.capacity) {
                    auto j = queues.take(c.id, &stats_.steals);
                    if (!j)
                        break;
                    std::string payload;
                    ByteWriter w(payload);
                    w.u64(uint64_t(*j));
                    ++dispatches[*j];
                    if (!writeFrame(c.fd, FrameType::Job, payload)) {
                        --dispatches[*j];
                        queues.pushFront(c.id, *j);
                        connFailure(c, "job dispatch failed");
                        break;
                    }
                    ++c.jobsSent;
                    c.inflight.emplace(*j, Clock::now());
                }
            }
        }

        std::vector<struct pollfd> fds;
        std::vector<size_t> fd_conn;
        for (size_t c = 0; c < conns.size(); ++c) {
            if (conns[c].fd >= 0) {
                fds.push_back({conns[c].fd, POLLIN, 0});
                fd_conn.push_back(c);
            }
        }
        if (!fds.empty()) {
            const int n = ::poll(fds.data(), nfds_t(fds.size()), 50);
            if (n > 0) {
                for (size_t k = 0; k < fds.size(); ++k) {
                    Conn &c = conns[fd_conn[k]];
                    if (c.fd < 0)
                        continue;
                    if (fds[k].revents & POLLIN) {
                        Frame frame;
                        const ReadStatus st = readFrame(c.fd, &frame);
                        if (st == ReadStatus::Ok) {
                            c.consecutiveCorrupt = 0;
                            handleFrame(c, frame);
                        } else if (st == ReadStatus::Interrupted) {
                            // re-check drain next iteration
                        } else if (st == ReadStatus::CorruptRecord) {
                            ++stats_.corruptFrames;
                            if (++c.consecutiveCorrupt >=
                                kMaxConsecutiveCorrupt) {
                                connFailure(c, "repeated corrupt "
                                               "frames");
                            }
                        } else if (st == ReadStatus::Timeout) {
                            connFailure(c, "stalled mid-frame");
                        } else if (st == ReadStatus::Eof) {
                            connFailure(c, "connection closed");
                        } else if (st == ReadStatus::Corrupt) {
                            connFailure(c, "desynchronised stream");
                        } else {
                            connFailure(c, "read error");
                        }
                    } else if (fds[k].revents & (POLLHUP | POLLERR)) {
                        connFailure(c, "connection reset");
                    }
                }
            }
        } else if (done < jobs.size()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }

        const auto after = Clock::now();
        for (Conn &c : conns) {
            if (c.fd < 0)
                continue;
            if (opts_.jobDeadlineMs) {
                bool overrun = false;
                for (const auto &[i, t] : c.inflight) {
                    (void)i;
                    if (msSince(t, after) >
                        int64_t(opts_.jobDeadlineMs)) {
                        overrun = true;
                        break;
                    }
                }
                if (overrun) {
                    char buf[96];
                    std::snprintf(
                        buf, sizeof buf,
                        "job deadline exceeded (%llu ms)",
                        (unsigned long long)opts_.jobDeadlineMs);
                    connFailure(c, buf);
                    continue;
                }
            }
            if (msSince(c.lastBeat, after) >
                int64_t(opts_.heartbeatTimeoutMs)) {
                ++stats_.heartbeatMisses;
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "heartbeat silent for %llu ms",
                              (unsigned long long)
                                  opts_.heartbeatTimeoutMs);
                connFailure(c, buf);
            }
        }
    }

    // Orderly shutdown: a Shutdown frame per live connection; each
    // daemon drains its fleet and answers with one aggregated Stats
    // frame before closing.
    for (Conn &c : conns) {
        if (c.fd < 0)
            continue;
        writeFrame(c.fd, FrameType::Shutdown, {});
    }
    for (Conn &c : conns) {
        if (c.fd < 0)
            continue;
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(8000);
        for (;;) {
            struct pollfd pfd = {c.fd, POLLIN, 0};
            const int n = ::poll(&pfd, 1, 100);
            if (n > 0 && (pfd.revents & POLLIN)) {
                Frame frame;
                const ReadStatus st = readFrame(c.fd, &frame);
                if (st == ReadStatus::CorruptRecord) {
                    ++stats_.corruptFrames;
                    continue;
                }
                if (st != ReadStatus::Ok)
                    break;
                handleFrame(c, frame);
                if (frame.type == FrameType::Stats)
                    break;
                continue;
            }
            if (n > 0 && (pfd.revents & (POLLHUP | POLLERR)))
                break;
            if (Clock::now() >= deadline)
                break;
        }
        closeFd(c.fd);
        c.fd = -1;
    }

    return rows;
}

} // namespace vgiw
