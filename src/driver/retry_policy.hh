/**
 * @file
 * Per-kind retry and quarantine policy for sweep jobs.
 *
 * The SimError taxonomy (PR 3) tells us *what* failed; this policy
 * decides *whether trying again can help*. Deterministic failures —
 * malformed config, a kernel that does not compile, a golden mismatch,
 * a functional-execution fault — will fail identically on every
 * attempt, so they fail fast. Budget- and environment-sensitive
 * failures — a watchdog trip (the budget may simply have been too
 * tight for this config point) or an `internal` error (a transient
 * host condition, a captured panic whose trigger was load-dependent) —
 * are worth retrying with escalating watchdog budgets: each retry
 * multiplies the cycle ceiling and wall-clock deadline, so a job that
 * was merely slow converges while a genuine livelock still terminates.
 * A job that exhausts its attempts is *quarantined*: recorded as a
 * failure with `attempts`/`quarantined` fields so the sweep report
 * separates "configured too tight, retried, still failing" from
 * one-shot failures.
 */

#ifndef VGIW_DRIVER_RETRY_POLICY_HH
#define VGIW_DRIVER_RETRY_POLICY_HH

#include "common/sim_error.hh"
#include "common/watchdog.hh"

namespace vgiw
{

/** When and how the experiment engine re-runs a failed job. */
struct RetryPolicy
{
    /**
     * Total attempts per job including the first; 1 disables retries
     * entirely (the pre-journal engine behaviour, and the default —
     * results and JSON stay bit-identical to a policy-free run).
     */
    unsigned maxAttempts = 1;

    /** Cycle-ceiling multiplier applied per retry (attempt n runs with
     * maxReplayCycles * scale^(n-1); 0 stays unlimited). */
    double cycleBudgetScale = 4.0;

    /** Wall-clock-deadline multiplier applied per retry. */
    double deadlineScale = 2.0;

    /** Kinds where a retry can plausibly change the outcome. */
    static bool retryableKind(SimErrorKind kind);

    /** Whether a job that failed with @p kind on attempt @p attempt
     * (1-based) should be re-run. */
    bool shouldRetry(SimErrorKind kind, unsigned attempt) const;

    /**
     * Watchdog budgets for @p attempt (1-based): attempt 1 returns
     * @p base unchanged, each further attempt scales the finite
     * ceilings (zero = unlimited stays zero). The deadline anchor is
     * cleared so the engine re-anchors it at re-entry — a retry gets a
     * fresh wall-clock budget, not the exhausted one.
     */
    WatchdogConfig escalate(const WatchdogConfig &base,
                            unsigned attempt) const;
};

} // namespace vgiw

#endif // VGIW_DRIVER_RETRY_POLICY_HH
