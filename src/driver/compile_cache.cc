#include "driver/compile_cache.hh"

#include <exception>

#include "common/logging.hh"

namespace vgiw
{

std::shared_ptr<const CompiledKernel>
CompileCache::get(const CoreModel &model, const std::string &kernelKey,
                  const std::shared_ptr<const TraceSet> &traces)
{
    vgiw_assert(traces && traces->kernel, "CompileCache needs traces");
    const std::string key = model.compileKey() + "||" + kernelKey;

    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> future;
    bool miss = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            miss = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (miss) {
        // Compile outside the lock: other keys (and other requesters of
        // this key, via the future) are not serialised behind it.
        comps_.fetch_add(1);
        try {
            auto entry = std::make_shared<Entry>();
            entry->traces = traces;
            entry->compiled = model.compile(*traces->kernel);
            promise.set_value(entry);
            return entry->compiled;
        } catch (...) {
            // Every requester of this key sees the compile failure.
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return future.get()->compiled;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

} // namespace vgiw
