#include "driver/compile_cache.hh"

#include <cstdio>
#include <exception>
#include <string_view>

#include "common/logging.hh"
#include "driver/artifact_store.hh"

namespace vgiw
{

namespace
{

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)v);
    return buf;
}

} // namespace

std::shared_ptr<const CompiledKernel>
CompileCache::get(const CoreModel &model, const std::string &kernelKey,
                  const std::shared_ptr<const TraceSet> &traces,
                  FetchInfo *info)
{
    vgiw_assert(traces && traces->kernel, "CompileCache needs traces");
    const std::string key = model.compileKey() + "||" + kernelKey;

    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> future;
    bool miss = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            miss = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (miss) {
        // Content-addressed warm path: the store key pins the kernel
        // by IR content hash (carried on the traces by the trace
        // cache) plus the compile-relevant configuration slice. No
        // hash — traces not produced under a store — means no lookup.
        std::string store_key, store_kind;
        if (store_ && traces->contentHash) {
            store_key = "ck|" + hex64(traces->contentHash) + "|" +
                        model.compileKey();
            store_kind = model.name() + ".ck";
            ArtifactStore::Blob blob;
            if (store_->load(store_kind, store_key, &blob)) {
                auto art = model.deserializeArtifact(std::string_view(
                    reinterpret_cast<const char *>(blob.payload),
                    blob.size));
                if (art) {
                    // Deserializers copy out of the mapping, so the
                    // blob backing can drop here.
                    auto entry = std::make_shared<Entry>();
                    entry->traces = traces;
                    entry->compiled = std::move(art);
                    entry->fetch.storeBacked = true;
                    entry->fetch.mappedBytes = blob.size;
                    promise.set_value(entry);
                    if (info)
                        *info = entry->fetch;
                    return entry->compiled;
                }
                // Undeserializable blob (corrupt or version-skewed
                // payload): fall through and recompile — the publish
                // below overwrites it with a fresh artifact.
            }
        }

        // Compile outside the lock: other keys (and other requesters of
        // this key, via the future) are not serialised behind it.
        comps_.fetch_add(1);
        try {
            auto entry = std::make_shared<Entry>();
            entry->traces = traces;
            entry->compiled = model.compile(*traces->kernel);
            if (!store_key.empty()) {
                const std::string bytes =
                    model.serializeArtifact(*entry->compiled);
                // Publish failures are non-fatal (the store is a
                // cache); models that don't serialize return empty.
                if (!bytes.empty())
                    store_->publish(store_kind, store_key, bytes);
            }
            promise.set_value(entry);
            if (info)
                *info = entry->fetch;
            return entry->compiled;
        } catch (...) {
            // Every requester of this key sees the compile failure.
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    const std::shared_ptr<const Entry> entry = future.get();
    if (info)
        *info = entry->fetch;
    return entry->compiled;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

} // namespace vgiw
