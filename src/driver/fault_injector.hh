/**
 * @file
 * A fault-injection harness for the experiment engine.
 *
 * The fault-tolerance layer's promise — every failure lands in one
 * JobResult and the sweep completes — is only as good as its test
 * coverage, and most failure paths (a panic mid-replay, a stall long
 * enough to trip the deadline, a corrupted trace) never occur in a
 * healthy build. The injector makes them occur on demand: tests arm
 * named injection points with fail-at-job-N rules and the engine fires
 * each point as the job passes through the matching stage.
 *
 * Points mirror the engine's job pipeline:
 *
 *   trace    — before the TraceCache functional execution
 *   compile  — before the CompileCache place-and-route
 *   replay   — before CoreModel::run (after a compiled artifact exists)
 *   callback — inside the serialised onResult/onFailure region, as if
 *              the user's callback itself threw
 *
 * Canned actions: Throw (an untyped std::runtime_error, exercising the
 * unclassified-exception paths), Panic (a real vgiw_panic, exercising
 * panic capture), Stall (a finite sleep, tripping wall-clock
 * deadlines), Corrupt (a stage-appropriate typed failure). Arbitrary
 * faults can be armed as callables.
 *
 * Thread-safety: arming and firing may interleave across worker
 * threads; rules fire at most once.
 */

#ifndef VGIW_DRIVER_FAULT_INJECTOR_HH
#define VGIW_DRIVER_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace vgiw
{

/** Test hook: armed faults the engine detonates at named points. */
class FaultInjector
{
  public:
    /** Stages of the engine's per-job pipeline. */
    enum class Point : uint8_t { Trace, Compile, Replay, Callback };

    static const char *pointName(Point p);

    /** Throw a plain std::runtime_error(@p message) at (@p p, job
     * @p job_index) — an unclassified failure. */
    void armThrow(Point p, size_t job_index, std::string message);

    /** vgiw_panic(@p message) at the point — an invariant violation,
     * captured by the engine's PanicCaptureScope. */
    void armPanic(Point p, size_t job_index, std::string message);

    /** Sleep @p millis (finite — the fault is the time, not a hang) at
     * the point, to push a job past its wall-clock deadline. */
    void armStall(Point p, size_t job_index, int millis);

    /**
     * raise(@p signo) at the point — a *hard* fault that kills the
     * process (SIGSEGV, SIGKILL, SIGABRT bypass C++ unwinding and the
     * PanicCaptureScope entirely). Only meaningful inside a shard
     * worker, where the supervisor observes the death and records the
     * job as a `worker_crash`.
     */
    void armRaise(Point p, size_t job_index, int signo);

    /** A stage-appropriate typed corruption: functional-kind at trace,
     * compile-kind at compile, a panic at replay, a throw at callback. */
    void armCorrupt(Point p, size_t job_index);

    /**
     * A *transient* fault: the first @p fail_count firings of
     * (@p p, @p job_index) detonate @p fault, after which the point
     * passes clean. With the engine's retry loop re-firing the same
     * (point, job) pair once per attempt, this deterministically
     * exercises recover-after-retry: attempts 1..fail_count fail,
     * attempt fail_count+1 succeeds. The default fault throws a
     * retryable `internal`-kind SimError.
     */
    void armTransient(Point p, size_t job_index, unsigned fail_count,
                      std::function<void()> fault = {});

    /** Arm an arbitrary fault; @p fault may throw, panic or sleep. */
    void arm(Point p, size_t job_index, std::function<void()> fault);

    /**
     * Engine hook: detonate the fault armed at (@p p, @p job_index), if
     * any. A rule fires at most its armed count of times (once, except
     * for armTransient). May throw whatever the fault throws.
     */
    void fire(Point p, size_t job_index);

    /** Number of faults detonated so far. */
    uint64_t fired() const { return fired_.load(); }

  private:
    using Key = std::pair<uint8_t, size_t>;  // (point, job index)

    /** An armed fault and how many more firings detonate it. */
    struct Rule
    {
        std::function<void()> fault;
        unsigned remaining = 1;
    };

    std::mutex mu_;
    std::map<Key, Rule> armed_;
    std::atomic<uint64_t> fired_{0};
};

} // namespace vgiw

#endif // VGIW_DRIVER_FAULT_INJECTOR_HH
