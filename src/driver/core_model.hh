/**
 * @file
 * The common interface of the four timing/energy models (VGIW, Fermi,
 * SGMF, DICE — docs/architectures.md maps them). Every core
 * replays the same functional traces (bit-identical work, Section 5), so
 * one abstract surface is all the driver needs to dispatch a sweep over
 * an arbitrary set of architectures instead of hand-written
 * per-architecture if-chains.
 *
 * Execution is split into two phases, mirroring the paper's own
 * compile/execute separation (the VGIW compiler emits per-block graph
 * instruction words once; the BBS replays them for every thread vector):
 *
 *  - compile(): everything that depends only on the kernel and the
 *    compile-relevant configuration — per-block DFG construction,
 *    MT-CGRF place-and-route, static op counts, live-in ID lists,
 *    post-dominator analysis. The result is an opaque, immutable
 *    CompiledKernel artifact.
 *  - run(traces, compiled): the dynamic replay, reading the artifact.
 *
 * A design-space sweep that varies only replay-side parameters (LVC
 * size, CVT capacity, miss window...) therefore compiles each kernel
 * once, not once per config point; the driver's CompileCache keys
 * artifacts by compileKey() — a fingerprint of every configuration
 * field compile() reads.
 *
 * compile() and run() being const is a load-bearing guarantee: the
 * experiment engine replays one shared TraceSet (and one shared
 * CompiledKernel) from many worker threads concurrently.
 */

#ifndef VGIW_DRIVER_CORE_MODEL_HH
#define VGIW_DRIVER_CORE_MODEL_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "driver/run_stats.hh"
#include "interp/trace.hh"

namespace vgiw
{

struct SystemConfig;

/**
 * Opaque, immutable result of a core model's compile phase. Each
 * architecture derives its own artifact type (placed per-block DFGs for
 * VGIW, the whole-kernel spatial mapping for SGMF, decoded instructions
 * and post-dominators for Fermi, per-block placements plus the static
 * modulo schedule for DICE); run() downcasts and asserts.
 */
struct CompiledKernel
{
    virtual ~CompiledKernel() = default;
};

/** Abstract core model: a named, compilable, replayable architecture. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /** Stable architecture identifier ("vgiw", "fermi", "sgmf"). */
    virtual std::string name() const = 0;

    /**
     * Fingerprint of every configuration field compile() reads (grid
     * shape, unit timings, replication policy, ...), prefixed with the
     * architecture name. Two models with equal compileKey() produce
     * interchangeable artifacts for the same kernel — the CompileCache
     * key. Replay-only parameters (LVC/CVT sizes, miss window) must NOT
     * appear here, or sweeping them would defeat the cache.
     */
    virtual std::string compileKey() const = 0;

    /**
     * Fingerprint of every *replay-side* configuration field run()
     * reads (LVC/CVT sizes, miss window, scheduler limits, ...) — the
     * complement of compileKey(). compileKey() + replayKey() together
     * pin everything that can change a job's statistics, which is what
     * the result journal keys resumable jobs by. Watchdog budgets are
     * deliberately excluded: they bound a replay without changing its
     * result, and a resume (or a retry) may legitimately widen them.
     * The EnergyTable is also excluded — it is not sweepable from the
     * CLI; programmatic sweeps that vary it must disambiguate via the
     * job's configLabel, which participates in the job key.
     */
    virtual std::string replayKey() const = 0;

    /**
     * Compile @p kernel into this architecture's replay artifact:
     * per-block DFG construction, placement, static analysis. Launch
     * geometry does not participate (tiling happens at replay time).
     * Throws (vgiw_fatal) when the kernel cannot be compiled at all;
     * SGMF's "does not fit the fabric" is not an error — it yields an
     * artifact whose replay reports supported == false, as before.
     */
    virtual std::shared_ptr<const CompiledKernel>
    compile(const Kernel &kernel) const = 0;

    /**
     * Replay @p traces with a precompiled artifact and return
     * timing/energy statistics. @p compiled must come from compile() on
     * the same kernel by a model with an identical compileKey(). Must be
     * reentrant: the engine calls run() on the same object, the same
     * TraceSet and the same CompiledKernel from several threads at once.
     *
     * Observability: implementations may read currentMetricSink() once
     * at entry and, when it is non-null, emit per-mechanism counters
     * (see DESIGN.md §11). Emitted counters must be deterministic
     * functions of (traces, compiled, replay config) — never wall
     * clock or scheduling observables — because the engine serialises
     * them into result JSON whose bit-identity across worker counts is
     * tested. A null sink must cost nothing beyond the entry check.
     */
    virtual RunStats run(const TraceSet &traces,
                         const CompiledKernel &compiled) const = 0;

    /** Compile-and-replay in one step (tools, tests, one-shot runs). */
    RunStats
    run(const TraceSet &traces) const
    {
        return run(traces, *compile(*traces.kernel));
    }

    /**
     * Serialize @p compiled into a persistable byte string, the inverse
     * of deserializeArtifact(). An empty return means "this model does
     * not persist artifacts" and the artifact store skips it. The bytes
     * are only ever interpreted by a model with the same name() — and,
     * through the store key, the same compileKey() and kernel content
     * hash — so the payload needs no self-description beyond its
     * leading per-arch version word.
     */
    virtual std::string
    serializeArtifact(const CompiledKernel &compiled) const
    {
        (void)compiled;
        return {};
    }

    /**
     * Reconstruct a compile() artifact from serializeArtifact() bytes.
     * Returns nullptr on any malformed input (truncation, version skew,
     * impossible field values) — the caller treats that as a cache miss
     * and recompiles; it must never throw on bad bytes.
     */
    virtual std::shared_ptr<const CompiledKernel>
    deserializeArtifact(std::string_view bytes) const
    {
        (void)bytes;
        return nullptr;
    }
};

/** The architecture names every sweep understands, in report order. */
const std::vector<std::string> &knownArchitectures();

/** Whether @p arch names a concrete core model. */
bool isKnownArchitecture(std::string_view arch);

/**
 * Instantiate the core model named @p arch with its configuration taken
 * from @p cfg. Returns nullptr for an unknown architecture name.
 */
std::unique_ptr<CoreModel> makeCoreModel(std::string_view arch,
                                         const SystemConfig &cfg);

/**
 * Instantiate the models selected by @p archSelector: a concrete
 * architecture name or "all" (the report-order full set). Unknown
 * selectors yield an empty list.
 */
std::vector<std::unique_ptr<CoreModel>>
makeCoreModels(const SystemConfig &cfg, std::string_view archSelector = "all");

} // namespace vgiw

#endif // VGIW_DRIVER_CORE_MODEL_HH
