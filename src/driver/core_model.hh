/**
 * @file
 * The common interface of the three timing/energy models. Every core
 * replays the same functional traces (bit-identical work, Section 5), so
 * one abstract surface — name() plus a const, reentrant run() — is all
 * the driver needs to dispatch a sweep over an arbitrary set of
 * architectures instead of hand-written per-architecture if-chains.
 *
 * run() being const is a load-bearing guarantee: the experiment engine
 * replays one shared TraceSet from many worker threads concurrently.
 */

#ifndef VGIW_DRIVER_CORE_MODEL_HH
#define VGIW_DRIVER_CORE_MODEL_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "driver/run_stats.hh"
#include "interp/trace.hh"

namespace vgiw
{

struct SystemConfig;

/** Abstract core model: a named, replayable architecture. */
class CoreModel
{
  public:
    virtual ~CoreModel() = default;

    /** Stable architecture identifier ("vgiw", "fermi", "sgmf"). */
    virtual std::string name() const = 0;

    /**
     * Replay @p traces and return timing/energy statistics. Must be
     * reentrant: the engine calls run() on the same object and the same
     * TraceSet from several threads at once.
     */
    virtual RunStats run(const TraceSet &traces) const = 0;
};

/** The architecture names every sweep understands, in report order. */
const std::vector<std::string> &knownArchitectures();

/** Whether @p arch names a concrete core model. */
bool isKnownArchitecture(std::string_view arch);

/**
 * Instantiate the core model named @p arch with its configuration taken
 * from @p cfg. Returns nullptr for an unknown architecture name.
 */
std::unique_ptr<CoreModel> makeCoreModel(std::string_view arch,
                                         const SystemConfig &cfg);

/**
 * Instantiate the models selected by @p archSelector: a concrete
 * architecture name or "all" (the report-order full set). Unknown
 * selectors yield an empty list.
 */
std::vector<std::unique_ptr<CoreModel>>
makeCoreModels(const SystemConfig &cfg, std::string_view archSelector = "all");

} // namespace vgiw

#endif // VGIW_DRIVER_CORE_MODEL_HH
