#include "driver/retry_policy.hh"

#include <cmath>
#include <limits>

namespace vgiw
{

bool
RetryPolicy::retryableKind(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Watchdog:
      case SimErrorKind::Internal:
      // A crashed worker is environment-sensitive by definition: the
      // supervisor re-dispatches the job to a fresh process until the
      // crash budget is exhausted.
      case SimErrorKind::WorkerCrash:
      // Likewise for a lost daemon link: the remote pool reconnects or
      // reassigns; the job itself is presumed innocent.
      case SimErrorKind::LinkLost:
        return true;
      case SimErrorKind::None:
      case SimErrorKind::Config:
      case SimErrorKind::Compile:
      case SimErrorKind::Functional:
      case SimErrorKind::Golden:
        return false;
    }
    return false;
}

bool
RetryPolicy::shouldRetry(SimErrorKind kind, unsigned attempt) const
{
    return attempt < maxAttempts && retryableKind(kind);
}

WatchdogConfig
RetryPolicy::escalate(const WatchdogConfig &base, unsigned attempt) const
{
    WatchdogConfig wd = base;
    wd.anchor = {};  // the engine re-anchors at (re)entry
    if (attempt <= 1)
        return wd;
    const double exp = double(attempt - 1);
    if (wd.maxReplayCycles) {
        const double scaled =
            double(wd.maxReplayCycles) * std::pow(cycleBudgetScale, exp);
        // Saturate rather than wrap: a huge escalation means
        // "effectively unlimited", not a tiny wrapped budget.
        wd.maxReplayCycles =
            scaled >= double(std::numeric_limits<uint64_t>::max())
                ? std::numeric_limits<uint64_t>::max()
                : uint64_t(scaled);
    }
    if (wd.deadlineMs > 0)
        wd.deadlineMs *= std::pow(deadlineScale, exp);
    return wd;
}

} // namespace vgiw
