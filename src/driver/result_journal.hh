/**
 * @file
 * The write-ahead result journal: durable sweep progress.
 *
 * A design-space sweep is hours of work whose process can die at any
 * instant — SIGKILL, OOM, a machine reboot. PR 3 made in-process
 * faults survivable; the journal makes *process death* survivable.
 * Every terminal JobResult is appended as one fsync'd JSON line before
 * the sweep moves on, keyed by a stable job key (workload × arch ×
 * compile fingerprint × replay knobs — see ExperimentEngine::jobKey),
 * so a resumed run can skip exactly the jobs whose results already
 * exist and re-enqueue the rest. Because replay is deterministic, the
 * merged output of kill + resume is bit-identical to an uninterrupted
 * run: each entry stores the *exact* JSON line the original run
 * emitted, and resume replays those bytes verbatim.
 *
 * On-disk format (JSON lines):
 *
 *   {"journal":"vgiw-sweep","version":1,"sweep":"<hash>"}
 *   {"key":"<k>","ok":B,"golden":B,"quarantined":B,"result":{...}}
 *   ...
 *
 * The header pins the sweep definition hash: resuming against a
 * journal whose hash differs (the sweep's job list or any config knob
 * changed) is rejected — stale results must never be merged into a
 * different experiment. The loader tolerates a truncated final line
 * (the crash may have landed mid-append); everything before it is
 * intact because each append is flushed and fsync'd before the engine
 * reports the job done. A *completed* JobResult is therefore never
 * lost.
 *
 * Thread-safety: append() is internally serialised; workers call it
 * concurrently.
 */

#ifndef VGIW_DRIVER_RESULT_JOURNAL_HH
#define VGIW_DRIVER_RESULT_JOURNAL_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace vgiw
{

/** One journaled (or recovered) terminal job outcome. */
struct JournalEntry
{
    std::string key;     ///< ExperimentEngine::jobKey of the job
    bool ok = false;     ///< the job ran and succeeded
    bool golden = false; ///< golden check verdict
    bool quarantined = false;  ///< failed and exhausted its retries
    /** The exact JSON line the run emitted for this job; resume
     * re-emits these bytes verbatim (bit-identity). If the original
     * run collected metrics, its "metrics" object is embedded here and
     * survives a resume unchanged — a restored job is never re-run, so
     * it is also never re-instrumented. */
    std::string jsonLine;
};

/** Append-only, fsync-per-record journal of sweep results. */
class ResultJournal
{
  public:
    ResultJournal() = default;
    ~ResultJournal() { close(); }

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    /**
     * Start a fresh journal at @p path for the sweep identified by
     * @p sweepHash. An existing file is rotated aside to "<path>.1"
     * (never silently destroyed). Returns false with a diagnostic in
     * @p error on I/O failure.
     */
    bool create(const std::string &path, const std::string &sweepHash,
                std::string *error = nullptr);

    /**
     * Resume from an existing journal: load and validate it (the
     * header hash must equal @p sweepHash — a stale journal is
     * rejected), populate entries(), and reopen for append so the
     * resumed run extends the same file. A missing file is not an
     * error: resume degrades to a fresh journal.
     */
    bool openForResume(const std::string &path,
                       const std::string &sweepHash,
                       std::string *error = nullptr);

    bool isOpen() const { return file_ != nullptr; }

    /** Entries recovered by openForResume, keyed by job key. */
    const std::map<std::string, JournalEntry> &entries() const
    {
        return entries_;
    }

    /**
     * Durably append one terminal result: the record is written,
     * flushed and fsync'd before returning. Serialised internally.
     * Returns false on I/O failure (also latched in writeError()); the
     * sweep keeps running — results still land in memory — but the
     * caller should surface the failure in its exit code.
     */
    bool append(const JournalEntry &entry);

    /** First append/open I/O failure, empty when none. */
    std::string writeError() const;

    /** Flush and close the file (idempotent). */
    void close();

    /** Parsed journal file, for inspection and tests. */
    struct Loaded
    {
        bool valid = false;  ///< header present and well-formed
        std::string error;   ///< why !valid
        std::string sweepHash;
        std::map<std::string, JournalEntry> entries;
    };

    /**
     * Parse the journal at @p path. Truncated or malformed lines are
     * dropped and parsing continues (openAppend newline-terminates a
     * predecessor's torn tail, so valid records can follow a bad
     * line); duplicate keys resolve last-complete-record-wins — a
     * restarted coordinator legitimately re-appends a key. A missing
     * or headerless file is invalid.
     */
    static Loaded load(const std::string &path);

    /** Serialise one entry as its journal line (no newline). */
    static std::string formatEntry(const JournalEntry &entry);

  private:
    bool openAppend(const std::string &path, std::string *error);

    mutable std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string path_;
    std::string writeError_;
    std::map<std::string, JournalEntry> entries_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_RESULT_JOURNAL_HH
