#include "driver/trace_cache.hh"

#include <sstream>
#include <utility>

namespace vgiw
{

std::string
TraceCache::keyFor(const std::string &name, const LaunchParams &launch)
{
    std::ostringstream os;
    os << name << '|' << launch.numCtas << 'x' << launch.ctaSize;
    for (const Scalar &p : launch.params)
        os << ',' << p.bits;
    return os.str();
}

TraceResult
TraceCache::get(const std::string &name,
                const std::function<WorkloadInstance()> &make,
                bool nameIsUnique)
{
    // When the caller promises that the name fully determines the
    // instance, repeat gets skip make() entirely — building a
    // WorkloadInstance means laying out and initialising a full
    // MemoryImage, which dominated sweep wall clock when run per job.
    if (nameIsUnique) {
        std::shared_future<std::shared_ptr<const Entry>> memoised;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto known = nameToKey_.find(name);
            if (known != nameToKey_.end()) {
                auto it = entries_.find(known->second);
                if (it != entries_.end())
                    memoised = it->second;
            }
        }
        if (memoised.valid()) {
            // Waits outside the lock if the first requester's
            // functional execution is still in flight.
            return resultFor(memoised.get());
        }
    }

    auto entry = std::make_shared<Entry>();
    entry->workload = make();
    const std::string key = keyFor(name, entry->workload.launch);

    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> future;
    bool miss = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (nameIsUnique)
            nameToKey_.insert_or_assign(name, key);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            miss = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (miss) {
        // Functional execution outside the lock: other keys (and other
        // requesters of this key, via the future) are not serialised
        // behind it.
        execs_.fetch_add(1);
        try {
            entry->result = Runner{}.trace(entry->workload);
        } catch (const SimError &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = e.kind();
        } catch (const std::exception &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = SimErrorKind::Functional;
        }
        promise.set_value(entry);
        return resultFor(entry);
    }
    return resultFor(future.get());
}

TraceResult
TraceCache::get(const WorkloadEntry &entry)
{
    // Registry entries have one fixed make per name.
    return get(entry.name, entry.make, /*nameIsUnique=*/true);
}

TraceResult
TraceCache::resultFor(const std::shared_ptr<const Entry> &entry) const
{
    TraceResult out;
    out.goldenPassed = entry->result.goldenPassed;
    out.error = entry->result.error;
    out.errorKind = entry->result.errorKind;
    if (entry->result.traces) {
        // Aliasing constructor: the handed-out pointer keeps the whole
        // entry (traces *and* the kernel they borrow) alive.
        out.traces = std::shared_ptr<const TraceSet>(
            entry, entry->result.traces.get());
    }
    return out;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    nameToKey_.clear();
}

void
TraceCache::resetNameMemo()
{
    std::lock_guard<std::mutex> lock(mu_);
    nameToKey_.clear();
}

} // namespace vgiw
