#include "driver/trace_cache.hh"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "driver/artifact_store.hh"
#include "ir/printer.hh"

namespace vgiw
{

namespace
{

/** Launch geometry + parameter bits, the name-free half of keyFor(). */
std::string
launchFingerprint(const LaunchParams &launch)
{
    std::ostringstream os;
    os << launch.numCtas << 'x' << launch.ctaSize;
    for (const Scalar &p : launch.params)
        os << ',' << p.bits;
    return os.str();
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)v);
    return buf;
}

/**
 * Trace blob payload: a u64 flag word (bit 0 = golden check passed;
 * other bits reserved, rejected on load) followed by the TraceSet wire
 * form — which stays 8-aligned because the prologue is 8 bytes.
 */
constexpr uint64_t kGoldenPassedFlag = 1;

} // namespace

std::string
TraceCache::keyFor(const std::string &name, const LaunchParams &launch)
{
    return name + '|' + launchFingerprint(launch);
}

TraceResult
TraceCache::get(const std::string &name,
                const std::function<WorkloadInstance()> &make,
                bool nameIsUnique)
{
    // When the caller promises that the name fully determines the
    // instance, repeat gets skip make() entirely — building a
    // WorkloadInstance means laying out and initialising a full
    // MemoryImage, which dominated sweep wall clock when run per job.
    if (nameIsUnique) {
        std::shared_future<std::shared_ptr<const Entry>> memoised;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto known = nameToKey_.find(name);
            if (known != nameToKey_.end()) {
                auto it = entries_.find(known->second);
                if (it != entries_.end())
                    memoised = it->second;
            }
        }
        if (memoised.valid()) {
            // Waits outside the lock if the first requester's
            // functional execution is still in flight.
            return resultFor(memoised.get());
        }
    }

    auto entry = std::make_shared<Entry>();
    entry->workload = make();
    const std::string key = keyFor(name, entry->workload.launch);

    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> future;
    bool miss = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (nameIsUnique)
            nameToKey_.insert_or_assign(name, key);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            miss = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (miss) {
        // Content-addressed warm path: with a store attached, hash the
        // kernel IR and try to mmap previously published traces before
        // paying for a functional execution.
        uint64_t content_hash = 0;
        std::string store_key;
        if (store_) {
            content_hash = fnv1a(kernelToString(entry->workload.kernel));
            store_key = "trace|" + hex64(content_hash) + "|" +
                        launchFingerprint(entry->workload.launch);
            if (tryLoadFromStore(*entry, content_hash, store_key)) {
                promise.set_value(entry);
                return resultFor(entry);
            }
        }

        // Functional execution outside the lock: other keys (and other
        // requesters of this key, via the future) are not serialised
        // behind it.
        execs_.fetch_add(1);
        try {
            entry->result = Runner{}.trace(entry->workload);
        } catch (const SimError &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = e.kind();
        } catch (const std::exception &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = SimErrorKind::Functional;
        }
        if (entry->result.traces) {
            // Sole owner at this point (the entry has not been shared
            // through the promise yet), so the const_cast is benign:
            // stamp the content hash and build the shared access-intern
            // pool once, before any replay can race with it.
            auto *ts = const_cast<TraceSet *>(entry->result.traces.get());
            ts->contentHash = content_hash;
            ts->buildAccessIntern();
        }
        if (store_ && entry->result.ok()) {
            std::string payload;
            const uint64_t flags = kGoldenPassedFlag;
            payload.append(reinterpret_cast<const char *>(&flags),
                           sizeof flags);
            entry->result.traces->serializeInto(payload);
            // Publish failures are non-fatal: the store is a cache and
            // this run already holds the traces.
            store_->publish("trace", store_key, payload);
        }
        promise.set_value(entry);
        return resultFor(entry);
    }
    return resultFor(future.get());
}

TraceResult
TraceCache::get(const WorkloadEntry &entry)
{
    // Registry entries have one fixed make per name.
    return get(entry.name, entry.make, /*nameIsUnique=*/true);
}

bool
TraceCache::tryLoadFromStore(Entry &entry, uint64_t contentHash,
                             const std::string &storeKey) const
{
    ArtifactStore::Blob blob;
    if (!store_->load("trace", storeKey, &blob))
        return false;
    if (blob.size < sizeof(uint64_t))
        return false;
    uint64_t flags = 0;
    std::memcpy(&flags, blob.payload, sizeof flags);
    if (flags != kGoldenPassedFlag)  // reserved bits ⇒ future format
        return false;

    auto ts = std::make_shared<TraceSet>();
    if (!TraceSet::deserialize(blob.payload + sizeof flags,
                               blob.size - sizeof flags, blob.backing,
                               &entry.workload.kernel,
                               entry.workload.launch, *ts))
        return false;
    ts->contentHash = contentHash;
    ts->buildAccessIntern();

    entry.result.traces = std::move(ts);
    entry.result.goldenPassed = true;
    entry.result.error.clear();
    entry.result.errorKind = SimErrorKind::None;
    return true;
}

TraceResult
TraceCache::resultFor(const std::shared_ptr<const Entry> &entry) const
{
    TraceResult out;
    out.goldenPassed = entry->result.goldenPassed;
    out.error = entry->result.error;
    out.errorKind = entry->result.errorKind;
    if (entry->result.traces) {
        // Aliasing constructor: the handed-out pointer keeps the whole
        // entry (traces *and* the kernel they borrow) alive.
        out.traces = std::shared_ptr<const TraceSet>(
            entry, entry->result.traces.get());
    }
    return out;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    nameToKey_.clear();
}

void
TraceCache::resetNameMemo()
{
    std::lock_guard<std::mutex> lock(mu_);
    nameToKey_.clear();
}

} // namespace vgiw
