#include "driver/trace_cache.hh"

#include <sstream>
#include <utility>

namespace vgiw
{

std::string
TraceCache::keyFor(const std::string &name, const LaunchParams &launch)
{
    std::ostringstream os;
    os << name << '|' << launch.numCtas << 'x' << launch.ctaSize;
    for (const Scalar &p : launch.params)
        os << ',' << p.bits;
    return os.str();
}

TraceResult
TraceCache::get(const std::string &name,
                const std::function<WorkloadInstance()> &make)
{
    // Building the instance is cheap relative to tracing it, and the
    // launch parameters it carries complete the cache key.
    auto entry = std::make_shared<Entry>();
    entry->workload = make();
    const std::string key = keyFor(name, entry->workload.launch);

    std::promise<std::shared_ptr<const Entry>> promise;
    std::shared_future<std::shared_ptr<const Entry>> future;
    bool miss = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            miss = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (miss) {
        // Functional execution outside the lock: other keys (and other
        // requesters of this key, via the future) are not serialised
        // behind it.
        execs_.fetch_add(1);
        try {
            entry->result = Runner{}.trace(entry->workload);
        } catch (const SimError &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = e.kind();
        } catch (const std::exception &e) {
            entry->result = TraceResult{};
            entry->result.error = e.what();
            entry->result.errorKind = SimErrorKind::Functional;
        }
        promise.set_value(entry);
        return resultFor(entry);
    }
    return resultFor(future.get());
}

TraceResult
TraceCache::get(const WorkloadEntry &entry)
{
    return get(entry.name, entry.make);
}

TraceResult
TraceCache::resultFor(const std::shared_ptr<const Entry> &entry) const
{
    TraceResult out;
    out.goldenPassed = entry->result.goldenPassed;
    out.error = entry->result.error;
    out.errorKind = entry->result.errorKind;
    if (entry->result.traces) {
        // Aliasing constructor: the handed-out pointer keeps the whole
        // entry (traces *and* the kernel they borrow) alive.
        out.traces = std::shared_ptr<const TraceSet>(
            entry, entry->result.traces.get());
    }
    return out;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

} // namespace vgiw
