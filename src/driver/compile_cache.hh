/**
 * @file
 * Shared compiled-kernel cache for sweep harnesses.
 *
 * The compile phase of a core model (DFG construction, place-and-route,
 * static op counting, SIMT decode) depends only on the kernel and the
 * compile-relevant slice of the configuration — not on the replay-side
 * knobs a sweep actually varies (LVC size, CVT capacity, miss window).
 * Recompiling per config point is pure waste, and for VGIW/SGMF the
 * placer dominates job setup. The cache memoises compile artifacts
 * keyed by (model compileKey, kernel identity) so each distinct
 * (architecture slice, kernel) pair is compiled exactly once per sweep.
 *
 * Thread-safety: get() may be called concurrently; it follows the
 * TraceCache protocol. The first requester of a key compiles outside
 * the cache lock; concurrent requesters block on a shared future.
 * Compile failures (e.g. a kernel that does not fit the grid) propagate
 * as exceptions to every requester of the key.
 *
 * Lifetime: each entry pins the TraceSet whose Kernel the artifact was
 * compiled against, so artifacts stay valid even if the TraceCache is
 * cleared while a sweep still holds results.
 */

#ifndef VGIW_DRIVER_COMPILE_CACHE_HH
#define VGIW_DRIVER_COMPILE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "driver/core_model.hh"
#include "interp/trace.hh"

namespace vgiw
{

class ArtifactStore;

/** Memoising, thread-safe front-end to CoreModel::compile(). */
class CompileCache
{
  public:
    /**
     * Attach a persistent artifact store (nullptr detaches). With a
     * store attached, a cache miss whose traces carry an IR content
     * hash first tries to rehydrate a serialized artifact — keyed by
     * the content hash plus model.compileKey(), stored under the kind
     * "<arch>.ck" — and a fresh compilation publishes its artifact. A
     * store hit does NOT count as a compilation. Call before the first
     * get(); the pointer must outlive the cache.
     */
    void setStore(ArtifactStore *store) { store_ = store; }

    /** Where a get() artifact came from (per-job metrics provenance).
     * Shared by every requester of the key, so the values are
     * deterministic functions of the job, not of scheduling. */
    struct FetchInfo
    {
        bool storeBacked = false;  ///< rehydrated from the store
        uint64_t mappedBytes = 0;  ///< blob payload size when backed
    };

    /**
     * Compile artifact for @p model applied to @p traces->kernel. The
     * full key is model.compileKey() + @p kernelKey, where @p kernelKey
     * identifies the kernel instance (use TraceCache::keyFor so trace
     * and compile entries share the same kernel identity). Compilation
     * runs at most once per key; a compile failure throws for every
     * requester of the key. @p info, when non-null, receives the
     * artifact's provenance.
     */
    std::shared_ptr<const CompiledKernel>
    get(const CoreModel &model, const std::string &kernelKey,
        const std::shared_ptr<const TraceSet> &traces,
        FetchInfo *info = nullptr);

    /** Number of compilations performed (cache misses). */
    uint64_t compilations() const { return comps_.load(); }

    /** Number of distinct (compileKey, kernel) keys seen. */
    size_t size() const;

    /** Drop all entries; outstanding artifacts remain valid. */
    void clear();

  private:
    /** Owns the artifact and pins the kernel it was compiled against. */
    struct Entry
    {
        std::shared_ptr<const TraceSet> traces;  ///< keeps Kernel alive
        std::shared_ptr<const CompiledKernel> compiled;
        FetchInfo fetch;  ///< provenance, shared by all requesters
    };

    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<std::shared_ptr<const Entry>>>
        entries_;
    std::atomic<uint64_t> comps_{0};
    ArtifactStore *store_ = nullptr;
};

} // namespace vgiw

#endif // VGIW_DRIVER_COMPILE_CACHE_HH
