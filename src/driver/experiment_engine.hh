/**
 * @file
 * The parallel experiment engine: the substrate every sweep harness
 * (runSuite, the ablation binaries, vgiw_run --suite) runs on.
 *
 * A sweep is a list of (workload × config × architecture) jobs. The
 * engine shards the list over a pool of std::jthread workers pulling
 * from an atomic queue; each job resolves its traces through a shared
 * TraceCache — so every workload is functionally executed and
 * golden-checked exactly once per sweep, not once per config point —
 * and replays them on the requested core model. Replay is const on a
 * shared immutable TraceSet, so concurrent replays of the same traces
 * are safe.
 *
 * Determinism: results are written into a slot per job, so the output
 * vector preserves submission order regardless of worker count, and the
 * replayed statistics are bit-identical to a serial run (replay has no
 * cross-job state).
 *
 * Failure isolation: every way a job can fail — malformed config,
 * uncompilable kernel, functional/golden failure, watchdog trip, even
 * an invariant violation (vgiw_panic) inside replay — is recorded in
 * that job's result as a typed SimErrorKind (and reported through the
 * failure callback) and the sweep keeps going. Each job runs under a
 * PanicCaptureScope, its config is validated before any simulation
 * state is built, and user callbacks are guarded so a throwing
 * observer cannot terminate a worker thread. One broken sweep point
 * never aborts the process.
 *
 * Durability: with a ResultJournal attached, every terminal JobResult
 * is fsync'd to disk (keyed by jobKey) before the sweep moves on, and
 * a resumed engine skips jobs whose keys the journal already holds —
 * their slots are satisfied verbatim from the journal, so the merged
 * output of a killed-and-resumed sweep is bit-identical to an
 * uninterrupted one. A RetryPolicy re-runs budget-sensitive failures
 * (watchdog/internal) with escalating watchdog budgets and quarantines
 * jobs that exhaust their attempts; deterministic failures fail fast.
 * A stop flag (usually &drainFlag(), set by SIGINT/SIGTERM) drains the
 * pool gracefully: no new jobs are dequeued, in-flight jobs finish or
 * trip their watchdogs, and undispatched slots come back marked
 * `drained`.
 */

#ifndef VGIW_DRIVER_EXPERIMENT_ENGINE_HH
#define VGIW_DRIVER_EXPERIMENT_ENGINE_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/sim_error.hh"
#include "driver/compile_cache.hh"
#include "driver/fault_injector.hh"
#include "driver/core_model.hh"
#include "driver/result_journal.hh"
#include "driver/result_table.hh"
#include "driver/retry_policy.hh"
#include "driver/run_stats.hh"
#include "driver/runner.hh"
#include "driver/system_config.hh"
#include "driver/trace_cache.hh"
#include "workloads/workload.hh"

namespace vgiw
{

/** One point of a sweep: run one workload on one core configuration. */
struct ExperimentJob
{
    std::string workload;  ///< registry name, or a label for custom makes
    std::string arch = "vgiw";  ///< a knownArchitectures() name
    std::string configLabel;    ///< free-form config tag for reports
    SystemConfig config{};

    /**
     * Optional constructor for workloads outside the registry (synthetic
     * sweep kernels). When empty the registry is consulted by name.
     */
    std::function<WorkloadInstance()> make;
};

/** Outcome of one job. */
struct JobResult
{
    std::string workload;
    std::string arch;
    std::string configLabel;

    bool goldenPassed = false;
    /** Golden-check, lookup or model diagnostic; empty on success. */
    std::string error;
    /** Taxonomy classification of `error`; None on success. */
    SimErrorKind errorKind = SimErrorKind::None;
    /** Stats are valid: the core model actually replayed the traces. */
    bool ran = false;
    RunStats stats;

    /** Progress counters at the moment a watchdog aborted the replay
     * (valid only for errorKind == Watchdog). */
    struct PartialProgress
    {
        bool valid = false;
        uint64_t cycles = 0;
        uint64_t dynBlockExecs = 0;
        uint64_t dynThreadOps = 0;
    };
    PartialProgress partial;

    /** Attempts consumed (1 unless a RetryPolicy re-ran the job). */
    unsigned attempts = 1;
    /** Failed with a retryable kind and exhausted its retry budget. */
    bool quarantined = false;

    /** Satisfied verbatim from a resume journal, not executed; the
     * original run's JSON line is in restoredJson and toJsonLine
     * re-emits it byte-for-byte. */
    bool restored = false;
    std::string restoredJson;

    /** Never dispatched: the sweep drained on a stop request before
     * this job started. Not journaled; a resume re-enqueues it. */
    bool drained = false;

    /**
     * Serialised deterministic counters (`{"name":value,...}`) from
     * the job's JobMetrics sink; empty unless a MetricsCollector was
     * attached. When present, toJsonLine appends it as a `"metrics"`
     * object — so with metrics disabled the JSON stays bit-identical
     * to the metrics-free engine. For a retried job these are the
     * final attempt's counters.
     */
    std::string metricsJson;

    bool ok() const { return ran && error.empty(); }
};

/** Worker-pool and reporting knobs. */
struct EngineOptions
{
    EngineOptions() = default;
    explicit EngineOptions(unsigned worker_count) : jobs(worker_count) {}

    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /**
     * Invoked (serialised) as each job finishes, with the job's index in
     * the submission order — progress reporting for long sweeps.
     */
    std::function<void(size_t index, const JobResult &)> onResult;

    /**
     * Invoked (serialised) when a job fails (golden mismatch, unknown
     * workload/arch, model exception) — the job is skipped, not fatal.
     */
    std::function<void(const JobResult &)> onFailure;

    /**
     * Both callbacks are guarded: an exception thrown by either marks
     * the job as an `internal` failure instead of terminating the
     * worker jthread (an unguarded throw would std::terminate the
     * process — exactly the failure mode this engine exists to avoid).
     *
     * Optional fault-injection harness (tests only); not owned. When
     * set, the engine fires the trace/compile/replay/callback points
     * as each job passes through them.
     */
    FaultInjector *injector = nullptr;

    /** Per-kind retry/quarantine policy; the default (maxAttempts 1)
     * disables retries and reproduces the policy-free engine. */
    RetryPolicy retry{};

    /**
     * Optional durable result journal; not owned. Must be open
     * (create or openForResume) before run(). Every terminal result
     * is appended fsync'd; entries recovered by openForResume satisfy
     * matching jobs without executing them.
     */
    ResultJournal *journal = nullptr;

    /**
     * Optional per-job metrics collection; not owned. When set, the
     * engine sizes the collector to the job list (one JobMetrics slot
     * per job, labelled with its jobKey), wraps every pipeline stage
     * in spans — each retry attempt as an `attempt` span with
     * `trace`/`compile`/`replay` nested under it, plus a `callback`
     * span around the serialised reporting — and installs the job's
     * sink as the worker's thread-local currentMetricSink() so the
     * core model's replay loop can emit per-block counters without an
     * API change. After run(), each executed (non-restored) job's
     * deterministic counters are serialised into
     * JobResult::metricsJson and the collector holds the span log for
     * Chrome-trace export. Null (the default) keeps every
     * instrumentation site at one never-taken branch.
     */
    MetricsCollector *metrics = nullptr;

    /**
     * Optional persistent artifact store; not owned. Must be open()
     * before run(). The engine mounts it under both sweep caches: a
     * cold sweep publishes every traced workload and compiled artifact,
     * a warm sweep satisfies them by mmap without a single functional
     * execution or compilation — and, because replay statistics are
     * deterministic functions of (traces, artifact, config), with
     * byte-identical result JSON. With metrics attached, each job
     * additionally reports `artifact_store.{hits,misses,bytes_mapped}`
     * provenance counters (entry-based, so deterministic across worker
     * counts).
     */
    ArtifactStore *artifactStore = nullptr;

    /**
     * Optional graceful-drain flag; not owned. When it becomes true
     * (a signal handler, another thread, a callback), workers stop
     * dequeueing: in-flight jobs finish (or trip their watchdogs) and
     * are journaled, pending retries are abandoned, and every
     * undispatched job's slot is returned with `drained == true`.
     */
    const std::atomic<bool> *stop = nullptr;
};

/** Parallel (workload × config × architecture) sweep executor. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions opts = {}) : opts_(opts) {}

    /**
     * Run all @p jobs; the result vector is index-aligned with the
     * submission order regardless of scheduling.
     */
    std::vector<JobResult> run(const std::vector<ExperimentJob> &jobs);

    /**
     * The full registry × @p archs under one configuration — the job
     * list behind runSuite and vgiw_run --suite.
     */
    static std::vector<ExperimentJob>
    suiteJobs(const SystemConfig &cfg,
              const std::vector<std::string> &archs = knownArchitectures(),
              const std::string &configLabel = {});

    /**
     * Parallel replacement for the old serial suite loop: every registry
     * workload on all three architectures, assembled into registry-order
     * ArchComparisons. Workloads that fail their golden check are
     * reported via onFailure and returned with goldenPassed == false.
     */
    std::vector<ArchComparison> compareSuite(const SystemConfig &cfg = {});

    /** The sweep-wide trace cache (one functional execution per key). */
    TraceCache &traceCache() { return cache_; }

    /** The sweep-wide compiled-kernel cache (one compile per
     * (architecture compile slice, kernel) pair). */
    CompileCache &compileCache() { return ccache_; }

    /**
     * The last run()'s results in columnar form — every row filled
     * (executed, restored and drained alike), rendered lines cached
     * for rows the journal already serialised. Valid until the next
     * run(). This is the preferred way to serialise a sweep: rendering
     * goes through ResultTable::renderRow, the same code path the
     * journal used, so the artifact cannot diverge from the journal.
     */
    ResultTable &resultTable() { return table_; }

    /** Serialise one result as a JSON-lines object (no newline).
     * Restored results re-emit their journaled bytes verbatim.
     * Compatibility shim over ResultTable::renderRow — one-off
     * callers only; sweep writers should render from resultTable(). */
    static std::string toJsonLine(const JobResult &result);

    /**
     * Stable identity of one sweep point: workload × arch ×
     * configLabel × the config's jobFingerprint (compile + replay
     * keys). Two jobs with equal keys produce bit-identical results,
     * which is what lets a resume satisfy one from the other's
     * journal entry. Jobs with a custom `make` are tagged; their
     * workload label must be unique within the sweep.
     */
    static std::string jobKey(const ExperimentJob &job);

    /**
     * Order-sensitive FNV-1a hash over every job key — the sweep
     * definition hash pinned in the journal header. Any change to the
     * job list or to a statistics-relevant config knob changes it,
     * invalidating stale journals.
     */
    static std::string sweepHash(const std::vector<ExperimentJob> &jobs);

  private:
    JobResult runJob(const ExperimentJob &job, size_t index);
    /** runJob under the RetryPolicy: escalating watchdog budgets per
     * attempt, quarantine on exhaustion, drain-aware. */
    JobResult runJobWithRetry(const ExperimentJob &job, size_t index);
    /** Serialised onResult/onFailure dispatch with the callback guard
     * (and the callback injection point) applied. */
    void report(size_t index, JobResult &result);

    EngineOptions opts_;
    TraceCache cache_;
    CompileCache ccache_;
    ResultTable table_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_EXPERIMENT_ENGINE_HH
