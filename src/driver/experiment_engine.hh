/**
 * @file
 * The parallel experiment engine: the substrate every sweep harness
 * (runSuite, the ablation binaries, vgiw_run --suite) runs on.
 *
 * A sweep is a list of (workload × config × architecture) jobs. The
 * engine shards the list over a pool of std::jthread workers pulling
 * from an atomic queue; each job resolves its traces through a shared
 * TraceCache — so every workload is functionally executed and
 * golden-checked exactly once per sweep, not once per config point —
 * and replays them on the requested core model. Replay is const on a
 * shared immutable TraceSet, so concurrent replays of the same traces
 * are safe.
 *
 * Determinism: results are written into a slot per job, so the output
 * vector preserves submission order regardless of worker count, and the
 * replayed statistics are bit-identical to a serial run (replay has no
 * cross-job state).
 *
 * Failure isolation: every way a job can fail — malformed config,
 * uncompilable kernel, functional/golden failure, watchdog trip, even
 * an invariant violation (vgiw_panic) inside replay — is recorded in
 * that job's result as a typed SimErrorKind (and reported through the
 * failure callback) and the sweep keeps going. Each job runs under a
 * PanicCaptureScope, its config is validated before any simulation
 * state is built, and user callbacks are guarded so a throwing
 * observer cannot terminate a worker thread. One broken sweep point
 * never aborts the process.
 */

#ifndef VGIW_DRIVER_EXPERIMENT_ENGINE_HH
#define VGIW_DRIVER_EXPERIMENT_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "driver/compile_cache.hh"
#include "driver/fault_injector.hh"
#include "driver/core_model.hh"
#include "driver/run_stats.hh"
#include "driver/runner.hh"
#include "driver/system_config.hh"
#include "driver/trace_cache.hh"
#include "workloads/workload.hh"

namespace vgiw
{

/** One point of a sweep: run one workload on one core configuration. */
struct ExperimentJob
{
    std::string workload;  ///< registry name, or a label for custom makes
    std::string arch = "vgiw";  ///< a knownArchitectures() name
    std::string configLabel;    ///< free-form config tag for reports
    SystemConfig config{};

    /**
     * Optional constructor for workloads outside the registry (synthetic
     * sweep kernels). When empty the registry is consulted by name.
     */
    std::function<WorkloadInstance()> make;
};

/** Outcome of one job. */
struct JobResult
{
    std::string workload;
    std::string arch;
    std::string configLabel;

    bool goldenPassed = false;
    /** Golden-check, lookup or model diagnostic; empty on success. */
    std::string error;
    /** Taxonomy classification of `error`; None on success. */
    SimErrorKind errorKind = SimErrorKind::None;
    /** Stats are valid: the core model actually replayed the traces. */
    bool ran = false;
    RunStats stats;

    /** Progress counters at the moment a watchdog aborted the replay
     * (valid only for errorKind == Watchdog). */
    struct PartialProgress
    {
        bool valid = false;
        uint64_t cycles = 0;
        uint64_t dynBlockExecs = 0;
        uint64_t dynThreadOps = 0;
    };
    PartialProgress partial;

    bool ok() const { return ran && error.empty(); }
};

/** Worker-pool and reporting knobs. */
struct EngineOptions
{
    EngineOptions() = default;
    explicit EngineOptions(unsigned worker_count) : jobs(worker_count) {}

    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /**
     * Invoked (serialised) as each job finishes, with the job's index in
     * the submission order — progress reporting for long sweeps.
     */
    std::function<void(size_t index, const JobResult &)> onResult;

    /**
     * Invoked (serialised) when a job fails (golden mismatch, unknown
     * workload/arch, model exception) — the job is skipped, not fatal.
     */
    std::function<void(const JobResult &)> onFailure;

    /**
     * Both callbacks are guarded: an exception thrown by either marks
     * the job as an `internal` failure instead of terminating the
     * worker jthread (an unguarded throw would std::terminate the
     * process — exactly the failure mode this engine exists to avoid).
     *
     * Optional fault-injection harness (tests only); not owned. When
     * set, the engine fires the trace/compile/replay/callback points
     * as each job passes through them.
     */
    FaultInjector *injector = nullptr;
};

/** Parallel (workload × config × architecture) sweep executor. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions opts = {}) : opts_(opts) {}

    /**
     * Run all @p jobs; the result vector is index-aligned with the
     * submission order regardless of scheduling.
     */
    std::vector<JobResult> run(const std::vector<ExperimentJob> &jobs);

    /**
     * The full registry × @p archs under one configuration — the job
     * list behind runSuite and vgiw_run --suite.
     */
    static std::vector<ExperimentJob>
    suiteJobs(const SystemConfig &cfg,
              const std::vector<std::string> &archs = knownArchitectures(),
              const std::string &configLabel = {});

    /**
     * Parallel replacement for the old serial suite loop: every registry
     * workload on all three architectures, assembled into registry-order
     * ArchComparisons. Workloads that fail their golden check are
     * reported via onFailure and returned with goldenPassed == false.
     */
    std::vector<ArchComparison> compareSuite(const SystemConfig &cfg = {});

    /** The sweep-wide trace cache (one functional execution per key). */
    TraceCache &traceCache() { return cache_; }

    /** The sweep-wide compiled-kernel cache (one compile per
     * (architecture compile slice, kernel) pair). */
    CompileCache &compileCache() { return ccache_; }

    /** Serialise one result as a JSON-lines object (no newline). */
    static std::string toJsonLine(const JobResult &result);

  private:
    JobResult runJob(const ExperimentJob &job, size_t index);
    /** Serialised onResult/onFailure dispatch with the callback guard
     * (and the callback injection point) applied. */
    void report(size_t index, JobResult &result);

    EngineOptions opts_;
    TraceCache cache_;
    CompileCache ccache_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_EXPERIMENT_ENGINE_HH
