#include "driver/result_table.hh"

#include <charconv>
#include <cstring>

#include "common/json.hh"
#include "driver/experiment_engine.hh"

namespace vgiw
{

namespace
{

/** Arena chunk size; fields longer than this get a dedicated chunk. */
constexpr size_t kChunkBytes = size_t{1} << 16;

void
appendU64(std::string &out, uint64_t v)
{
    char buf[20];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;  // 20 digits always fit a uint64
    out.append(buf, size_t(p - buf));
}

/** `,"name":"escaped"` — the quoted-string field idiom. */
void
appendStrField(std::string &out, const char *name, std::string_view v)
{
    out += ",\"";
    out += name;
    out += "\":\"";
    out += jsonEscape(std::string(v));
    out += '"';
}

void
appendU64Field(std::string &out, const char *name, uint64_t v)
{
    out += ",\"";
    out += name;
    out += "\":";
    appendU64(out, v);
}

void
appendNumField(std::string &out, const char *name, double v)
{
    out += ",\"";
    out += name;
    out += "\":";
    out += jsonNumber(v);
}

} // namespace

void
ResultTable::reset(size_t rows)
{
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.clear();
    chunkUsed_ = 0;
    arenaBytes_.store(0, std::memory_order_relaxed);

    flags_.assign(rows, 0);
    errorKind_.assign(rows, uint8_t(SimErrorKind::None));
    attempts_.assign(rows, 1);
    workload_.assign(rows, Ref{});
    arch_.assign(rows, Ref{});
    config_.assign(rows, Ref{});
    error_.assign(rows, Ref{});
    restoredJson_.assign(rows, Ref{});
    metricsJson_.assign(rows, Ref{});
    partialCycles_.assign(rows, 0);
    partialBlockExecs_.assign(rows, 0);
    partialThreadOps_.assign(rows, 0);
    stats_.assign(rows, StatRow{});
    extras_.assign(rows, {});
    rendered_.assign(rows, std::string());
    renderValid_.assign(rows, 0);
}

ResultTable::Ref
ResultTable::intern(std::string_view s)
{
    if (s.empty())
        return Ref{};
    arenaBytes_.fetch_add(s.size(), std::memory_order_relaxed);
    if (s.size() > kChunkBytes) {
        // Oversized field (a long restored line, a big metrics blob):
        // give it a dedicated chunk and retire it immediately so the
        // next small intern opens a fresh standard chunk.
        auto chunk = std::make_unique<char[]>(s.size());
        std::memcpy(chunk.get(), s.data(), s.size());
        const char *p = chunk.get();
        chunks_.push_back(std::move(chunk));
        chunkUsed_ = kChunkBytes;
        return Ref{p, uint32_t(s.size())};
    }
    if (chunks_.empty() || chunkUsed_ + s.size() > kChunkBytes) {
        chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
        chunkUsed_ = 0;
    }
    char *p = chunks_.back().get() + chunkUsed_;
    std::memcpy(p, s.data(), s.size());
    chunkUsed_ += s.size();
    return Ref{p, uint32_t(s.size())};
}

void
ResultTable::fill(size_t index, const JobResult &r)
{
    uint8_t flags = kFilled;
    if (r.goldenPassed)
        flags |= kGolden;
    if (r.ran)
        flags |= kRan;
    if (r.stats.supported)
        flags |= kSupported;
    if (r.quarantined)
        flags |= kQuarantined;
    if (r.restored)
        flags |= kRestored;
    if (r.partial.valid)
        flags |= kPartialValid;
    if (r.drained)
        flags |= kDrained;

    {
        std::lock_guard<std::mutex> lock(mu_);
        workload_[index] = intern(r.workload);
        arch_[index] = intern(r.arch);
        config_[index] = intern(r.configLabel);
        error_[index] = intern(r.error);
        restoredJson_[index] = intern(r.restoredJson);
        metricsJson_[index] = intern(r.metricsJson);
        // Row-owned extras (not a shared pool): renderRow() on another
        // row must stay safe while this fill() is appending.
        const auto &entries = r.stats.extra.entries();
        auto &extras = extras_[index];
        extras.clear();
        extras.reserve(entries.size());
        for (const auto &[name, value] : entries)
            extras.emplace_back(intern(name), value);
    }

    errorKind_[index] = uint8_t(r.errorKind);
    attempts_[index] = r.attempts;
    partialCycles_[index] = r.partial.cycles;
    partialBlockExecs_[index] = r.partial.dynBlockExecs;
    partialThreadOps_[index] = r.partial.dynThreadOps;

    const RunStats &s = r.stats;
    StatRow &row = stats_[index];
    row.cycles = s.cycles;
    row.configCycles = s.configCycles;
    row.reconfigs = s.reconfigs;
    row.dynBlockExecs = s.dynBlockExecs;
    row.dynThreadOps = s.dynThreadOps;
    row.dynWarpInstrs = s.dynWarpInstrs;
    row.rfAccesses = s.rfAccesses;
    row.lvcAccesses = s.lvcAccesses;
    row.l1Accesses = s.l1Stats.accesses();
    row.l1Misses = s.l1Stats.misses();
    row.l2Accesses = s.l2Stats.accesses();
    row.l2Misses = s.l2Stats.misses();
    row.lvcMisses = s.lvcStats.misses();
    row.dramAccesses = s.dramStats.accesses;
    row.dramRowHits = s.dramStats.rowHits;
    row.corePj = s.energy.corePj();
    row.diePj = s.energy.diePj();
    row.systemPj = s.energy.systemPj();

    renderValid_[index] = 0;
    flags_[index] = flags;  // last: publishes the row as filled
}

bool
ResultTable::filled(size_t index) const
{
    return (flags_[index] & kFilled) != 0;
}

bool
ResultTable::drained(size_t index) const
{
    return (flags_[index] & kDrained) != 0;
}

std::string_view
ResultTable::renderRow(size_t index)
{
    if (renderValid_[index])
        return rendered_[index];

    const uint8_t flags = flags_[index];
    std::string &out = rendered_[index];
    out.clear();

    if (!(flags & kFilled)) {
        out = "{}";
        renderValid_[index] = 1;
        return out;
    }

    // A restored row re-emits the journaled bytes untouched: this is
    // what makes kill + resume bit-identical to an uninterrupted run
    // even if the serialisation format evolves between releases.
    if (flags & kRestored) {
        out.assign(restoredJson_[index].view());
        renderValid_[index] = 1;
        return out;
    }

    const bool ran = (flags & kRan) != 0;
    const bool ok = ran && error_[index].empty();

    out.reserve(ran ? 640 : 192);
    out += "{\"workload\":\"";
    out += jsonEscape(std::string(workload_[index].view()));
    out += '"';
    appendStrField(out, "arch", arch_[index].view());
    appendStrField(out, "config", config_[index].view());
    out += ",\"golden\":";
    out += (flags & kGolden) ? "true" : "false";
    out += ",\"ok\":";
    out += ok ? "true" : "false";
    if (!error_[index].empty())
        appendStrField(out, "error", error_[index].view());
    // Failure-only fields: healthy lines stay byte-identical to what
    // the engine emitted before the taxonomy existed.
    if (SimErrorKind(errorKind_[index]) != SimErrorKind::None) {
        out += ",\"error_kind\":\"";
        out += simErrorKindName(SimErrorKind(errorKind_[index]));
        out += '"';
    }
    if (flags & kPartialValid) {
        appendU64Field(out, "partial_cycles", partialCycles_[index]);
        appendU64Field(out, "partial_block_execs",
                       partialBlockExecs_[index]);
        appendU64Field(out, "partial_thread_ops",
                       partialThreadOps_[index]);
    }
    // Retry bookkeeping, failures only: a healthy suite's lines stay
    // byte-identical to the retry-free engine's output.
    if (!ok) {
        if (attempts_[index] > 1)
            appendU64Field(out, "attempts", attempts_[index]);
        if (flags & kQuarantined)
            out += ",\"quarantined\":true";
    }
    if (ran) {
        const StatRow &s = stats_[index];
        out += ",\"supported\":";
        out += (flags & kSupported) ? "true" : "false";
        appendU64Field(out, "cycles", s.cycles);
        appendU64Field(out, "config_cycles", s.configCycles);
        appendU64Field(out, "reconfigs", s.reconfigs);
        appendU64Field(out, "dyn_block_execs", s.dynBlockExecs);
        appendU64Field(out, "dyn_thread_ops", s.dynThreadOps);
        appendU64Field(out, "dyn_warp_instrs", s.dynWarpInstrs);
        appendU64Field(out, "rf_accesses", s.rfAccesses);
        appendU64Field(out, "lvc_accesses", s.lvcAccesses);
        appendNumField(out, "energy_core_pj", s.corePj);
        appendNumField(out, "energy_die_pj", s.diePj);
        appendNumField(out, "energy_system_pj", s.systemPj);
        appendU64Field(out, "l1_accesses", s.l1Accesses);
        appendU64Field(out, "l1_misses", s.l1Misses);
        appendU64Field(out, "l2_accesses", s.l2Accesses);
        appendU64Field(out, "l2_misses", s.l2Misses);
        appendU64Field(out, "lvc_misses", s.lvcMisses);
        appendU64Field(out, "dram_accesses", s.dramAccesses);
        appendU64Field(out, "dram_row_hits", s.dramRowHits);
        out += ",\"extra\":{";
        const auto &extras = extras_[index];
        for (size_t e = 0; e < extras.size(); ++e) {
            const auto &[name, value] = extras[e];
            if (e)
                out += ',';
            out += '"';
            out += jsonEscape(std::string(name.view()));
            out += "\":";
            out += jsonNumber(value);
        }
        out += '}';
    }
    // Opt-in field: present only when a MetricsCollector ran the job,
    // so default suite JSON stays bit-identical to the metrics-free
    // engine (successes and failures both carry it when enabled).
    if (!metricsJson_[index].empty()) {
        out += ",\"metrics\":";
        out.append(metricsJson_[index].view());
    }
    out += '}';
    renderValid_[index] = 1;
    return out;
}

void
ResultTable::renderInto(ResultSink &sink)
{
    for (size_t i = 0; i < numRows(); ++i) {
        const uint8_t flags = flags_[i];
        if (!(flags & kFilled) || (flags & kDrained))
            continue;
        sink.row(i, renderRow(i));
    }
}

size_t
ResultTable::arenaBytes() const
{
    return arenaBytes_.load(std::memory_order_relaxed);
}

} // namespace vgiw
