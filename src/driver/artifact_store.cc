#include "driver/artifact_store.hh"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/atomic_file.hh"

namespace vgiw
{

namespace
{

/**
 * On-disk blob header, 32 bytes, followed by the key (zero-padded to a
 * multiple of 8 so the payload starts 8-aligned within the mapping —
 * the trace deserialiser reads fixed-width fields in place).
 */
struct BlobHeader
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t payloadLen = 0;
    uint64_t payloadHash = 0;
    uint32_t keyLen = 0;
    uint32_t pad = 0;
};
static_assert(sizeof(BlobHeader) == 32, "blob header layout is pinned");

constexpr uint32_t kMagic = 0x53414756u;  // "VGAS" little-endian

size_t
pad8(size_t n)
{
    return (n + 7) & ~size_t(7);
}

/** An mmap'd file; unmapped when the last shared_ptr drops. */
struct Mapping
{
    const void *base = nullptr;
    size_t len = 0;

    ~Mapping()
    {
        if (base)
            ::munmap(const_cast<void *>(base), len);
    }
};

bool
makeDir(const std::string &path, std::string *error)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    if (error)
        *error = "mkdir '" + path + "' failed: " + std::strerror(errno);
    return false;
}

} // namespace

bool
ArtifactStore::open(const std::string &dir, std::string *error)
{
    std::string objects = dir + "/objects";
    if (!makeDir(dir, error) || !makeDir(objects, error)) {
        dir_.clear();
        objectsDir_.clear();
        return false;
    }
    // Probe writability now so a read-only store fails at configuration
    // time (exit 2 territory) instead of silently caching nothing.
    const std::string probe = objects + "/.probe";
    if (::access(objects.c_str(), W_OK) != 0) {
        if (error)
            *error = "store directory '" + objects +
                     "' is not writable: " + std::strerror(errno);
        dir_.clear();
        objectsDir_.clear();
        return false;
    }
    (void)probe;
    dir_ = dir;
    objectsDir_ = std::move(objects);
    return true;
}

std::string
ArtifactStore::objectPath(const std::string &kind,
                          const std::string &key) const
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  (unsigned long long)fnv1a(key));
    return objectsDir_ + "/" + hex + "." + kind;
}

bool
ArtifactStore::load(const std::string &kind, const std::string &key,
                    Blob *out)
{
    if (!isOpen())
        return false;
    const std::string path = objectPath(kind, key);

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(BlobHeader))) {
        ::close(fd);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const size_t len = size_t(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (base == MAP_FAILED) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    auto mapping = std::make_shared<Mapping>();
    mapping->base = base;
    mapping->len = len;

    // Validate everything before handing out a single payload byte:
    // magic, format version, key echo, exact length, payload checksum.
    // Each rejection is a miss — the caller recomputes and republishes.
    BlobHeader h;
    std::memcpy(&h, base, sizeof h);
    const auto *bytes = static_cast<const uint8_t *>(base);
    const size_t key_span = pad8(h.keyLen);
    bool valid = h.magic == kMagic && h.version == kFormatVersion &&
                 h.keyLen == key.size() &&
                 len >= sizeof h + key_span &&
                 len == sizeof h + key_span + h.payloadLen;
    if (valid &&
        std::memcmp(bytes + sizeof h, key.data(), key.size()) != 0)
        valid = false;
    const uint8_t *payload = bytes + sizeof h + key_span;
    if (valid && fnv1aBytes(payload, h.payloadLen) != h.payloadHash)
        valid = false;
    if (!valid) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    hits_.fetch_add(1, std::memory_order_relaxed);
    bytesMapped_.fetch_add(h.payloadLen, std::memory_order_relaxed);
    if (out) {
        out->backing = std::shared_ptr<const void>(mapping, base);
        out->payload = payload;
        out->size = size_t(h.payloadLen);
    }
    return true;
}

bool
ArtifactStore::publish(const std::string &kind, const std::string &key,
                       std::string_view payload, std::string *error)
{
    if (!isOpen())
        return false;

    BlobHeader h;
    h.magic = kMagic;
    h.version = kFormatVersion;
    h.payloadLen = payload.size();
    h.payloadHash = fnv1aBytes(payload.data(), payload.size());
    h.keyLen = uint32_t(key.size());

    std::string blob;
    blob.reserve(sizeof h + pad8(key.size()) + payload.size());
    blob.append(reinterpret_cast<const char *>(&h), sizeof h);
    blob.append(key);
    blob.append(pad8(key.size()) - key.size(), '\0');
    blob.append(payload.data(), payload.size());

    // Atomic temp+rename publication: a concurrent publisher of the
    // same key (another worker process) races benignly — both blobs
    // are byte-identical by construction and readers never see a torn
    // file.
    return writeFileAtomic(objectPath(kind, key), blob, error);
}

} // namespace vgiw
