/**
 * @file
 * The remote sweep service: fault-tolerant multi-machine sweeps over
 * the shard frame protocol (DESIGN.md §16).
 *
 * PR 8 put hard-fault isolation behind forked worker processes on one
 * machine; this layer stretches the same frame protocol across TCP so
 * a sweep can spread over a small trusted fleet:
 *
 *  - **SweepService** (the daemon side, `vgiw_sweepd`): accepts one
 *    client connection at a time, validates the Hello handshake
 *    (protocol version, architecture list, recomputed sweep hash —
 *    any divergence refuses the handshake instead of misparsing), then
 *    forks a local fleet of runShardWorker processes and relays: Job
 *    frames in, worker Result frames out *verbatim* (the byte-identity
 *    contract rides on the worker-rendered bytes passing through
 *    untouched). A local worker death is reported as a JobCrash frame
 *    — the daemon never retries, so retry/quarantine accounting has
 *    exactly one bookkeeper: the client. Daemon heartbeats carry a
 *    busy-count plus the cumulative Job frames accepted, so the client
 *    can detect results lost in transit without mistaking a beat that
 *    merely predates a dispatch for evidence of loss.
 *  - **RemotePool** (the client side, `vgiw_run --workers`): treats
 *    each daemon like a shard slot — per-connection heartbeat timeout,
 *    per-job deadline, jittered-exponential reconnect backoff
 *    (common/backoff.hh), in-flight reassignment on link loss
 *    (exactly-once via jobKey + the coordinator-owned journal), a
 *    consecutive-failure budget after which a worker is quarantined,
 *    and graceful degradation: when every remote is quarantined the
 *    remaining jobs finish in-process and vgiw_run exits 5.
 *
 * Failure taxonomy: `worker_crash` is a worker *process* dying on the
 * remote machine (reported by the daemon via JobCrash); `link_lost` is
 * the TCP link dying — refused/reset/stalled/desynchronised — with
 * jobs in flight. The distinction matters operationally: the first
 * points at a poisoned job or a sick machine, the second at the
 * network or a dead daemon.
 *
 * Scope: a trusted lab fleet. No TLS, no authentication, same
 * architecture and build on every machine (the handshake's sweep-hash
 * recomputation enforces the parts of that which matter).
 */

#ifndef VGIW_DRIVER_REMOTE_POOL_HH
#define VGIW_DRIVER_REMOTE_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/net.hh"
#include "common/subprocess.hh"
#include "driver/shard_wire.hh"
#include "driver/worker_pool.hh"

namespace vgiw
{

// ---------------------------------------------------------------------
// Daemon side.

/** Knobs for one vgiw_sweepd service instance. */
struct SweepServiceOptions
{
    /** Local forked-worker count per served sweep. */
    unsigned shards = 2;

    /** Daemon-local artifact store; not owned (may be null). */
    ArtifactStore *artifactStore = nullptr;

    /** Cadence of daemon -> client busy-count heartbeats (and of the
     * local workers' pipe heartbeats). */
    uint64_t heartbeatIntervalMs = 250;

    /**
     * Test hook: serve *these* jobs instead of rebuilding the suite
     * from the Hello config knobs. The sweep-hash check still runs
     * against this list, so a client speaking a different sweep is
     * still refused.
     */
    std::vector<ExperimentJob> jobsOverride;

    /** Test hook: version the daemon claims in HelloAck. Differing
     * from kRemoteProtocolVersion refuses every handshake — the
     * version-skew drill. */
    uint32_t advertiseVersion = kRemoteProtocolVersion;

    /** Log connection/worker events to stderr. */
    bool verbose = true;
};

/**
 * The daemon: serves sweep connections over an accepting socket. One
 * connection at a time — a sweep saturates the local fleet anyway, and
 * later clients simply wait in the accept backlog. Each connection
 * gets a fresh fleet; client disconnect (orderly or not) tears the
 * fleet down, so a vanished client can never leak worker processes.
 *
 * Network test faults (VGIW_TEST_FAULT, kinds the *daemon* owns):
 * `drop:N` closes the client socket after N frames sent (fires once
 * per process, so the client's reconnect succeeds); `corruptframe:N`
 * corrupts the checksum of the Nth frame sent (once); `stallframe:N:M`
 * stalls the Nth frame mid-write for M ms; `skew:0` advertises a
 * mismatched protocol version and refuses every handshake.
 */
class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions opts);

    /**
     * Accept-and-serve until @p stop trips (or forever if null); if
     * @p once, return after the first connection completes. Returns 0.
     */
    int serve(int listenFd, bool once, const std::atomic<bool> *stop);

    /** Serve exactly one accepted connection (handshake -> sweep ->
     * teardown); closes @p fd. Exposed for in-process tests. */
    void serveConnection(int fd);

  private:
    SweepServiceOptions opts_;
    TestFault fault_;          ///< network kinds only
    uint64_t framesSent_ = 0;  ///< client-socket frames, for fault arming
    bool dropFired_ = false;
    bool corruptFired_ = false;
    bool stallFired_ = false;

    bool sendToClient(int fd, FrameType type, std::string_view payload);
};

// ---------------------------------------------------------------------
// Client side.

/** Client knobs. Env overrides (applied in the constructor):
 * VGIW_REMOTE_HEARTBEAT_TIMEOUT_MS, VGIW_REMOTE_CONNECT_TIMEOUT_MS,
 * VGIW_REMOTE_BACKOFF_MS, VGIW_REMOTE_BACKOFF_CAP_MS,
 * VGIW_REMOTE_FAILURE_BUDGET. */
struct RemoteOptions
{
    /** The daemon endpoints (from --workers host:port,host:port,...). */
    std::vector<HostPort> workers;

    /** Handshake template: config knobs + archsCsv + artifactDir; the
     * pool fills version and sweepHash itself. */
    HelloMsg hello;

    /** Retry policy carried to the remote workers, and used by the
     * local fallback engine. */
    RetryPolicy retry{};

    /** Total dispatches a job may consume across remote worker crashes
     * and link losses; 0 derives from retry exactly as ShardOptions. */
    unsigned crashAttempts = 0;

    /** Per-job wall-clock deadline enforced by the client (drops the
     * connection on overrun — the daemon kills its fleet); 0 off. */
    uint64_t jobDeadlineMs = 0;

    /** A daemon silent for this long is a lost link. Also the
     * SO_RCVTIMEO on the socket, so a mid-frame stall surfaces as
     * Timeout instead of hanging the coordinator. */
    uint64_t heartbeatTimeoutMs = 10000;

    uint64_t connectTimeoutMs = 5000;

    /** Jittered-exponential reconnect backoff (common/backoff.hh). */
    uint64_t reconnectBackoffMs = 200;
    uint64_t reconnectBackoffCapMs = 10000;

    /** Consecutive link failures (refused connects, lost connections,
     * refused handshakes) before a remote worker is quarantined. */
    unsigned failureBudget = 3;

    bool collectMetrics = false;

    /** Coordinator-owned journal (single writer); not owned. */
    ResultJournal *journal = nullptr;

    /** Local artifact store for the fallback engine only; not owned. */
    ArtifactStore *artifactStore = nullptr;

    /** Graceful-drain flag; not owned. */
    const std::atomic<bool> *stop = nullptr;

    std::function<void(size_t index, const ShardRow &)> onResult;
    std::function<void(const ShardRow &)> onFailure;
};

/**
 * The client coordinator: dispatches a sweep across remote sweep
 * daemons, reassigns on failure, and degrades to local execution when
 * the whole fleet is quarantined. Same contract as ShardSupervisor:
 * run() returns index-aligned terminal rows, resultTable() re-emits
 * worker bytes verbatim for --json byte-identity.
 */
class RemotePool
{
  public:
    explicit RemotePool(RemoteOptions opts);

    std::vector<ShardRow> run(const std::vector<ExperimentJob> &jobs);

    ResultTable &resultTable() { return table_; }
    const SupervisorStats &stats() const { return stats_; }

    /** True when at least one job was completed by the local fallback
     * because every remote was quarantined — vgiw_run exit 5. */
    bool degradedToLocal() const { return degraded_; }

  private:
    RemoteOptions opts_;
    ResultTable table_;
    SupervisorStats stats_;
    bool degraded_ = false;
};

} // namespace vgiw

#endif // VGIW_DRIVER_REMOTE_POOL_HH
