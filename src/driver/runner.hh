/**
 * @file
 * The experiment driver: functionally executes a workload once (producing
 * traces and validating against the golden reference), then replays the
 * traces on each core model. Because all architectures replay the same
 * traces, every comparison is on bit-identical work — the paper's
 * "total energy required to do the work" methodology (Section 5).
 */

#ifndef VGIW_DRIVER_RUNNER_HH
#define VGIW_DRIVER_RUNNER_HH

#include <memory>
#include <string>

#include "common/sim_error.hh"
#include "driver/run_stats.hh"
#include "driver/system_config.hh"
#include "interp/trace.hh"
#include "workloads/workload.hh"

namespace vgiw
{

/**
 * Outcome of functionally executing one workload: the traces the core
 * models replay plus the golden-check verdict. A failed golden check is
 * reported here rather than thrown, so sweep harnesses can skip the
 * workload and keep going.
 *
 * @warning The TraceSet borrows the Kernel of the WorkloadInstance it
 * was produced from (see TraceSet); when the traces come straight from
 * Runner::trace() the caller's instance must outlive them. Results
 * handed out by TraceCache own their kernel and carry no such
 * restriction.
 */
struct TraceResult
{
    std::shared_ptr<const TraceSet> traces;
    bool goldenPassed = false;
    std::string error;  ///< golden-check diagnostic when !goldenPassed
    /** Classification of the failure: Golden for a reference mismatch,
     * Functional when the execution itself failed; None on success. */
    SimErrorKind errorKind = SimErrorKind::None;

    /** Traces exist and the golden reference matched. */
    bool ok() const { return goldenPassed && traces != nullptr; }
};

/** Results of one workload on every registered architecture. */
struct ArchComparison
{
    std::string workload;
    bool goldenPassed = false;
    std::string goldenError;

    RunStats vgiw;
    RunStats fermi;
    RunStats sgmf;  ///< supported == false when SGMF cannot map it
    RunStats dice;  ///< statically scheduled CGRA (always supported)

    double
    speedupVsFermi() const
    {
        return vgiw.cycles ? double(fermi.cycles) / double(vgiw.cycles)
                           : 0.0;
    }

    double
    speedupVsSgmf() const
    {
        return sgmf.supported && vgiw.cycles
                   ? double(sgmf.cycles) / double(vgiw.cycles)
                   : 0.0;
    }

    /** Work/energy ratio vs Fermi (same work => inverse energy ratio). */
    double
    energyEfficiencyVsFermi() const
    {
        const double v = vgiw.energy.systemPj();
        return v > 0 ? fermi.energy.systemPj() / v : 0.0;
    }

    double
    energyEfficiencyVsSgmf() const
    {
        const double v = vgiw.energy.systemPj();
        return sgmf.supported && v > 0 ? sgmf.energy.systemPj() / v : 0.0;
    }

    /**
     * LVC accesses as a fraction of GPGPU RF accesses (Fig. 3). Both
     * sides are normalised to thread-word traffic: one vector RF access
     * delivers 32 threads' operands while one LVC access delivers a
     * single word, so the RF count (one access per warp, the paper's
     * counting rule) is scaled by the warp width.
     */
    double
    lvcToRfRatio() const
    {
        return fermi.rfAccesses
                   ? double(vgiw.lvcAccesses) /
                         (32.0 * double(fermi.rfAccesses))
                   : 0.0;
    }
};

/** Runs workloads across the registered core models. */
class Runner
{
  public:
    explicit Runner(const SystemConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Functionally execute @p w; the traces drive the core models.
     * Golden-check failures are reported in the result, never thrown.
     */
    TraceResult trace(const WorkloadInstance &w) const;

    /** Full all-architecture comparison for @p w. */
    ArchComparison compare(const WorkloadInstance &w) const;

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_RUNNER_HH
