#include "driver/experiment_engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/watchdog.hh"

namespace vgiw
{

namespace
{

std::function<WorkloadInstance()>
registryMake(const std::string &name)
{
    for (const auto &e : workloadRegistry())
        if (e.name == name)
            return e.make;
    return {};
}

} // namespace

std::vector<JobResult>
ExperimentEngine::run(const std::vector<ExperimentJob> &jobs)
{
    std::vector<JobResult> results(jobs.size());
    table_.reset(jobs.size());
    // Labels are only unique within one sweep, so the name->instance
    // memo from a previous run() on this engine must not leak into
    // this one (traces stay cached under their full launch keys).
    cache_.resetNameMemo();
    // Mount the persistent artifact store (if any) under both sweep
    // caches: traces and compiled artifacts are then satisfied by mmap
    // when a previous run published them.
    cache_.setStore(opts_.artifactStore);
    ccache_.setStore(opts_.artifactStore);
    if (jobs.empty())
        return results;

    ResultJournal *journal = opts_.journal;
    std::vector<std::string> keys;
    if (journal) {
        keys.resize(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            keys[i] = jobKey(jobs[i]);
    }

    if (opts_.metrics) {
        // One sink per job, labelled by its key: slot discipline makes
        // collection deterministic regardless of worker scheduling.
        opts_.metrics->reset(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            opts_.metrics->setLabel(i, jobKey(jobs[i]));
    }

    // Satisfy journaled jobs verbatim (resume mode); everything else
    // goes to the worker pool. Pending slots are pre-marked `drained`:
    // a slot no worker reaches before a stop request keeps the marker.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        JobResult &r = results[i];
        r.workload = jobs[i].workload;
        r.arch = jobs[i].arch;
        r.configLabel = jobs[i].configLabel;
        const JournalEntry *e = nullptr;
        if (journal) {
            auto it = journal->entries().find(keys[i]);
            if (it != journal->entries().end())
                e = &it->second;
        }
        if (e) {
            r.restored = true;
            r.restoredJson = e->jsonLine;
            r.goldenPassed = e->golden;
            r.quarantined = e->quarantined;
            if (e->ok) {
                r.ran = true;
            } else {
                r.error = "failed in the journaled run (restored "
                          "verbatim; see the journal entry)";
            }
        } else {
            r.drained = true;
            pending.push_back(i);
        }
    }

    // Report restored results up-front in submission order, so
    // progress and failure accounting match an uninterrupted run.
    if (opts_.onResult || opts_.onFailure || opts_.injector) {
        for (size_t i = 0; i < results.size(); ++i) {
            if (results[i].restored)
                report(i, results[i]);
        }
    }
    if (pending.empty()) {
        for (size_t i = 0; i < results.size(); ++i)
            table_.fill(i, results[i]);
        return results;
    }

    unsigned workers = opts_.jobs ? opts_.jobs
                                  : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (size_t(workers) > pending.size())
        workers = unsigned(pending.size());

    std::atomic<size_t> next{0};
    std::mutex report_mu;  // serialises the progress/failure callbacks

    auto work = [&]() {
        for (size_t n; (n = next.fetch_add(1)) < pending.size();) {
            // Graceful drain: stop dequeueing; jobs already past this
            // check run to completion (or to their watchdogs).
            if (opts_.stop &&
                opts_.stop->load(std::memory_order_acquire)) {
                break;
            }
            const size_t i = pending[n];
            results[i] = runJobWithRetry(jobs[i], i);
            if (opts_.metrics) {
                // Serialise before the callbacks and the journal so
                // the metrics land in the journaled line (resume
                // re-emits it verbatim, metrics included).
                results[i].metricsJson =
                    opts_.metrics->job(i).countersJson();
            }
            if (opts_.onResult || opts_.onFailure || opts_.injector) {
                std::lock_guard<std::mutex> lock(report_mu);
                report(i, results[i]);
            }
            // Decompose into the columnar table *after* the callbacks
            // so the row (and the journal line rendered from it)
            // records any callback-failure demotion — the line on disk
            // must equal the line the JSON writer will emit.
            table_.fill(i, results[i]);
            if (journal) {
                JournalEntry entry;
                entry.key = keys[i];
                entry.ok = results[i].ok();
                entry.golden = results[i].goldenPassed;
                entry.quarantined = results[i].quarantined;
                entry.jsonLine = std::string(table_.renderRow(i));
                journal->append(entry);
            }
        }
    };

    if (workers == 1) {
        work();  // keep single-threaded sweeps trivially debuggable
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(work);
        // jthreads join on scope exit.
    }
    // Restored and drained rows never went through the worker loop;
    // fill them now so resultTable() covers the whole sweep.
    for (size_t i = 0; i < results.size(); ++i) {
        if (!table_.filled(i))
            table_.fill(i, results[i]);
    }
    return results;
}

JobResult
ExperimentEngine::runJobWithRetry(const ExperimentJob &job, size_t index)
{
    const RetryPolicy &rp = opts_.retry;
    JobMetrics *jm = opts_.metrics ? &opts_.metrics->job(index) : nullptr;
    for (unsigned attempt = 1;; ++attempt) {
        ExperimentJob j = job;
        if (jm && attempt > 1) {
            // The final attempt's counters are the job's counters; the
            // span log keeps every attempt (nested under its span).
            jm->clearCounters();
        }
        if (attempt > 1) {
            // Escalate the watchdog budgets of every core in lockstep
            // (the job's arch picks the one that matters); runJob
            // re-anchors the deadline at re-entry, so a retry gets a
            // fresh wall-clock budget.
            j.config.vgiw.watchdog =
                rp.escalate(job.config.vgiw.watchdog, attempt);
            j.config.fermi.watchdog =
                rp.escalate(job.config.fermi.watchdog, attempt);
            j.config.sgmf.watchdog =
                rp.escalate(job.config.sgmf.watchdog, attempt);
            j.config.dice.watchdog =
                rp.escalate(job.config.dice.watchdog, attempt);
        }
        JobResult out;
        {
            MetricSpan attempt_span(jm, "attempt");
            out = runJob(j, index);
        }
        out.attempts = attempt;
        if (jm)
            jm->set("engine.attempts", double(attempt));
        if (out.ok())
            return out;
        const bool draining =
            opts_.stop && opts_.stop->load(std::memory_order_acquire);
        if (!draining && rp.shouldRetry(out.errorKind, attempt))
            continue;
        // Terminal failure. Quarantined = the kind was retryable and
        // the configured budget is exhausted; a drain abandons the
        // loop without quarantining (a resume will retry afresh), and
        // fail-fast kinds are plain failures, as without a policy.
        out.quarantined = !draining && rp.maxAttempts > 1 &&
                          RetryPolicy::retryableKind(out.errorKind) &&
                          attempt >= rp.maxAttempts;
        return out;
    }
}

std::string
ExperimentEngine::jobKey(const ExperimentJob &job)
{
    std::string key = job.workload + "|" + job.arch + "|" +
                      job.configLabel + "|" +
                      job.config.jobFingerprint(job.arch);
    // A custom make() is opaque: tag it so registry jobs can never
    // collide with synthetic ones sharing a label.
    if (job.make)
        key += "|custom";
    return key;
}

std::string
ExperimentEngine::sweepHash(const std::vector<ExperimentJob> &jobs)
{
    // Order-sensitive FNV-1a over the job keys: cheap, stable across
    // platforms, and any definition change flips it.
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xffu;  // record separator: {"a","b"} != {"ab"}
        h *= 1099511628211ull;
    };
    for (const auto &job : jobs)
        mix(jobKey(job));
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
    return buf;
}

void
ExperimentEngine::report(size_t index, JobResult &result)
{
    // Called with the reporting mutex held. An exception out of a user
    // callback would unwind through the worker jthread and terminate
    // the whole process — demote it to an internal failure on the job.
    // Restored jobs never ran, so they get no callback span.
    JobMetrics *jm = opts_.metrics && !result.restored
                         ? &opts_.metrics->job(index)
                         : nullptr;
    MetricSpan span(jm, "callback");
    try {
        if (opts_.injector)
            opts_.injector->fire(FaultInjector::Point::Callback, index);
        if (opts_.onResult)
            opts_.onResult(index, result);
    } catch (const std::exception &e) {
        result.error = std::string("onResult callback threw: ") + e.what();
        result.errorKind = SimErrorKind::Internal;
    } catch (...) {
        result.error = "onResult callback threw a non-standard exception";
        result.errorKind = SimErrorKind::Internal;
    }

    if (opts_.onFailure && !result.ok()) {
        try {
            opts_.onFailure(result);
        } catch (const std::exception &e) {
            result.error += "; onFailure callback threw: ";
            result.error += e.what();
            if (result.errorKind == SimErrorKind::None)
                result.errorKind = SimErrorKind::Internal;
        } catch (...) {
            result.error += "; onFailure callback threw a non-standard "
                            "exception";
            if (result.errorKind == SimErrorKind::None)
                result.errorKind = SimErrorKind::Internal;
        }
    }
}

JobResult
ExperimentEngine::runJob(const ExperimentJob &job, size_t index)
{
    JobResult out;
    out.workload = job.workload;
    out.arch = job.arch;
    out.configLabel = job.configLabel;

    // Any vgiw_panic raised on this thread while the job runs (replay
    // invariant violations, injected faults) throws SimPanic instead of
    // aborting the process.
    PanicCaptureScope capture;
    FaultInjector *inj = opts_.injector;

    // Make the job's sink visible to the core model's replay loop for
    // the duration of the job; null when metrics are disabled.
    JobMetrics *jm = opts_.metrics ? &opts_.metrics->job(index) : nullptr;
    MetricSinkScope sink(jm);

    try {
        // Validate before building any simulation state: a malformed
        // sweep point fails fast as a config error without consuming a
        // functional execution.
        if (std::string msg = job.config.validate(job.arch); !msg.empty()) {
            out.error = msg;
            out.errorKind = SimErrorKind::Config;
            return out;
        }

        // Per-job config copy: the wall-clock deadline (if any) is
        // anchored at job entry, so time spent tracing, compiling or
        // stalled counts against it — not just the replay loop.
        SystemConfig cfg = job.config;
        cfg.anchorWatchdogs(std::chrono::steady_clock::now());

        auto model = makeCoreModel(job.arch, cfg);
        if (!model) {
            out.error = "unknown architecture '" + job.arch + "'";
            out.errorKind = SimErrorKind::Config;
            return out;
        }

        std::function<WorkloadInstance()> make =
            job.make ? job.make : registryMake(job.workload);
        if (!make) {
            out.error = "unknown workload '" + job.workload + "'";
            out.errorKind = SimErrorKind::Config;
            return out;
        }

        TraceResult traced;
        try {
            MetricSpan span(jm, "trace");
            if (inj)
                inj->fire(FaultInjector::Point::Trace, index);
            // The jobKey rule makes custom-make labels unique, so a
            // job's workload name determines its instance.
            traced = cache_.get(job.workload, make, /*nameIsUnique=*/true);
        } catch (const SimError &e) {
            out.error = e.what();
            out.errorKind = e.kind();
            return out;
        } catch (const std::exception &e) {
            out.error = e.what();
            out.errorKind = SimErrorKind::Functional;
            return out;
        }
        out.goldenPassed = traced.goldenPassed;
        if (jm && traced.traces) {
            // Deterministic per workload (ROADMAP's trace_cache.bytes
            // item): resident compressed footprint of this job's traces
            // and what the raw arrays would have cost.
            const double cb = double(traced.traces->compressedBytes());
            const double ub = double(traced.traces->uncompressedBytes());
            jm->set("trace_cache.bytes", cb);
            jm->set("trace_cache.uncompressed_bytes", ub);
            jm->set("trace_cache.compression_ratio", cb > 0 ? ub / cb : 1.0);
        }
        if (!traced.ok()) {
            out.error = traced.error.empty() ? "functional execution failed"
                                             : traced.error;
            out.errorKind = traced.errorKind != SimErrorKind::None
                                ? traced.errorKind
                                : SimErrorKind::Functional;
            return out;
        }

        std::shared_ptr<const CompiledKernel> compiled;
        CompileCache::FetchInfo fetch;
        try {
            // Compile once per (architecture compile slice, kernel):
            // sweep points that only vary replay-side knobs share the
            // artifact.
            MetricSpan span(jm, "compile");
            if (inj)
                inj->fire(FaultInjector::Point::Compile, index);
            compiled = ccache_.get(
                *model,
                TraceCache::keyFor(job.workload, traced.traces->launch),
                traced.traces, &fetch);
        } catch (const SimError &e) {
            out.error = e.what();
            out.errorKind = e.kind();
            return out;
        } catch (const std::exception &e) {
            out.error = e.what();
            out.errorKind = SimErrorKind::Compile;
            return out;
        }

        if (jm && opts_.artifactStore) {
            // Provenance of this job's two artifacts (0..2 store hits).
            // Read off the shared cache entries, not off scheduling
            // observables, so the values are identical for every
            // requester of a key and across worker counts.
            const double trace_hit = traced.traces->storeBacked ? 1 : 0;
            const double ck_hit = fetch.storeBacked ? 1 : 0;
            jm->set("artifact_store.hits", trace_hit + ck_hit);
            jm->set("artifact_store.misses", 2 - trace_hit - ck_hit);
            jm->set("artifact_store.bytes_mapped",
                    double(traced.traces->mappedBytes) +
                        double(fetch.mappedBytes));
        }

        try {
            MetricSpan span(jm, "replay");
            if (inj)
                inj->fire(FaultInjector::Point::Replay, index);
            out.stats = model->run(*traced.traces, *compiled);
            out.ran = true;
        } catch (const WatchdogError &e) {
            out.error = e.what();
            out.errorKind = SimErrorKind::Watchdog;
            out.partial.valid = true;
            out.partial.cycles = e.cycles;
            out.partial.dynBlockExecs = e.dynBlockExecs;
            out.partial.dynThreadOps = e.dynThreadOps;
        } catch (const SimError &e) {
            // Covers SimPanic (an invariant violation caught by the
            // capture scope) and any typed replay failure.
            out.error = e.what();
            out.errorKind = e.kind();
        } catch (const std::exception &e) {
            out.error = e.what();
            out.errorKind = SimErrorKind::Internal;
        }
    } catch (const SimError &e) {
        // Safety net: nothing past the stage handlers should throw,
        // but a fault here must still land in the result slot.
        out.error = e.what();
        out.errorKind = e.kind();
    } catch (const std::exception &e) {
        out.error = e.what();
        out.errorKind = SimErrorKind::Internal;
    } catch (...) {
        out.error = "unknown non-standard exception";
        out.errorKind = SimErrorKind::Internal;
    }
    return out;
}

std::vector<ExperimentJob>
ExperimentEngine::suiteJobs(const SystemConfig &cfg,
                            const std::vector<std::string> &archs,
                            const std::string &configLabel)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(workloadRegistry().size() * archs.size());
    for (const auto &entry : workloadRegistry()) {
        for (const auto &arch : archs) {
            ExperimentJob job;
            job.workload = entry.name;
            job.arch = arch;
            job.configLabel = configLabel;
            job.config = cfg;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<ArchComparison>
ExperimentEngine::compareSuite(const SystemConfig &cfg)
{
    const auto &archs = knownArchitectures();
    std::vector<JobResult> results = run(suiteJobs(cfg, archs));

    std::vector<ArchComparison> out;
    out.reserve(workloadRegistry().size());
    size_t i = 0;
    for (const auto &entry : workloadRegistry()) {
        ArchComparison c;
        c.workload = entry.name;
        c.goldenPassed = true;
        for (const auto &arch : archs) {
            const JobResult &r = results[i++];
            if (!r.goldenPassed) {
                c.goldenPassed = false;
                c.goldenError = r.error;
            }
            if (arch == "vgiw")
                c.vgiw = r.stats;
            else if (arch == "fermi")
                c.fermi = r.stats;
            else if (arch == "sgmf")
                c.sgmf = r.stats;
            else if (arch == "dice")
                c.dice = r.stats;
        }
        out.push_back(std::move(c));
    }
    return out;
}

std::string
ExperimentEngine::toJsonLine(const JobResult &r)
{
    // Compatibility shim: decompose into a one-row table and render
    // through the shared formatter, so a drive-by caller cannot
    // produce bytes the journal/--json path would not.
    ResultTable table;
    table.reset(1);
    table.fill(0, r);
    return std::string(table.renderRow(0));
}

} // namespace vgiw
