#include "driver/experiment_engine.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

namespace vgiw
{

namespace
{

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal for a double. */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::function<WorkloadInstance()>
registryMake(const std::string &name)
{
    for (const auto &e : workloadRegistry())
        if (e.name == name)
            return e.make;
    return {};
}

} // namespace

std::vector<JobResult>
ExperimentEngine::run(const std::vector<ExperimentJob> &jobs)
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned workers = opts_.jobs ? opts_.jobs
                                  : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (size_t(workers) > jobs.size())
        workers = unsigned(jobs.size());

    std::atomic<size_t> next{0};
    std::mutex report_mu;  // serialises the progress/failure callbacks

    auto work = [&]() {
        for (size_t i; (i = next.fetch_add(1)) < jobs.size();) {
            results[i] = runJob(jobs[i]);
            if (opts_.onResult || (opts_.onFailure && !results[i].ok())) {
                std::lock_guard<std::mutex> lock(report_mu);
                if (opts_.onResult)
                    opts_.onResult(i, results[i]);
                if (opts_.onFailure && !results[i].ok())
                    opts_.onFailure(results[i]);
            }
        }
    };

    if (workers == 1) {
        work();  // keep single-threaded sweeps trivially debuggable
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(work);
        // jthreads join on scope exit.
    }
    return results;
}

JobResult
ExperimentEngine::runJob(const ExperimentJob &job)
{
    JobResult out;
    out.workload = job.workload;
    out.arch = job.arch;
    out.configLabel = job.configLabel;

    auto model = makeCoreModel(job.arch, job.config);
    if (!model) {
        out.error = "unknown architecture '" + job.arch + "'";
        return out;
    }

    std::function<WorkloadInstance()> make =
        job.make ? job.make : registryMake(job.workload);
    if (!make) {
        out.error = "unknown workload '" + job.workload + "'";
        return out;
    }

    TraceResult traced;
    try {
        traced = cache_.get(job.workload, make);
    } catch (const std::exception &e) {
        out.error = e.what();
        return out;
    }
    out.goldenPassed = traced.goldenPassed;
    if (!traced.ok()) {
        out.error = traced.error.empty() ? "functional execution failed"
                                         : traced.error;
        return out;
    }

    try {
        // Compile once per (architecture compile slice, kernel): sweep
        // points that only vary replay-side knobs share the artifact.
        auto compiled = ccache_.get(
            *model, TraceCache::keyFor(job.workload, traced.traces->launch),
            traced.traces);
        out.stats = model->run(*traced.traces, *compiled);
        out.ran = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

std::vector<ExperimentJob>
ExperimentEngine::suiteJobs(const SystemConfig &cfg,
                            const std::vector<std::string> &archs,
                            const std::string &configLabel)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(workloadRegistry().size() * archs.size());
    for (const auto &entry : workloadRegistry()) {
        for (const auto &arch : archs) {
            ExperimentJob job;
            job.workload = entry.name;
            job.arch = arch;
            job.configLabel = configLabel;
            job.config = cfg;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<ArchComparison>
ExperimentEngine::compareSuite(const SystemConfig &cfg)
{
    const auto &archs = knownArchitectures();
    std::vector<JobResult> results = run(suiteJobs(cfg, archs));

    std::vector<ArchComparison> out;
    out.reserve(workloadRegistry().size());
    size_t i = 0;
    for (const auto &entry : workloadRegistry()) {
        ArchComparison c;
        c.workload = entry.name;
        c.goldenPassed = true;
        for (const auto &arch : archs) {
            const JobResult &r = results[i++];
            if (!r.goldenPassed) {
                c.goldenPassed = false;
                c.goldenError = r.error;
            }
            if (arch == "vgiw")
                c.vgiw = r.stats;
            else if (arch == "fermi")
                c.fermi = r.stats;
            else if (arch == "sgmf")
                c.sgmf = r.stats;
        }
        out.push_back(std::move(c));
    }
    return out;
}

std::string
ExperimentEngine::toJsonLine(const JobResult &r)
{
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(r.workload) << "\""
       << ",\"arch\":\"" << jsonEscape(r.arch) << "\""
       << ",\"config\":\"" << jsonEscape(r.configLabel) << "\""
       << ",\"golden\":" << (r.goldenPassed ? "true" : "false")
       << ",\"ok\":" << (r.ok() ? "true" : "false");
    if (!r.error.empty())
        os << ",\"error\":\"" << jsonEscape(r.error) << "\"";
    if (r.ran) {
        const RunStats &s = r.stats;
        os << ",\"supported\":" << (s.supported ? "true" : "false")
           << ",\"cycles\":" << s.cycles
           << ",\"config_cycles\":" << s.configCycles
           << ",\"reconfigs\":" << s.reconfigs
           << ",\"dyn_block_execs\":" << s.dynBlockExecs
           << ",\"dyn_thread_ops\":" << s.dynThreadOps
           << ",\"dyn_warp_instrs\":" << s.dynWarpInstrs
           << ",\"rf_accesses\":" << s.rfAccesses
           << ",\"lvc_accesses\":" << s.lvcAccesses
           << ",\"energy_core_pj\":" << jsonNumber(s.energy.corePj())
           << ",\"energy_die_pj\":" << jsonNumber(s.energy.diePj())
           << ",\"energy_system_pj\":" << jsonNumber(s.energy.systemPj())
           << ",\"l1_accesses\":" << s.l1Stats.accesses()
           << ",\"l1_misses\":" << s.l1Stats.misses()
           << ",\"l2_accesses\":" << s.l2Stats.accesses()
           << ",\"l2_misses\":" << s.l2Stats.misses()
           << ",\"lvc_misses\":" << s.lvcStats.misses()
           << ",\"dram_accesses\":" << s.dramStats.accesses
           << ",\"dram_row_hits\":" << s.dramStats.rowHits;
        os << ",\"extra\":{";
        bool first = true;
        for (const auto &[name, value] : s.extra.entries()) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

} // namespace vgiw
