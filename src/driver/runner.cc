#include "driver/runner.hh"

#include "common/logging.hh"
#include "interp/interpreter.hh"

namespace vgiw
{

TraceSet
Runner::trace(const WorkloadInstance &w, bool *golden_ok,
              std::string *golden_err) const
{
    MemoryImage mem = w.memory;  // keep the instance reusable
    TraceSet traces = Interpreter{}.run(w.kernel, w.launch, mem);

    if (w.check) {
        std::string err;
        const bool ok = w.check(mem, err);
        if (golden_ok)
            *golden_ok = ok;
        if (golden_err)
            *golden_err = err;
        if (!ok && !golden_ok) {
            vgiw_fatal("workload '", w.fullName(),
                       "' failed its golden check: ", err);
        }
    } else if (golden_ok) {
        *golden_ok = true;
    }
    return traces;
}

ArchComparison
Runner::compare(const WorkloadInstance &w) const
{
    ArchComparison out;
    out.workload = w.fullName();

    TraceSet traces = trace(w, &out.goldenPassed, &out.goldenError);
    if (!out.goldenPassed) {
        vgiw_fatal("workload '", w.fullName(),
                   "' failed its golden check: ", out.goldenError);
    }

    out.vgiw = VgiwCore(cfg_.vgiw).run(traces);
    out.fermi = FermiCore(cfg_.fermi).run(traces);
    out.sgmf = SgmfCore(cfg_.sgmf).run(traces);
    return out;
}

} // namespace vgiw
