#include "driver/runner.hh"

#include "common/logging.hh"
#include "interp/interpreter.hh"

namespace vgiw
{

TraceResult
Runner::trace(const WorkloadInstance &w) const
{
    MemoryImage mem = w.memory;  // keep the instance reusable
    TraceResult out;
    out.traces = std::make_shared<const TraceSet>(
        Interpreter{}.run(w.kernel, w.launch, mem));

    if (w.check) {
        out.goldenPassed = w.check(mem, out.error);
        if (!out.goldenPassed)
            out.errorKind = SimErrorKind::Golden;
    } else {
        out.goldenPassed = true;
    }
    return out;
}

ArchComparison
Runner::compare(const WorkloadInstance &w) const
{
    ArchComparison out;
    out.workload = w.fullName();

    TraceResult traced = trace(w);
    out.goldenPassed = traced.goldenPassed;
    out.goldenError = traced.error;
    if (!traced.goldenPassed) {
        vgiw_fatal("workload '", w.fullName(),
                   "' failed its golden check: ", traced.error);
    }

    const TraceSet &traces = *traced.traces;
    out.vgiw = VgiwCore(cfg_.vgiw).run(traces);
    out.fermi = FermiCore(cfg_.fermi).run(traces);
    out.sgmf = SgmfCore(cfg_.sgmf).run(traces);
    out.dice = DiceCore(cfg_.dice).run(traces);
    return out;
}

} // namespace vgiw
