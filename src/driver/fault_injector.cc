#include "driver/fault_injector.hh"

#include <chrono>
#include <csignal>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "common/sim_error.hh"

namespace vgiw
{

const char *
FaultInjector::pointName(Point p)
{
    switch (p) {
      case Point::Trace: return "trace";
      case Point::Compile: return "compile";
      case Point::Replay: return "replay";
      case Point::Callback: return "callback";
    }
    return "?";
}

void
FaultInjector::armThrow(Point p, size_t job_index, std::string message)
{
    arm(p, job_index, [message = std::move(message)]() {
        throw std::runtime_error(message);
    });
}

void
FaultInjector::armPanic(Point p, size_t job_index, std::string message)
{
    arm(p, job_index,
        [message = std::move(message)]() { vgiw_panic(message); });
}

void
FaultInjector::armStall(Point p, size_t job_index, int millis)
{
    arm(p, job_index, [millis]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(millis));
    });
}

void
FaultInjector::armRaise(Point p, size_t job_index, int signo)
{
    arm(p, job_index, [signo]() { std::raise(signo); });
}

void
FaultInjector::armCorrupt(Point p, size_t job_index)
{
    const std::string what = std::string("injected corruption at ") +
                             pointName(p) + " point";
    switch (p) {
      case Point::Trace:
        arm(p, job_index, [what]() {
            throw SimError(SimErrorKind::Functional, what);
        });
        break;
      case Point::Compile:
        arm(p, job_index, [what]() {
            throw SimError(SimErrorKind::Compile, what);
        });
        break;
      case Point::Replay:
        // Corrupted replay state surfaces as an invariant violation.
        arm(p, job_index, [what]() { vgiw_panic(what); });
        break;
      case Point::Callback:
        arm(p, job_index,
            [what]() { throw std::runtime_error(what); });
        break;
    }
}

void
FaultInjector::armTransient(Point p, size_t job_index,
                            unsigned fail_count,
                            std::function<void()> fault)
{
    if (fail_count == 0)
        return;  // "fail zero attempts" arms nothing
    if (!fault) {
        const std::string what =
            std::string("injected transient fault at ") + pointName(p) +
            " point";
        // Internal-kind: retryable under the default RetryPolicy, so
        // the recover-after-retry path is what gets exercised.
        fault = [what]() {
            throw SimError(SimErrorKind::Internal, what);
        };
    }
    std::lock_guard<std::mutex> lock(mu_);
    armed_[Key(uint8_t(p), job_index)] =
        Rule{std::move(fault), fail_count};
}

void
FaultInjector::arm(Point p, size_t job_index, std::function<void()> fault)
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_[Key(uint8_t(p), job_index)] = Rule{std::move(fault), 1};
}

void
FaultInjector::fire(Point p, size_t job_index)
{
    std::function<void()> fault;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = armed_.find(Key(uint8_t(p), job_index));
        if (it == armed_.end())
            return;
        if (--it->second.remaining == 0) {
            fault = std::move(it->second.fault);
            armed_.erase(it);  // exhausted: later firings pass clean
        } else {
            fault = it->second.fault;  // transient: more firings left
        }
    }
    fired_.fetch_add(1);
    fault();  // outside the lock: the fault may stall or rethrow
}

} // namespace vgiw
