/**
 * @file
 * The shard supervisor: process-isolated sweep execution.
 *
 * The in-process ExperimentEngine contains every *soft* fault — typed
 * exceptions, watchdog trips, captured panics — but a hard fault
 * (SIGSEGV, std::abort, an OOM kill, a runaway stall) still takes down
 * the whole process and every in-flight job. The supervisor moves job
 * execution into forked worker processes (`vgiw_run --suite --shards N`)
 * so a hard fault costs one worker, not the sweep:
 *
 *  - **Workers** are fork()ed (no exec — they inherit the parsed job
 *    list, including custom make() closures, through the address
 *    space), each runs jobs one at a time through its own
 *    ExperimentEngine, and streams the engine-rendered JSON result rows
 *    back over a checksummed pipe protocol (common/subprocess).
 *  - **Supervision**: workers send heartbeats; the coordinator enforces
 *    a heartbeat timeout and an optional per-job wall-clock deadline.
 *    A worker that dies or goes silent is reaped via waitpid, its
 *    in-flight job is re-dispatched to a fresh worker until the crash
 *    budget is exhausted — then recorded as a terminal `worker_crash`
 *    row with attempts/quarantined fields — and the worker is respawned
 *    with exponential backoff.
 *  - **Work stealing**: jobs are partitioned round-robin into per-worker
 *    queues; an idle worker steals from the back of the longest other
 *    queue, so one straggler (or one crashing-and-backing-off shard)
 *    does not serialise the tail.
 *  - **Exactly-once**: a job is owned by at most one live worker at a
 *    time, and the coordinator is the journal's single writer. Job
 *    identity is ExperimentEngine::jobKey, the same key the resume
 *    path uses, so kill + resume semantics carry over unchanged.
 *  - **Byte-identity**: workers render rows with the same
 *    ResultTable::renderRow the single-process engine uses, and the
 *    coordinator re-emits those bytes verbatim (the restored-row
 *    mechanism) — so shard-mode --json output is byte-identical to a
 *    single-process run for every surviving job.
 *
 * The artifact store (PR 7) is opened before forking and shared
 * read/write across the fleet: publication is atomic-rename, loads
 * validate checksums, so concurrent workers warm-start from and feed
 * the same store — a warm sharded sweep traces and compiles nothing.
 */

#ifndef VGIW_DRIVER_WORKER_POOL_HH
#define VGIW_DRIVER_WORKER_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "driver/experiment_engine.hh"
#include "driver/shard_wire.hh"

namespace vgiw
{

/** One terminal sweep-point outcome as the coordinator saw it. */
struct ShardRow
{
    std::string workload;
    std::string arch;
    std::string configLabel;

    bool ok = false;        ///< ran in a worker and succeeded
    bool golden = false;    ///< golden check verdict
    bool ran = false;       ///< stats fields below are meaningful
    bool supported = false; ///< arch supports the kernel (ran rows)
    bool quarantined = false;
    bool restored = false;  ///< satisfied verbatim from the journal
    bool drained = false;   ///< never ran: interrupted before dispatch

    SimErrorKind errorKind = SimErrorKind::None;
    unsigned attempts = 1;  ///< dispatches (crashes) or in-worker tries
    std::string error;      ///< diagnostic; empty on success

    // The ASCII-report subset of RunStats (the full stats live in the
    // JSON line; shipping the whole RunStats over the pipe would just
    // duplicate the rendered row).
    uint64_t cycles = 0;
    double energySystemPj = 0.0;
    double l1MissRate = 0.0;

    /** The worker-rendered JSON-lines object (empty for drained rows);
     * byte-identical to what a single-process run emits for this job. */
    std::string jsonLine;
};

/** Timing-dependent supervision counters plus fleet-summed worker
 * stats. Counter *names* are a stable surface (pinned by tests);
 * values depend on scheduling and are excluded from bit-identity. */
struct SupervisorStats
{
    uint64_t restarts = 0;        ///< workers respawned after a death
    uint64_t crashes = 0;         ///< worker deaths with a job in flight
    uint64_t steals = 0;          ///< jobs taken from another shard's queue
    uint64_t heartbeatMisses = 0; ///< silent workers killed by timeout
    uint64_t corruptFrames = 0;   ///< checksum-bad records skipped in-stream

    // Remote transport counters (RemotePool; always 0 for the pipe
    // supervisor, but part of the one stable counter surface).
    uint64_t reconnects = 0;   ///< successful re-connects after a loss
    uint64_t linkLosses = 0;   ///< connections lost/refused/stalled
    uint64_t fallbackJobs = 0; ///< jobs finished by the local fallback

    // Summed from each worker's final Stats frame (workers that crash
    // never report; these are a floor, used for the summary line).
    uint64_t functionalExecutions = 0;
    uint64_t compilations = 0;
    uint64_t storeHits = 0;
    uint64_t storeMisses = 0;
    uint64_t storeBytesMapped = 0;

    /** `{"supervisor.crashes":N,...}` — sorted keys, for --metrics. */
    std::string countersJson() const;
};

/** Coordinator knobs. Env overrides (applied in the constructor, for
 * tests and ops tuning): VGIW_SHARD_HEARTBEAT_MS,
 * VGIW_SHARD_HEARTBEAT_TIMEOUT_MS, VGIW_SHARD_BACKOFF_MS,
 * VGIW_SHARD_BACKOFF_CAP_MS. */
struct ShardOptions
{
    /** Worker process count (clamped to the job count; min 1). */
    unsigned shards = 2;

    /** In-worker retry policy for soft failures (watchdog/internal),
     * exactly as in single-process mode. */
    RetryPolicy retry{};

    /**
     * Total dispatches a job may consume across worker crashes before
     * it is quarantined as a terminal `worker_crash`. 0 derives the
     * budget from the retry policy: 1 + max(retry.maxAttempts - 1, 1),
     * i.e. at least one re-dispatch even without --retries — a single
     * environmental crash should not poison a job.
     */
    unsigned crashAttempts = 0;

    /** Per-job wall-clock deadline enforced by the *coordinator*
     * (SIGKILL on overrun); 0 disables. This is the backstop for jobs
     * whose worker is too wedged for its own watchdog to fire. */
    uint64_t jobDeadlineMs = 0;

    uint64_t heartbeatIntervalMs = 250;
    uint64_t heartbeatTimeoutMs = 10000;
    /** Base respawn backoff after a crash; the envelope doubles per
     * consecutive crash of the same shard with uniform jitter in
     * [d/2, d] (common/backoff.hh) so simultaneously-crashed workers
     * do not respawn in lockstep. */
    uint64_t respawnBackoffMs = 200;
    /** Documented backoff ceiling: no delay ever exceeds this. */
    uint64_t respawnBackoffCapMs = 10000;

    /** Workers collect per-job metrics (the "metrics" JSON object),
     * matching a single-process --metrics run byte-for-byte. */
    bool collectMetrics = false;

    /** Coordinator-owned journal (single writer); not owned. Restored
     * entries satisfy jobs without dispatching them. */
    ResultJournal *journal = nullptr;

    /** Shared artifact store, opened before forking; not owned. */
    ArtifactStore *artifactStore = nullptr;

    /** Graceful-drain flag (usually &drainFlag()); not owned. When it
     * trips, the coordinator forwards SIGTERM to every worker, stops
     * dispatching, waits for in-flight jobs and marks the rest
     * drained. */
    const std::atomic<bool> *stop = nullptr;

    /** Serialised progress callbacks, mirroring EngineOptions. */
    std::function<void(size_t index, const ShardRow &)> onResult;
    std::function<void(const ShardRow &)> onFailure;

    /**
     * Test hook, invoked *in the worker process* with the global job
     * index just before the job runs. Tests raise hard signals or mute
     * heartbeats here to exercise supervision without a CLI.
     */
    std::function<void(size_t index)> workerPreJob;
};

/** Forks, feeds and supervises a fleet of shard workers. */
class ShardSupervisor
{
  public:
    explicit ShardSupervisor(ShardOptions opts);

    /**
     * Run all @p jobs across the worker fleet; the returned vector is
     * index-aligned with submission order. Every row is terminal:
     * executed, restored, quarantined after crashes, or drained.
     */
    std::vector<ShardRow> run(const std::vector<ExperimentJob> &jobs);

    /** The last run()'s rows in columnar form, rendered byte-identical
     * to a single-process sweep — the input for --json. */
    ResultTable &resultTable() { return table_; }

    const SupervisorStats &stats() const { return stats_; }

  private:
    ShardOptions opts_;
    ResultTable table_;
    SupervisorStats stats_;
};

// muteWorkerHeartbeatsForTest and the worker main loop moved to
// driver/shard_wire.hh — the daemon's local fleet forks the same body.

} // namespace vgiw

#endif // VGIW_DRIVER_WORKER_POOL_HH
