/**
 * @file
 * Persistent content-addressed artifact store.
 *
 * A sweep's two expensive, perfectly-deterministic phases — functional
 * execution (traces) and kernel compilation (per-arch CompiledKernel
 * artifacts) — are pure functions of content the driver already
 * fingerprints: the kernel IR plus the launch geometry for traces, the
 * kernel IR plus CoreModel::compileKey() for compile artifacts. The
 * store persists both across processes so a warm sweep replays a whole
 * suite with zero functional executions and zero compilations; it is
 * also the mmap-shared substrate a future coordinator/worker sweep
 * service mounts so a fleet compiles each kernel exactly once.
 *
 * Addressing: a blob's logical key is a readable pipe-delimited string
 * (e.g. "trace|<irhash>|<launch>"); its on-disk address is the 64-bit
 * FNV-1a of that string, rendered as hex under <dir>/objects/. The full
 * key is embedded in the blob header and verified on load, so a hash
 * collision demotes to a miss instead of serving the wrong artifact.
 *
 * Durability and integrity: publication is write-temp / fsync / rename
 * (writeFileAtomic), so concurrent publishers of one key — two worker
 * processes compiling the same kernel — both succeed and readers never
 * observe a torn blob. Loads mmap the file read-only (zero-copy: a
 * warm trace's compressed streams are decoded straight out of the
 * mapping, never rematerialised) and validate magic, format version,
 * key and an FNV-1a payload checksum; any mismatch — truncation, a
 * flipped byte, a stale format — is a miss, never an error. The store
 * is strictly a cache: every failure path falls back to recomputing.
 */

#ifndef VGIW_DRIVER_ARTIFACT_STORE_HH
#define VGIW_DRIVER_ARTIFACT_STORE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

namespace vgiw
{

/** 64-bit FNV-1a — the store's address and checksum hash. */
inline uint64_t
fnv1a(std::string_view bytes, uint64_t h = 14695981039346656037ull)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** fnv1a over raw bytes (payload checksums). */
inline uint64_t
fnv1aBytes(const void *data, size_t len,
           uint64_t h = 14695981039346656037ull)
{
    return fnv1a(
        std::string_view(static_cast<const char *>(data), len), h);
}

/**
 * Little-endian bounds-checked byte codec for artifact payloads. The
 * writer appends into a std::string (what publish() takes); the reader
 * never reads past the blob and reports truncation through ok() so a
 * malformed artifact deserialises to "miss", not to a crash.
 */
class ByteWriter
{
  public:
    explicit ByteWriter(std::string &out) : out_(out) {}

    void
    u32(uint32_t v)
    {
        raw(&v, sizeof v);
    }
    void
    u64(uint64_t v)
    {
        raw(&v, sizeof v);
    }
    void
    i32(int32_t v)
    {
        raw(&v, sizeof v);
    }
    void
    f64(double v)
    {
        raw(&v, sizeof v);
    }
    void
    u8(uint8_t v)
    {
        out_.push_back(char(v));
    }
    void
    raw(const void *p, size_t n)
    {
        out_.append(static_cast<const char *>(p), n);
    }

  private:
    std::string &out_;
};

class ByteReader
{
  public:
    ByteReader(const void *data, size_t len)
        : p_(static_cast<const uint8_t *>(data)), end_(p_ + len)
    {
    }

    /** No read so far ran off the end. */
    bool ok() const { return ok_; }
    /** Every byte was consumed (trailing garbage is also corruption). */
    bool done() const { return ok_ && p_ == end_; }
    size_t remaining() const { return size_t(end_ - p_); }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }
    uint64_t
    u64()
    {
        uint64_t v = 0;
        raw(&v, sizeof v);
        return v;
    }
    int32_t
    i32()
    {
        int32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }
    double
    f64()
    {
        double v = 0;
        raw(&v, sizeof v);
        return v;
    }
    uint8_t
    u8()
    {
        uint8_t v = 0;
        raw(&v, sizeof v);
        return v;
    }
    void
    raw(void *out, size_t n)
    {
        if (!ok_ || remaining() < n) {
            ok_ = false;
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, p_, n);
        p_ += n;
    }
    /** Borrow @p n bytes in place (no copy); nullptr on truncation. */
    const uint8_t *
    bytes(size_t n)
    {
        if (!ok_ || remaining() < n) {
            ok_ = false;
            return nullptr;
        }
        const uint8_t *p = p_;
        p_ += n;
        return p;
    }

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    bool ok_ = true;
};

/**
 * Content-addressed, crash-safe, mmap-loaded blob store rooted at a
 * directory (the --artifact-dir). Thread-safe: loads and publishes of
 * distinct keys proceed concurrently; same-key races are resolved by
 * atomic rename (last writer wins with byte-identical content, since
 * blobs are deterministic functions of their key).
 */
class ArtifactStore
{
  public:
    /** Bumped whenever the blob header or any payload layout changes;
     * blobs from other versions demote to misses. */
    static constexpr uint32_t kFormatVersion = 1;

    ArtifactStore() = default;

    /**
     * Open (creating directories as needed) the store rooted at @p dir.
     * Returns false and fills @p error when the directory cannot be
     * created or written; a failed open leaves the store disabled
     * (every load a miss, every publish a no-op).
     */
    bool open(const std::string &dir, std::string *error = nullptr);

    bool isOpen() const { return !objectsDir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * A validated, mapped blob. @p payload points into the mapping
     * (zero-copy) and stays valid for the lifetime of @p backing —
     * callers that keep decoded views into the payload (the trace
     * cache) must keep @p backing alive alongside them.
     */
    struct Blob
    {
        std::shared_ptr<const void> backing;
        const uint8_t *payload = nullptr;
        size_t size = 0;
    };

    /**
     * Look up @p key (of kind @p kind, which names the file suffix —
     * "trace", "vgiw.ck", ...). True and a validated Blob on a hit;
     * false on a miss. Corrupt, truncated, stale-version and
     * wrong-key blobs are misses.
     */
    bool load(const std::string &kind, const std::string &key, Blob *out);

    /**
     * Durably publish @p payload under @p key. Failures (disk full,
     * permissions) are reported but non-fatal by design: the caller
     * already holds the computed artifact and the store is a cache.
     */
    bool publish(const std::string &kind, const std::string &key,
                 std::string_view payload, std::string *error = nullptr);

    /** The object path a (kind, key) pair maps to (tests, tools). */
    std::string objectPath(const std::string &kind,
                           const std::string &key) const;

    /** Mapped-blob hits served since open(). */
    uint64_t hits() const { return hits_.load(); }
    /** Lookups that found no valid blob (absent or corrupt). */
    uint64_t misses() const { return misses_.load(); }
    /** Total payload bytes served from mappings. */
    uint64_t bytesMapped() const { return bytesMapped_.load(); }
    /** Misses caused by a present-but-invalid blob (diagnostics). */
    uint64_t rejected() const { return rejected_.load(); }

  private:
    std::string dir_;
    std::string objectsDir_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> bytesMapped_{0};
    std::atomic<uint64_t> rejected_{0};
};

} // namespace vgiw

#endif // VGIW_DRIVER_ARTIFACT_STORE_HH
