#include "driver/worker_pool.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/signal_drain.hh"
#include "common/subprocess.hh"
#include "driver/artifact_store.hh"

namespace vgiw
{

namespace
{

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_mute_heartbeats{false};

uint64_t
envMsOverride(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    return (end && *end == '\0') ? n : fallback;
}

// ---------------------------------------------------------------------
// Wire payloads. Native layout is fine: both ends are fork()s of one
// process image; the frame layer already adds length + checksum.

/** FrameType::Result payload, decoded. */
struct ResultMsg
{
    uint64_t index = 0;
    bool ok = false, golden = false, ran = false, supported = false;
    bool quarantined = false, drained = false;
    SimErrorKind kind = SimErrorKind::None;
    uint32_t attempts = 1;
    uint64_t cycles = 0;
    double systemPj = 0.0;
    double l1MissRate = 0.0;
    std::string error;
    std::string jsonLine;
};

enum : uint8_t
{
    kMsgOk = 1 << 0,
    kMsgGolden = 1 << 1,
    kMsgRan = 1 << 2,
    kMsgSupported = 1 << 3,
    kMsgQuarantined = 1 << 4,
    kMsgDrained = 1 << 5,
};

std::string
encodeResult(uint64_t index, const JobResult &r, std::string_view jsonLine)
{
    std::string payload;
    ByteWriter w(payload);
    w.u64(index);
    uint8_t flags = 0;
    if (r.ok())
        flags |= kMsgOk;
    if (r.goldenPassed)
        flags |= kMsgGolden;
    if (r.ran)
        flags |= kMsgRan;
    if (r.stats.supported)
        flags |= kMsgSupported;
    if (r.quarantined)
        flags |= kMsgQuarantined;
    if (r.drained)
        flags |= kMsgDrained;
    w.u8(flags);
    w.u8(uint8_t(r.errorKind));
    w.u32(r.attempts);
    w.u64(r.stats.cycles);
    w.f64(r.stats.energy.systemPj());
    w.f64(r.stats.l1Stats.missRate());
    w.u32(uint32_t(r.error.size()));
    w.raw(r.error.data(), r.error.size());
    w.u32(uint32_t(jsonLine.size()));
    w.raw(jsonLine.data(), jsonLine.size());
    return payload;
}

bool
decodeResult(const std::string &payload, ResultMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->index = rd.u64();
    const uint8_t flags = rd.u8();
    out->ok = flags & kMsgOk;
    out->golden = flags & kMsgGolden;
    out->ran = flags & kMsgRan;
    out->supported = flags & kMsgSupported;
    out->quarantined = flags & kMsgQuarantined;
    out->drained = flags & kMsgDrained;
    out->kind = SimErrorKind(rd.u8());
    out->attempts = rd.u32();
    out->cycles = rd.u64();
    out->systemPj = rd.f64();
    out->l1MissRate = rd.f64();
    const uint32_t elen = rd.u32();
    if (const uint8_t *p = rd.bytes(elen))
        out->error.assign(reinterpret_cast<const char *>(p), elen);
    const uint32_t jlen = rd.u32();
    if (const uint8_t *p = rd.bytes(jlen))
        out->jsonLine.assign(reinterpret_cast<const char *>(p), jlen);
    return rd.done();
}

/** FrameType::Stats payload: final per-worker cache/store counters. */
struct StatsMsg
{
    uint64_t functionalExecutions = 0;
    uint64_t compilations = 0;
    uint64_t storeHits = 0;
    uint64_t storeMisses = 0;
    uint64_t storeBytesMapped = 0;
};

std::string
encodeStats(const StatsMsg &m)
{
    std::string payload;
    ByteWriter w(payload);
    w.u64(m.functionalExecutions);
    w.u64(m.compilations);
    w.u64(m.storeHits);
    w.u64(m.storeMisses);
    w.u64(m.storeBytesMapped);
    return payload;
}

bool
decodeStats(const std::string &payload, StatsMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->functionalExecutions = rd.u64();
    out->compilations = rd.u64();
    out->storeHits = rd.u64();
    out->storeMisses = rd.u64();
    out->storeBytesMapped = rd.u64();
    return rd.done();
}

// ---------------------------------------------------------------------
// Worker-side test fault (ctest scripts): VGIW_TEST_FAULT=
// "<segv|kill|abort|stall|mute>:<globalJobIndex>[:<millis>]". The
// fault is armed at the engine's Replay point, so the worker dies (or
// stalls) genuinely mid-job, after tracing and compiling.

struct TestFault
{
    enum class Kind { None, Segv, Kill, Abort, Stall, Mute };
    Kind kind = Kind::None;
    uint64_t index = 0;
    int millis = 0;
};

TestFault
parseTestFault(const char *spec)
{
    TestFault f;
    if (!spec || !*spec)
        return f;
    std::string s(spec);
    const size_t c1 = s.find(':');
    if (c1 == std::string::npos)
        return f;
    const std::string action = s.substr(0, c1);
    const size_t c2 = s.find(':', c1 + 1);
    const std::string idx = s.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    f.index = std::strtoull(idx.c_str(), nullptr, 10);
    if (c2 != std::string::npos)
        f.millis = int(std::strtoul(s.c_str() + c2 + 1, nullptr, 10));
    if (action == "segv")
        f.kind = TestFault::Kind::Segv;
    else if (action == "kill")
        f.kind = TestFault::Kind::Kill;
    else if (action == "abort")
        f.kind = TestFault::Kind::Abort;
    else if (action == "stall")
        f.kind = TestFault::Kind::Stall;
    else if (action == "mute")
        f.kind = TestFault::Kind::Mute;
    return f;
}

void
armTestFault(const TestFault &f, FaultInjector &injector)
{
    using Point = FaultInjector::Point;
    // The worker engine runs one job at a time, so the local index the
    // injector sees is always 0.
    switch (f.kind) {
      case TestFault::Kind::None:
        break;
      case TestFault::Kind::Segv:
        injector.armRaise(Point::Replay, 0, SIGSEGV);
        break;
      case TestFault::Kind::Kill:
        injector.armRaise(Point::Replay, 0, SIGKILL);
        break;
      case TestFault::Kind::Abort:
        injector.armRaise(Point::Replay, 0, SIGABRT);
        break;
      case TestFault::Kind::Stall:
        injector.armStall(Point::Replay, 0, f.millis ? f.millis : 30000);
        break;
      case TestFault::Kind::Mute:
        // A silent worker: alive and busy but no heartbeats — the
        // supervisor's timeout, not waitpid, has to catch this one.
        muteWorkerHeartbeatsForTest(true);
        injector.armStall(Point::Replay, 0, f.millis ? f.millis : 30000);
        break;
    }
}

} // namespace

void
muteWorkerHeartbeatsForTest(bool mute)
{
    g_mute_heartbeats.store(mute, std::memory_order_relaxed);
}

std::string
SupervisorStats::countersJson() const
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"supervisor.crashes\":%llu,"
                  "\"supervisor.heartbeat_misses\":%llu,"
                  "\"supervisor.restarts\":%llu,"
                  "\"supervisor.steals\":%llu}",
                  (unsigned long long)crashes,
                  (unsigned long long)heartbeatMisses,
                  (unsigned long long)restarts,
                  (unsigned long long)steals);
    return buf;
}

ShardSupervisor::ShardSupervisor(ShardOptions opts) : opts_(std::move(opts))
{
    opts_.heartbeatIntervalMs =
        envMsOverride("VGIW_SHARD_HEARTBEAT_MS", opts_.heartbeatIntervalMs);
    opts_.heartbeatTimeoutMs = envMsOverride(
        "VGIW_SHARD_HEARTBEAT_TIMEOUT_MS", opts_.heartbeatTimeoutMs);
    opts_.respawnBackoffMs =
        envMsOverride("VGIW_SHARD_BACKOFF_MS", opts_.respawnBackoffMs);
    if (opts_.heartbeatIntervalMs == 0)
        opts_.heartbeatIntervalMs = 250;
    if (opts_.heartbeatTimeoutMs < 2 * opts_.heartbeatIntervalMs)
        opts_.heartbeatTimeoutMs = 2 * opts_.heartbeatIntervalMs;
}

int
ShardSupervisor::workerMain(int in_fd, int out_fd,
                            const std::vector<ExperimentJob> &jobs)
{
    ignoreSigpipe();
    installDrainHandlers();

    // Liveness breadcrumb for orphan-detection tests: present while
    // the worker runs, removed on clean exit. A crash leaves a stale
    // file whose pid no longer exists — which is exactly the
    // distinction the no-orphans check needs.
    std::string pidfile;
    if (const char *dir = std::getenv("VGIW_SHARD_PIDFILE_DIR");
        dir && *dir) {
        pidfile = std::string(dir) + "/worker-" +
                  std::to_string(::getpid()) + ".alive";
        if (std::FILE *f = std::fopen(pidfile.c_str(), "w")) {
            std::fprintf(f, "%d\n", int(::getpid()));
            std::fclose(f);
        }
    }

    const TestFault fault = parseTestFault(std::getenv("VGIW_TEST_FAULT"));

    FaultInjector injector;
    MetricsCollector collector;
    EngineOptions eopts;
    eopts.jobs = 1;
    eopts.retry = opts_.retry;
    eopts.artifactStore = opts_.artifactStore;
    eopts.injector = &injector;
    eopts.stop = &drainFlag();
    if (opts_.collectMetrics)
        eopts.metrics = &collector;
    // One engine for the worker's lifetime: its trace/compile caches
    // persist across jobs, so a worker that sees a workload twice
    // traces it once — and with a shared artifact store, the whole
    // fleet traces it once.
    ExperimentEngine engine(eopts);

    // The heartbeat thread shares the result pipe; a mutex keeps
    // frames from interleaving mid-write.
    std::mutex write_mu;
    std::atomic<bool> beat_stop{false};
    std::thread beater([&]() {
        const auto interval =
            std::chrono::milliseconds(opts_.heartbeatIntervalMs);
        auto next = Clock::now();
        while (!beat_stop.load(std::memory_order_acquire)) {
            if (!g_mute_heartbeats.load(std::memory_order_relaxed)) {
                std::lock_guard<std::mutex> lock(write_mu);
                writeFrame(out_fd, FrameType::Heartbeat, {});
            }
            next += interval;
            // Sleep in short slices so shutdown never waits a full
            // interval.
            while (!beat_stop.load(std::memory_order_acquire) &&
                   Clock::now() < next) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
    });

    int rc = 0;
    for (;;) {
        if (drainRequested())
            break;
        Frame frame;
        const ReadStatus st = readFrame(in_fd, &frame);
        if (st == ReadStatus::Interrupted)
            continue;  // a signal landed; the loop re-checks the drain
        if (st == ReadStatus::Eof)
            break;  // coordinator closed the pipe: orderly exit
        if (st != ReadStatus::Ok) {
            rc = 1;  // Corrupt / Error: desynchronised coordinator
            break;
        }
        if (frame.type == FrameType::Shutdown)
            break;
        if (frame.type != FrameType::Job)
            continue;

        ByteReader rd(frame.payload.data(), frame.payload.size());
        const uint64_t index = rd.u64();
        if (!rd.done() || index >= jobs.size()) {
            rc = 1;
            break;
        }
        if (fault.kind != TestFault::Kind::None && fault.index == index)
            armTestFault(fault, injector);
        if (opts_.workerPreJob)
            opts_.workerPreJob(size_t(index));

        auto results = engine.run({jobs[index]});
        const JobResult &r = results[0];
        const std::string_view line = engine.resultTable().renderRow(0);
        const std::string payload = encodeResult(index, r, line);
        {
            std::lock_guard<std::mutex> lock(write_mu);
            if (!writeFrame(out_fd, FrameType::Result, payload)) {
                rc = 1;  // coordinator is gone; nothing left to do
                break;
            }
        }
        if (r.drained)
            break;
    }

    // Final counters — sent even on drain so the coordinator's summary
    // covers what this worker did before stopping.
    StatsMsg stats;
    stats.functionalExecutions =
        engine.traceCache().functionalExecutions();
    stats.compilations = engine.compileCache().compilations();
    if (opts_.artifactStore) {
        stats.storeHits = opts_.artifactStore->hits();
        stats.storeMisses = opts_.artifactStore->misses();
        stats.storeBytesMapped = opts_.artifactStore->bytesMapped();
    }
    {
        std::lock_guard<std::mutex> lock(write_mu);
        writeFrame(out_fd, FrameType::Stats, encodeStats(stats));
    }
    beat_stop.store(true, std::memory_order_release);
    beater.join();
    if (!pidfile.empty())
        ::unlink(pidfile.c_str());
    return rc;
}

std::vector<ShardRow>
ShardSupervisor::run(const std::vector<ExperimentJob> &jobs)
{
    std::vector<ShardRow> rows(jobs.size());
    table_.reset(jobs.size());
    stats_ = SupervisorStats{};
    for (size_t i = 0; i < jobs.size(); ++i) {
        rows[i].workload = jobs[i].workload;
        rows[i].arch = jobs[i].arch;
        rows[i].configLabel = jobs[i].configLabel;
    }
    if (jobs.empty())
        return rows;

    ignoreSigpipe();

    std::vector<std::string> keys(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        keys[i] = ExperimentEngine::jobKey(jobs[i]);

    // Guarded progress callbacks, mirroring the engine: a throwing
    // observer must not take down the coordinator.
    size_t done = 0;
    auto report = [&](size_t i) {
        const ShardRow &row = rows[i];
        try {
            if (opts_.onResult)
                opts_.onResult(i, row);
        } catch (...) {
        }
        if (!row.ok && !row.drained && opts_.onFailure) {
            try {
                opts_.onFailure(row);
            } catch (...) {
            }
        }
    };

    // Restore journaled jobs verbatim, then report them up-front in
    // submission order — identical accounting to a single-process
    // resume.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalEntry *e = nullptr;
        if (opts_.journal) {
            auto it = opts_.journal->entries().find(keys[i]);
            if (it != opts_.journal->entries().end())
                e = &it->second;
        }
        if (!e) {
            pending.push_back(i);
            continue;
        }
        ShardRow &row = rows[i];
        row.restored = true;
        row.ok = e->ok;
        row.golden = e->golden;
        row.quarantined = e->quarantined;
        row.ran = e->ok;
        row.jsonLine = e->jsonLine;
        if (!e->ok) {
            row.error = "failed in the journaled run (restored "
                        "verbatim; see the journal entry)";
        }
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = e->jsonLine;
        jr.goldenPassed = e->golden;
        jr.quarantined = e->quarantined;
        if (e->ok)
            jr.ran = true;
        else
            jr.error = row.error;
        table_.fill(i, jr);
        ++done;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].restored)
            report(i);
    }
    if (pending.empty())
        return rows;

    unsigned nshards = std::max(opts_.shards, 1u);
    if (size_t(nshards) > pending.size())
        nshards = unsigned(pending.size());

    struct Slot
    {
        size_t id = 0;
        ChildProcess cp{};
        bool alive = false;
        bool busy = false;
        size_t job = 0;
        Clock::time_point dispatched{};
        Clock::time_point lastBeat{};
        Clock::time_point backoffUntil{};
        unsigned consecutiveCrashes = 0;
        std::string pendingReason;  ///< supervisor-initiated kill cause
        std::deque<size_t> queue;
    };
    std::vector<Slot> slots(nshards);
    for (size_t s = 0; s < slots.size(); ++s)
        slots[s].id = s;
    for (size_t k = 0; k < pending.size(); ++k)
        slots[k % nshards].queue.push_back(pending[k]);

    std::vector<unsigned> dispatches(jobs.size(), 0);
    const unsigned crash_budget =
        opts_.crashAttempts
            ? opts_.crashAttempts
            : 1 + std::max(opts_.retry.maxAttempts, 2u) - 1;

    bool draining = false;

    auto finalizeDrained = [&](size_t i) {
        rows[i].drained = true;
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.drained = true;
        table_.fill(i, jr);
        ++done;
    };

    auto finalizeCrash = [&](size_t i, const std::string &why) {
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.error = why;
        jr.errorKind = SimErrorKind::WorkerCrash;
        jr.attempts = std::max(dispatches[i], 1u);
        jr.quarantined = true;
        table_.fill(i, jr);
        ShardRow &row = rows[i];
        row.ok = false;
        row.golden = false;
        row.ran = false;
        row.quarantined = true;
        row.errorKind = SimErrorKind::WorkerCrash;
        row.attempts = jr.attempts;
        row.error = why;
        row.jsonLine = std::string(table_.renderRow(i));
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = false;
            entry.golden = false;
            entry.quarantined = true;
            entry.jsonLine = row.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    auto finalizeResult = [&](const ResultMsg &m) {
        const size_t i = size_t(m.index);
        ShardRow &row = rows[i];
        row.ok = m.ok;
        row.golden = m.golden;
        row.ran = m.ran;
        row.supported = m.supported;
        row.quarantined = m.quarantined;
        row.errorKind = m.kind;
        row.attempts = m.attempts;
        row.error = m.error;
        row.cycles = m.cycles;
        row.energySystemPj = m.systemPj;
        row.l1MissRate = m.l1MissRate;
        row.jsonLine = m.jsonLine;
        // Re-emit the worker-rendered bytes verbatim (the restored-row
        // mechanism): the coordinator's --json output is then
        // byte-identical to a single-process run by construction.
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = m.jsonLine;
        jr.goldenPassed = m.golden;
        jr.quarantined = m.quarantined;
        if (m.ok)
            jr.ran = true;
        else
            jr.error = m.error;
        table_.fill(i, jr);
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = m.ok;
            entry.golden = m.golden;
            entry.quarantined = m.quarantined;
            entry.jsonLine = m.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    auto workAvailable = [&]() {
        for (const Slot &s : slots)
            if (!s.queue.empty())
                return true;
        return false;
    };

    auto takeJob = [&](Slot &s) -> std::optional<size_t> {
        if (!s.queue.empty()) {
            const size_t j = s.queue.front();
            s.queue.pop_front();
            return j;
        }
        // Steal from the back of the longest other queue: the victim
        // keeps its front (likely already warm in its worker's caches),
        // the thief takes the tail.
        Slot *victim = nullptr;
        for (Slot &o : slots) {
            if (&o == &s || o.queue.empty())
                continue;
            if (!victim || o.queue.size() > victim->queue.size())
                victim = &o;
        }
        if (!victim)
            return std::nullopt;
        const size_t j = victim->queue.back();
        victim->queue.pop_back();
        ++stats_.steals;
        return j;
    };

    size_t spawn_failures = 0;
    auto spawn = [&](Slot &s, bool respawn) {
        // Hygiene: the child must not inherit the pipe ends of its
        // sibling workers, or a sibling's EOF would be deferred until
        // *this* child also exits.
        std::vector<int> other_fds;
        for (const Slot &o : slots) {
            if (&o == &s || !o.alive)
                continue;
            other_fds.push_back(o.cp.toChild);
            other_fds.push_back(o.cp.fromChild);
        }
        std::string err;
        const bool ok = spawnChild(
            [this, &jobs, other_fds](int in_fd, int out_fd) {
                for (int fd : other_fds)
                    ::close(fd);
                return workerMain(in_fd, out_fd, jobs);
            },
            &s.cp, &err);
        if (!ok) {
            ++spawn_failures;
            std::fprintf(stderr, "shard worker %zu: %s\n", s.id,
                         err.c_str());
            s.backoffUntil =
                Clock::now() + std::chrono::milliseconds(1000);
            return false;
        }
        s.alive = true;
        s.busy = false;
        s.lastBeat = Clock::now();
        s.pendingReason.clear();
        if (respawn)
            ++stats_.restarts;
        std::fprintf(stderr, "shard worker %zu %s (pid %d)\n", s.id,
                     respawn ? "respawned" : "started", int(s.cp.pid));
        return true;
    };

    auto dispatch = [&](Slot &s, size_t i) {
        std::string payload;
        ByteWriter w(payload);
        w.u64(uint64_t(i));
        ++dispatches[i];
        if (!writeFrame(s.cp.toChild, FrameType::Job, payload)) {
            // The worker died between spawn and dispatch; the reap path
            // below will notice. Undo the dispatch accounting.
            --dispatches[i];
            s.queue.push_front(i);
            s.pendingReason = "job dispatch failed (pipe closed)";
            return;
        }
        s.busy = true;
        s.job = i;
        s.dispatched = Clock::now();
    };

    // Forward declaration dance: handleFrame is used by both the poll
    // loop and the pre-death pipe drain.
    std::function<void(Slot &, const Frame &)> handleFrame =
        [&](Slot &s, const Frame &frame) {
            switch (frame.type) {
              case FrameType::Heartbeat:
                s.lastBeat = Clock::now();
                break;
              case FrameType::Result: {
                ResultMsg m;
                if (!decodeResult(frame.payload, &m) ||
                    m.index >= jobs.size()) {
                    break;  // corrupt payload; the checksum said Ok,
                            // but be defensive about the layout
                }
                if (!s.busy || s.job != size_t(m.index))
                    break;  // stale/duplicate result: drop
                s.busy = false;
                s.consecutiveCrashes = 0;
                if (m.drained) {
                    // The worker drained before running the job. While
                    // the sweep itself is draining that is the job's
                    // terminal state; otherwise (a stray signal hit
                    // one worker) the job is still owed a run.
                    --dispatches[m.index];
                    if (draining)
                        finalizeDrained(size_t(m.index));
                    else
                        s.queue.push_front(size_t(m.index));
                    break;
                }
                finalizeResult(m);
                break;
              }
              case FrameType::Stats: {
                StatsMsg m;
                if (!decodeStats(frame.payload, &m))
                    break;
                stats_.functionalExecutions += m.functionalExecutions;
                stats_.compilations += m.compilations;
                stats_.storeHits += m.storeHits;
                stats_.storeMisses += m.storeMisses;
                stats_.storeBytesMapped += m.storeBytesMapped;
                break;
              }
              default:
                break;  // workers do not send Job/Shutdown
            }
        };

    auto closeSlotFds = [](Slot &s) {
        if (s.cp.toChild >= 0)
            ::close(s.cp.toChild);
        if (s.cp.fromChild >= 0)
            ::close(s.cp.fromChild);
        s.cp.toChild = s.cp.fromChild = -1;
    };

    /** Drain buffered frames (non-blocking) so a Result or Stats the
     * worker managed to send before dying is not lost with the pipe. */
    auto drainPipe = [&](Slot &s) {
        while (s.cp.fromChild >= 0) {
            struct pollfd pfd = {s.cp.fromChild, POLLIN, 0};
            if (::poll(&pfd, 1, 0) <= 0 || !(pfd.revents & POLLIN))
                break;
            Frame frame;
            if (readFrame(s.cp.fromChild, &frame) != ReadStatus::Ok)
                break;
            handleFrame(s, frame);
        }
    };

    auto death = [&](Slot &s) {
        if (!s.alive)
            return;
        drainPipe(s);
        closeSlotFds(s);
        // SIGKILL before the blocking reap: if the child is alive but
        // wedged (it sent a corrupt frame, say), waitpid must not hang
        // the coordinator. A zombie discards the signal harmlessly.
        killChild(s.cp.pid, SIGKILL);
        const ChildStatus st = waitChild(s.cp.pid);
        s.alive = false;
        const bool clean =
            st.state == ChildState::Exited && st.code == 0;
        std::string why = s.pendingReason.empty()
                              ? describeChildStatus(st)
                              : s.pendingReason;
        s.pendingReason.clear();
        if (s.busy) {
            // The in-flight job died with its worker.
            s.busy = false;
            ++stats_.crashes;
            ++s.consecutiveCrashes;
            const size_t i = s.job;
            std::fprintf(stderr,
                         "shard worker %zu (pid %d) lost job %s [%s]: "
                         "%s (attempt %u/%u)\n",
                         s.id, int(s.cp.pid), jobs[i].workload.c_str(),
                         jobs[i].arch.c_str(), why.c_str(),
                         dispatches[i], crash_budget);
            if (dispatches[i] >= crash_budget) {
                finalizeCrash(i, "worker crashed: " + why);
            } else if (draining) {
                finalizeDrained(i);
            } else {
                s.queue.push_front(i);
            }
            const unsigned shift =
                std::min(s.consecutiveCrashes - 1, 5u);
            s.backoffUntil =
                Clock::now() + std::chrono::milliseconds(
                                   opts_.respawnBackoffMs << shift);
        } else if (!clean && !draining) {
            std::fprintf(stderr,
                         "shard worker %zu (pid %d) exited while idle: "
                         "%s\n",
                         s.id, int(s.cp.pid), why.c_str());
        }
    };

    for (Slot &s : slots) {
        if (!s.queue.empty())
            spawn(s, /*respawn=*/false);
    }

    while (done < jobs.size()) {
        const auto now = Clock::now();

        if (!draining && opts_.stop &&
            opts_.stop->load(std::memory_order_acquire)) {
            // Propagate the drain to the whole fleet: workers share
            // the drain-handler installation, so the forwarded signal
            // sets *their* flag and they exit after the in-flight job.
            draining = true;
            const int sig = drainSignal() ? drainSignal() : SIGTERM;
            for (Slot &s : slots) {
                if (s.alive)
                    killChild(s.cp.pid, sig);
            }
        }
        if (draining) {
            for (Slot &s : slots) {
                for (size_t j : s.queue)
                    finalizeDrained(j);
                s.queue.clear();
            }
            bool any_busy = false;
            for (const Slot &s : slots)
                any_busy |= s.alive && s.busy;
            if (!any_busy)
                break;
        } else {
            for (Slot &s : slots) {
                if (!s.alive && now >= s.backoffUntil &&
                    workAvailable()) {
                    spawn(s, /*respawn=*/true);
                }
            }
            for (Slot &s : slots) {
                if (s.alive && !s.busy) {
                    if (auto j = takeJob(s))
                        dispatch(s, *j);
                }
            }
            if (spawn_failures > 0 && !workAvailable()) {
                // nothing queued; in-flight jobs still complete below
            } else if (spawn_failures >= 4 * slots.size()) {
                // fork() persistently failing: fail the remaining jobs
                // rather than spinning forever.
                bool any_alive = false;
                for (const Slot &s : slots)
                    any_alive |= s.alive;
                if (!any_alive) {
                    for (Slot &s : slots) {
                        while (!s.queue.empty()) {
                            const size_t j = s.queue.front();
                            s.queue.pop_front();
                            dispatches[j] = crash_budget;
                            finalizeCrash(j, "worker crashed: cannot "
                                             "spawn worker process");
                        }
                    }
                    continue;
                }
            }
        }

        std::vector<struct pollfd> fds;
        std::vector<size_t> fd_slot;
        for (size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].alive && slots[s].cp.fromChild >= 0) {
                fds.push_back({slots[s].cp.fromChild, POLLIN, 0});
                fd_slot.push_back(s);
            }
        }
        if (!fds.empty()) {
            const int n = ::poll(fds.data(), nfds_t(fds.size()), 50);
            if (n > 0) {
                for (size_t k = 0; k < fds.size(); ++k) {
                    Slot &s = slots[fd_slot[k]];
                    if (!s.alive)
                        continue;
                    if (fds[k].revents & POLLIN) {
                        Frame frame;
                        const ReadStatus st =
                            readFrame(s.cp.fromChild, &frame);
                        if (st == ReadStatus::Ok) {
                            handleFrame(s, frame);
                        } else if (st == ReadStatus::Interrupted) {
                            // re-check the drain flag next iteration
                        } else {
                            if (st == ReadStatus::Corrupt) {
                                s.pendingReason =
                                    "sent a corrupt frame; killed";
                            }
                            death(s);
                        }
                    } else if (fds[k].revents & (POLLHUP | POLLERR)) {
                        death(s);
                    }
                }
            }
        } else if (done < jobs.size()) {
            // No live pipes (all workers backing off): nap briefly so
            // the backoff loop is not a busy spin.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }

        const auto after = Clock::now();
        for (Slot &s : slots) {
            if (!s.alive)
                continue;
            using std::chrono::duration_cast;
            using std::chrono::milliseconds;
            if (s.busy && opts_.jobDeadlineMs &&
                duration_cast<milliseconds>(after - s.dispatched)
                        .count() > int64_t(opts_.jobDeadlineMs) &&
                s.pendingReason.empty()) {
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "job deadline exceeded (%llu ms); killed",
                              (unsigned long long)opts_.jobDeadlineMs);
                s.pendingReason = buf;
                killChild(s.cp.pid, SIGKILL);
            }
            if (duration_cast<milliseconds>(after - s.lastBeat)
                        .count() > int64_t(opts_.heartbeatTimeoutMs) &&
                s.pendingReason.empty()) {
                ++stats_.heartbeatMisses;
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "heartbeat silent for %llu ms; killed",
                              (unsigned long long)
                                  opts_.heartbeatTimeoutMs);
                s.pendingReason = buf;
                killChild(s.cp.pid, SIGKILL);
            }
        }
        for (Slot &s : slots) {
            if (!s.alive)
                continue;
            const ChildStatus st = pollChild(s.cp.pid);
            if (st.state == ChildState::Exited ||
                st.state == ChildState::Signaled ||
                st.state == ChildState::Lost) {
                death(s);
            }
        }
    }

    // Orderly shutdown: ask every surviving worker to exit, collect
    // its final Stats frame, then reap — escalating to SIGKILL only if
    // a worker ignores both the Shutdown frame and the pipe EOF. By
    // construction no worker outlives this loop.
    for (Slot &s : slots) {
        if (!s.alive)
            continue;
        writeFrame(s.cp.toChild, FrameType::Shutdown, {});
        ::close(s.cp.toChild);
        s.cp.toChild = -1;
    }
    for (Slot &s : slots) {
        if (!s.alive || s.cp.fromChild < 0)
            continue;
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(3000);
        for (;;) {
            struct pollfd pfd = {s.cp.fromChild, POLLIN, 0};
            const int n = ::poll(&pfd, 1, 100);
            if (n > 0 && (pfd.revents & POLLIN)) {
                Frame frame;
                if (readFrame(s.cp.fromChild, &frame) != ReadStatus::Ok)
                    break;
                handleFrame(s, frame);
                if (frame.type == FrameType::Stats)
                    break;
                continue;
            }
            if (n > 0 && (pfd.revents & (POLLHUP | POLLERR)))
                break;
            if (Clock::now() >= deadline)
                break;
        }
    }
    for (Slot &s : slots) {
        if (!s.alive)
            continue;
        closeSlotFds(s);
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(2000);
        ChildStatus st = pollChild(s.cp.pid);
        while (st.state == ChildState::Running &&
               Clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            st = pollChild(s.cp.pid);
        }
        if (st.state == ChildState::Running) {
            killChild(s.cp.pid, SIGKILL);
            waitChild(s.cp.pid);
        }
        s.alive = false;
    }

    return rows;
}

} // namespace vgiw
