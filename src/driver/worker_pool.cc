#include "driver/worker_pool.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/backoff.hh"
#include "common/signal_drain.hh"
#include "common/subprocess.hh"
#include "driver/artifact_store.hh"
#include "driver/shard_wire.hh"

namespace vgiw
{

namespace
{

using Clock = std::chrono::steady_clock;

uint64_t
envMsOverride(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    return (end && *end == '\0') ? n : fallback;
}

/** Consecutive CorruptRecord reads tolerated on one stream before the
 * peer is declared desynchronised. Aligned single-record corruption is
 * skippable by design; a *run* of bad checksums usually means a
 * corrupted length field took the framing with it. */
constexpr unsigned kMaxConsecutiveCorrupt = 3;

} // namespace

std::string
SupervisorStats::countersJson() const
{
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "{\"supervisor.corrupt_frames\":%llu,"
                  "\"supervisor.crashes\":%llu,"
                  "\"supervisor.fallback_jobs\":%llu,"
                  "\"supervisor.heartbeat_misses\":%llu,"
                  "\"supervisor.link_losses\":%llu,"
                  "\"supervisor.reconnects\":%llu,"
                  "\"supervisor.restarts\":%llu,"
                  "\"supervisor.steals\":%llu}",
                  (unsigned long long)corruptFrames,
                  (unsigned long long)crashes,
                  (unsigned long long)fallbackJobs,
                  (unsigned long long)heartbeatMisses,
                  (unsigned long long)linkLosses,
                  (unsigned long long)reconnects,
                  (unsigned long long)restarts,
                  (unsigned long long)steals);
    return buf;
}

ShardSupervisor::ShardSupervisor(ShardOptions opts) : opts_(std::move(opts))
{
    opts_.heartbeatIntervalMs =
        envMsOverride("VGIW_SHARD_HEARTBEAT_MS", opts_.heartbeatIntervalMs);
    opts_.heartbeatTimeoutMs = envMsOverride(
        "VGIW_SHARD_HEARTBEAT_TIMEOUT_MS", opts_.heartbeatTimeoutMs);
    opts_.respawnBackoffMs =
        envMsOverride("VGIW_SHARD_BACKOFF_MS", opts_.respawnBackoffMs);
    opts_.respawnBackoffCapMs = envMsOverride("VGIW_SHARD_BACKOFF_CAP_MS",
                                              opts_.respawnBackoffCapMs);
    if (opts_.heartbeatIntervalMs == 0)
        opts_.heartbeatIntervalMs = 250;
    if (opts_.heartbeatTimeoutMs < 2 * opts_.heartbeatIntervalMs)
        opts_.heartbeatTimeoutMs = 2 * opts_.heartbeatIntervalMs;
    if (opts_.respawnBackoffCapMs < opts_.respawnBackoffMs)
        opts_.respawnBackoffCapMs = opts_.respawnBackoffMs;
}

std::vector<ShardRow>
ShardSupervisor::run(const std::vector<ExperimentJob> &jobs)
{
    std::vector<ShardRow> rows(jobs.size());
    table_.reset(jobs.size());
    stats_ = SupervisorStats{};
    for (size_t i = 0; i < jobs.size(); ++i) {
        rows[i].workload = jobs[i].workload;
        rows[i].arch = jobs[i].arch;
        rows[i].configLabel = jobs[i].configLabel;
    }
    if (jobs.empty())
        return rows;

    ignoreSigpipe();

    std::vector<std::string> keys(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        keys[i] = ExperimentEngine::jobKey(jobs[i]);

    // Guarded progress callbacks, mirroring the engine: a throwing
    // observer must not take down the coordinator.
    size_t done = 0;
    auto report = [&](size_t i) {
        const ShardRow &row = rows[i];
        try {
            if (opts_.onResult)
                opts_.onResult(i, row);
        } catch (...) {
        }
        if (!row.ok && !row.drained && opts_.onFailure) {
            try {
                opts_.onFailure(row);
            } catch (...) {
            }
        }
    };

    // Restore journaled jobs verbatim, then report them up-front in
    // submission order — identical accounting to a single-process
    // resume.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalEntry *e = nullptr;
        if (opts_.journal) {
            auto it = opts_.journal->entries().find(keys[i]);
            if (it != opts_.journal->entries().end())
                e = &it->second;
        }
        if (!e) {
            pending.push_back(i);
            continue;
        }
        ShardRow &row = rows[i];
        row.restored = true;
        row.ok = e->ok;
        row.golden = e->golden;
        row.quarantined = e->quarantined;
        row.ran = e->ok;
        row.jsonLine = e->jsonLine;
        if (!e->ok) {
            row.error = "failed in the journaled run (restored "
                        "verbatim; see the journal entry)";
        }
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = e->jsonLine;
        jr.goldenPassed = e->golden;
        jr.quarantined = e->quarantined;
        if (e->ok)
            jr.ran = true;
        else
            jr.error = row.error;
        table_.fill(i, jr);
        ++done;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].restored)
            report(i);
    }
    if (pending.empty())
        return rows;

    unsigned nshards = std::max(opts_.shards, 1u);
    if (size_t(nshards) > pending.size())
        nshards = unsigned(pending.size());

    struct Slot
    {
        size_t id = 0;
        ChildProcess cp{};
        bool alive = false;
        bool busy = false;
        size_t job = 0;
        Clock::time_point dispatched{};
        Clock::time_point lastBeat{};
        Clock::time_point backoffUntil{};
        unsigned consecutiveCrashes = 0;
        unsigned consecutiveCorrupt = 0;
        std::string pendingReason;  ///< supervisor-initiated kill cause
        BackoffSchedule backoff{};
    };
    std::vector<Slot> slots(nshards);
    for (size_t s = 0; s < slots.size(); ++s) {
        slots[s].id = s;
        slots[s].backoff.baseMs = opts_.respawnBackoffMs;
        slots[s].backoff.capMs = opts_.respawnBackoffCapMs;
        // Decorrelate the slots' jitter streams; the schedule itself
        // stays deterministic per (seed, attempt).
        slots[s].backoff.seed =
            (uint64_t(::getpid()) << 32) ^ uint64_t(s + 1);
    }
    JobQueues queues(nshards);
    queues.deal(pending);

    std::vector<unsigned> dispatches(jobs.size(), 0);
    const unsigned crash_budget =
        opts_.crashAttempts
            ? opts_.crashAttempts
            : 1 + std::max(opts_.retry.maxAttempts, 2u) - 1;

    bool draining = false;

    auto finalizeDrained = [&](size_t i) {
        rows[i].drained = true;
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.drained = true;
        table_.fill(i, jr);
        ++done;
    };

    auto finalizeCrash = [&](size_t i, const std::string &why) {
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.error = why;
        jr.errorKind = SimErrorKind::WorkerCrash;
        jr.attempts = std::max(dispatches[i], 1u);
        jr.quarantined = true;
        table_.fill(i, jr);
        ShardRow &row = rows[i];
        row.ok = false;
        row.golden = false;
        row.ran = false;
        row.quarantined = true;
        row.errorKind = SimErrorKind::WorkerCrash;
        row.attempts = jr.attempts;
        row.error = why;
        row.jsonLine = std::string(table_.renderRow(i));
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = false;
            entry.golden = false;
            entry.quarantined = true;
            entry.jsonLine = row.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    auto finalizeResult = [&](const ResultMsg &m) {
        const size_t i = size_t(m.index);
        ShardRow &row = rows[i];
        row.ok = m.ok;
        row.golden = m.golden;
        row.ran = m.ran;
        row.supported = m.supported;
        row.quarantined = m.quarantined;
        row.errorKind = m.kind;
        row.attempts = m.attempts;
        row.error = m.error;
        row.cycles = m.cycles;
        row.energySystemPj = m.systemPj;
        row.l1MissRate = m.l1MissRate;
        row.jsonLine = m.jsonLine;
        // Re-emit the worker-rendered bytes verbatim (the restored-row
        // mechanism): the coordinator's --json output is then
        // byte-identical to a single-process run by construction.
        JobResult jr;
        jr.workload = jobs[i].workload;
        jr.arch = jobs[i].arch;
        jr.configLabel = jobs[i].configLabel;
        jr.restored = true;
        jr.restoredJson = m.jsonLine;
        jr.goldenPassed = m.golden;
        jr.quarantined = m.quarantined;
        if (m.ok)
            jr.ran = true;
        else
            jr.error = m.error;
        table_.fill(i, jr);
        if (opts_.journal) {
            JournalEntry entry;
            entry.key = keys[i];
            entry.ok = m.ok;
            entry.golden = m.golden;
            entry.quarantined = m.quarantined;
            entry.jsonLine = m.jsonLine;
            opts_.journal->append(entry);
        }
        report(i);
        ++done;
    };

    size_t spawn_failures = 0;
    auto spawn = [&](Slot &s, bool respawn) {
        // Hygiene: the child must not inherit the pipe ends of its
        // sibling workers, or a sibling's EOF would be deferred until
        // *this* child also exits.
        std::vector<int> other_fds;
        for (const Slot &o : slots) {
            if (&o == &s || !o.alive)
                continue;
            other_fds.push_back(o.cp.toChild);
            other_fds.push_back(o.cp.fromChild);
        }
        ShardWorkerOptions wopts;
        wopts.retry = opts_.retry;
        wopts.collectMetrics = opts_.collectMetrics;
        wopts.artifactStore = opts_.artifactStore;
        wopts.heartbeatIntervalMs = opts_.heartbeatIntervalMs;
        wopts.preJob = opts_.workerPreJob;
        std::string err;
        const bool ok = spawnChild(
            [&jobs, other_fds, wopts](int in_fd, int out_fd) {
                for (int fd : other_fds)
                    ::close(fd);
                return runShardWorker(in_fd, out_fd, jobs, wopts);
            },
            &s.cp, &err);
        if (!ok) {
            ++spawn_failures;
            std::fprintf(stderr, "shard worker %zu: %s\n", s.id,
                         err.c_str());
            s.backoffUntil =
                Clock::now() + std::chrono::milliseconds(1000);
            return false;
        }
        s.alive = true;
        s.busy = false;
        s.lastBeat = Clock::now();
        s.pendingReason.clear();
        s.consecutiveCorrupt = 0;
        if (respawn)
            ++stats_.restarts;
        std::fprintf(stderr, "shard worker %zu %s (pid %d)\n", s.id,
                     respawn ? "respawned" : "started", int(s.cp.pid));
        return true;
    };

    auto dispatch = [&](Slot &s, size_t i) {
        std::string payload;
        ByteWriter w(payload);
        w.u64(uint64_t(i));
        ++dispatches[i];
        if (!writeFrame(s.cp.toChild, FrameType::Job, payload)) {
            // The worker died between spawn and dispatch; the reap path
            // below will notice. Undo the dispatch accounting.
            --dispatches[i];
            queues.pushFront(s.id, i);
            s.pendingReason = "job dispatch failed (pipe closed)";
            return;
        }
        s.busy = true;
        s.job = i;
        s.dispatched = Clock::now();
    };

    // Forward declaration dance: handleFrame is used by both the poll
    // loop and the pre-death pipe drain.
    std::function<void(Slot &, const Frame &)> handleFrame =
        [&](Slot &s, const Frame &frame) {
            switch (frame.type) {
              case FrameType::Heartbeat:
                s.lastBeat = Clock::now();
                break;
              case FrameType::Result: {
                ResultMsg m;
                if (!decodeResultMsg(frame.payload, &m) ||
                    m.index >= jobs.size()) {
                    break;  // corrupt payload; the checksum said Ok,
                            // but be defensive about the layout
                }
                if (!s.busy || s.job != size_t(m.index))
                    break;  // stale/duplicate result: drop
                s.busy = false;
                s.consecutiveCrashes = 0;
                if (m.drained) {
                    // The worker drained before running the job. While
                    // the sweep itself is draining that is the job's
                    // terminal state; otherwise (a stray signal hit
                    // one worker) the job is still owed a run.
                    --dispatches[m.index];
                    if (draining)
                        finalizeDrained(size_t(m.index));
                    else
                        queues.pushFront(s.id, size_t(m.index));
                    break;
                }
                finalizeResult(m);
                break;
              }
              case FrameType::Stats: {
                StatsMsg m;
                if (!decodeStatsMsg(frame.payload, &m))
                    break;
                stats_.functionalExecutions += m.functionalExecutions;
                stats_.compilations += m.compilations;
                stats_.storeHits += m.storeHits;
                stats_.storeMisses += m.storeMisses;
                stats_.storeBytesMapped += m.storeBytesMapped;
                break;
              }
              default:
                break;  // workers do not send Job/Shutdown
            }
        };

    auto closeSlotFds = [](Slot &s) {
        if (s.cp.toChild >= 0)
            ::close(s.cp.toChild);
        if (s.cp.fromChild >= 0)
            ::close(s.cp.fromChild);
        s.cp.toChild = s.cp.fromChild = -1;
    };

    /** Drain buffered frames (non-blocking) so a Result or Stats the
     * worker managed to send before dying is not lost with the pipe.
     * Checksum-bad but aligned records are skipped and counted, same
     * as in the live poll loop. */
    auto drainPipe = [&](Slot &s) {
        while (s.cp.fromChild >= 0) {
            struct pollfd pfd = {s.cp.fromChild, POLLIN, 0};
            if (::poll(&pfd, 1, 0) <= 0 || !(pfd.revents & POLLIN))
                break;
            Frame frame;
            const ReadStatus st = readFrame(s.cp.fromChild, &frame);
            if (st == ReadStatus::CorruptRecord) {
                ++stats_.corruptFrames;
                continue;
            }
            if (st != ReadStatus::Ok)
                break;
            handleFrame(s, frame);
        }
    };

    auto death = [&](Slot &s) {
        if (!s.alive)
            return;
        drainPipe(s);
        closeSlotFds(s);
        // SIGKILL before the blocking reap: if the child is alive but
        // wedged (it sent a torn frame, say), waitpid must not hang
        // the coordinator. A zombie discards the signal harmlessly.
        killChild(s.cp.pid, SIGKILL);
        const ChildStatus st = waitChild(s.cp.pid);
        s.alive = false;
        const bool clean =
            st.state == ChildState::Exited && st.code == 0;
        std::string why = s.pendingReason.empty()
                              ? describeChildStatus(st)
                              : s.pendingReason;
        s.pendingReason.clear();
        if (s.busy) {
            // The in-flight job died with its worker.
            s.busy = false;
            ++stats_.crashes;
            ++s.consecutiveCrashes;
            const size_t i = s.job;
            std::fprintf(stderr,
                         "shard worker %zu (pid %d) lost job %s [%s]: "
                         "%s (attempt %u/%u)\n",
                         s.id, int(s.cp.pid), jobs[i].workload.c_str(),
                         jobs[i].arch.c_str(), why.c_str(),
                         dispatches[i], crash_budget);
            if (dispatches[i] >= crash_budget) {
                finalizeCrash(i, "worker crashed: " + why);
            } else if (draining) {
                finalizeDrained(i);
            } else {
                queues.pushFront(s.id, i);
            }
            s.backoffUntil =
                Clock::now() +
                std::chrono::milliseconds(
                    s.backoff.delayMs(s.consecutiveCrashes));
        } else if (!clean && !draining) {
            std::fprintf(stderr,
                         "shard worker %zu (pid %d) exited while idle: "
                         "%s\n",
                         s.id, int(s.cp.pid), why.c_str());
        }
    };

    for (Slot &s : slots) {
        if (queues.anyWork())
            spawn(s, /*respawn=*/false);
    }

    while (done < jobs.size()) {
        const auto now = Clock::now();

        if (!draining && opts_.stop &&
            opts_.stop->load(std::memory_order_acquire)) {
            // Propagate the drain to the whole fleet: workers share
            // the drain-handler installation, so the forwarded signal
            // sets *their* flag and they exit after the in-flight job.
            draining = true;
            const int sig = drainSignal() ? drainSignal() : SIGTERM;
            for (Slot &s : slots) {
                if (s.alive)
                    killChild(s.cp.pid, sig);
            }
        }
        if (draining) {
            queues.drainAll(finalizeDrained);
            bool any_busy = false;
            for (const Slot &s : slots)
                any_busy |= s.alive && s.busy;
            if (!any_busy)
                break;
        } else {
            for (Slot &s : slots) {
                if (!s.alive && now >= s.backoffUntil &&
                    queues.anyWork()) {
                    spawn(s, /*respawn=*/true);
                }
            }
            for (Slot &s : slots) {
                if (s.alive && !s.busy) {
                    if (auto j = queues.take(s.id, &stats_.steals))
                        dispatch(s, *j);
                }
            }
            if (spawn_failures > 0 && !queues.anyWork()) {
                // nothing queued; in-flight jobs still complete below
            } else if (spawn_failures >= 4 * slots.size()) {
                // fork() persistently failing: fail the remaining jobs
                // rather than spinning forever.
                bool any_alive = false;
                for (const Slot &s : slots)
                    any_alive |= s.alive;
                if (!any_alive) {
                    queues.drainAll([&](size_t j) {
                        dispatches[j] = crash_budget;
                        finalizeCrash(j, "worker crashed: cannot "
                                         "spawn worker process");
                    });
                    continue;
                }
            }
        }

        std::vector<struct pollfd> fds;
        std::vector<size_t> fd_slot;
        for (size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].alive && slots[s].cp.fromChild >= 0) {
                fds.push_back({slots[s].cp.fromChild, POLLIN, 0});
                fd_slot.push_back(s);
            }
        }
        if (!fds.empty()) {
            const int n = ::poll(fds.data(), nfds_t(fds.size()), 50);
            if (n > 0) {
                for (size_t k = 0; k < fds.size(); ++k) {
                    Slot &s = slots[fd_slot[k]];
                    if (!s.alive)
                        continue;
                    if (fds[k].revents & POLLIN) {
                        Frame frame;
                        const ReadStatus st =
                            readFrame(s.cp.fromChild, &frame);
                        if (st == ReadStatus::Ok) {
                            s.consecutiveCorrupt = 0;
                            handleFrame(s, frame);
                        } else if (st == ReadStatus::Interrupted) {
                            // re-check the drain flag next iteration
                        } else if (st == ReadStatus::CorruptRecord) {
                            // Aligned corruption: skip exactly this
                            // record and keep the stream. A run of
                            // them means real desync — kill then.
                            ++stats_.corruptFrames;
                            if (++s.consecutiveCorrupt >=
                                kMaxConsecutiveCorrupt) {
                                s.pendingReason =
                                    "repeated corrupt frames; killed";
                                death(s);
                            }
                        } else {
                            if (st == ReadStatus::Corrupt) {
                                s.pendingReason =
                                    "sent a corrupt frame; killed";
                            }
                            death(s);
                        }
                    } else if (fds[k].revents & (POLLHUP | POLLERR)) {
                        death(s);
                    }
                }
            }
        } else if (done < jobs.size()) {
            // No live pipes (all workers backing off): nap briefly so
            // the backoff loop is not a busy spin.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }

        const auto after = Clock::now();
        for (Slot &s : slots) {
            if (!s.alive)
                continue;
            using std::chrono::duration_cast;
            using std::chrono::milliseconds;
            if (s.busy && opts_.jobDeadlineMs &&
                duration_cast<milliseconds>(after - s.dispatched)
                        .count() > int64_t(opts_.jobDeadlineMs) &&
                s.pendingReason.empty()) {
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "job deadline exceeded (%llu ms); killed",
                              (unsigned long long)opts_.jobDeadlineMs);
                s.pendingReason = buf;
                killChild(s.cp.pid, SIGKILL);
            }
            if (duration_cast<milliseconds>(after - s.lastBeat)
                        .count() > int64_t(opts_.heartbeatTimeoutMs) &&
                s.pendingReason.empty()) {
                ++stats_.heartbeatMisses;
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "heartbeat silent for %llu ms; killed",
                              (unsigned long long)
                                  opts_.heartbeatTimeoutMs);
                s.pendingReason = buf;
                killChild(s.cp.pid, SIGKILL);
            }
        }
        for (Slot &s : slots) {
            if (!s.alive)
                continue;
            const ChildStatus st = pollChild(s.cp.pid);
            if (st.state == ChildState::Exited ||
                st.state == ChildState::Signaled ||
                st.state == ChildState::Lost) {
                death(s);
            }
        }
    }

    // Orderly shutdown: ask every surviving worker to exit, collect
    // its final Stats frame, then reap — escalating to SIGKILL only if
    // a worker ignores both the Shutdown frame and the pipe EOF. By
    // construction no worker outlives this loop.
    for (Slot &s : slots) {
        if (!s.alive)
            continue;
        writeFrame(s.cp.toChild, FrameType::Shutdown, {});
        ::close(s.cp.toChild);
        s.cp.toChild = -1;
    }
    for (Slot &s : slots) {
        if (!s.alive || s.cp.fromChild < 0)
            continue;
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(3000);
        for (;;) {
            struct pollfd pfd = {s.cp.fromChild, POLLIN, 0};
            const int n = ::poll(&pfd, 1, 100);
            if (n > 0 && (pfd.revents & POLLIN)) {
                Frame frame;
                const ReadStatus st = readFrame(s.cp.fromChild, &frame);
                if (st == ReadStatus::CorruptRecord) {
                    ++stats_.corruptFrames;
                    continue;
                }
                if (st != ReadStatus::Ok)
                    break;
                handleFrame(s, frame);
                if (frame.type == FrameType::Stats)
                    break;
                continue;
            }
            if (n > 0 && (pfd.revents & (POLLHUP | POLLERR)))
                break;
            if (Clock::now() >= deadline)
                break;
        }
    }
    for (Slot &s : slots) {
        if (!s.alive)
            continue;
        closeSlotFds(s);
        const auto deadline =
            Clock::now() + std::chrono::milliseconds(2000);
        ChildStatus st = pollChild(s.cp.pid);
        while (st.state == ChildState::Running &&
               Clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            st = pollChild(s.cp.pid);
        }
        if (st.state == ChildState::Running) {
            killChild(s.cp.pid, SIGKILL);
            waitChild(s.cp.pid);
        }
        s.alive = false;
    }

    return rows;
}

} // namespace vgiw
