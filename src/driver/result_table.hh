/**
 * @file
 * Columnar result storage and the one-shot JSON-lines serialiser.
 *
 * A sweep's results used to live as a vector of JobResult structs,
 * each carrying half a dozen heap strings, and every consumer (the
 * journal, --json, tests) re-serialised them through its own
 * ostringstream — thousands of small allocations per sweep and two
 * formatting code paths to keep bit-identical by hand.
 *
 * ResultTable replaces that with a column store: string fields are
 * interned once into a chunked arena (pointers stable for the table's
 * lifetime — rows can be filled and rendered concurrently), numeric
 * fields and flags live in flat per-column vectors, and renderRow() is
 * THE single formatter every JSON-lines consumer shares. The journal
 * line on disk and the --json line in the artifact are rendered by the
 * same code over the same columns, so they cannot drift apart — which
 * is what keeps kill + resume byte-identical.
 *
 * Rendering contract: renderRow() emits exactly the bytes the engine's
 * historical per-struct formatter produced — field order, failure-only
 * fields, the restored-verbatim rule — so artifacts are byte-identical
 * across the columnar migration.
 *
 * Thread-safety: reset() is exclusive; fill() may be called
 * concurrently for distinct rows (arena appends are mutex-guarded,
 * column slots are pre-sized); renderRow()/renderInto() for a row are
 * safe once that row's fill() has returned, including while other
 * rows are still being filled — a row's render reads only its own
 * column slots and row-owned extras, never a shared growable pool.
 */

#ifndef VGIW_DRIVER_RESULT_TABLE_HH
#define VGIW_DRIVER_RESULT_TABLE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_error.hh"

namespace vgiw
{

struct JobResult;

/** Streaming consumer of rendered JSON lines (see renderInto). */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    /** One rendered JSON-lines object (no newline), in row order. */
    virtual void row(size_t index, std::string_view jsonLine) = 0;
};

/** Columnar store for sweep results; single source of rendered JSON. */
class ResultTable
{
  public:
    ResultTable() = default;
    ResultTable(const ResultTable &) = delete;
    ResultTable &operator=(const ResultTable &) = delete;

    /** Size the table to @p rows empty rows, dropping previous data. */
    void reset(size_t rows);

    size_t numRows() const { return flags_.size(); }

    /**
     * Decompose @p r into the columns of row @p index. Safe to call
     * concurrently for distinct rows. May be called again for the same
     * row (a retry or callback demotion re-fills it); the last fill
     * wins and invalidates the row's render cache.
     */
    void fill(size_t index, const JobResult &r);

    /** Row has been fill()ed (unfilled rows render as "{}"). */
    bool filled(size_t index) const;

    /** Drained marker of the row, as filled. */
    bool drained(size_t index) const;

    /**
     * The row as a JSON-lines object (no newline) — the single
     * formatting code path behind the journal, --json and toJsonLine.
     * Restored rows re-emit their journaled bytes verbatim. The view
     * is cached and stays valid until the row is re-filled or the
     * table is reset.
     */
    std::string_view renderRow(size_t index);

    /** Render every filled, non-drained row through @p sink in order. */
    void renderInto(ResultSink &sink);

    /** Bytes interned in the string arena (diagnostics). */
    size_t arenaBytes() const;

  private:
    /** Arena-interned string: pointer is stable until reset(). */
    struct Ref
    {
        const char *ptr = nullptr;
        uint32_t len = 0;
        std::string_view view() const { return {ptr ? ptr : "", len}; }
        bool empty() const { return len == 0; }
    };

    /** Per-row replay statistics, flat (only read when kRan is set). */
    struct StatRow
    {
        uint64_t cycles, configCycles, reconfigs;
        uint64_t dynBlockExecs, dynThreadOps, dynWarpInstrs;
        uint64_t rfAccesses, lvcAccesses;
        uint64_t l1Accesses, l1Misses, l2Accesses, l2Misses;
        uint64_t lvcMisses, dramAccesses, dramRowHits;
        double corePj, diePj, systemPj;
    };

    enum : uint8_t
    {
        kFilled = 1 << 0,
        kGolden = 1 << 1,
        kRan = 1 << 2,
        kSupported = 1 << 3,
        kQuarantined = 1 << 4,
        kRestored = 1 << 5,
        kPartialValid = 1 << 6,
        kDrained = 1 << 7,
    };

    Ref intern(std::string_view s);  ///< caller holds mu_

    std::mutex mu_;  ///< guards the arena chunks
    /** Chunked arena: chunks never move, so Refs stay valid across
     * concurrent fills — the property vector<char> cannot give. */
    std::vector<std::unique_ptr<char[]>> chunks_;
    size_t chunkUsed_ = 0;
    std::atomic<size_t> arenaBytes_{0};

    // One entry per row, pre-sized by reset().
    std::vector<uint8_t> flags_;
    std::vector<uint8_t> errorKind_;
    std::vector<uint32_t> attempts_;
    std::vector<Ref> workload_, arch_, config_, error_;
    std::vector<Ref> restoredJson_, metricsJson_;
    std::vector<uint64_t> partialCycles_, partialBlockExecs_,
        partialThreadOps_;
    std::vector<StatRow> stats_;
    /** Per-row extras: a row's vector is written only by its fill()er
     * and read only by its renderer, so rendering one row never
     * touches state another row's concurrent fill mutates. */
    std::vector<std::vector<std::pair<Ref, double>>> extras_;
    /** Render cache; renderRow returns views into these. */
    std::vector<std::string> rendered_;
    std::vector<uint8_t> renderValid_;
};

} // namespace vgiw

#endif // VGIW_DRIVER_RESULT_TABLE_HH
