#include "driver/system_config.hh"

#include <ostream>

#include "common/json.hh"
#include "driver/core_model.hh"
#include "mem/memory_system.hh"

namespace vgiw
{

std::string
SystemConfig::validate() const
{
    return validate("all");
}

std::string
SystemConfig::validate(std::string_view arch) const
{
    if (coreGhz <= 0 || interconnectGhz <= 0 || l2Ghz <= 0 ||
        dramGhz <= 0) {
        return "clock domain frequencies must be positive";
    }
    const bool all = arch != "vgiw" && arch != "fermi" &&
                     arch != "sgmf" && arch != "dice";
    if (all || arch == "vgiw") {
        if (std::string d = vgiw.validate(); !d.empty())
            return d;
    }
    if (all || arch == "fermi") {
        if (std::string d = fermi.validate(); !d.empty())
            return d;
    }
    if (all || arch == "sgmf") {
        if (std::string d = sgmf.validate(); !d.empty())
            return d;
    }
    if (all || arch == "dice") {
        if (std::string d = dice.validate(); !d.empty())
            return d;
    }
    return {};
}

std::string
SystemConfig::jobFingerprint(std::string_view arch) const
{
    // jsonNumber's %.17g round-trips doubles, so two configs with the
    // same clocks fingerprint identically across runs and platforms.
    std::string fp = "clk:" + jsonNumber(coreGhz) + "," +
                     jsonNumber(interconnectGhz) + "," +
                     jsonNumber(l2Ghz) + "," + jsonNumber(dramGhz);
    if (auto model = makeCoreModel(arch, *this))
        fp += "|" + model->compileKey() + "|" + model->replayKey();
    else
        fp += "|unknown-arch";
    return fp;
}

void
SystemConfig::setWatchdog(const WatchdogConfig &wd)
{
    vgiw.watchdog = wd;
    fermi.watchdog = wd;
    sgmf.watchdog = wd;
    dice.watchdog = wd;
}

void
SystemConfig::anchorWatchdogs(std::chrono::steady_clock::time_point t)
{
    vgiw.watchdog.anchor = t;
    fermi.watchdog.anchor = t;
    sgmf.watchdog.anchor = t;
    dice.watchdog.anchor = t;
}

void
SystemConfig::printTable1(std::ostream &os) const
{
    const GridConfig &g = vgiw.grid;
    os << "Table 1: VGIW system configuration\n";
    os << "  VGIW core        : " << g.numUnits()
       << " interconnected func./LDST/control units (" << g.width << "x"
       << g.height << " grid)\n";
    os << "  Functional units : " << countOf(g.counts, UnitKind::FpAlu)
       << " combined FPU-ALU units, " << countOf(g.counts, UnitKind::Scu)
       << " Special Compute units\n";
    os << "  Load/Store units : " << countOf(g.counts, UnitKind::Lvu)
       << " Live Value Units, " << countOf(g.counts, UnitKind::LdSt)
       << " regular LDST units\n";
    os << "  Control units    : " << countOf(g.counts, UnitKind::Sju)
       << " Split/Join units, " << countOf(g.counts, UnitKind::Cvu)
       << " Control Vector Units\n";
    os << "  Frequency [GHz]  : core " << coreGhz << ", interconnect "
       << interconnectGhz << ", L2 " << l2Ghz << ", DRAM " << dramGhz
       << "\n";
    const CacheGeometry l1 = vgiwL1Geometry();
    os << "  L1               : " << l1.sizeBytes / 1024 << "KB, "
       << l1.banks << " banks, " << l1.lineBytes << "B/line, " << l1.ways
       << "-way (write-back, write-allocate)\n";
    const CacheGeometry l2 = l2Geometry();
    os << "  L2               : " << l2.sizeBytes / 1024 << "KB, "
       << l2.banks << " banks, " << l2.lineBytes << "B/line, " << l2.ways
       << "-way\n";
    const DramConfig d;
    os << "  GDDR5 DRAM       : " << d.banksPerChannel << " banks, "
       << d.channels << " channels\n";
    os << "  LVC              : " << vgiw.lvcBytes / 1024
       << "KB (4x smaller than the Fermi register file)\n";
}

} // namespace vgiw
