#include "driver/shard_wire.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/signal_drain.hh"
#include "common/subprocess.hh"
#include "driver/artifact_store.hh"

namespace vgiw
{

namespace
{

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_mute_heartbeats{false};

enum : uint8_t
{
    kMsgOk = 1 << 0,
    kMsgGolden = 1 << 1,
    kMsgRan = 1 << 2,
    kMsgSupported = 1 << 3,
    kMsgQuarantined = 1 << 4,
    kMsgDrained = 1 << 5,
};

void
putString(ByteWriter &w, std::string_view s)
{
    w.u32(uint32_t(s.size()));
    w.raw(s.data(), s.size());
}

bool
getString(ByteReader &rd, std::string *out)
{
    const uint32_t len = rd.u32();
    if (const uint8_t *p = rd.bytes(len)) {
        out->assign(reinterpret_cast<const char *>(p), len);
        return true;
    }
    return len == 0;
}

} // namespace

std::string
encodeResultMsg(uint64_t index, const JobResult &r,
                std::string_view jsonLine)
{
    std::string payload;
    ByteWriter w(payload);
    w.u64(index);
    uint8_t flags = 0;
    if (r.ok())
        flags |= kMsgOk;
    if (r.goldenPassed)
        flags |= kMsgGolden;
    if (r.ran)
        flags |= kMsgRan;
    if (r.stats.supported)
        flags |= kMsgSupported;
    if (r.quarantined)
        flags |= kMsgQuarantined;
    if (r.drained)
        flags |= kMsgDrained;
    w.u8(flags);
    w.u8(uint8_t(r.errorKind));
    w.u32(r.attempts);
    w.u64(r.stats.cycles);
    w.f64(r.stats.energy.systemPj());
    w.f64(r.stats.l1Stats.missRate());
    putString(w, r.error);
    putString(w, jsonLine);
    return payload;
}

bool
decodeResultMsg(const std::string &payload, ResultMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->index = rd.u64();
    const uint8_t flags = rd.u8();
    out->ok = flags & kMsgOk;
    out->golden = flags & kMsgGolden;
    out->ran = flags & kMsgRan;
    out->supported = flags & kMsgSupported;
    out->quarantined = flags & kMsgQuarantined;
    out->drained = flags & kMsgDrained;
    out->kind = SimErrorKind(rd.u8());
    out->attempts = rd.u32();
    out->cycles = rd.u64();
    out->systemPj = rd.f64();
    out->l1MissRate = rd.f64();
    if (!getString(rd, &out->error) || !getString(rd, &out->jsonLine))
        return false;
    return rd.done();
}

std::string
encodeStatsMsg(const StatsMsg &m)
{
    std::string payload;
    ByteWriter w(payload);
    w.u64(m.functionalExecutions);
    w.u64(m.compilations);
    w.u64(m.storeHits);
    w.u64(m.storeMisses);
    w.u64(m.storeBytesMapped);
    return payload;
}

bool
decodeStatsMsg(const std::string &payload, StatsMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->functionalExecutions = rd.u64();
    out->compilations = rd.u64();
    out->storeHits = rd.u64();
    out->storeMisses = rd.u64();
    out->storeBytesMapped = rd.u64();
    return rd.done();
}

std::string
encodeHelloMsg(const HelloMsg &m)
{
    std::string payload;
    ByteWriter w(payload);
    w.u32(m.version);
    putString(w, m.sweepHash);
    putString(w, m.archsCsv);
    w.u32(m.lvcBytes);
    w.u32(m.cvtCapacityBits);
    uint8_t flags = 0;
    if (m.enableReplication)
        flags |= 1 << 0;
    if (m.enableMemoryCoalescing)
        flags |= 1 << 1;
    if (m.collectMetrics)
        flags |= 1 << 2;
    w.u8(flags);
    w.u64(m.maxReplayCycles);
    w.f64(m.deadlineMs);
    w.u32(m.retryMaxAttempts);
    putString(w, m.artifactDir);
    return payload;
}

bool
decodeHelloMsg(const std::string &payload, HelloMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->version = rd.u32();
    if (!getString(rd, &out->sweepHash) || !getString(rd, &out->archsCsv))
        return false;
    out->lvcBytes = rd.u32();
    out->cvtCapacityBits = rd.u32();
    const uint8_t flags = rd.u8();
    out->enableReplication = flags & (1 << 0);
    out->enableMemoryCoalescing = flags & (1 << 1);
    out->collectMetrics = flags & (1 << 2);
    out->maxReplayCycles = rd.u64();
    out->deadlineMs = rd.f64();
    out->retryMaxAttempts = rd.u32();
    if (!getString(rd, &out->artifactDir))
        return false;
    return rd.done();
}

std::string
encodeHelloAckMsg(const HelloAckMsg &m)
{
    std::string payload;
    ByteWriter w(payload);
    w.u32(m.version);
    w.u8(m.ok ? 1 : 0);
    w.u32(m.shards);
    w.u8(m.daemonHasStore ? 1 : 0);
    putString(w, m.reason);
    return payload;
}

bool
decodeHelloAckMsg(const std::string &payload, HelloAckMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->version = rd.u32();
    out->ok = rd.u8() != 0;
    out->shards = rd.u32();
    out->daemonHasStore = rd.u8() != 0;
    if (!getString(rd, &out->reason))
        return false;
    return rd.done();
}

std::string
encodeJobCrashMsg(const JobCrashMsg &m)
{
    std::string payload;
    ByteWriter w(payload);
    w.u64(m.index);
    putString(w, m.why);
    return payload;
}

bool
decodeJobCrashMsg(const std::string &payload, JobCrashMsg *out)
{
    ByteReader rd(payload.data(), payload.size());
    out->index = rd.u64();
    if (!getString(rd, &out->why))
        return false;
    return rd.done();
}

TestFault
parseTestFault(const char *spec)
{
    TestFault f;
    if (!spec || !*spec)
        return f;
    std::string s(spec);
    const size_t c1 = s.find(':');
    if (c1 == std::string::npos)
        return f;
    const std::string action = s.substr(0, c1);
    const size_t c2 = s.find(':', c1 + 1);
    const std::string idx = s.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    f.index = std::strtoull(idx.c_str(), nullptr, 10);
    if (c2 != std::string::npos)
        f.millis = int(std::strtoul(s.c_str() + c2 + 1, nullptr, 10));
    if (action == "segv")
        f.kind = TestFault::Kind::Segv;
    else if (action == "kill")
        f.kind = TestFault::Kind::Kill;
    else if (action == "abort")
        f.kind = TestFault::Kind::Abort;
    else if (action == "stall")
        f.kind = TestFault::Kind::Stall;
    else if (action == "mute")
        f.kind = TestFault::Kind::Mute;
    else if (action == "badframe")
        f.kind = TestFault::Kind::BadFrame;
    else if (action == "drop")
        f.kind = TestFault::Kind::Drop;
    else if (action == "corruptframe")
        f.kind = TestFault::Kind::CorruptFrame;
    else if (action == "stallframe")
        f.kind = TestFault::Kind::StallFrame;
    else if (action == "skew")
        f.kind = TestFault::Kind::Skew;
    return f;
}

void
armTestFault(const TestFault &f, FaultInjector &injector)
{
    using Point = FaultInjector::Point;
    // The worker engine runs one job at a time, so the local index the
    // injector sees is always 0.
    switch (f.kind) {
      case TestFault::Kind::Segv:
        injector.armRaise(Point::Replay, 0, SIGSEGV);
        break;
      case TestFault::Kind::Kill:
        injector.armRaise(Point::Replay, 0, SIGKILL);
        break;
      case TestFault::Kind::Abort:
        injector.armRaise(Point::Replay, 0, SIGABRT);
        break;
      case TestFault::Kind::Stall:
        injector.armStall(Point::Replay, 0, f.millis ? f.millis : 30000);
        break;
      case TestFault::Kind::Mute:
        // A silent worker: alive and busy but no heartbeats — the
        // supervisor's timeout, not waitpid, has to catch this one.
        muteWorkerHeartbeatsForTest(true);
        injector.armStall(Point::Replay, 0, f.millis ? f.millis : 30000);
        break;
      case TestFault::Kind::None:
      case TestFault::Kind::BadFrame:
      case TestFault::Kind::Drop:
      case TestFault::Kind::CorruptFrame:
      case TestFault::Kind::StallFrame:
      case TestFault::Kind::Skew:
        break;  // not injector faults; owned by the wire layers
    }
}

void
muteWorkerHeartbeatsForTest(bool mute)
{
    g_mute_heartbeats.store(mute, std::memory_order_relaxed);
}

int
runShardWorker(int in_fd, int out_fd,
               const std::vector<ExperimentJob> &jobs,
               const ShardWorkerOptions &opts)
{
    ignoreSigpipe();
    installDrainHandlers();

    // Liveness breadcrumb for orphan-detection tests: present while
    // the worker runs, removed on clean exit. A crash leaves a stale
    // file whose pid no longer exists — which is exactly the
    // distinction the no-orphans check needs.
    std::string pidfile;
    if (const char *dir = std::getenv("VGIW_SHARD_PIDFILE_DIR");
        dir && *dir) {
        pidfile = std::string(dir) + "/worker-" +
                  std::to_string(::getpid()) + ".alive";
        if (std::FILE *f = std::fopen(pidfile.c_str(), "w")) {
            std::fprintf(f, "%d\n", int(::getpid()));
            std::fclose(f);
        }
    }

    const TestFault fault = parseTestFault(std::getenv("VGIW_TEST_FAULT"));

    FaultInjector injector;
    MetricsCollector collector;
    EngineOptions eopts;
    eopts.jobs = 1;
    eopts.retry = opts.retry;
    eopts.artifactStore = opts.artifactStore;
    eopts.injector = &injector;
    eopts.stop = &drainFlag();
    if (opts.collectMetrics)
        eopts.metrics = &collector;
    // One engine for the worker's lifetime: its trace/compile caches
    // persist across jobs, so a worker that sees a workload twice
    // traces it once — and with a shared artifact store, the whole
    // fleet traces it once.
    ExperimentEngine engine(eopts);

    // The heartbeat thread shares the result fd; a mutex keeps frames
    // from interleaving mid-write.
    std::mutex write_mu;
    std::atomic<bool> beat_stop{false};
    std::thread beater([&]() {
        const auto interval =
            std::chrono::milliseconds(opts.heartbeatIntervalMs);
        auto next = Clock::now();
        while (!beat_stop.load(std::memory_order_acquire)) {
            if (!g_mute_heartbeats.load(std::memory_order_relaxed)) {
                std::lock_guard<std::mutex> lock(write_mu);
                writeFrame(out_fd, FrameType::Heartbeat, {});
            }
            next += interval;
            // Sleep in short slices so shutdown never waits a full
            // interval.
            while (!beat_stop.load(std::memory_order_acquire) &&
                   Clock::now() < next) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
    });

    int rc = 0;
    for (;;) {
        if (drainRequested())
            break;
        Frame frame;
        const ReadStatus st = readFrame(in_fd, &frame);
        if (st == ReadStatus::Interrupted)
            continue;  // a signal landed; the loop re-checks the drain
        if (st == ReadStatus::Eof)
            break;  // coordinator closed the pipe: orderly exit
        if (st != ReadStatus::Ok) {
            rc = 1;  // Corrupt / Error: desynchronised coordinator.
                     // (CorruptRecord too: a worker cannot skip a Job
                     // frame — the coordinator would believe the job
                     // is owned. Dying hands it back for re-dispatch.)
            break;
        }
        if (frame.type == FrameType::Shutdown)
            break;
        if (frame.type != FrameType::Job)
            continue;

        ByteReader rd(frame.payload.data(), frame.payload.size());
        const uint64_t index = rd.u64();
        if (!rd.done() || index >= jobs.size()) {
            rc = 1;
            break;
        }
        if (fault.kind == TestFault::Kind::BadFrame &&
            fault.index == index) {
            // Corruption-recovery drill: one checksum-bad (but
            // length-valid) frame ahead of the real result. The
            // supervisor must skip exactly this record, count it, and
            // parse everything after it.
            std::lock_guard<std::mutex> lock(write_mu);
            writeCorruptFrameForTest(out_fd, FrameType::Heartbeat,
                                     "corrupt-record-drill");
        } else if (fault.kind != TestFault::Kind::None &&
                   !fault.isNetwork() && fault.index == index) {
            armTestFault(fault, injector);
        }
        if (opts.preJob)
            opts.preJob(size_t(index));

        auto results = engine.run({jobs[index]});
        const JobResult &r = results[0];
        const std::string_view line = engine.resultTable().renderRow(0);
        const std::string payload = encodeResultMsg(index, r, line);
        {
            std::lock_guard<std::mutex> lock(write_mu);
            if (!writeFrame(out_fd, FrameType::Result, payload)) {
                rc = 1;  // coordinator is gone; nothing left to do
                break;
            }
        }
        if (r.drained)
            break;
    }

    // Final counters — sent even on drain so the coordinator's summary
    // covers what this worker did before stopping.
    StatsMsg stats;
    stats.functionalExecutions =
        engine.traceCache().functionalExecutions();
    stats.compilations = engine.compileCache().compilations();
    if (opts.artifactStore) {
        stats.storeHits = opts.artifactStore->hits();
        stats.storeMisses = opts.artifactStore->misses();
        stats.storeBytesMapped = opts.artifactStore->bytesMapped();
    }
    {
        std::lock_guard<std::mutex> lock(write_mu);
        writeFrame(out_fd, FrameType::Stats, encodeStatsMsg(stats));
    }
    beat_stop.store(true, std::memory_order_release);
    beater.join();
    if (!pidfile.empty())
        ::unlink(pidfile.c_str());
    return rc;
}

} // namespace vgiw
