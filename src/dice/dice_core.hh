/**
 * @file
 * A DICE-style statically scheduled CGRA core (PAPERS.md: "DICE:
 * Enabling Efficient General-Purpose SIMT Execution with Statically
 * Scheduled Coarse-Grained Reconfigurable Arrays"), the repo's fourth
 * timing model and the modern cousin of SGMF: SIMT execution on a
 * reconfigurable array, but with every operation assigned a compile-time
 * slot in a per-unit reservation table instead of dynamically dataflow-
 * scheduled tokens.
 *
 * Where the other models sit (docs/architectures.md has the full map):
 *
 *  - VGIW coalesces control flow at run time: the CVT gathers every
 *    thread waiting on a block, then replays the block's graph once for
 *    the whole vector.
 *  - SGMF maps the *entire* kernel CDFG spatially and lets tokens find
 *    their own timing; divergence means untaken-path units fire anyway.
 *  - Fermi serialises divergent paths through a reconvergence stack.
 *  - DICE (this model) keeps SIMT lane groups, but executes each basic
 *    block as a statically scheduled dataflow graph: a modulo schedule
 *    with a fixed initiation interval (II) admits one lane into the
 *    array every II cycles, and divergent lanes ride through the
 *    schedule *predicated off* — the compile-time alternative to both
 *    the CVT and the reconvergence stack.
 *
 * Modelled consequences, each with its own metrics counter:
 *
 *  - II stalls: a block whose DFG needs more units of some kind than
 *    the array has gets II > 1 from the reservation table, so every
 *    lane after the first waits II-1 extra cycles per block visit;
 *  - predication waste: lanes that did not take a block still occupy
 *    their schedule slots (and burn datapath energy) whenever any lane
 *    in their group visits it — DICE pays in lanes for what VGIW
 *    avoids by coalescing across the whole core;
 *  - reconfiguration: each lane-group block switch swaps the array's
 *    static schedule; first use of a graph loads it (row-parallel, like
 *    VGIW), later uses hit the configuration cache at a small fixed
 *    cost. Per-group switching is the price of not coalescing.
 */

#ifndef VGIW_DICE_DICE_CORE_HH
#define VGIW_DICE_DICE_CORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cgrf/dataflow_graph.hh"
#include "cgrf/grid.hh"
#include "cgrf/placer.hh"
#include "common/watchdog.hh"
#include "driver/core_model.hh"
#include "driver/run_stats.hh"
#include "interp/trace.hh"
#include "ir/op_counts.hh"
#include "power/energy_model.hh"

namespace vgiw
{

/** Configuration of the DICE core model. */
struct DiceConfig
{
    /**
     * Placement substrate: block DFGs are routed on the same MT-CGRF
     * template the VGIW/SGMF compilers use (shared src/cgrf layer), so
     * critical paths and hop counts are directly comparable.
     */
    GridConfig grid = GridConfig::makeTable1();
    CgrfTiming timing{};
    EnergyTable energy{};

    /**
     * Physical units per kind of the statically scheduled array. DICE
     * trades a smaller array for time-multiplexing: the modulo
     * scheduler folds each placed graph onto these units via per-kind
     * reservation tables, so a block needing more units of a kind than
     * the array owns gets a proportionally larger initiation interval.
     * Default: a quarter of the Table 1 grid per kind.
     */
    UnitCounts arrayCounts{8, 3, 4, 4, 4, 4};

    /** SIMT lane-group width: lanes admitted into one static schedule
     * together, divergence handled by predication (replay-side). */
    int laneWidth = 32;

    /** Outstanding-miss window (same reservation buffers as VGIW). */
    uint32_t missWindow = 512;

    /**
     * Cycles to swap in an already-loaded dataflow-graph schedule from
     * the configuration cache (a lane-group block switch). First use
     * of a graph pays the full row-parallel load instead.
     */
    int switchCycles = 4;

    /** Replay ceilings (cycle budget / wall-clock deadline). */
    WatchdogConfig watchdog{};

    /** Well-formedness check, run at job entry by the experiment
     * engine. Empty string when valid. */
    std::string validate() const;
};

/** The static schedule compile() derives for one basic block. */
struct DiceBlockSchedule
{
    /**
     * Initiation interval: reservation-table bound, i.e. the max over
     * unit kinds of ceil(units the DFG needs / units the array has).
     * One lane enters the array every ii cycles.
     */
    int ii = 1;
    /** Makespan of one lane through the folded schedule: the placed
     * graph's critical path plus the fold's worst slot wait (ii - 1). */
    int scheduleCycles = 0;
};

/**
 * DICE compile artifact: per-block placements on the shared CGRF
 * template plus the static modulo schedule (II, makespan) the
 * reservation tables produce, static op counts and live-value counts.
 */
struct DiceCompiledKernel final : CompiledKernel
{
    std::vector<PlacedBlock> placed;       ///< one replica per block
    std::vector<OpCounts> ops;             ///< static ops per block
    std::vector<DiceBlockSchedule> sched;  ///< per-block static schedule
    std::vector<uint32_t> liveInCount;     ///< distinct live-ins read
    std::vector<uint32_t> liveOutCount;    ///< live-outs written
    int maxIi = 1;       ///< worst initiation interval over all blocks
    double avgIi = 1.0;  ///< unweighted mean II over all blocks
};

/** Cycle-approximate DICE core model. */
class DiceCore final : public CoreModel
{
  public:
    explicit DiceCore(const DiceConfig &cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "dice"; }

    std::string compileKey() const override;
    std::string replayKey() const override;

    /** Per-block placement + modulo schedule (reservation-table II). */
    std::shared_ptr<const CompiledKernel>
    compile(const Kernel &kernel) const override;

    /**
     * Replay @p traces through the static schedules: lane groups walk
     * the CFG in reconvergent (min-block-first) order, divergent lanes
     * predicated. Unlike SGMF there is no unsupported verdict — blocks
     * that exceed the array fold onto it with a larger II, so every
     * kernel the per-block placer handles runs.
     */
    RunStats run(const TraceSet &traces,
                 const CompiledKernel &compiled) const override;
    using CoreModel::run;

    /** Persist / rehydrate a DiceCompiledKernel (artifact store). */
    std::string
    serializeArtifact(const CompiledKernel &compiled) const override;
    std::shared_ptr<const CompiledKernel>
    deserializeArtifact(std::string_view bytes) const override;

    const DiceConfig &config() const { return cfg_; }

  private:
    DiceConfig cfg_;
};

} // namespace vgiw

#endif // VGIW_DICE_DICE_CORE_HH
