#include "dice/dice_core.hh"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cgrf/config_cost.hh"
#include "cgrf/placed_serde.hh"
#include "cgrf/placer.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/sim_error.hh"
#include "mem/bank_merge.hh"
#include "mem/memory_system.hh"

namespace vgiw
{

namespace
{

/**
 * Reservation-table initiation interval of one block: the modulo
 * scheduler folds the placed graph onto the array, so each unit kind
 * needs ceil(demand / supply) schedule slots and the widest kind sets
 * the II. Demand comes from the DFG (one node per op, exactly what the
 * spatial placers consume), supply from DiceConfig::arrayCounts.
 */
int
reservationIi(const UnitCounts &needs, const UnitCounts &array)
{
    int ii = 1;
    for (int kind = 0; kind < kNumUnitKinds; ++kind) {
        if (needs[size_t(kind)] <= 0)
            continue;
        const int supply = array[size_t(kind)];
        ii = std::max(ii, (needs[size_t(kind)] + supply - 1) / supply);
    }
    return ii;
}

} // namespace

std::string
DiceConfig::validate() const
{
    if (std::string d = validateGridConfig(grid); !d.empty())
        return "dice: " + d;
    for (int kind = 0; kind < kNumUnitKinds; ++kind) {
        if (arrayCounts[size_t(kind)] < 1) {
            return std::string("dice: arrayCounts[") +
                   unitKindName(UnitKind(kind)) +
                   "] must be at least 1 (the reservation table divides "
                   "by it)";
        }
    }
    if (laneWidth < 1)
        return "dice: laneWidth must be at least 1";
    if (missWindow == 0)
        return "dice: missWindow must be positive (latency hiding "
               "divides by it)";
    if (switchCycles < 0)
        return "dice: switchCycles must be non-negative";
    return {};
}

std::string
DiceCore::compileKey() const
{
    // compile() reads the grid (placement), the unit timings (critical
    // paths) and the array shape (reservation tables / II). Lane width,
    // switch cost and the miss window are replay-side.
    std::string arr;
    for (int c : cfg_.arrayCounts)
        arr += "," + std::to_string(c);
    return "dice|" + gridFingerprint(cfg_.grid) + "|" +
           timingFingerprint(cfg_.timing) + "|arr" + arr;
}

std::string
DiceCore::replayKey() const
{
    // Everything run() reads that compileKey() does not: the lane-group
    // width, the outstanding-miss window and the configuration-cache
    // switch cost. Watchdog budgets are excluded by contract (see
    // CoreModel::replayKey).
    return "lanes:" + std::to_string(cfg_.laneWidth) +
           "|mw:" + std::to_string(cfg_.missWindow) +
           "|sw:" + std::to_string(cfg_.switchCycles);
}

std::shared_ptr<const CompiledKernel>
DiceCore::compile(const Kernel &k) const
{
    auto ck = std::make_shared<DiceCompiledKernel>();
    Placer placer(cfg_.grid);
    ck->placed.reserve(k.blocks.size());
    ck->ops.reserve(k.blocks.size());
    ck->sched.reserve(k.blocks.size());
    ck->liveInCount.reserve(k.blocks.size());
    ck->liveOutCount.reserve(k.blocks.size());
    double ii_sum = 0.0;
    for (const auto &blk : k.blocks) {
        const Dfg dfg = buildBlockDfg(blk, cfg_.timing);
        // One replica on the shared CGRF template: DICE never
        // replicates — throughput comes from pipelining lanes at II.
        ck->placed.push_back(placer.place(dfg, 1));
        if (!ck->placed.back().fits) {
            // Same per-job compile error contract as VGIW: a kernel
            // whose block exceeds the routing template fails this job,
            // never the sweep.
            throw SimError(SimErrorKind::Compile,
                           "kernel '" + k.name + "' block '" + blk.name +
                               "' does not fit the DICE routing "
                               "template");
        }
        DiceBlockSchedule s;
        s.ii = reservationIi(dfg.unitNeeds(), cfg_.arrayCounts);
        // The fold can delay any op by up to ii-1 cycles waiting for
        // its reservation slot, on top of the placed critical path.
        s.scheduleCycles =
            ck->placed.back().criticalPathCycles + (s.ii - 1);
        ck->sched.push_back(s);
        ck->maxIi = std::max(ck->maxIi, s.ii);
        ii_sum += double(s.ii);

        ck->ops.push_back(staticOpCounts(blk));
        uint32_t live_in = 0, live_out = 0;
        for (const DfgNode &n : dfg.nodes) {
            if (n.role == DfgRole::LiveInRead)
                ++live_in;
            else if (n.role == DfgRole::LiveOutWrite)
                ++live_out;
        }
        ck->liveInCount.push_back(live_in);
        ck->liveOutCount.push_back(live_out);
    }
    ck->avgIi = k.numBlocks() ? ii_sum / double(k.numBlocks()) : 1.0;
    return ck;
}

namespace
{
/** Bumped when the DICE artifact payload layout changes. */
constexpr uint32_t kDiceArtifactVersion = 1;
} // namespace

std::string
DiceCore::serializeArtifact(const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const DiceCompiledKernel *>(&compiled);
    if (!ck)
        return {};
    std::string out;
    ByteWriter w(out);
    w.u32(kDiceArtifactVersion);
    // placed/ops/sched/live counts are parallel per-block arrays: one
    // count.
    w.u64(ck->placed.size());
    for (const PlacedBlock &b : ck->placed)
        writePlacedBlock(w, b);
    for (const OpCounts &oc : ck->ops) {
        w.u32(oc.intAlu);
        w.u32(oc.fpAlu);
        w.u32(oc.scu);
        w.u32(oc.loads);
        w.u32(oc.stores);
    }
    for (const DiceBlockSchedule &s : ck->sched) {
        w.i32(s.ii);
        w.i32(s.scheduleCycles);
    }
    for (uint32_t v : ck->liveInCount)
        w.u32(v);
    for (uint32_t v : ck->liveOutCount)
        w.u32(v);
    w.i32(ck->maxIi);
    w.f64(ck->avgIi);
    return out;
}

std::shared_ptr<const CompiledKernel>
DiceCore::deserializeArtifact(std::string_view bytes) const
{
    ByteReader r(bytes.data(), bytes.size());
    if (r.u32() != kDiceArtifactVersion)
        return nullptr;
    const uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining())
        return nullptr;
    auto ck = std::make_shared<DiceCompiledKernel>();
    ck->placed.resize(size_t(n));
    for (PlacedBlock &b : ck->placed)
        readPlacedBlock(r, b);
    ck->ops.resize(size_t(n));
    for (OpCounts &oc : ck->ops) {
        oc.intAlu = r.u32();
        oc.fpAlu = r.u32();
        oc.scu = r.u32();
        oc.loads = r.u32();
        oc.stores = r.u32();
    }
    ck->sched.resize(size_t(n));
    for (DiceBlockSchedule &s : ck->sched) {
        s.ii = r.i32();
        s.scheduleCycles = r.i32();
        if (s.ii < 1)
            return nullptr;
    }
    ck->liveInCount.resize(size_t(n));
    for (uint32_t &v : ck->liveInCount)
        v = r.u32();
    ck->liveOutCount.resize(size_t(n));
    for (uint32_t &v : ck->liveOutCount)
        v = r.u32();
    ck->maxIi = r.i32();
    ck->avgIi = r.f64();
    if (!r.done())
        return nullptr;
    return ck;
}

RunStats
DiceCore::run(const TraceSet &traces, const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const DiceCompiledKernel *>(&compiled);
    vgiw_assert(ck, "DiceCore::run needs a DICE compile artifact");

    const Kernel &k = *traces.kernel;
    const int num_blocks = k.numBlocks();
    const int num_threads = traces.launch.numThreads();
    vgiw_assert(int(ck->placed.size()) == num_blocks,
                "compile artifact/kernel mismatch");

    RunStats rs;
    rs.arch = "dice";
    rs.kernelName = k.name;

    // --- Runtime structures. -------------------------------------------
    MemorySystem ms(vgiwL1Geometry());
    BankMergeModel l1_banks_model(ms.l1().geometry().banks);
    BankMergeModel shared_banks_model(32);
    const EnergyTable &e = cfg_.energy;
    const int array_units = totalUnits(cfg_.arrayCounts);
    const int graph_load_cost = reconfigCycles(array_units);
    const int lane_width = cfg_.laneWidth;

    // Livelock containment, polled once per scheduled block visit (the
    // lane-group loop's unit of forward progress).
    std::optional<Watchdog> wd;
    if (cfg_.watchdog.enabled())
        wd.emplace(cfg_.watchdog, "dice replay of '" + k.name + "'");

    // Per-block attribution for the observability layer: visit counts
    // and active-lane occupancy. Deterministic replay statistics only —
    // safe for the "metrics" JSON contract.
    JobMetrics *jm = currentMetricSink();
    std::vector<double> m_visits, m_active;
    if (jm) {
        m_visits.assign(size_t(num_blocks), 0.0);
        m_active.assign(size_t(num_blocks), 0.0);
    }

    // One forward-only decode cursor per lane of the current group.
    std::vector<ThreadCursor> lanes(static_cast<size_t>(lane_width));

    // First use of a block's schedule loads it row-parallel into the
    // configuration cache; later lane groups switch to it at the cached
    // cost. The cache is sized for the kernel (DICE's config memory),
    // so a graph is loaded at most once per launch.
    std::vector<uint8_t> loaded(size_t(num_blocks), 0);

    uint64_t compute_cycles = 0;
    uint64_t config_cycles = 0;
    uint64_t graph_loads = 0;
    uint64_t graph_switches = 0;  // cache hits: swaps after first load
    uint64_t block_visits = 0;
    uint64_t ii_stall_cycles = 0;
    uint64_t pred_waste_ops = 0;
    uint64_t active_lane_sum = 0;
    uint64_t live_value_words = 0;
    uint64_t shared_accesses = 0;
    uint64_t lane_groups = 0;

    for (int group_start = 0; group_start < num_threads;
         group_start += lane_width) {
        const int width =
            std::min(lane_width, num_threads - group_start);
        ++lane_groups;
        for (int l = 0; l < width; ++l)
            lanes[size_t(l)] =
                traces.thread(uint32_t(group_start + l));

        int configured = -1;
        while (true) {
            // Reconvergent schedule order: the earliest pending block
            // over the group (blocks are in reverse post-order, so the
            // minimum is always a block no lane has passed — divergent
            // paths and loop iterations reconverge without a stack).
            int b = -1;
            int alive = 0;
            for (int l = 0; l < width; ++l) {
                if (lanes[size_t(l)].done())
                    continue;
                ++alive;
                const int blk = lanes[size_t(l)].block();
                if (b < 0 || blk < b)
                    b = blk;
            }
            if (b < 0)
                break;
            ++block_visits;

            // Swap in this block's static schedule.
            if (b != configured) {
                if (!loaded[size_t(b)]) {
                    loaded[size_t(b)] = 1;
                    ++graph_loads;
                    config_cycles += uint64_t(graph_load_cost);
                    rs.energy.add(EnergyComponent::Config,
                                  e.configPerUnit * array_units);
                } else {
                    ++graph_switches;
                    config_cycles += uint64_t(cfg_.switchCycles);
                }
                ++rs.reconfigs;
                configured = b;
            }

            // --- Replay this block visit. -----------------------------
            l1_banks_model.reset();
            shared_banks_model.reset();
            uint64_t miss_latency = 0;
            int active = 0;
            const OpCounts &oc = ck->ops[size_t(b)];
            for (int l = 0; l < width; ++l) {
                ThreadCursor &cur = lanes[size_t(l)];
                if (cur.done() || cur.block() != b)
                    continue;  // predicated off: occupies a slot only
                ++active;

                // Predication suppresses untaken-path memory accesses,
                // so only active lanes reach the LDST reservation
                // tables (word granularity, no coalescer — same LDST
                // units as VGIW).
                const uint32_t nacc = cur.numAccesses();
                for (uint32_t a = 0; a < nacc; ++a) {
                    const MemAccess acc = cur.nextAccess();
                    if (acc.isShared) {
                        shared_banks_model.access((acc.addr / 4) % 32,
                                                  acc.addr / 4);
                        ++shared_accesses;
                        continue;
                    }
                    const MemAccessResult r =
                        ms.access(acc.addr, acc.isStore);
                    l1_banks_model.access(ms.l1().bankOf(acc.addr),
                                          acc.addr / 128);
                    if (r.servicedBy != MemLevel::L1)
                        miss_latency += r.latency;
                }

                // Live values move through the schedule's operand
                // buffers (DICE has no LVC and no vector RF).
                live_value_words += ck->liveInCount[size_t(b)] +
                                    ck->liveOutCount[size_t(b)];
                cur.nextExec();
            }

            // --- Cycle model for this visit. --------------------------
            // The reservation table admits one lane every II cycles;
            // every *alive* lane occupies a slot (predication), so the
            // issue bound scales with the group, not the taken count.
            const DiceBlockSchedule &s = ck->sched[size_t(b)];
            const uint64_t issue = uint64_t(alive) * uint64_t(s.ii);
            const uint64_t bw = l1_banks_model.maxCycles();
            const uint64_t shr = shared_banks_model.maxCycles();
            const uint64_t lat = miss_latency / cfg_.missWindow;
            compute_cycles += std::max({issue, bw, shr, lat}) +
                              uint64_t(s.scheduleCycles);
            ii_stall_cycles += uint64_t(alive) * uint64_t(s.ii - 1);
            pred_waste_ops +=
                uint64_t(alive - active) * uint64_t(oc.total());
            active_lane_sum += uint64_t(active);
            if (jm) {
                ++m_visits[size_t(b)];
                m_active[size_t(b)] += double(active);
            }

            // --- Energy for this visit. -------------------------------
            // Predicated-off lanes still stream through the compute
            // schedule (the divergence waste the predication counter
            // quantifies); only active lanes issue memory and operand
            // traffic.
            rs.energy.add(EnergyComponent::Datapath,
                          double(alive) * (oc.intAlu * e.intAluOp +
                                           oc.fpAlu * e.fpAluOp +
                                           oc.scu * e.scuOp) +
                              double(active) * oc.mem() * e.ldstIssue);
            const PlacedBlock &pb = ck->placed[size_t(b)];
            rs.energy.add(EnergyComponent::TokenFabric,
                          double(alive) *
                              (pb.edgesPerThread * e.tokenBufferRw +
                               pb.edgeHopsPerThread * e.tokenHop));
            rs.dynBlockExecs += uint64_t(active);
            rs.dynThreadOps += uint64_t(active) * uint64_t(oc.total());

            if (wd) {
                wd->poll(compute_cycles + config_cycles,
                         rs.dynBlockExecs, rs.dynThreadOps);
            }
        }
    }

    // --- Totals. ---------------------------------------------------------
    rs.configCycles = config_cycles;
    rs.cycles = compute_cycles + config_cycles;
    rs.cycles = std::max(rs.cycles, ms.dramServiceCycles());

    rs.energy.add(EnergyComponent::RegisterFile,
                  double(live_value_words) * e.operandBufferWord);
    rs.energy.add(EnergyComponent::Scratchpad,
                  double(shared_accesses) * e.sharedAccessWord);
    rs.energy.add(EnergyComponent::L1,
                  ms.l1().stats().accesses() * e.l1AccessWord);
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.dramStats = ms.dram().stats();

    const double avg_active =
        block_visits ? double(active_lane_sum) / double(block_visits)
                     : 0.0;
    rs.extra.set("dice.max_ii", double(ck->maxIi));
    rs.extra.set("dice.avg_active_lanes", avg_active);
    rs.extra.set("dice.predication_waste_ops", double(pred_waste_ops));
    rs.extra.set("dice.graph_switches", double(graph_switches));

    if (jm) {
        jm->set("dice.lane_groups", double(lane_groups));
        jm->set("dice.block_visits", double(block_visits));
        jm->set("dice.avg_active_lanes", avg_active);
        jm->set("dice.ii_stall_cycles", double(ii_stall_cycles));
        jm->set("dice.predication_waste_ops", double(pred_waste_ops));
        jm->set("dice.predication_waste_fraction",
                pred_waste_ops + rs.dynThreadOps
                    ? double(pred_waste_ops) /
                          double(pred_waste_ops + rs.dynThreadOps)
                    : 0.0);
        jm->set("dice.graph_loads", double(graph_loads));
        jm->set("dice.graph_switches", double(graph_switches));
        jm->set("dice.reconfig_cycles", double(config_cycles));
        jm->set("dice.max_ii", double(ck->maxIi));
        jm->set("dice.avg_ii", ck->avgIi);
        for (int b = 0; b < num_blocks; ++b) {
            const std::string p = "dice.block" + std::to_string(b);
            jm->set(p + ".ii", double(ck->sched[size_t(b)].ii));
            jm->set(p + ".visits", m_visits[size_t(b)]);
            jm->set(p + ".active_lanes", m_active[size_t(b)]);
        }
    }
    return rs;
}

} // namespace vgiw
