#include "interp/interpreter.hh"

#include <cmath>
#include <cstdlib>

#include "common/bit_vector.hh"
#include "common/logging.hh"

namespace vgiw
{

namespace
{

/** Evaluate a non-memory operation. Integer div/rem by zero yields 0. */
Scalar
evalOp(const Instr &in, Scalar a, Scalar b, Scalar c)
{
    const Type t = in.type;
    auto boolean = [](bool v) { return Scalar::fromU32(v ? 1 : 0); };
    switch (in.op) {
      case Opcode::Add:
        if (t == Type::F32) return Scalar::fromF32(a.asF32() + b.asF32());
        return Scalar::fromU32(a.asU32() + b.asU32());
      case Opcode::Sub:
        if (t == Type::F32) return Scalar::fromF32(a.asF32() - b.asF32());
        return Scalar::fromU32(a.asU32() - b.asU32());
      case Opcode::Mul:
        if (t == Type::F32) return Scalar::fromF32(a.asF32() * b.asF32());
        return Scalar::fromU32(a.asU32() * b.asU32());
      case Opcode::Min:
        if (t == Type::F32)
            return Scalar::fromF32(std::fmin(a.asF32(), b.asF32()));
        if (t == Type::I32)
            return Scalar::fromI32(std::min(a.asI32(), b.asI32()));
        return Scalar::fromU32(std::min(a.asU32(), b.asU32()));
      case Opcode::Max:
        if (t == Type::F32)
            return Scalar::fromF32(std::fmax(a.asF32(), b.asF32()));
        if (t == Type::I32)
            return Scalar::fromI32(std::max(a.asI32(), b.asI32()));
        return Scalar::fromU32(std::max(a.asU32(), b.asU32()));
      case Opcode::Neg:
        if (t == Type::F32) return Scalar::fromF32(-a.asF32());
        return Scalar::fromU32(0u - a.asU32());
      case Opcode::Abs:
        if (t == Type::F32) return Scalar::fromF32(std::fabs(a.asF32()));
        return Scalar::fromI32(std::abs(a.asI32()));
      case Opcode::And: return Scalar::fromU32(a.asU32() & b.asU32());
      case Opcode::Or: return Scalar::fromU32(a.asU32() | b.asU32());
      case Opcode::Xor: return Scalar::fromU32(a.asU32() ^ b.asU32());
      case Opcode::Not: return Scalar::fromU32(~a.asU32());
      case Opcode::Shl: return Scalar::fromU32(a.asU32() << (b.asU32() & 31));
      case Opcode::Shr:
        if (t == Type::I32)
            return Scalar::fromI32(a.asI32() >> (b.asU32() & 31));
        return Scalar::fromU32(a.asU32() >> (b.asU32() & 31));
      case Opcode::CmpEq:
        if (t == Type::F32) return boolean(a.asF32() == b.asF32());
        return boolean(a.asU32() == b.asU32());
      case Opcode::CmpNe:
        if (t == Type::F32) return boolean(a.asF32() != b.asF32());
        return boolean(a.asU32() != b.asU32());
      case Opcode::CmpLt:
        if (t == Type::F32) return boolean(a.asF32() < b.asF32());
        if (t == Type::I32) return boolean(a.asI32() < b.asI32());
        return boolean(a.asU32() < b.asU32());
      case Opcode::CmpLe:
        if (t == Type::F32) return boolean(a.asF32() <= b.asF32());
        if (t == Type::I32) return boolean(a.asI32() <= b.asI32());
        return boolean(a.asU32() <= b.asU32());
      case Opcode::CmpGt:
        if (t == Type::F32) return boolean(a.asF32() > b.asF32());
        if (t == Type::I32) return boolean(a.asI32() > b.asI32());
        return boolean(a.asU32() > b.asU32());
      case Opcode::CmpGe:
        if (t == Type::F32) return boolean(a.asF32() >= b.asF32());
        if (t == Type::I32) return boolean(a.asI32() >= b.asI32());
        return boolean(a.asU32() >= b.asU32());
      case Opcode::Select: return a.asBool() ? b : c;
      case Opcode::Div:
        if (t == Type::F32) return Scalar::fromF32(a.asF32() / b.asF32());
        if (t == Type::I32) {
            return Scalar::fromI32(
                b.asI32() == 0 ? 0 : a.asI32() / b.asI32());
        }
        return Scalar::fromU32(b.asU32() == 0 ? 0 : a.asU32() / b.asU32());
      case Opcode::Rem:
        if (t == Type::F32)
            return Scalar::fromF32(std::fmod(a.asF32(), b.asF32()));
        if (t == Type::I32) {
            return Scalar::fromI32(
                b.asI32() == 0 ? 0 : a.asI32() % b.asI32());
        }
        return Scalar::fromU32(b.asU32() == 0 ? 0 : a.asU32() % b.asU32());
      case Opcode::Sqrt: return Scalar::fromF32(std::sqrt(a.asF32()));
      case Opcode::Rsqrt:
        return Scalar::fromF32(1.0f / std::sqrt(a.asF32()));
      case Opcode::Exp: return Scalar::fromF32(std::exp(a.asF32()));
      case Opcode::Log: return Scalar::fromF32(std::log(a.asF32()));
      case Opcode::Sin: return Scalar::fromF32(std::sin(a.asF32()));
      case Opcode::Cos: return Scalar::fromF32(std::cos(a.asF32()));
      case Opcode::I2F: return Scalar::fromF32(float(a.asI32()));
      case Opcode::U2F: return Scalar::fromF32(float(a.asU32()));
      case Opcode::F2I: return Scalar::fromI32(int32_t(a.asF32()));
      case Opcode::F2U: return Scalar::fromU32(uint32_t(a.asF32()));
      default:
        vgiw_panic("evalOp on unexpected opcode ", opcodeName(in.op));
    }
}

/** Per-thread architectural state between block executions. */
struct ThreadState
{
    std::vector<Scalar> liveVals;
    bool exited = false;
};

} // namespace

TraceSet
Interpreter::run(const Kernel &k, const LaunchParams &launch,
                 MemoryImage &mem) const
{
    vgiw_assert(int(launch.params.size()) == k.numParams,
                "kernel '", k.name, "' expects ", k.numParams,
                " params, launch provides ", launch.params.size());

    const int num_threads = launch.numThreads();
    const int num_blocks = k.numBlocks();

    // Traces are built uncompressed per thread (the block-vector
    // scheduling below interleaves threads, so streaming per-thread
    // encoding is impossible) and encoded once at the end. The peak is
    // transient; only the compressed TraceSet outlives this call.
    std::vector<ThreadTrace> threads(size_t{unsigned(num_threads)});

    std::vector<ThreadState> state(num_threads);
    for (auto &s : state)
        s.liveVals.assign(size_t(k.numLiveValues), Scalar{});

    // Per-CTA scratchpads (shared memory).
    const uint32_t shared_words = uint32_t(k.sharedBytesPerCta + 3) / 4;
    std::vector<std::vector<uint32_t>> shared(
        launch.numCtas, std::vector<uint32_t>(shared_words, 0));

    // Pending thread vectors, one per block; all threads start on block 0.
    std::vector<BitVector> pending;
    pending.reserve(num_blocks);
    for (int b = 0; b < num_blocks; ++b)
        pending.emplace_back(size_t(num_threads));
    pending[0].setFirstN(size_t(num_threads));

    // Barrier bookkeeping. A pool collects the threads of one CTA that
    // arrived at one barrier-terminated block; it releases (each thread to
    // its own successor, which may differ under a divergent-but-uniformly-
    // synchronised loop) once every live thread of the CTA has arrived.
    std::vector<int> live_in_cta(launch.numCtas, launch.ctaSize);
    struct BarrierPool
    {
        std::vector<std::pair<uint32_t, int>> arrivals;  // (tid, succ)
    };
    // Keyed by cta * num_blocks + barrier block id.
    std::vector<BarrierPool> pools(size_t(launch.numCtas) * num_blocks);
    int waiting_threads = 0;

    auto release_ready_pools = [&](int cta) {
        for (int b = 0; b < num_blocks; ++b) {
            BarrierPool &p = pools[size_t(cta) * num_blocks + b];
            if (!p.arrivals.empty() &&
                int(p.arrivals.size()) == live_in_cta[cta]) {
                for (auto [tid, succ] : p.arrivals)
                    pending[succ].set(tid);
                waiting_threads -= int(p.arrivals.size());
                p.arrivals.clear();
            }
        }
    };

    std::vector<Scalar> locals;
    uint64_t total_execs = 0;

    while (true) {
        int next = -1;
        for (int b = 0; b < num_blocks; ++b) {
            if (pending[b].any()) {
                next = b;
                break;
            }
        }
        if (next < 0) {
            if (waiting_threads > 0) {
                vgiw_fatal("kernel '", k.name, "': barrier deadlock, ",
                           waiting_threads, " threads waiting");
            }
            break;
        }

        const BasicBlock &blk = k.blocks[next];
        const auto tids = pending[next].toIndices();
        pending[next].reset();

        for (uint32_t tid : tids) {
            ThreadState &ts = state[tid];
            ThreadTrace &tr = threads[tid];
            const int cta = int(tid) / launch.ctaSize;

            if (++total_execs > opts_.maxBlockExecs) {
                vgiw_fatal("kernel '", k.name,
                           "' exceeded max dynamic block executions");
            }

            BlockExec exec;
            exec.block = uint16_t(next);
            exec.accessBegin = uint32_t(tr.accesses.size());

            locals.assign(blk.instrs.size(), Scalar{});
            auto read = [&](const Operand &o) -> Scalar {
                switch (o.kind) {
                  case OperandKind::Local: return locals[o.index];
                  case OperandKind::LiveIn: return ts.liveVals[o.index];
                  case OperandKind::Const: return o.constant;
                  case OperandKind::Param:
                    return launch.params[o.index];
                  case OperandKind::Special:
                    switch (o.specialReg()) {
                      case SpecialReg::Tid:
                        return Scalar::fromU32(tid);
                      case SpecialReg::TidInCta:
                        return Scalar::fromU32(tid % launch.ctaSize);
                      case SpecialReg::CtaId:
                        return Scalar::fromU32(uint32_t(cta));
                      case SpecialReg::CtaSize:
                        return Scalar::fromU32(uint32_t(launch.ctaSize));
                      case SpecialReg::NumCtas:
                        return Scalar::fromU32(uint32_t(launch.numCtas));
                      case SpecialReg::NumThreads:
                        return Scalar::fromU32(uint32_t(num_threads));
                    }
                    vgiw_panic("bad special reg");
                  case OperandKind::None:
                    // Unused operand slot (arity < 3); the verifier has
                    // already checked that real operands are present.
                    return Scalar{};
                }
                vgiw_panic("bad operand kind");
            };

            for (size_t i = 0; i < blk.instrs.size(); ++i) {
                const Instr &in = blk.instrs[i];
                if (in.op == Opcode::Load) {
                    const uint32_t addr = read(in.src[0]).asU32();
                    uint32_t word;
                    if (in.space == MemSpace::Shared) {
                        vgiw_assert(addr / 4 < shared_words,
                                    "shared load out of range @", addr,
                                    " in kernel ", k.name);
                        word = shared[cta][addr / 4];
                    } else {
                        word = mem.loadWord(addr);
                    }
                    locals[i] = Scalar(word);
                    if (opts_.recordTraces) {
                        tr.accesses.push_back(
                            {addr, false, in.space == MemSpace::Shared});
                    }
                } else if (in.op == Opcode::Store) {
                    const uint32_t addr = read(in.src[0]).asU32();
                    const Scalar val = read(in.src[1]);
                    if (in.space == MemSpace::Shared) {
                        vgiw_assert(addr / 4 < shared_words,
                                    "shared store out of range @", addr,
                                    " in kernel ", k.name);
                        shared[cta][addr / 4] = val.bits;
                    } else {
                        mem.storeWord(addr, val.bits);
                    }
                    if (opts_.recordTraces) {
                        tr.accesses.push_back(
                            {addr, true, in.space == MemSpace::Shared});
                    }
                } else {
                    locals[i] = evalOp(in, read(in.src[0]),
                                       read(in.src[1]), read(in.src[2]));
                }
            }

            for (const auto &lo : blk.liveOuts)
                ts.liveVals[lo.lvid] = read(lo.value);

            // Terminator.
            int succ = -1;
            switch (blk.term.kind) {
              case TermKind::Jump:
                succ = blk.term.target[0];
                break;
              case TermKind::Branch:
                succ = read(blk.term.cond).asBool() ? blk.term.target[0]
                                                    : blk.term.target[1];
                break;
              case TermKind::Exit:
                succ = -1;
                break;
            }

            exec.succ = int16_t(succ);
            exec.accessEnd = uint32_t(tr.accesses.size());
            tr.execs.push_back(exec);

            if (succ < 0) {
                ts.exited = true;
                --live_in_cta[cta];
                release_ready_pools(cta);
            } else if (blk.term.barrier) {
                BarrierPool &p = pools[size_t(cta) * num_blocks + next];
                p.arrivals.emplace_back(tid, succ);
                ++waiting_threads;
                release_ready_pools(cta);
            } else {
                pending[succ].set(tid);
            }
        }
    }

    return TraceSet::fromThreads(&k, launch, threads);
}

} // namespace vgiw
