/**
 * @file
 * A flat, word-addressed global-memory image used by the functional
 * executor and the workload generators. Provides a bump allocator so a
 * workload can lay out its buffers and pass base addresses as kernel
 * parameters, exactly as a CUDA host program would after cudaMalloc.
 */

#ifndef VGIW_INTERP_MEMORY_IMAGE_HH
#define VGIW_INTERP_MEMORY_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/scalar.hh"

namespace vgiw
{

/** Byte-addressed (word-aligned) global memory. */
class MemoryImage
{
  public:
    /** Construct with @p capacity_bytes of zeroed memory. */
    explicit MemoryImage(uint32_t capacity_bytes = 16u << 20)
        : words_((capacity_bytes + 3) / 4, 0)
    {}

    uint32_t sizeBytes() const { return uint32_t(words_.size()) * 4; }

    /**
     * Allocate @p num_words 32-bit words, aligned to a 128-byte cache
     * line (matching cudaMalloc's alignment guarantees that the
     * benchmarks' coalescing behaviour depends on). Returns the byte
     * address of the allocation.
     */
    uint32_t
    allocWords(uint32_t num_words)
    {
        brk_ = (brk_ + 127u) & ~127u;
        uint32_t addr = brk_;
        brk_ += num_words * 4;
        vgiw_assert(brk_ <= sizeBytes(), "memory image exhausted");
        return addr;
    }

    uint32_t
    loadWord(uint32_t byte_addr) const
    {
        vgiw_assert((byte_addr & 3) == 0, "unaligned load @", byte_addr);
        vgiw_assert(byte_addr < sizeBytes(), "load out of range @",
                    byte_addr);
        return words_[byte_addr / 4];
    }

    void
    storeWord(uint32_t byte_addr, uint32_t value)
    {
        vgiw_assert((byte_addr & 3) == 0, "unaligned store @", byte_addr);
        vgiw_assert(byte_addr < sizeBytes(), "store out of range @",
                    byte_addr);
        words_[byte_addr / 4] = value;
    }

    // Typed element helpers: element @p idx of the array at @p base.
    float
    loadF32(uint32_t base, uint32_t idx) const
    {
        return Scalar(loadWord(base + idx * 4)).asF32();
    }

    int32_t
    loadI32(uint32_t base, uint32_t idx) const
    {
        return Scalar(loadWord(base + idx * 4)).asI32();
    }

    uint32_t
    loadU32(uint32_t base, uint32_t idx) const
    {
        return loadWord(base + idx * 4);
    }

    void
    storeF32(uint32_t base, uint32_t idx, float v)
    {
        storeWord(base + idx * 4, Scalar::fromF32(v).bits);
    }

    void
    storeI32(uint32_t base, uint32_t idx, int32_t v)
    {
        storeWord(base + idx * 4, Scalar::fromI32(v).bits);
    }

    void
    storeU32(uint32_t base, uint32_t idx, uint32_t v)
    {
        storeWord(base + idx * 4, v);
    }

  private:
    std::vector<uint32_t> words_;
    uint32_t brk_ = 128;  // keep address 0 unused to catch null derefs
};

} // namespace vgiw

#endif // VGIW_INTERP_MEMORY_IMAGE_HH
