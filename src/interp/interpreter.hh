/**
 * @file
 * Functional executor for VGIW kernels.
 *
 * Execution follows the abstract VGIW machine of Section 2: every thread
 * starts pending on block 0; the machine repeatedly picks the smallest
 * block ID with pending threads and executes the block for all of them,
 * each completing thread registering itself on its successor block. This
 * is simultaneously the functional reference for correctness tests and the
 * producer of the dynamic traces all timing models replay.
 */

#ifndef VGIW_INTERP_INTERPRETER_HH
#define VGIW_INTERP_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "interp/memory_image.hh"
#include "interp/trace.hh"
#include "ir/kernel.hh"

namespace vgiw
{

/** Options controlling functional execution. */
struct InterpOptions
{
    /** Abort if a single launch exceeds this many dynamic block execs. */
    uint64_t maxBlockExecs = 64ull << 20;
    /** Record memory accesses in the traces (off saves memory). */
    bool recordTraces = true;
};

/** Functional executor / abstract VGIW machine. */
class Interpreter
{
  public:
    explicit Interpreter(InterpOptions opts = {}) : opts_(opts) {}

    /**
     * Execute @p kernel with @p launch against @p mem (updated in place).
     * Returns the per-thread traces.
     */
    TraceSet run(const Kernel &kernel, const LaunchParams &launch,
                 MemoryImage &mem) const;

  private:
    InterpOptions opts_;
};

} // namespace vgiw

#endif // VGIW_INTERP_INTERPRETER_HH
