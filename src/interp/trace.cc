#include "interp/trace.hh"

#include "common/logging.hh"

namespace vgiw
{

namespace
{

struct Tup
{
    int32_t block;
    int32_t succ;
    uint32_t nacc;
};

bool
sameTup(const Tup &a, const Tup &b)
{
    return a.block == b.block && a.succ == b.succ && a.nacc == b.nacc;
}

/**
 * Greedy exec-stream encoder: at each position prefer the longest
 * repeat of the last 1..4 tuples (ties to the shortest distance, whose
 * token is smallest), falling back to a literal. Loop iterations —
 * the bulk of every trace — collapse to one run token each.
 */
void
encodeExecs(const std::vector<BlockExec> &execs,
            std::vector<uint8_t> &out)
{
    std::vector<Tup> tups(execs.size());
    for (size_t i = 0; i < execs.size(); ++i) {
        tups[i] = Tup{int32_t(execs[i].block), int32_t(execs[i].succ),
                      execs[i].accessEnd - execs[i].accessBegin};
    }

    int32_t prev_block = 0;
    size_t i = 0;
    while (i < tups.size()) {
        size_t best_len = 0;
        uint32_t best_dist = 0;
        for (uint32_t dist = 1; dist <= 4 && dist <= i; ++dist) {
            size_t len = 0;
            while (i + len < tups.size() &&
                   sameTup(tups[i + len], tups[i + len - dist]))
                ++len;
            if (len > best_len) {
                best_len = len;
                best_dist = dist;
            }
        }
        if (best_len >= 2) {
            varint::append(out, ((uint64_t(best_len) << 2 |
                                  uint64_t(best_dist - 1))
                                 << 1) |
                                    1);
            i += best_len;
        } else {
            const Tup &t = tups[i];
            varint::append(
                out, varint::zigzag(int64_t(t.block) - prev_block) << 1);
            varint::append(out,
                           varint::zigzag(int64_t(t.succ) - t.block));
            varint::append(out, t.nacc);
            ++i;
        }
        prev_block = tups[i - 1].block;
    }
}

void
encodeAccesses(const std::vector<MemAccess> &accesses,
               std::vector<uint8_t> &out)
{
    uint32_t prev[2] = {0, 0};
    for (const MemAccess &a : accesses) {
        const int chain = a.isShared ? 1 : 0;
        const int64_t delta = int64_t(a.addr) - int64_t(prev[chain]);
        prev[chain] = a.addr;
        varint::append(out, varint::zigzag(delta) << 2 |
                                uint64_t(a.isShared) << 1 |
                                uint64_t(a.isStore));
    }
}

} // namespace

TraceSet
TraceSet::fromThreads(const Kernel *kernel, const LaunchParams &launch,
                      const std::vector<ThreadTrace> &threads)
{
    TraceSet ts;
    ts.kernel = kernel;
    ts.launch = launch;
    ts.index_.resize(threads.size());
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        const ThreadTrace &t = threads[tid];
        ThreadIndex &ix = ts.index_[tid];
        ix.execOff = ts.execBytes_.size();
        ix.accessOff = ts.accessBytes_.size();
        ix.numExecs = uint32_t(t.execs.size());
        ix.numAccesses = uint32_t(t.accesses.size());
        encodeExecs(t.execs, ts.execBytes_);
        encodeAccesses(t.accesses, ts.accessBytes_);
        ts.totalExecs_ += t.execs.size();
        ts.totalAccesses_ += t.accesses.size();
    }
    ts.execBytes_.shrink_to_fit();
    ts.accessBytes_.shrink_to_fit();
    return ts;
}

ThreadTrace
TraceSet::decodeThread(uint32_t tid) const
{
    ThreadTrace out;
    const ThreadIndex &ix = index_[tid];
    out.execs.reserve(ix.numExecs);
    out.accesses.reserve(ix.numAccesses);
    ThreadCursor c = thread(tid);
    uint32_t cum = 0;
    while (!c.done()) {
        BlockExec e;
        e.block = uint16_t(c.block());
        e.succ = int16_t(c.succ());
        e.accessBegin = cum;
        cum += c.numAccesses();
        e.accessEnd = cum;
        for (uint32_t k = 0; k < e.accessEnd - e.accessBegin; ++k)
            out.accesses.push_back(c.nextAccess());
        out.execs.push_back(e);
        c.nextExec();
    }
    return out;
}

uint64_t
TraceSet::blockExecCount(int b) const
{
    // Walks the exec streams only: the two streams are independent, so
    // counting block executions never has to decode a single access.
    uint64_t n = 0;
    for (size_t tid = 0; tid < index_.size(); ++tid) {
        ThreadCursor c(execBytes_.data() + index_[tid].execOff, nullptr,
                       index_[tid].numExecs);
        while (!c.done()) {
            if (c.block() == b)
                ++n;
            c.accLeft_ = 0;  // exec-only walk: never touch the
            c.nextExec();    // (null) access stream
        }
    }
    return n;
}

} // namespace vgiw
