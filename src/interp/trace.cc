#include "interp/trace.hh"

#include <cstring>
#include <string_view>
#include <unordered_map>

#include "common/logging.hh"

namespace vgiw
{

namespace
{

struct Tup
{
    int32_t block;
    int32_t succ;
    uint32_t nacc;
};

bool
sameTup(const Tup &a, const Tup &b)
{
    return a.block == b.block && a.succ == b.succ && a.nacc == b.nacc;
}

/**
 * Greedy exec-stream encoder: at each position prefer the longest
 * repeat of the last 1..4 tuples (ties to the shortest distance, whose
 * token is smallest), falling back to a literal. Loop iterations —
 * the bulk of every trace — collapse to one run token each.
 */
void
encodeExecs(const std::vector<BlockExec> &execs,
            std::vector<uint8_t> &out)
{
    std::vector<Tup> tups(execs.size());
    for (size_t i = 0; i < execs.size(); ++i) {
        tups[i] = Tup{int32_t(execs[i].block), int32_t(execs[i].succ),
                      execs[i].accessEnd - execs[i].accessBegin};
    }

    int32_t prev_block = 0;
    size_t i = 0;
    while (i < tups.size()) {
        size_t best_len = 0;
        uint32_t best_dist = 0;
        for (uint32_t dist = 1; dist <= 4 && dist <= i; ++dist) {
            size_t len = 0;
            while (i + len < tups.size() &&
                   sameTup(tups[i + len], tups[i + len - dist]))
                ++len;
            if (len > best_len) {
                best_len = len;
                best_dist = dist;
            }
        }
        if (best_len >= 2) {
            varint::append(out, ((uint64_t(best_len) << 2 |
                                  uint64_t(best_dist - 1))
                                 << 1) |
                                    1);
            i += best_len;
        } else {
            const Tup &t = tups[i];
            varint::append(
                out, varint::zigzag(int64_t(t.block) - prev_block) << 1);
            varint::append(out,
                           varint::zigzag(int64_t(t.succ) - t.block));
            varint::append(out, t.nacc);
            ++i;
        }
        prev_block = tups[i - 1].block;
    }
}

void
encodeAccesses(const std::vector<MemAccess> &accesses,
               std::vector<uint8_t> &out)
{
    uint32_t prev[2] = {0, 0};
    for (const MemAccess &a : accesses) {
        const int chain = a.isShared ? 1 : 0;
        const int64_t delta = int64_t(a.addr) - int64_t(prev[chain]);
        prev[chain] = a.addr;
        varint::append(out, varint::zigzag(delta) << 2 |
                                uint64_t(a.isShared) << 1 |
                                uint64_t(a.isStore));
    }
}

} // namespace

TraceSet
TraceSet::fromThreads(const Kernel *kernel, const LaunchParams &launch,
                      const std::vector<ThreadTrace> &threads)
{
    TraceSet ts;
    ts.kernel = kernel;
    ts.launch = launch;
    ts.index_.resize(threads.size());
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        const ThreadTrace &t = threads[tid];
        ThreadIndex &ix = ts.index_[tid];
        ix.execOff = ts.execBytes_.size();
        ix.accessOff = ts.accessBytes_.size();
        ix.numExecs = uint32_t(t.execs.size());
        ix.numAccesses = uint32_t(t.accesses.size());
        encodeExecs(t.execs, ts.execBytes_);
        encodeAccesses(t.accesses, ts.accessBytes_);
        ts.totalExecs_ += t.execs.size();
        ts.totalAccesses_ += t.accesses.size();
    }
    ts.execBytes_.shrink_to_fit();
    ts.accessBytes_.shrink_to_fit();
    return ts;
}

ThreadTrace
TraceSet::decodeThread(uint32_t tid) const
{
    ThreadTrace out;
    const ThreadIndex &ix = idx(tid);
    out.execs.reserve(ix.numExecs);
    out.accesses.reserve(ix.numAccesses);
    ThreadCursor c = thread(tid);
    uint32_t cum = 0;
    while (!c.done()) {
        BlockExec e;
        e.block = uint16_t(c.block());
        e.succ = int16_t(c.succ());
        e.accessBegin = cum;
        cum += c.numAccesses();
        e.accessEnd = cum;
        for (uint32_t k = 0; k < e.accessEnd - e.accessBegin; ++k)
            out.accesses.push_back(c.nextAccess());
        out.execs.push_back(e);
        c.nextExec();
    }
    return out;
}

uint64_t
TraceSet::blockExecCount(int b) const
{
    // Walks the exec streams only: the two streams are independent, so
    // counting block executions never has to decode a single access.
    uint64_t n = 0;
    for (size_t tid = 0; tid < numThreads(); ++tid) {
        const ThreadIndex &ix = idx(tid);
        ThreadCursor c(execData() + ix.execOff, nullptr, ix.numExecs);
        while (!c.done()) {
            if (c.block() == b)
                ++n;
            c.accLeft_ = 0;  // exec-only walk: never touch the
            c.nextExec();    // (null) access stream
        }
    }
    return n;
}

uint64_t
TraceSet::accessSpanLen(uint32_t tid) const
{
    // A thread's encoded access span runs to the next thread's offset
    // (threads are laid out back to back) or to the end of the stream.
    const uint64_t begin = idx(tid).accessOff;
    const uint64_t end = tid + 1 < numThreads() ? idx(tid + 1).accessOff
                                                : accessLen();
    return end - begin;
}

// --- Persistence -----------------------------------------------------
//
// Wire layout (all little-endian, validated field by field):
//
//   u64 numThreads | u64 execLen | u64 accessLen
//   u64 totalExecs | u64 totalAccesses
//   ThreadIndex[numThreads]          (24 bytes each, offsets monotone)
//   uint8_t execBytes[execLen]
//   uint8_t accessBytes[accessLen]
//
// The 40-byte header and the 24-byte index entries keep the index
// 8-aligned when the payload itself is (artifact-store blobs are), so
// deserialize() reads the index in place from the mapping.

void
TraceSet::serializeInto(std::string &out) const
{
    const uint64_t hdr[5] = {numThreads(), execLen(), accessLen(),
                             totalExecs_, totalAccesses_};
    out.append(reinterpret_cast<const char *>(hdr), sizeof hdr);
    const ThreadIndex *ix = extIndex_ ? extIndex_ : index_.data();
    out.append(reinterpret_cast<const char *>(ix),
               numThreads() * sizeof(ThreadIndex));
    out.append(reinterpret_cast<const char *>(execData()), execLen());
    out.append(reinterpret_cast<const char *>(accessData()),
               accessLen());
}

bool
TraceSet::deserialize(const uint8_t *data, size_t len,
                      std::shared_ptr<const void> backing,
                      const Kernel *kernel, const LaunchParams &launch,
                      TraceSet &out)
{
    // The store's payload checksum already guarantees integrity; these
    // structural checks make a corrupt-but-checksummed (or truncated)
    // buffer a clean miss instead of an out-of-bounds decode.
    if (len < 5 * sizeof(uint64_t) ||
        (reinterpret_cast<uintptr_t>(data) & 7) != 0)
        return false;
    uint64_t hdr[5];
    std::memcpy(hdr, data, sizeof hdr);
    const uint64_t n = hdr[0], exec_len = hdr[1], acc_len = hdr[2];
    if (exec_len > len || acc_len > len ||
        n > (len - sizeof hdr) / sizeof(ThreadIndex))
        return false;
    if (sizeof hdr + n * sizeof(ThreadIndex) + exec_len + acc_len !=
        len)
        return false;

    const auto *ix =
        reinterpret_cast<const ThreadIndex *>(data + sizeof hdr);
    uint64_t sum_execs = 0, sum_accs = 0;
    for (uint64_t i = 0; i < n; ++i) {
        if (ix[i].execOff > exec_len || ix[i].accessOff > acc_len)
            return false;
        if (i && (ix[i].execOff < ix[i - 1].execOff ||
                  ix[i].accessOff < ix[i - 1].accessOff))
            return false;
        sum_execs += ix[i].numExecs;
        sum_accs += ix[i].numAccesses;
    }
    if (sum_execs != hdr[3] || sum_accs != hdr[4])
        return false;

    TraceSet ts;
    ts.kernel = kernel;
    ts.launch = launch;
    ts.extIndex_ = ix;
    ts.extExec_ = data + sizeof hdr + n * sizeof(ThreadIndex);
    ts.extAccess_ = ts.extExec_ + exec_len;
    ts.extThreads_ = n;
    ts.extExecLen_ = exec_len;
    ts.extAccessLen_ = acc_len;
    ts.backing_ = std::move(backing);
    ts.totalExecs_ = hdr[3];
    ts.totalAccesses_ = hdr[4];
    ts.storeBacked = true;
    ts.mappedBytes = len;
    out = std::move(ts);
    return true;
}

// --- Access interning ------------------------------------------------

void
TraceSet::buildAccessIntern()
{
    if (intern_)
        return;
    const size_t n = numThreads();
    auto in = std::make_shared<AccessIntern>();
    in->offset.resize(n);
    in->pool.reserve(totalAccesses_ < (uint64_t(1) << 28)
                         ? size_t(totalAccesses_)
                         : 0);

    // Dedup key: the thread's *encoded* byte span plus its access
    // count. Both delta chains start at zero per thread, so identical
    // bytes decoded the same number of times yield identical accesses
    // (the count matters: distinct varint groupings of the same bytes
    // could otherwise collide).
    struct Slot
    {
        uint64_t off;
        uint32_t nacc;
    };
    std::unordered_map<std::string_view, Slot> seen;
    seen.reserve(n);

    for (size_t tid = 0; tid < n; ++tid) {
        const ThreadIndex &ix = idx(tid);
        const std::string_view span(
            reinterpret_cast<const char *>(accessData()) + ix.accessOff,
            size_t(accessSpanLen(uint32_t(tid))));
        const auto it = seen.find(span);
        if (it != seen.end() && it->second.nacc == ix.numAccesses) {
            in->offset[tid] = it->second.off;
            continue;
        }
        const uint64_t off = in->pool.size();
        const uint8_t *p = accessData() + ix.accessOff;
        uint32_t prev[2] = {0, 0};
        for (uint32_t k = 0; k < ix.numAccesses; ++k) {
            const uint64_t v = varint::decode(p);
            MemAccess a;
            a.isStore = v & 1;
            a.isShared = (v >> 1) & 1;
            uint32_t &pr = prev[a.isShared ? 1 : 0];
            pr = uint32_t(int64_t(pr) + varint::unzigzag(v >> 2));
            a.addr = pr;
            in->pool.push_back(a);
        }
        in->offset[tid] = off;
        ++in->uniqueStreams;
        if (it == seen.end())
            seen.emplace(span, Slot{off, ix.numAccesses});
    }
    intern_ = std::move(in);
}

} // namespace vgiw
