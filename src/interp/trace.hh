/**
 * @file
 * Per-thread dynamic execution traces.
 *
 * The functional executor records, for every thread, the sequence of basic
 * blocks it executed and the memory accesses each execution issued. All
 * three timing models (VGIW, Fermi-SIMT, SGMF) replay these traces, which
 * guarantees that the architectures are compared on bit-identical work.
 *
 * Storage is compressed: TraceCache keeps every traced workload of a
 * sweep resident, and raw BlockExec/MemAccess arrays made the cache the
 * dominant memory consumer. Traces are therefore held as per-thread
 * delta-varint byte streams with an LZ-style run code for the loop
 * repetition that dominates real control flow, and the replay models
 * read them through forward-only ThreadCursor decoders — replay order
 * is strictly sequential per thread in all three models, so nothing
 * ever needs random access.
 *
 * Encoded format (per thread, two independent streams):
 *
 *  - exec stream: a sequence of tokens, one varint-led token per block
 *    execution. A LITERAL token is `zigzag(block - prevBlock) << 1 | 0`
 *    followed by `zigzag(succ - block)` and `numAccesses` varints. A
 *    RUN token is `((len << 2) | (dist - 1)) << 1 | 1` and copies `len`
 *    whole (block, succ, numAccesses) tuples from `dist` (1..4) tuples
 *    back, with periodic extension (len may exceed dist) — this captures
 *    straight-line loop bodies of up to four blocks as one or two bytes
 *    per iteration. `prevBlock` is the previously decoded tuple's block
 *    (0 initially).
 *
 *  - access stream: one varint per access,
 *    `zigzag(addr - prevAddr[isShared]) << 2 | isShared << 1 | isStore`,
 *    with separate previous-address chains for shared and global space
 *    (both 0 initially) so strided global streams are not disturbed by
 *    interleaved scratchpad traffic.
 *
 * Two orthogonal extensions serve the sweep hot path:
 *
 *  - External storage: a TraceSet can borrow its three arrays (thread
 *    index, exec bytes, access bytes) from a caller-owned backing — an
 *    mmap'd artifact-store blob — instead of owning vectors. Warm
 *    sweeps decode straight out of the mapping; nothing is copied or
 *    rematerialised. serializeInto()/deserialize() define the layout.
 *
 *  - Access interning: buildAccessIntern() decodes every thread's
 *    access stream once into a shared pool, deduplicating threads
 *    whose *encoded* streams are byte-identical (the delta chains
 *    start at zero per thread, so equal bytes imply equal decoded
 *    streams). Replays across all config points of a workload then
 *    read accesses from the pool instead of re-running the varint
 *    decoder per job — the PR 6 headroom item.
 */

#ifndef VGIW_INTERP_TRACE_HH
#define VGIW_INTERP_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/varint.hh"
#include "ir/kernel.hh"

namespace vgiw
{

/** One dynamic memory access. */
struct MemAccess
{
    uint32_t addr = 0;     ///< byte address (scratchpad-relative if shared)
    bool isStore = false;
    bool isShared = false;
};

/** One dynamic execution of a basic block by one thread. */
struct BlockExec
{
    uint16_t block = 0;
    int16_t succ = -1;  ///< next block id, or -1 when the thread exits
    uint32_t accessBegin = 0;  ///< range into ThreadTrace::accesses
    uint32_t accessEnd = 0;
};

/** The full dynamic trace of one thread, materialised. */
struct ThreadTrace
{
    std::vector<BlockExec> execs;
    std::vector<MemAccess> accesses;
};

/**
 * Forward-only decoder over one thread's compressed trace. The replay
 * models hold one cursor per thread: the current block execution is
 * exposed through block()/succ()/numAccesses(), its accesses are pulled
 * with nextAccess(), and nextExec() advances to the next execution
 * (skipping any accesses the caller did not consume, so the delta
 * chains stay in sync). Cheap to copy; ~100 bytes of state.
 *
 * When the owning TraceSet has an access intern table, accesses are
 * served from the pre-decoded pool (one pointer bump) instead of the
 * varint decoder; the observable sequence is identical by construction.
 */
class ThreadCursor
{
  public:
    ThreadCursor() = default;

    /** True when every block execution has been consumed. */
    bool done() const { return !hasCur_; }

    /** Current execution's block id. */
    int block() const { return int(cur_.block); }

    /** Current execution's successor block id (-1 = thread exit). */
    int succ() const { return int(cur_.succ); }

    /** Accesses the current execution issues. */
    uint32_t numAccesses() const { return cur_.nacc; }

    /** Decode the next access of the current execution. */
    MemAccess
    nextAccess()
    {
        --accLeft_;
        if (pool_)
            return pool_[poolPos_++];
        const uint64_t v = varint::decode(ap_);
        MemAccess a;
        a.isStore = v & 1;
        a.isShared = (v >> 1) & 1;
        uint32_t &prev = prevAddr_[a.isShared ? 1 : 0];
        prev = uint32_t(int64_t(prev) + varint::unzigzag(v >> 2));
        a.addr = prev;
        return a;
    }

    /** Advance to the next block execution (or done()). */
    void
    nextExec()
    {
        if (pool_) {
            poolPos_ += accLeft_;  // skip unconsumed accesses in O(1)
            accLeft_ = 0;
        } else {
            while (accLeft_)
                nextAccess();
        }
        if (execsLeft_) {
            --execsLeft_;
            decodeExec();
        } else {
            hasCur_ = false;
        }
    }

  private:
    friend class TraceSet;

    struct Tup
    {
        int32_t block = 0;
        int32_t succ = 0;
        uint32_t nacc = 0;
    };

    ThreadCursor(const uint8_t *exec, const uint8_t *acc,
                 uint32_t num_execs, const MemAccess *pool = nullptr)
        : ep_(exec), ap_(acc), pool_(pool), execsLeft_(num_execs)
    {
        if (execsLeft_) {
            --execsLeft_;
            decodeExec();
            hasCur_ = true;
        }
    }

    void
    decodeExec()
    {
        if (runLeft_) {
            --runLeft_;
            cur_ = ring_[(ringPos_ + 4 - runDist_) & 3];
        } else {
            uint64_t v = varint::decode(ep_);
            if (v & 1) {
                v >>= 1;
                runDist_ = uint32_t(v & 3) + 1;
                runLeft_ = uint32_t(v >> 2) - 1;
                cur_ = ring_[(ringPos_ + 4 - runDist_) & 3];
            } else {
                cur_.block =
                    prevBlock_ + int32_t(varint::unzigzag(v >> 1));
                cur_.succ = cur_.block +
                            int32_t(varint::unzigzag(varint::decode(ep_)));
                cur_.nacc = uint32_t(varint::decode(ep_));
            }
        }
        ring_[ringPos_] = cur_;
        ringPos_ = (ringPos_ + 1) & 3;
        prevBlock_ = cur_.block;
        accLeft_ = cur_.nacc;
    }

    const uint8_t *ep_ = nullptr;  ///< exec stream read position
    const uint8_t *ap_ = nullptr;  ///< access stream read position
    const MemAccess *pool_ = nullptr;  ///< interned accesses, or null
    uint64_t poolPos_ = 0;         ///< next access within pool_
    uint32_t execsLeft_ = 0;       ///< execs not yet decoded
    bool hasCur_ = false;
    Tup cur_;
    uint32_t accLeft_ = 0;         ///< undecoded accesses of cur_
    int32_t prevBlock_ = 0;
    uint32_t prevAddr_[2] = {0, 0};  ///< [global, shared] delta chains
    Tup ring_[4];                  ///< last 4 decoded tuples (run window)
    uint32_t ringPos_ = 0;
    uint32_t runLeft_ = 0;
    uint32_t runDist_ = 0;
};

/**
 * Compressed traces for every thread of a launch, plus launch metadata.
 *
 * @warning TraceSet borrows the kernel: the Kernel object passed to
 * Interpreter::run() (e.g. the WorkloadInstance that owns it) must
 * outlive every use of the traces by the core models. An externally
 * backed TraceSet (deserialize()) additionally borrows its streams
 * from the backing it was given; the shared backing pointer keeps the
 * mapping alive for the TraceSet's lifetime.
 */
class TraceSet
{
  public:
    const Kernel *kernel = nullptr;
    LaunchParams launch;

    /**
     * FNV-1a of the kernel's printed IR, or 0 when not computed. Set by
     * the trace cache when an artifact store is attached; the compile
     * cache keys per-arch artifacts by it (content addressing survives
     * workload renames, and two identical kernels share artifacts).
     */
    uint64_t contentHash = 0;
    /** Streams are served from an artifact-store mapping (warm load). */
    bool storeBacked = false;
    /** Payload bytes mmap'd for this trace set (0 when cold). */
    uint64_t mappedBytes = 0;

    TraceSet() = default;

    /**
     * Encode materialised per-thread traces. The accesses of each
     * thread must appear in execution order with each exec's
     * [accessBegin, accessEnd) ranges contiguous — which is how the
     * functional executor lays them out.
     */
    static TraceSet fromThreads(const Kernel *kernel,
                                const LaunchParams &launch,
                                const std::vector<ThreadTrace> &threads);

    size_t numThreads() const { return extIndex_ ? extThreads_ : index_.size(); }

    /** A fresh decode cursor over thread @p tid's trace. */
    ThreadCursor
    thread(uint32_t tid) const
    {
        const ThreadIndex &ix = idx(tid);
        const AccessIntern *in = intern_.get();
        return ThreadCursor(execData() + ix.execOff,
                            accessData() + ix.accessOff, ix.numExecs,
                            in ? in->pool.data() + in->offset[tid]
                               : nullptr);
    }

    uint32_t numExecs(uint32_t tid) const { return idx(tid).numExecs; }
    uint32_t
    numAccesses(uint32_t tid) const
    {
        return idx(tid).numAccesses;
    }

    /** Materialise one thread's full trace (tests / inspection). */
    ThreadTrace decodeThread(uint32_t tid) const;

    /** Total dynamic block executions over all threads. */
    uint64_t totalBlockExecs() const { return totalExecs_; }

    /** Total dynamic memory accesses over all threads. */
    uint64_t totalAccesses() const { return totalAccesses_; }

    /** Dynamic executions of block @p b summed over threads. */
    uint64_t blockExecCount(int b) const;

    /** Resident size of the encoded streams. */
    size_t
    compressedBytes() const
    {
        return size_t(execLen() + accessLen());
    }

    /** What the raw BlockExec/MemAccess arrays would occupy. */
    uint64_t
    uncompressedBytes() const
    {
        return totalExecs_ * sizeof(BlockExec) +
               totalAccesses_ * sizeof(MemAccess);
    }

    // --- Persistence (artifact store) --------------------------------

    /**
     * Append the wire form — a fixed header, the thread index, then
     * the two byte streams — to @p out. Everything but the borrowed
     * kernel/launch (which the cache key pins) round-trips.
     */
    void serializeInto(std::string &out) const;

    /**
     * Rebuild a TraceSet over @p data (length @p len) produced by
     * serializeInto, zero-copy: the index and streams stay in the
     * backing, which the result holds alive. @p data must be 8-aligned
     * (artifact-store payloads are). Returns false — leaving @p out
     * untouched — on any structural mismatch: short buffer, lengths
     * that do not add up, or a non-monotone thread index. @p kernel
     * and @p launch are the caller's (key-matched) kernel identity.
     */
    static bool deserialize(const uint8_t *data, size_t len,
                            std::shared_ptr<const void> backing,
                            const Kernel *kernel,
                            const LaunchParams &launch, TraceSet &out);

    // --- Access interning --------------------------------------------

    /**
     * Decode every thread's access stream once into a shared pool,
     * deduplicating byte-identical encoded streams, so subsequent
     * cursors serve accesses without varint decoding. Idempotent; call
     * before the TraceSet is shared across threads (the trace cache
     * does, before publishing its entry). Trades one materialised copy
     * per workload for per-job decode work — shared across every
     * config point of the sweep.
     */
    void buildAccessIntern();

    bool hasAccessIntern() const { return intern_ != nullptr; }
    /** Distinct encoded access streams (== threads when none collide). */
    uint64_t internUniqueStreams() const
    {
        return intern_ ? intern_->uniqueStreams : 0;
    }
    /** Bytes of decoded MemAccess pool the intern table holds. */
    uint64_t internPoolBytes() const
    {
        return intern_ ? intern_->pool.size() * sizeof(MemAccess) : 0;
    }

  private:
    struct ThreadIndex
    {
        uint64_t execOff = 0;    ///< offset into the exec stream
        uint64_t accessOff = 0;  ///< offset into the access stream
        uint32_t numExecs = 0;
        uint32_t numAccesses = 0;
    };
    static_assert(sizeof(ThreadIndex) == 24,
                  "on-disk thread index layout is pinned");

    /** Decoded-access pool shared by all cursors of this TraceSet. */
    struct AccessIntern
    {
        std::vector<MemAccess> pool;
        std::vector<uint64_t> offset;  ///< per thread, index into pool
        uint64_t uniqueStreams = 0;
    };

    const uint8_t *
    execData() const
    {
        return extExec_ ? extExec_ : execBytes_.data();
    }
    const uint8_t *
    accessData() const
    {
        return extAccess_ ? extAccess_ : accessBytes_.data();
    }
    uint64_t
    execLen() const
    {
        return extIndex_ ? extExecLen_ : execBytes_.size();
    }
    uint64_t
    accessLen() const
    {
        return extIndex_ ? extAccessLen_ : accessBytes_.size();
    }
    const ThreadIndex &
    idx(uint32_t tid) const
    {
        return extIndex_ ? extIndex_[tid] : index_[tid];
    }
    /** Encoded byte span of thread @p tid's access stream. */
    uint64_t accessSpanLen(uint32_t tid) const;

    // Owned storage (fromThreads) ...
    std::vector<uint8_t> execBytes_;
    std::vector<uint8_t> accessBytes_;
    std::vector<ThreadIndex> index_;
    // ... or borrowed views into an mmap'd backing (deserialize).
    const ThreadIndex *extIndex_ = nullptr;
    const uint8_t *extExec_ = nullptr;
    const uint8_t *extAccess_ = nullptr;
    uint64_t extThreads_ = 0;
    uint64_t extExecLen_ = 0;
    uint64_t extAccessLen_ = 0;
    std::shared_ptr<const void> backing_;

    std::shared_ptr<const AccessIntern> intern_;

    uint64_t totalExecs_ = 0;
    uint64_t totalAccesses_ = 0;
};

} // namespace vgiw

#endif // VGIW_INTERP_TRACE_HH
