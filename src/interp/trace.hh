/**
 * @file
 * Per-thread dynamic execution traces.
 *
 * The functional executor records, for every thread, the sequence of basic
 * blocks it executed and the memory accesses each execution issued. All
 * three timing models (VGIW, Fermi-SIMT, SGMF) replay these traces, which
 * guarantees that the architectures are compared on bit-identical work.
 */

#ifndef VGIW_INTERP_TRACE_HH
#define VGIW_INTERP_TRACE_HH

#include <cstdint>
#include <vector>

#include "ir/kernel.hh"

namespace vgiw
{

/** One dynamic memory access. */
struct MemAccess
{
    uint32_t addr = 0;     ///< byte address (scratchpad-relative if shared)
    bool isStore = false;
    bool isShared = false;
};

/** One dynamic execution of a basic block by one thread. */
struct BlockExec
{
    uint16_t block = 0;
    int16_t succ = -1;  ///< next block id, or -1 when the thread exits
    uint32_t accessBegin = 0;  ///< range into ThreadTrace::accesses
    uint32_t accessEnd = 0;
};

/** The full dynamic trace of one thread. */
struct ThreadTrace
{
    std::vector<BlockExec> execs;
    std::vector<MemAccess> accesses;
};

/**
 * Traces for every thread of a launch, plus launch metadata.
 *
 * @warning TraceSet borrows the kernel: the Kernel object passed to
 * Interpreter::run() (e.g. the WorkloadInstance that owns it) must
 * outlive every use of the traces by the core models.
 */
struct TraceSet
{
    const Kernel *kernel = nullptr;
    LaunchParams launch;
    std::vector<ThreadTrace> threads;

    /** Total dynamic block executions over all threads. */
    uint64_t
    totalBlockExecs() const
    {
        uint64_t n = 0;
        for (const auto &t : threads)
            n += t.execs.size();
        return n;
    }

    /** Total dynamic memory accesses over all threads. */
    uint64_t
    totalAccesses() const
    {
        uint64_t n = 0;
        for (const auto &t : threads)
            n += t.accesses.size();
        return n;
    }

    /** Dynamic executions of block @p b summed over threads. */
    uint64_t
    blockExecCount(int b) const
    {
        uint64_t n = 0;
        for (const auto &t : threads)
            for (const auto &e : t.execs)
                if (e.block == b)
                    ++n;
        return n;
    }
};

} // namespace vgiw

#endif // VGIW_INTERP_TRACE_HH
