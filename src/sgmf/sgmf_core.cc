#include "sgmf/sgmf_core.hh"

#include <algorithm>
#include <optional>
#include <vector>

#include "cgrf/config_cost.hh"
#include "cgrf/placed_serde.hh"
#include "cgrf/placer.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "ir/op_counts.hh"
#include "mem/bank_merge.hh"
#include "mem/memory_system.hh"

namespace vgiw
{

namespace
{

/** Longest path (in per-block critical-path cycles) over forward edges
 * of the CFG — the pipeline depth of the whole-kernel spatial graph. */
int
kernelCriticalPath(const Kernel &k, const std::vector<PlacedBlock> &placed)
{
    const int n = k.numBlocks();
    std::vector<int> dist(n, 0);
    int best = 0;
    // Blocks are in reverse post-order, so a forward scan settles all
    // forward edges; back edges are token recirculation, not pipeline
    // depth.
    for (int b = 0; b < n; ++b) {
        dist[b] += placed[b].criticalPathCycles;
        best = std::max(best, dist[b]);
        const Terminator &t = k.blocks[b].term;
        for (int s = 0; s < t.numTargets(); ++s) {
            if (t.target[s] > b)
                dist[t.target[s]] =
                    std::max(dist[t.target[s]], dist[b]);
        }
    }
    return best;
}

} // namespace

std::string
SgmfConfig::validate() const
{
    if (std::string d = validateGridConfig(grid); !d.empty())
        return "sgmf: " + d;
    if (missWindow == 0)
        return "sgmf: missWindow must be positive (latency hiding "
               "divides by it)";
    if (maxReplicas < 1)
        return "sgmf: maxReplicas must be at least 1";
    return {};
}

bool
SgmfCore::supports(const Kernel &kernel) const
{
    Placer placer(cfg_.grid);
    std::vector<Dfg> dfgs;
    for (const auto &blk : kernel.blocks)
        dfgs.push_back(buildBlockDfg(blk, cfg_.timing));
    return placer.placeKernel(dfgs).fits;
}

std::string
SgmfCore::compileKey() const
{
    // Placement, replication and critical path read the grid, the unit
    // timings and the replication cap; the miss window is replay-side.
    return "sgmf|" + gridFingerprint(cfg_.grid) + "|" +
           timingFingerprint(cfg_.timing) + "|rep:" +
           std::to_string(cfg_.maxReplicas);
}

std::string
SgmfCore::replayKey() const
{
    // The injection loop reads only the miss window beyond what the
    // compile artifact already fixes.
    return "mw:" + std::to_string(cfg_.missWindow);
}

std::shared_ptr<const CompiledKernel>
SgmfCore::compile(const Kernel &k) const
{
    auto ck = std::make_shared<SgmfCompiledKernel>();

    // --- Whole-kernel spatial mapping. --------------------------------
    Placer placer(cfg_.grid);
    std::vector<Dfg> dfgs;
    for (const auto &blk : k.blocks)
        dfgs.push_back(buildBlockDfg(blk, cfg_.timing));
    ck->placed = placer.placeKernel(dfgs);
    ck->fits = ck->placed.fits;
    if (!ck->fits) {
        ck->unitsNeeded = double(totalUnits(ck->placed.totalNeeds));
        return ck;
    }

    // Replication of the whole kernel graph when it is small enough.
    int replicas = cfg_.maxReplicas;
    for (int kind = 0; kind < kNumUnitKinds; ++kind) {
        if (ck->placed.totalNeeds[kind] > 0) {
            replicas = std::min(
                replicas,
                countOf(cfg_.grid.counts, UnitKind(kind)) /
                    ck->placed.totalNeeds[kind]);
        }
    }
    ck->replicas = std::max(replicas, 1);

    // Static whole-graph properties.
    ck->blockOps.reserve(k.blocks.size());
    for (int b = 0; b < k.numBlocks(); ++b) {
        const OpCounts oc = staticOpCounts(k.blocks[b]);
        ck->opsInt += oc.intAlu;
        ck->opsFp += oc.fpAlu;
        ck->opsScu += oc.scu;
        ck->edges += uint64_t(ck->placed.blocks[b].edgesPerThread);
        ck->hops += uint64_t(ck->placed.blocks[b].edgeHopsPerThread);
        ck->blockOps.push_back(oc.total());
    }
    ck->criticalPath = kernelCriticalPath(k, ck->placed.blocks);
    return ck;
}

namespace
{
/** Bumped when the SGMF artifact payload layout changes. */
constexpr uint32_t kSgmfArtifactVersion = 1;
} // namespace

std::string
SgmfCore::serializeArtifact(const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const SgmfCompiledKernel *>(&compiled);
    if (!ck)
        return {};
    std::string out;
    ByteWriter w(out);
    w.u32(kSgmfArtifactVersion);
    w.u8(ck->fits ? 1 : 0);
    w.f64(ck->unitsNeeded);
    writePlacedKernel(w, ck->placed);
    w.i32(ck->replicas);
    w.u64(ck->opsInt);
    w.u64(ck->opsFp);
    w.u64(ck->opsScu);
    w.u64(ck->edges);
    w.u64(ck->hops);
    w.i32(ck->criticalPath);
    w.u64(ck->blockOps.size());
    w.raw(ck->blockOps.data(),
          ck->blockOps.size() * sizeof(uint32_t));
    return out;
}

std::shared_ptr<const CompiledKernel>
SgmfCore::deserializeArtifact(std::string_view bytes) const
{
    ByteReader r(bytes.data(), bytes.size());
    if (r.u32() != kSgmfArtifactVersion)
        return nullptr;
    auto ck = std::make_shared<SgmfCompiledKernel>();
    ck->fits = r.u8() != 0;
    ck->unitsNeeded = r.f64();
    if (!readPlacedKernel(r, ck->placed))
        return nullptr;
    ck->replicas = r.i32();
    ck->opsInt = r.u64();
    ck->opsFp = r.u64();
    ck->opsScu = r.u64();
    ck->edges = r.u64();
    ck->hops = r.u64();
    ck->criticalPath = r.i32();
    const uint64_t n = r.u64();
    const uint8_t *p =
        r.ok() && n <= r.remaining() / sizeof(uint32_t)
            ? r.bytes(size_t(n) * sizeof(uint32_t))
            : nullptr;
    if (!p)
        return nullptr;
    ck->blockOps.resize(size_t(n));
    std::memcpy(ck->blockOps.data(), p, size_t(n) * sizeof(uint32_t));
    if (!r.done())
        return nullptr;
    return ck;
}

RunStats
SgmfCore::run(const TraceSet &traces, const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const SgmfCompiledKernel *>(&compiled);
    vgiw_assert(ck, "SgmfCore::run needs an SGMF compile artifact");

    const Kernel &k = *traces.kernel;
    const EnergyTable &e = cfg_.energy;

    RunStats rs;
    rs.arch = "sgmf";
    rs.kernelName = k.name;

    JobMetrics *jm = currentMetricSink();

    if (!ck->fits) {
        rs.supported = false;
        rs.extra.set("sgmf.units_needed", ck->unitsNeeded);
        if (jm) {
            jm->set("sgmf.fits", 0.0);
            jm->set("sgmf.units_needed", ck->unitsNeeded);
            jm->set("sgmf.units_total",
                    double(cfg_.grid.numUnits()));
        }
        return rs;
    }

    const int replicas = ck->replicas;
    const int critical = ck->criticalPath;

    // --- Replay: injections + memory traffic. --------------------------
    MemorySystem ms(vgiwL1Geometry());
    BankMergeModel bank_model(ms.l1().geometry().banks);
    BankMergeModel shared_model(32);
    uint64_t injections = 0;
    uint64_t miss_latency = 0;
    uint64_t shared_accesses = 0;
    // Accumulated locally, published to rs only after the loop: the
    // watchdog polls rs.dynThreadOps and must keep seeing the replay
    // phase's value (0) exactly as before the loops were fused.
    uint64_t thread_ops = 0;

    // Livelock containment: the injection loop is not cycle-stepped,
    // so the cycle ceiling is checked against the issue-cycle proxy
    // (injections per replica), polled once per thread epoch.
    std::optional<Watchdog> wd;
    if (cfg_.watchdog.enabled())
        wd.emplace(cfg_.watchdog, "sgmf replay of '" + k.name + "'");

    for (uint32_t tid = 0; tid < traces.numThreads(); ++tid) {
        if (wd) {
            wd->poll(injections / uint64_t(replicas), rs.dynBlockExecs,
                     rs.dynThreadOps);
        }
        // One injection to enter the graph, plus one per back-edge
        // traversal (token recirculation for loop iterations). Memory:
        // only the taken path's accesses issue (predication). A single
        // cursor pass covers both — exec bookkeeping touches no memory
        // state, so fusing the loops preserves the access stream order.
        injections += 1;
        for (ThreadCursor c = traces.thread(tid); !c.done();
             c.nextExec()) {
            if (c.succ() >= 0 && c.succ() <= c.block())
                injections += 1;
            ++rs.dynBlockExecs;
            thread_ops += ck->blockOps[c.block()];
            const uint32_t nacc = c.numAccesses();
            for (uint32_t a = 0; a < nacc; ++a) {
                const MemAccess acc = c.nextAccess();
                if (acc.isShared) {
                    shared_model.access((acc.addr / 4) % 32,
                                        acc.addr / 4);
                    ++shared_accesses;
                    continue;
                }
                const MemAccessResult r =
                    ms.access(acc.addr, acc.isStore);
                bank_model.access(ms.l1().bankOf(acc.addr),
                                  acc.addr / 128);
                if (r.servicedBy != MemLevel::L1)
                    miss_latency += r.latency;
            }
        }
    }

    const uint64_t issue =
        (injections + uint64_t(replicas) - 1) / uint64_t(replicas);
    const uint64_t bw = bank_model.maxCycles();
    const uint64_t shr = shared_model.maxCycles();
    const uint64_t lat = miss_latency / cfg_.missWindow;

    rs.configCycles = uint64_t(reconfigCycles(cfg_.grid.numUnits()));
    rs.reconfigs = 1;  // one static configuration per kernel
    rs.cycles = std::max({issue, bw, lat, shr}) + uint64_t(critical) +
                rs.configCycles;
    rs.cycles = std::max(rs.cycles, ms.dramServiceCycles());

    // --- Energy. --------------------------------------------------------
    // Every mapped compute node fires per injection, taken path or not:
    // the control-divergence waste of the all-paths spatial mapping.
    rs.energy.add(EnergyComponent::Datapath,
                  double(injections) *
                      (ck->opsInt * e.intAluOp + ck->opsFp * e.fpAluOp +
                       ck->opsScu * e.scuOp) +
                      double(ms.l1().stats().accesses()) * e.ldstIssue);
    rs.energy.add(EnergyComponent::TokenFabric,
                  double(injections) *
                      (double(ck->edges) * e.tokenBufferRw +
                       double(ck->hops) * e.tokenHop));
    rs.energy.add(EnergyComponent::Config,
                  e.configPerUnit * cfg_.grid.numUnits());
    rs.energy.add(EnergyComponent::Scratchpad,
                  double(shared_accesses) * e.sharedAccessWord);
    rs.energy.add(EnergyComponent::L1,
                  ms.l1().stats().accesses() * e.l1AccessWord);
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.dynThreadOps = thread_ops;

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.dramStats = ms.dram().stats();
    rs.extra.set("sgmf.replicas", double(replicas));
    rs.extra.set("sgmf.injections", double(injections));
    rs.extra.set("sgmf.units_used", double(ck->placed.unitsUsed));

    // Static-placement utilisation: how much of the MT-CGRF the
    // whole-kernel spatial mapping actually occupies — the figure the
    // paper's SGMF comparison turns on.
    if (jm) {
        const double units_total = double(cfg_.grid.numUnits());
        jm->set("sgmf.fits", 1.0);
        jm->set("sgmf.units_used", double(ck->placed.unitsUsed));
        jm->set("sgmf.units_total", units_total);
        jm->set("sgmf.placement_utilization",
                units_total > 0.0
                    ? double(ck->placed.unitsUsed) / units_total
                    : 0.0);
        jm->set("sgmf.replicas", double(replicas));
        jm->set("sgmf.injections", double(injections));
    }
    return rs;
}

} // namespace vgiw
