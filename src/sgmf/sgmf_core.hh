/**
 * @file
 * The SGMF dataflow GPGPU baseline (Voitsechov & Etsion, ISCA 2014),
 * reimplemented as the paper's second comparison point.
 *
 * SGMF statically maps the *entire* kernel CDFG onto the MT-CGRF — all
 * control paths at once (Figure 1c). Consequences modelled here:
 *
 *  - kernels whose CDFG exceeds the fabric's per-kind capacity are
 *    simply unsupported (the paper compares on "the subset of kernels
 *    that can be mapped");
 *  - a thread is injected once per loop-path traversal (token
 *    recirculation over the spatial fabric), and whole-kernel mapping
 *    leaves little room for replication, so throughput is lower than
 *    VGIW's replicated per-block graphs;
 *  - every statically mapped compute unit fires for every injection,
 *    including the units on control paths the thread did not take —
 *    the divergence energy waste Figures 8/11 quantify. Predication
 *    suppresses untaken memory accesses;
 *  - there is no LVC/CVT and no reconfiguration: values flow directly
 *    through the fabric (SGMF's efficiency edge on small kernels).
 */

#ifndef VGIW_SGMF_SGMF_CORE_HH
#define VGIW_SGMF_SGMF_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cgrf/dataflow_graph.hh"
#include "cgrf/grid.hh"
#include "cgrf/placer.hh"
#include "common/watchdog.hh"
#include "driver/core_model.hh"
#include "driver/run_stats.hh"
#include "interp/trace.hh"
#include "power/energy_model.hh"

namespace vgiw
{

/** Configuration of the SGMF core model. */
struct SgmfConfig
{
    GridConfig grid = GridConfig::makeTable1();
    CgrfTiming timing{};
    EnergyTable energy{};
    /** Outstanding-miss window (same reservation buffers as VGIW). */
    uint32_t missWindow = 512;
    int maxReplicas = 8;

    /**
     * Replay ceilings. SGMF's injection loop is not cycle-stepped, so
     * maxReplayCycles is checked against the issue-cycle proxy
     * (injections / replicas).
     */
    WatchdogConfig watchdog{};

    /** Well-formedness check, run at job entry by the experiment
     * engine. Empty string when valid. */
    std::string validate() const;
};

/**
 * SGMF compile artifact: the whole-kernel spatial mapping plus the
 * static graph properties replay multiplies by injection counts. A
 * kernel that does not fit the fabric still compiles (fits == false);
 * the verdict is part of the artifact so sweeps don't re-place it.
 */
struct SgmfCompiledKernel final : CompiledKernel
{
    bool fits = false;
    double unitsNeeded = 0.0;  ///< when !fits: demand that overflowed
    PlacedKernel placed;
    int replicas = 1;          ///< whole-graph replication factor
    uint64_t opsInt = 0, opsFp = 0, opsScu = 0;
    uint64_t edges = 0, hops = 0;
    int criticalPath = 0;      ///< pipeline depth over forward edges
    std::vector<uint32_t> blockOps;  ///< static ops per block
};

/** Cycle-approximate SGMF core model. */
class SgmfCore final : public CoreModel
{
  public:
    explicit SgmfCore(const SgmfConfig &cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "sgmf"; }

    std::string compileKey() const override;
    std::string replayKey() const override;

    /** Whole-kernel placement, replication and static graph counts. */
    std::shared_ptr<const CompiledKernel>
    compile(const Kernel &kernel) const override;

    /**
     * Replay @p traces against a compiled mapping. When the kernel does
     * not fit the fabric the returned stats have supported == false
     * (and no timing data).
     */
    RunStats run(const TraceSet &traces,
                 const CompiledKernel &compiled) const override;
    using CoreModel::run;

    /** Persist / rehydrate an SgmfCompiledKernel (artifact store). */
    std::string
    serializeArtifact(const CompiledKernel &compiled) const override;
    std::shared_ptr<const CompiledKernel>
    deserializeArtifact(std::string_view bytes) const override;

    /** Whether @p kernel can be mapped at all. */
    bool supports(const Kernel &kernel) const;

    const SgmfConfig &config() const { return cfg_; }

  private:
    SgmfConfig cfg_;
};

} // namespace vgiw

#endif // VGIW_SGMF_SGMF_CORE_HH
