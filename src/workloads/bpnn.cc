/**
 * @file
 * BPNN — neural-network training kernels (Table 2: Pattern Recognition):
 * bpnn_layerforward (a scratchpad tree reduction across the input
 * dimension, one barrier per level, finished by a sigmoid on the SCUs)
 * and bpnn_adjust_weights (a straight-line weight update).
 */

#include "workloads/workloads.hh"

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kIn = 16;      ///< inputs per slice (= reduction width)
constexpr int kHid = 16;     ///< hidden units per slice
constexpr int kSlices = 64;  ///< independent CTA slices
constexpr float kEta = 0.3f;
constexpr float kMomentum = 0.3f;

/**
 * layerforward: CTA of kIn*kHid threads; thread (ty, tx) loads
 * w[ty][tx] * input[ty] into the scratchpad, then a log2(kIn)-level tree
 * reduction (barrier per level) sums over ty; row 0 applies the sigmoid
 * squash and stores hidden[tx].
 * Params: 0 = input, 1 = weights (slice-major), 2 = hidden out.
 */
Kernel
buildLayerForward()
{
    KernelBuilder kb("bpnn_layerforward", 3);
    kb.setSharedBytesPerCta(kIn * kHid * 4);
    const uint16_t lv_s = kb.newLiveValue();
    const uint16_t lv_ty = kb.newLiveValue();
    const uint16_t lv_tx = kb.newLiveValue();

    BlockRef load = kb.block("load");
    BlockRef rhead = kb.block("red_head");
    BlockRef rtest = kb.block("red_test");
    BlockRef radd = kb.block("red_add");
    BlockRef rjoin = kb.block("red_join");
    BlockRef ftest = kb.block("final_test");
    BlockRef squash = kb.block("squash");
    BlockRef done = kb.block("done");

    Operand lane = Operand::special(SpecialReg::TidInCta);
    Operand cta = Operand::special(SpecialReg::CtaId);

    auto sm = [&](BlockRef b, Operand ty, Operand tx) {
        return b.elemAddr(Operand::constU32(0),
                          b.iadd(b.imul(ty, Operand::constI32(kHid)), tx));
    };

    {
        Operand ty = load.idiv(lane, Operand::constI32(kHid));
        Operand tx = load.irem(lane, Operand::constI32(kHid));
        load.out(lv_ty, ty);
        load.out(lv_tx, tx);
        // input[slice*kIn + ty] * w[slice*kIn*kHid + ty*kHid + tx]
        Operand gin = load.iadd(load.imul(cta, Operand::constI32(kIn)),
                                ty);
        Operand iv = load.load(Type::F32,
                               load.elemAddr(Operand::param(0), gin));
        Operand gw = load.iadd(
            load.imul(cta, Operand::constI32(kIn * kHid)),
            load.iadd(load.imul(ty, Operand::constI32(kHid)), tx));
        Operand wv = load.load(Type::F32,
                               load.elemAddr(Operand::param(1), gw));
        load.store(Type::F32, sm(load, ty, tx), load.fmul(wv, iv),
                   MemSpace::Shared);
        load.out(lv_s, Operand::constI32(1));
        load.jump(rhead, /*barrier=*/true);
    }
    rhead.branch(rhead.ilt(rhead.in(lv_s), Operand::constI32(kIn)),
                 rtest, ftest);
    {
        // Active when ty % (2s) == 0.
        Operand two_s = rtest.imul(rtest.in(lv_s), Operand::constI32(2));
        Operand active = rtest.ieq(rtest.irem(rtest.in(lv_ty), two_s),
                                   Operand::constI32(0));
        rtest.branch(active, radd, rjoin);
    }
    {
        Operand ty = radd.in(lv_ty);
        Operand tx = radd.in(lv_tx);
        Operand other = radd.iadd(ty, radd.in(lv_s));
        Operand a = radd.load(Type::F32, sm(radd, ty, tx),
                              MemSpace::Shared);
        Operand b = radd.load(Type::F32, sm(radd, other, tx),
                              MemSpace::Shared);
        radd.store(Type::F32, sm(radd, ty, tx), radd.fadd(a, b),
                   MemSpace::Shared);
        radd.jump(rjoin);
    }
    rjoin.out(lv_s, rjoin.imul(rjoin.in(lv_s), Operand::constI32(2)));
    rjoin.jump(rhead, /*barrier=*/true);

    ftest.branch(ftest.ieq(ftest.in(lv_ty), Operand::constI32(0)),
                 squash, done);
    {
        Operand sum = squash.load(
            Type::F32, sm(squash, Operand::constI32(0),
                          squash.in(lv_tx)),
            MemSpace::Shared);
        // sigmoid: 1 / (1 + exp(-sum))
        Operand e = squash.fexp(squash.fneg(sum));
        Operand sig = squash.fdiv(
            Operand::constF32(1.0f),
            squash.fadd(Operand::constF32(1.0f), e));
        Operand gout = squash.iadd(
            squash.imul(cta, Operand::constI32(kHid)), squash.in(lv_tx));
        squash.store(Type::F32, squash.elemAddr(Operand::param(2), gout),
                     sig);
        squash.exit();
    }
    done.exit();
    return kb.finish();
}

/**
 * adjust_weights: thread (i, j) updates weight w[i][j] with the delta
 * rule plus momentum. Params: 0 = w, 1 = oldw, 2 = delta, 3 = ly,
 * 4 = count.
 */
Kernel
buildAdjustWeights()
{
    KernelBuilder kb("bpnn_adjust_weights", 5);
    BlockRef guard = kb.block("guard");
    BlockRef body = kb.block("body");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(4)), body, done);
    {
        BlockRef b = body;
        Operand i = b.idiv(tid, Operand::constI32(kHid));
        Operand j = b.irem(tid, Operand::constI32(kHid));
        Operand dv = b.load(Type::F32, b.elemAddr(Operand::param(2), j));
        Operand lv = b.load(Type::F32, b.elemAddr(Operand::param(3), i));
        Operand ow = b.load(Type::F32, b.elemAddr(Operand::param(1), tid));
        Operand nw = b.fadd(
            b.fmul(b.fmul(Operand::constF32(kEta), dv), lv),
            b.fmul(Operand::constF32(kMomentum), ow));
        Operand wv = b.load(Type::F32, b.elemAddr(Operand::param(0), tid));
        b.store(Type::F32, b.elemAddr(Operand::param(0), tid),
                b.fadd(wv, nw));
        b.store(Type::F32, b.elemAddr(Operand::param(1), tid), nw);
        b.exit();
    }
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeBpnnLayerForward()
{
    WorkloadInstance w;
    w.suite = "BPNN";
    w.domain = "Pattern Recognition";
    w.kernel = buildLayerForward();
    w.memory = MemoryImage(1u << 20);

    Rng rng(57);
    const uint32_t input = w.memory.allocWords(kSlices * kIn);
    const uint32_t weights = w.memory.allocWords(kSlices * kIn * kHid);
    const uint32_t hidden = w.memory.allocWords(kSlices * kHid);
    fillF32(w.memory, input, kSlices * kIn, rng, 0.0f, 1.0f);
    fillF32(w.memory, weights, kSlices * kIn * kHid, rng, -0.5f, 0.5f);

    w.launch.numCtas = kSlices;
    w.launch.ctaSize = kIn * kHid;
    w.launch.params = {Scalar::fromU32(input), Scalar::fromU32(weights),
                       Scalar::fromU32(hidden)};

    MemoryImage init = w.memory;
    w.check = [init, input, weights, hidden](const MemoryImage &mem,
                                             std::string &err) {
        std::vector<float> expect(kSlices * kHid);
        for (int s = 0; s < kSlices; ++s) {
            for (int tx = 0; tx < kHid; ++tx) {
                // Tree-reduction order, not sequential order.
                float part[kIn];
                for (int ty = 0; ty < kIn; ++ty) {
                    part[ty] =
                        init.loadF32(weights,
                                     uint32_t(s * kIn * kHid +
                                              ty * kHid + tx)) *
                        init.loadF32(input, uint32_t(s * kIn + ty));
                }
                for (int stride = 1; stride < kIn; stride *= 2)
                    for (int ty = 0; ty < kIn; ty += 2 * stride)
                        part[ty] = part[ty] + part[ty + stride];
                expect[size_t(s * kHid + tx)] =
                    1.0f / (1.0f + std::exp(-part[0]));
            }
        }
        return checkF32(mem, hidden, expect, 1e-5f, err);
    };
    return w;
}

WorkloadInstance
makeBpnnAdjustWeights()
{
    WorkloadInstance w;
    w.suite = "BPNN";
    w.domain = "Pattern Recognition";
    w.kernel = buildAdjustWeights();
    w.memory = MemoryImage(4u << 20);

    constexpr int kRows = 256;  // input rows
    constexpr int kCount = kRows * kHid;
    Rng rng(58);
    const uint32_t wts = w.memory.allocWords(kCount);
    const uint32_t oldw = w.memory.allocWords(kCount);
    const uint32_t delta = w.memory.allocWords(kHid);
    const uint32_t ly = w.memory.allocWords(kRows);
    fillF32(w.memory, wts, kCount, rng, -1.0f, 1.0f);
    fillF32(w.memory, oldw, kCount, rng, -0.1f, 0.1f);
    fillF32(w.memory, delta, kHid, rng, -0.2f, 0.2f);
    fillF32(w.memory, ly, kRows, rng, 0.0f, 1.0f);

    w.launch.numCtas = kCount / 256;
    w.launch.ctaSize = 256;
    w.launch.params = {Scalar::fromU32(wts), Scalar::fromU32(oldw),
                       Scalar::fromU32(delta), Scalar::fromU32(ly),
                       Scalar::fromI32(kCount)};

    MemoryImage init = w.memory;
    w.check = [init, wts, oldw, delta, ly](const MemoryImage &mem,
                                           std::string &err) {
        std::vector<float> ew(kCount), eo(kCount);
        for (int t = 0; t < kCount; ++t) {
            const int i = t / kHid, j = t % kHid;
            const float nw =
                (kEta * init.loadF32(delta, uint32_t(j))) *
                    init.loadF32(ly, uint32_t(i)) +
                kMomentum * init.loadF32(oldw, uint32_t(t));
            ew[size_t(t)] = init.loadF32(wts, uint32_t(t)) + nw;
            eo[size_t(t)] = nw;
        }
        return checkF32(mem, wts, ew, 1e-5f, err) &&
               checkF32(mem, oldw, eo, 1e-5f, err);
    };
    return w;
}

} // namespace vgiw::workloads
