/**
 * @file
 * HOTSPOT — thermal simulation kernel (Table 2: Physics Simulation). One
 * simulation step of the 5-point stencil on a 128x128 die. As in the
 * Rodinia kernel, neighbour indices are clamped with min/max selects
 * (predication), while the validity of the cell itself is a real branch;
 * the block count in the original comes from its pyramid iteration loop,
 * which the compiler's block splitter partially recreates here by
 * cutting the wide stencil body to fit the fabric.
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kGrid = 128;         ///< die is kGrid x kGrid cells
constexpr int kCtaSize = 256;
constexpr float kCap = 0.5f;
constexpr float kRx = 0.2f, kRy = 0.3f, kRz = 0.05f;
constexpr float kAmb = 80.0f;

Kernel
buildHotspot()
{
    // Params: 0 = temp_in, 1 = power, 2 = temp_out, 3 = cells.
    KernelBuilder kb("hotspot_kernel", 4);

    BlockRef guard = kb.block("guard");
    BlockRef body = kb.block("body");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(3)), body, done);

    {
        BlockRef b = body;
        Operand r = b.idiv(tid, Operand::constI32(kGrid));
        Operand c = b.irem(tid, Operand::constI32(kGrid));
        auto cell_at = [&](Operand rr, Operand cc) {
            Operand idx = b.iadd(b.imul(rr, Operand::constI32(kGrid)),
                                 cc);
            return b.load(Type::F32, b.elemAddr(Operand::param(0), idx));
        };
        // Clamped neighbour coordinates (predicated, as in Rodinia).
        Operand rn = b.imax(b.isub(r, Operand::constI32(1)),
                            Operand::constI32(0));
        Operand rs = b.imin(b.iadd(r, Operand::constI32(1)),
                            Operand::constI32(kGrid - 1));
        Operand ce = b.imin(b.iadd(c, Operand::constI32(1)),
                            Operand::constI32(kGrid - 1));
        Operand cw = b.imax(b.isub(c, Operand::constI32(1)),
                            Operand::constI32(0));

        Operand t = cell_at(r, c);
        Operand n = cell_at(rn, c);
        Operand s = cell_at(rs, c);
        Operand e = cell_at(r, ce);
        Operand w = cell_at(r, cw);
        Operand p = b.load(Type::F32, b.elemAddr(Operand::param(1), tid));

        Operand two_t = b.fmul(Operand::constF32(2.0f), t);
        Operand vert = b.fmul(b.fsub(b.fadd(n, s), two_t),
                              Operand::constF32(kRy));
        Operand horz = b.fmul(b.fsub(b.fadd(e, w), two_t),
                              Operand::constF32(kRx));
        Operand amb = b.fmul(b.fsub(Operand::constF32(kAmb), t),
                             Operand::constF32(kRz));
        Operand delta = b.fmul(Operand::constF32(kCap),
                               b.fadd(b.fadd(p, vert), b.fadd(horz, amb)));
        b.store(Type::F32, b.elemAddr(Operand::param(2), tid),
                b.fadd(t, delta));
        b.exit();
    }
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeHotspotKernel()
{
    WorkloadInstance w;
    w.suite = "HOTSPOT";
    w.domain = "Physics Simulation";
    w.kernel = buildHotspot();
    w.memory = MemoryImage(1u << 20);

    Rng rng(55);
    const uint32_t temp = w.memory.allocWords(kGrid * kGrid);
    const uint32_t power = w.memory.allocWords(kGrid * kGrid);
    const uint32_t out = w.memory.allocWords(kGrid * kGrid);
    fillF32(w.memory, temp, kGrid * kGrid, rng, 60.0f, 90.0f);
    fillF32(w.memory, power, kGrid * kGrid, rng, 0.0f, 5.0f);

    w.launch.numCtas = kGrid * kGrid / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(temp), Scalar::fromU32(power),
                       Scalar::fromU32(out),
                       Scalar::fromI32(kGrid * kGrid)};

    MemoryImage init = w.memory;
    w.check = [init, temp, power, out](const MemoryImage &mem,
                                       std::string &err) {
        std::vector<float> expect(kGrid * kGrid);
        for (int r = 0; r < kGrid; ++r) {
            for (int c = 0; c < kGrid; ++c) {
                auto at = [&](int rr, int cc) {
                    return init.loadF32(temp, uint32_t(rr * kGrid + cc));
                };
                const float t = at(r, c);
                const float n = at(std::max(r - 1, 0), c);
                const float s = at(std::min(r + 1, kGrid - 1), c);
                const float e = at(r, std::min(c + 1, kGrid - 1));
                const float wv = at(r, std::max(c - 1, 0));
                const float p =
                    init.loadF32(power, uint32_t(r * kGrid + c));
                const float vert = ((n + s) - 2.0f * t) * kRy;
                const float horz = ((e + wv) - 2.0f * t) * kRx;
                const float amb = (kAmb - t) * kRz;
                const float delta = kCap * ((p + vert) + (horz + amb));
                expect[size_t(r * kGrid + c)] = t + delta;
            }
        }
        return checkF32(mem, out, expect, 1e-5f, err);
    };
    return w;
}

} // namespace vgiw::workloads
