/**
 * @file
 * Shared helpers for the workload generators: deterministic input fills
 * and golden-array comparison utilities. Golden references replicate the
 * kernels' arithmetic in the same order, so float comparisons can be
 * tight.
 */

#ifndef VGIW_WORKLOADS_WORKLOAD_UTIL_HH
#define VGIW_WORKLOADS_WORKLOAD_UTIL_HH

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "interp/memory_image.hh"

namespace vgiw::workloads
{

/** Fill @p n floats at @p base with uniform values in [lo, hi). */
inline void
fillF32(MemoryImage &mem, uint32_t base, uint32_t n, Rng &rng, float lo,
        float hi)
{
    for (uint32_t i = 0; i < n; ++i)
        mem.storeF32(base, i, rng.nextFloat(lo, hi));
}

/** Fill @p n ints at @p base with uniform values in [lo, hi]. */
inline void
fillI32(MemoryImage &mem, uint32_t base, uint32_t n, Rng &rng, int32_t lo,
        int32_t hi)
{
    for (uint32_t i = 0; i < n; ++i)
        mem.storeI32(base, i, rng.nextInt(lo, hi));
}

/** Compare @p n floats at @p base against @p expect (relative @p tol). */
inline bool
checkF32(const MemoryImage &mem, uint32_t base,
         const std::vector<float> &expect, float tol, std::string &err)
{
    for (size_t i = 0; i < expect.size(); ++i) {
        const float got = mem.loadF32(base, uint32_t(i));
        const float want = expect[i];
        const float mag = std::max(std::fabs(want), 1.0f);
        if (std::fabs(got - want) > tol * mag ||
            std::isnan(got) != std::isnan(want)) {
            std::ostringstream os;
            os << "float mismatch at [" << i << "]: got " << got
               << ", want " << want;
            err = os.str();
            return false;
        }
    }
    return true;
}

/** Compare @p n ints at @p base against @p expect. */
inline bool
checkI32(const MemoryImage &mem, uint32_t base,
         const std::vector<int32_t> &expect, std::string &err)
{
    for (size_t i = 0; i < expect.size(); ++i) {
        const int32_t got = mem.loadI32(base, uint32_t(i));
        if (got != expect[i]) {
            std::ostringstream os;
            os << "int mismatch at [" << i << "]: got " << got << ", want "
               << expect[i];
            err = os.str();
            return false;
        }
    }
    return true;
}

inline bool
checkU32(const MemoryImage &mem, uint32_t base,
         const std::vector<uint32_t> &expect, std::string &err)
{
    for (size_t i = 0; i < expect.size(); ++i) {
        const uint32_t got = mem.loadU32(base, uint32_t(i));
        if (got != expect[i]) {
            std::ostringstream os;
            os << "u32 mismatch at [" << i << "]: got " << got << ", want "
               << expect[i];
            err = os.str();
            return false;
        }
    }
    return true;
}

} // namespace vgiw::workloads

#endif // VGIW_WORKLOADS_WORKLOAD_UTIL_HH
