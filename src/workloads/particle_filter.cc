/**
 * @file
 * PF — particle filter `normalize_weights` kernel (Table 2: Medical
 * Imaging, 5 basic blocks): every thread normalises one particle weight
 * by the global sum; thread 0 additionally reseeds the systematic
 * resampling offset — the divergent tail branch.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kParticles = 4096;
constexpr int kCtaSize = 256;

Kernel
buildNormalizeWeights()
{
    // Params: 0 = weights, 1 = partial sums (sums[0] = total),
    //         2 = n, 3 = u array (resampling offsets).
    KernelBuilder kb("normalize_weights", 4);
    const uint16_t lv_w = kb.newLiveValue();

    BlockRef guard = kb.block("guard");
    BlockRef norm = kb.block("normalize");
    BlockRef zerob = kb.block("thread0");
    BlockRef join = kb.block("join");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(2)), norm, done);

    {
        Operand sum = norm.load(
            Type::F32,
            norm.elemAddr(Operand::param(1), Operand::constI32(0)));
        Operand wv = norm.load(Type::F32,
                               norm.elemAddr(Operand::param(0), tid));
        Operand nw = norm.fdiv(wv, sum);
        norm.store(Type::F32, norm.elemAddr(Operand::param(0), tid), nw);
        norm.out(lv_w, nw);
        norm.branch(norm.ieq(tid, Operand::constI32(0)), zerob, join);
    }
    {
        // u[0] = w0 / n  (the systematic resampling seed).
        Operand n = zerob.i2f(Operand::param(2));
        Operand u0 = zerob.fdiv(zerob.in(lv_w), n);
        zerob.store(Type::F32,
                    zerob.elemAddr(Operand::param(3), Operand::constI32(0)),
                    u0);
        zerob.jump(join);
    }
    join.exit();
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makePfNormalizeWeights()
{
    WorkloadInstance w;
    w.suite = "PF";
    w.domain = "Medical Imaging";
    w.kernel = buildNormalizeWeights();
    w.memory = MemoryImage(4u << 20);

    Rng rng(46);
    const uint32_t weights = w.memory.allocWords(kParticles);
    const uint32_t sums = w.memory.allocWords(16);
    const uint32_t u = w.memory.allocWords(kParticles);
    fillF32(w.memory, weights, kParticles, rng, 0.0f, 1.0f);
    float total = 0.0f;
    for (int i = 0; i < kParticles; ++i)
        total += w.memory.loadF32(weights, uint32_t(i));
    w.memory.storeF32(sums, 0, total);

    w.launch.numCtas = kParticles / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(weights), Scalar::fromU32(sums),
                       Scalar::fromI32(kParticles), Scalar::fromU32(u)};

    MemoryImage init = w.memory;
    w.check = [init, weights, u, total](const MemoryImage &mem,
                                        std::string &err) {
        std::vector<float> expect(kParticles);
        for (int i = 0; i < kParticles; ++i)
            expect[size_t(i)] = init.loadF32(weights, uint32_t(i)) / total;
        if (!checkF32(mem, weights, expect, 1e-5f, err))
            return false;
        const float u0 = mem.loadF32(u, 0);
        const float want = expect[0] / float(kParticles);
        if (std::fabs(u0 - want) > 1e-6f) {
            err = "u[0] mismatch";
            return false;
        }
        return true;
    };
    return w;
}

} // namespace vgiw::workloads
