/**
 * @file
 * GE — Gaussian elimination kernels Fan1 (2 blocks) and Fan2 (5 blocks)
 * from Table 2 (Linear Algebra). Fan1 computes one column of
 * multipliers; Fan2 updates the trailing submatrix and, on its first
 * column, the right-hand side — the `yidx == 0` branch is the source of
 * Fan2's control divergence.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kSize = 128;  ///< matrix dimension
constexpr int kStep = 13;   ///< the elimination step `t` being run

Kernel
buildFan1()
{
    // Params: 0 = m (multipliers), 1 = a (matrix), 2 = size, 3 = t.
    KernelBuilder kb("Fan1", 4);
    BlockRef guard = kb.block("guard");
    BlockRef body = kb.block("body");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    // if (tid >= size - 1 - t) return;
    Operand limit = guard.isub(
        guard.isub(Operand::param(2), Operand::constI32(1)),
        Operand::param(3));
    guard.branch(guard.ilt(tid, limit), body, done);

    {
        // row = tid + t + 1; m[row*size + t] = a[row*size + t]/a[t*size+t]
        Operand row = body.iadd(body.iadd(tid, Operand::param(3)),
                                Operand::constI32(1));
        Operand row_off = body.imul(row, Operand::param(2));
        Operand idx = body.iadd(row_off, Operand::param(3));
        Operand pivot_idx = body.iadd(
            body.imul(Operand::param(3), Operand::param(2)),
            Operand::param(3));
        Operand num = body.load(Type::F32,
                                body.elemAddr(Operand::param(1), idx));
        Operand den = body.load(
            Type::F32, body.elemAddr(Operand::param(1), pivot_idx));
        body.store(Type::F32, body.elemAddr(Operand::param(0), idx),
                   body.fdiv(num, den));
        body.exit();
    }
    done.exit();
    return kb.finish();
}

Kernel
buildFan2()
{
    // Params: 0 = m, 1 = a, 2 = b (rhs), 3 = size, 4 = t, 5 = width.
    // Thread tid maps to (x, y) = (tid / width, tid % width).
    KernelBuilder kb("Fan2", 6);
    const uint16_t lv_x = kb.newLiveValue();
    const uint16_t lv_y = kb.newLiveValue();
    const uint16_t lv_mul = kb.newLiveValue();

    BlockRef guardx = kb.block("guard_x");
    BlockRef guardy = kb.block("guard_y");
    BlockRef update = kb.block("update");
    BlockRef rhs = kb.block("rhs");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    {
        Operand x = guardx.idiv(tid, Operand::param(5));
        Operand y = guardx.irem(tid, Operand::param(5));
        guardx.out(lv_x, x);
        guardx.out(lv_y, y);
        // if (x >= size - 1 - t) return;
        Operand xlim = guardx.isub(
            guardx.isub(Operand::param(3), Operand::constI32(1)),
            Operand::param(4));
        guardx.branch(guardx.ilt(x, xlim), guardy, done);
    }
    {
        // if (y >= size - t) return;
        Operand ylim = guardy.isub(Operand::param(3), Operand::param(4));
        guardy.branch(guardy.ilt(guardy.in(lv_y), ylim), update, done);
    }
    {
        // a[(x+1+t)*size + (y+t)] -= m[(x+1+t)*size + t]*a[t*size+(y+t)]
        Operand row = update.iadd(
            update.iadd(update.in(lv_x), Operand::constI32(1)),
            Operand::param(4));
        Operand col = update.iadd(update.in(lv_y), Operand::param(4));
        Operand row_off = update.imul(row, Operand::param(3));
        Operand midx = update.iadd(row_off, Operand::param(4));
        Operand mul = update.load(
            Type::F32, update.elemAddr(Operand::param(0), midx));
        update.out(lv_mul, mul);
        Operand aidx = update.iadd(row_off, col);
        Operand pidx = update.iadd(
            update.imul(Operand::param(4), Operand::param(3)), col);
        Operand av = update.load(
            Type::F32, update.elemAddr(Operand::param(1), aidx));
        Operand pv = update.load(
            Type::F32, update.elemAddr(Operand::param(1), pidx));
        Operand nv = update.fsub(av, update.fmul(mul, pv));
        update.store(Type::F32, update.elemAddr(Operand::param(1), aidx),
                     nv);
        // Only the first column updates the right-hand side.
        Operand yz = update.ieq(update.in(lv_y), Operand::constI32(0));
        update.branch(yz, rhs, done);
    }
    {
        // b[x+1+t] -= m[(x+1+t)*size + t] * b[t]
        Operand row = rhs.iadd(
            rhs.iadd(rhs.in(lv_x), Operand::constI32(1)),
            Operand::param(4));
        Operand bv = rhs.load(Type::F32,
                              rhs.elemAddr(Operand::param(2), row));
        Operand bt = rhs.load(
            Type::F32, rhs.elemAddr(Operand::param(2), Operand::param(4)));
        rhs.store(Type::F32, rhs.elemAddr(Operand::param(2), row),
                  rhs.fsub(bv, rhs.fmul(rhs.in(lv_mul), bt)));
        rhs.exit();
    }
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeGeFan1()
{
    WorkloadInstance w;
    w.suite = "GE";
    w.domain = "Linear Algebra";
    w.kernel = buildFan1();
    w.memory = MemoryImage(4u << 20);

    Rng rng(44);
    const uint32_t m = w.memory.allocWords(kSize * kSize);
    const uint32_t a = w.memory.allocWords(kSize * kSize);
    fillF32(w.memory, a, kSize * kSize, rng, 1.0f, 10.0f);

    const int rows = kSize - 1 - kStep;
    w.launch.numCtas = (rows + 63) / 64;
    w.launch.ctaSize = 64;
    w.launch.params = {Scalar::fromU32(m), Scalar::fromU32(a),
                       Scalar::fromI32(kSize), Scalar::fromI32(kStep)};

    MemoryImage init = w.memory;
    w.check = [init, m, a](const MemoryImage &mem, std::string &err) {
        for (int i = 0; i < kSize - 1 - kStep; ++i) {
            const int row = i + kStep + 1;
            const float num =
                init.loadF32(a, uint32_t(row * kSize + kStep));
            const float den =
                init.loadF32(a, uint32_t(kStep * kSize + kStep));
            const float want = num / den;
            const float got =
                mem.loadF32(m, uint32_t(row * kSize + kStep));
            if (std::fabs(got - want) > 1e-6f * std::fabs(want) + 1e-9f) {
                err = "Fan1 multiplier mismatch at row " +
                      std::to_string(row);
                return false;
            }
        }
        return true;
    };
    return w;
}

WorkloadInstance
makeGeFan2()
{
    WorkloadInstance w;
    w.suite = "GE";
    w.domain = "Linear Algebra";
    w.kernel = buildFan2();
    w.memory = MemoryImage(4u << 20);

    Rng rng(45);
    const uint32_t m = w.memory.allocWords(kSize * kSize);
    const uint32_t a = w.memory.allocWords(kSize * kSize);
    const uint32_t b = w.memory.allocWords(kSize);
    fillF32(w.memory, a, kSize * kSize, rng, 1.0f, 10.0f);
    fillF32(w.memory, b, kSize, rng, 1.0f, 10.0f);
    fillF32(w.memory, m, kSize * kSize, rng, 0.1f, 0.9f);

    const int width = kSize - kStep;  // columns updated per row
    const int rows = kSize - 1 - kStep;
    const int threads = ((rows * width + 63) / 64) * 64;

    w.launch.numCtas = threads / 64;
    w.launch.ctaSize = 64;
    w.launch.params = {Scalar::fromU32(m), Scalar::fromU32(a),
                       Scalar::fromU32(b), Scalar::fromI32(kSize),
                       Scalar::fromI32(kStep), Scalar::fromI32(width)};

    MemoryImage init = w.memory;
    w.check = [init, m, a, b](const MemoryImage &mem, std::string &err) {
        // Replicate the update natively.
        std::vector<float> ea(kSize * kSize), eb(kSize);
        for (int i = 0; i < kSize * kSize; ++i)
            ea[size_t(i)] = init.loadF32(a, uint32_t(i));
        for (int i = 0; i < kSize; ++i)
            eb[size_t(i)] = init.loadF32(b, uint32_t(i));
        for (int x = 0; x < kSize - 1 - kStep; ++x) {
            const int row = x + 1 + kStep;
            const float mul =
                init.loadF32(m, uint32_t(row * kSize + kStep));
            for (int y = 0; y < kSize - kStep; ++y) {
                const int col = y + kStep;
                ea[size_t(row * kSize + col)] -=
                    mul * init.loadF32(a, uint32_t(kStep * kSize + col));
            }
            eb[size_t(row)] -= mul * init.loadF32(b, uint32_t(kStep));
        }
        return checkF32(mem, a, ea, 1e-5f, err) &&
               checkF32(mem, b, eb, 1e-5f, err);
    };
    return w;
}

} // namespace vgiw::workloads
