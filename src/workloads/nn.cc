/**
 * @file
 * NN — k-nearest-neighbours `euclid` kernel (Table 2: Data Mining, 2
 * basic blocks): each thread computes the Euclidean distance from one
 * location record to the query point. Small, FP-heavy, no divergence
 * beyond the bounds guard — a kernel SGMF is good at.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kRecords = 4096;
constexpr int kCtaSize = 256;

Kernel
buildEuclid()
{
    // Params: 0 = locations base (lat,lng pairs), 1 = distances base,
    //         2 = numRecords, 3 = query lat, 4 = query lng.
    KernelBuilder kb("euclid", 5);
    BlockRef guard = kb.block("guard");
    BlockRef body = kb.block("body");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(2)), body, done);

    {
        Operand pair = body.imul(tid, Operand::constI32(2));
        Operand lat = body.load(
            Type::F32, body.elemAddr(Operand::param(0), pair));
        Operand lng = body.load(
            Type::F32,
            body.elemAddr(Operand::param(0),
                          body.iadd(pair, Operand::constI32(1))));
        Operand dlat = body.fsub(lat, Operand::param(3));
        Operand dlng = body.fsub(lng, Operand::param(4));
        Operand sum = body.fadd(body.fmul(dlat, dlat),
                                body.fmul(dlng, dlng));
        Operand dist = body.fsqrt(sum);
        body.store(Type::F32, body.elemAddr(Operand::param(1), tid), dist);
        body.exit();
    }
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeNnEuclid()
{
    WorkloadInstance w;
    w.suite = "NN";
    w.domain = "Data Mining";
    w.kernel = buildEuclid();
    w.memory = MemoryImage(4u << 20);

    Rng rng(42);
    const uint32_t loc = w.memory.allocWords(kRecords * 2);
    const uint32_t dist = w.memory.allocWords(kRecords);
    fillF32(w.memory, loc, kRecords * 2, rng, -90.0f, 90.0f);
    const float qlat = 30.5f, qlng = -60.25f;

    w.launch.numCtas = kRecords / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(loc), Scalar::fromU32(dist),
                       Scalar::fromI32(kRecords), Scalar::fromF32(qlat),
                       Scalar::fromF32(qlng)};

    MemoryImage init = w.memory;
    w.check = [init, loc, dist, qlat, qlng](const MemoryImage &mem,
                                            std::string &err) {
        std::vector<float> expect(kRecords);
        for (int i = 0; i < kRecords; ++i) {
            const float lat = init.loadF32(loc, uint32_t(2 * i));
            const float lng = init.loadF32(loc, uint32_t(2 * i + 1));
            const float dlat = lat - qlat, dlng = lng - qlng;
            expect[size_t(i)] = std::sqrt(dlat * dlat + dlng * dlng);
        }
        return checkF32(mem, dist, expect, 1e-5f, err);
    };
    return w;
}

} // namespace vgiw::workloads
