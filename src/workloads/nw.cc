/**
 * @file
 * NW — Needleman-Wunsch sequence alignment kernels (Table 2:
 * Bioinformatics, 13 basic blocks each). The score matrix is processed
 * in 16x16 tiles along anti-diagonals: needle_cuda_shared_1 computes the
 * second anti-diagonal of tiles (two CTAs per problem, 64 problems
 * batched), needle_cuda_shared_2 the final one. Inside a tile, one CTA of 16
 * threads sweeps 31 wavefronts in the scratchpad with a barrier per
 * wavefront — heavy synchronisation and per-wavefront divergence.
 */

#include "workloads/workloads.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kTile = 16;
constexpr int kDim = 2 * kTile;       ///< score matrix is (kDim+1)^2
constexpr int kPitch = kDim + 1;
constexpr int kPenalty = 10;
/// Independent alignment problems batched so each kernel launch carries
/// dozens of CTAs (the thread-vector regime the architecture targets).
constexpr int kProblems = 64;
constexpr int kScoreWords = kPitch * kPitch;
constexpr int kRefWords = kDim * kDim;

/** Native DP update of one tile (same max order as the kernel). */
void
referenceTile(std::vector<int32_t> &score,
              const std::vector<int32_t> &ref, int tile_r, int tile_c)
{
    for (int i = 0; i < kTile; ++i) {
        for (int j = 0; j < kTile; ++j) {
            const int r = tile_r * kTile + i + 1;
            const int c = tile_c * kTile + j + 1;
            const int nw = score[size_t(r - 1) * kPitch + size_t(c - 1)] +
                           ref[size_t(r - 1) * kDim + size_t(c - 1)];
            const int w = score[size_t(r) * kPitch + size_t(c - 1)] -
                          kPenalty;
            const int n = score[size_t(r - 1) * kPitch + size_t(c)] -
                          kPenalty;
            score[size_t(r) * kPitch + size_t(c)] =
                std::max(std::max(nw, w), n);
        }
    }
}

/**
 * One-tile wavefront kernel. Each CTA of kTile threads processes one
 * tile of one alignment problem; the per-CTA work list supplies
 * (problem, tile_r, tile_c) triples.
 * Params: 0 = score (pitch kPitch, kProblems concatenated), 1 = ref
 *         (pitch kDim, concatenated), 2 = work list.
 */
Kernel
buildNeedle(const char *name)
{
    KernelBuilder kb(name, 3);
    // Scratchpad: score tile with halo (17x17) + ref tile (16x16).
    constexpr int kSPitch = kTile + 1;
    constexpr int kRefOff = kSPitch * kSPitch;  // words
    kb.setSharedBytesPerCta((kRefOff + kTile * kTile) * 4);

    const uint16_t lv_j = kb.newLiveValue();
    const uint16_t lv_d = kb.newLiveValue();
    const uint16_t lv_base_r = kb.newLiveValue();  // tile origin row
    const uint16_t lv_base_c = kb.newLiveValue();
    const uint16_t lv_sbase = kb.newLiveValue();   // problem score base
    const uint16_t lv_rbase = kb.newLiveValue();   // problem ref base

    BlockRef init = kb.block("init");
    BlockRef ld_head = kb.block("load_head");
    BlockRef ld_body = kb.block("load_body");
    BlockRef halo = kb.block("load_halo");
    BlockRef corner = kb.block("load_corner");
    BlockRef d_init = kb.block("diag_init");
    BlockRef d_head = kb.block("diag_head");
    BlockRef d_test = kb.block("diag_test");
    BlockRef d_comp = kb.block("diag_compute");
    BlockRef d_join = kb.block("diag_join");
    BlockRef wb_init = kb.block("wb_init");
    BlockRef wb_head = kb.block("wb_head");
    BlockRef wb_body = kb.block("wb_body");
    BlockRef done = kb.block("done");

    Operand lane = Operand::special(SpecialReg::TidInCta);
    Operand cta = Operand::special(SpecialReg::CtaId);

    auto saddr = [&](BlockRef b, Operand r, Operand c) {
        return b.elemAddr(Operand::constU32(0),
                          b.iadd(b.imul(r, Operand::constI32(kSPitch)), c));
    };
    auto sref = [&](BlockRef b, Operand i, Operand j) {
        return b.elemAddr(
            Operand::constU32(kRefOff * 4),
            b.iadd(b.imul(i, Operand::constI32(kTile)), j));
    };
    auto gscore = [&](BlockRef b, Operand r, Operand c) {
        return b.elemAddr(b.in(lv_sbase),
                          b.iadd(b.imul(r, Operand::constI32(kPitch)), c));
    };

    {
        // Fetch this CTA's (problem, tile) work item.
        Operand slot = init.imul(cta, Operand::constI32(3));
        Operand prob = init.load(Type::I32,
                                 init.elemAddr(Operand::param(2), slot));
        Operand tr = init.load(
            Type::I32,
            init.elemAddr(Operand::param(2),
                          init.iadd(slot, Operand::constI32(1))));
        Operand tc = init.load(
            Type::I32,
            init.elemAddr(Operand::param(2),
                          init.iadd(slot, Operand::constI32(2))));
        init.out(lv_sbase,
                 init.iadd(Operand::param(0),
                           init.imul(prob,
                                     Operand::constI32(kScoreWords * 4))));
        init.out(lv_rbase,
                 init.iadd(Operand::param(1),
                           init.imul(prob,
                                     Operand::constI32(kRefWords * 4))));
        init.out(lv_base_r, init.imul(tr, Operand::constI32(kTile)));
        init.out(lv_base_c, init.imul(tc, Operand::constI32(kTile)));
        init.out(lv_j, Operand::constI32(0));
        init.jump(ld_head);
    }
    // Each thread loads row `lane` of the ref tile and of the score tile
    // interior (offset by 1,1 in the shadow).
    ld_head.branch(ld_head.ilt(ld_head.in(lv_j),
                               Operand::constI32(kTile)),
                   ld_body, halo);
    {
        Operand j = ld_body.in(lv_j);
        Operand gr = ld_body.iadd(ld_body.in(lv_base_r), lane);
        Operand gc = ld_body.iadd(ld_body.in(lv_base_c), j);
        Operand rv = ld_body.load(
            Type::I32,
            ld_body.elemAddr(
                ld_body.in(lv_rbase),
                ld_body.iadd(ld_body.imul(gr, Operand::constI32(kDim)),
                             gc)));
        ld_body.store(Type::I32, sref(ld_body, lane, j), rv,
                      MemSpace::Shared);
        ld_body.out(lv_j, ld_body.iadd(j, Operand::constI32(1)));
        ld_body.jump(ld_head);
    }
    {
        // Halo: thread `lane` loads the north border cell (row 0,
        // col lane+1) and the west border cell (row lane+1, col 0).
        Operand lane1 = halo.iadd(lane, Operand::constI32(1));
        Operand gr0 = halo.in(lv_base_r);  // == tile_r*kTile (halo row)
        Operand gcn = halo.iadd(halo.in(lv_base_c), lane1);
        Operand nv = halo.load(Type::I32, gscore(halo, gr0, gcn));
        halo.store(Type::I32,
                   saddr(halo, Operand::constI32(0), lane1), nv,
                   MemSpace::Shared);
        Operand grw = halo.iadd(halo.in(lv_base_r), lane1);
        Operand gc0 = halo.in(lv_base_c);
        Operand wv = halo.load(Type::I32, gscore(halo, grw, gc0));
        halo.store(Type::I32,
                   saddr(halo, lane1, Operand::constI32(0)), wv,
                   MemSpace::Shared);
        halo.branch(halo.ieq(lane, Operand::constI32(0)), corner, d_init);
    }
    {
        // Thread 0 loads the NW corner.
        Operand cv = corner.load(Type::I32,
                                 gscore(corner, corner.in(lv_base_r),
                                        corner.in(lv_base_c)));
        corner.store(
            Type::I32,
            saddr(corner, Operand::constI32(0), Operand::constI32(0)), cv,
            MemSpace::Shared);
        corner.jump(d_init);
    }
    d_init.out(lv_d, Operand::constI32(0));
    d_init.jump(d_head, /*barrier=*/true);

    d_head.branch(d_head.ilt(d_head.in(lv_d),
                             Operand::constI32(2 * kTile - 1)),
                  d_test, wb_init);
    {
        // Thread `lane` owns row i = lane; active when j = d - i is in
        // [0, kTile).
        Operand j = d_test.isub(d_test.in(lv_d), lane);
        Operand ok = d_test.iand(
            d_test.ige(j, Operand::constI32(0)),
            d_test.ilt(j, Operand::constI32(kTile)));
        d_test.branch(ok, d_comp, d_join);
    }
    {
        Operand i1 = d_comp.iadd(lane, Operand::constI32(1));
        Operand j = d_comp.isub(d_comp.in(lv_d), lane);
        Operand j1 = d_comp.iadd(j, Operand::constI32(1));
        Operand nw = d_comp.load(Type::I32, saddr(d_comp, lane, j),
                                 MemSpace::Shared);
        Operand rv = d_comp.load(Type::I32, sref(d_comp, lane, j),
                                 MemSpace::Shared);
        Operand diag = d_comp.iadd(nw, rv);
        Operand w = d_comp.load(Type::I32, saddr(d_comp, i1, j),
                                MemSpace::Shared);
        Operand n = d_comp.load(Type::I32, saddr(d_comp, lane, j1),
                                MemSpace::Shared);
        Operand best = d_comp.imax(
            d_comp.imax(diag,
                        d_comp.isub(w, Operand::constI32(kPenalty))),
            d_comp.isub(n, Operand::constI32(kPenalty)));
        d_comp.store(Type::I32, saddr(d_comp, i1, j1), best,
                     MemSpace::Shared);
        d_comp.jump(d_join);
    }
    d_join.out(lv_d, d_join.iadd(d_join.in(lv_d), Operand::constI32(1)));
    d_join.jump(d_head, /*barrier=*/true);

    // Write the tile interior back to the global score matrix.
    wb_init.out(lv_j, Operand::constI32(0));
    wb_init.jump(wb_head);
    wb_head.branch(wb_head.ilt(wb_head.in(lv_j),
                               Operand::constI32(kTile)),
                   wb_body, done);
    {
        Operand j = wb_body.in(lv_j);
        Operand j1 = wb_body.iadd(j, Operand::constI32(1));
        Operand lane1 = wb_body.iadd(lane, Operand::constI32(1));
        Operand v = wb_body.load(Type::I32, saddr(wb_body, lane1, j1),
                                 MemSpace::Shared);
        Operand gr = wb_body.iadd(
            wb_body.iadd(wb_body.in(lv_base_r), lane),
            Operand::constI32(1));
        Operand gc = wb_body.iadd(
            wb_body.iadd(wb_body.in(lv_base_c), j),
            Operand::constI32(1));
        wb_body.store(Type::I32, gscore(wb_body, gr, gc), v);
        wb_body.out(lv_j, wb_body.iadd(j, Operand::constI32(1)));
        wb_body.jump(wb_head);
    }
    done.exit();
    return kb.finish();
}

struct NwState
{
    std::vector<int32_t> score;  // (kDim+1)^2
    std::vector<int32_t> ref;    // kDim^2
};

NwState
buildInput(Rng &rng)
{
    NwState s;
    s.ref.resize(size_t(kDim) * kDim);
    for (auto &v : s.ref)
        v = rng.nextInt(-2, 10);
    s.score.assign(size_t(kPitch) * kPitch, 0);
    for (int i = 0; i < kPitch; ++i) {
        s.score[size_t(i) * kPitch] = -i * kPenalty;
        s.score[size_t(i)] = -i * kPenalty;
    }
    return s;
}

WorkloadInstance
makeNw(int phase)
{
    Rng rng(54);

    WorkloadInstance w;
    w.suite = "NW";
    w.domain = "Bioinformatics";
    w.kernel = buildNeedle(phase == 1 ? "needle_cuda_shared_1"
                                      : "needle_cuda_shared_2");
    w.memory = MemoryImage(4u << 20);

    const uint32_t score =
        w.memory.allocWords(uint32_t(kProblems) * kScoreWords);
    const uint32_t ref =
        w.memory.allocWords(uint32_t(kProblems) * kRefWords);

    // Work list: phase 1 runs the two independent tiles of the second
    // anti-diagonal for every problem, phase 2 the final tile.
    std::vector<int32_t> work;  // (problem, tile_r, tile_c) triples
    std::vector<int32_t> expect(size_t(kProblems) * kScoreWords);

    for (int p = 0; p < kProblems; ++p) {
        NwState s = buildInput(rng);
        // Anti-diagonal 0 (tile 0,0) is always host-precomputed.
        referenceTile(s.score, s.ref, 0, 0);
        std::vector<std::pair<int, int>> tiles;
        if (phase == 1) {
            tiles = {{0, 1}, {1, 0}};
        } else {
            referenceTile(s.score, s.ref, 0, 1);
            referenceTile(s.score, s.ref, 1, 0);
            tiles = {{1, 1}};
        }
        for (auto [tr, tc] : tiles) {
            work.push_back(p);
            work.push_back(tr);
            work.push_back(tc);
        }
        for (size_t i = 0; i < s.score.size(); ++i) {
            w.memory.storeI32(score, uint32_t(p * kScoreWords) + uint32_t(i),
                              s.score[i]);
        }
        for (size_t i = 0; i < s.ref.size(); ++i) {
            w.memory.storeI32(ref, uint32_t(p * kRefWords) + uint32_t(i),
                              s.ref[i]);
        }
        std::vector<int32_t> e = s.score;
        for (auto [tr, tc] : tiles)
            referenceTile(e, s.ref, tr, tc);
        std::copy(e.begin(), e.end(),
                  expect.begin() + long(p) * kScoreWords);
    }

    const uint32_t list = w.memory.allocWords(uint32_t(work.size()));
    for (size_t i = 0; i < work.size(); ++i)
        w.memory.storeI32(list, uint32_t(i), work[i]);

    w.launch.numCtas = int(work.size()) / 3;
    w.launch.ctaSize = kTile;
    w.launch.params = {Scalar::fromU32(score), Scalar::fromU32(ref),
                       Scalar::fromU32(list)};

    w.check = [score, expect](const MemoryImage &mem, std::string &err) {
        return checkI32(mem, score, expect, err);
    };
    return w;
}

} // namespace

WorkloadInstance makeNwShared1() { return makeNw(1); }
WorkloadInstance makeNwShared2() { return makeNw(2); }

} // namespace vgiw::workloads
