/**
 * @file
 * LUD — tiled LU decomposition kernels (Table 2: Linear Algebra):
 * lud_diagonal (factorises the step's diagonal tile in the scratchpad
 * with per-iteration barriers), lud_perimeter (substitutes along the top
 * and left strips — its tid<TILE branch splits the CTA in half), and
 * lud_internal (rank-TILE update of the trailing tile). Each CTA owns one 32x32
 * matrix (16x16 tiles, elimination step 0); hundreds of matrices are
 * batched per launch.
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kN = 32;     ///< matrix dimension
constexpr int kMatBytes = kN * kN * 4;
// Independent matrices batched one per CTA, so block vectors reach the
// hundreds-of-threads regime the architecture targets (Section 2).
constexpr int kBatchDiagonal = 256;
constexpr int kBatchPerimeter = 128;
constexpr int kBatchInternal = 32;
constexpr int kTile = 16;

/** Random diagonally dominant matrix (stable, division-friendly). */
std::vector<float>
randomMatrix(Rng &rng)
{
    std::vector<float> m(size_t(kN) * kN);
    for (int i = 0; i < kN; ++i)
        for (int j = 0; j < kN; ++j)
            m[size_t(i) * kN + size_t(j)] =
                rng.nextFloat(0.1f, 1.0f) + (i == j ? float(kN) : 0.0f);
    return m;
}

/** Native in-place LU of the top-left tile (same operation order as the
 * kernel: per column i, divide then rank-1 update). */
void
referenceDiagonal(std::vector<float> &a)
{
    for (int i = 0; i < kTile - 1; ++i) {
        for (int r = i + 1; r < kTile; ++r)
            a[size_t(r) * kN + size_t(i)] =
                a[size_t(r) * kN + size_t(i)] /
                a[size_t(i) * kN + size_t(i)];
        for (int r = i + 1; r < kTile; ++r)
            for (int j = i + 1; j < kTile; ++j)
                a[size_t(r) * kN + size_t(j)] =
                    a[size_t(r) * kN + size_t(j)] -
                    a[size_t(r) * kN + size_t(i)] *
                        a[size_t(i) * kN + size_t(j)];
    }
}

/** Native perimeter update (assumes diagonal tile factorised). */
void
referencePerimeter(std::vector<float> &a)
{
    // Top strip: forward substitution with the unit-lower L.
    for (int c = kTile; c < kN; ++c) {
        for (int i = 1; i < kTile; ++i) {
            float acc = a[size_t(i) * kN + size_t(c)];
            for (int k = 0; k < i; ++k)
                acc = acc - a[size_t(i) * kN + size_t(k)] *
                                a[size_t(k) * kN + size_t(c)];
            a[size_t(i) * kN + size_t(c)] = acc;
        }
    }
    // Left strip: solve with U (divide by the diagonal).
    for (int r = kTile; r < kN; ++r) {
        for (int j = 0; j < kTile; ++j) {
            float acc = a[size_t(r) * kN + size_t(j)];
            for (int k = 0; k < j; ++k)
                acc = acc - a[size_t(r) * kN + size_t(k)] *
                                a[size_t(k) * kN + size_t(j)];
            a[size_t(r) * kN + size_t(j)] =
                acc / a[size_t(j) * kN + size_t(j)];
        }
    }
}

/** Native internal update. */
void
referenceInternal(std::vector<float> &a)
{
    for (int r = kTile; r < kN; ++r) {
        for (int c = kTile; c < kN; ++c) {
            float acc = 0.0f;
            for (int k = 0; k < kTile; ++k)
                acc = acc + a[size_t(r) * kN + size_t(k)] *
                                a[size_t(k) * kN + size_t(c)];
            a[size_t(r) * kN + size_t(c)] =
                a[size_t(r) * kN + size_t(c)] - acc;
        }
    }
}

/**
 * lud_diagonal: one CTA of kTile threads factorises the diagonal tile in
 * the scratchpad. Params: 0 = a, 1 = n.
 */
Kernel
buildDiagonal()
{
    KernelBuilder kb("lud_diagonal", 2);
    kb.setSharedBytesPerCta(kTile * kTile * 4);
    const uint16_t lv_i = kb.newLiveValue();
    const uint16_t lv_j = kb.newLiveValue();

    BlockRef ld_init = kb.block("load_init");
    BlockRef ld_head = kb.block("load_head");
    BlockRef ld_body = kb.block("load_body");
    BlockRef it_init = kb.block("iter_init");
    BlockRef it_head = kb.block("iter_head");
    BlockRef phase1 = kb.block("div_test");
    BlockRef div_do = kb.block("div_do");
    BlockRef p1_join = kb.block("div_join");
    BlockRef phase2 = kb.block("upd_test");
    BlockRef upd_init = kb.block("upd_init");
    BlockRef upd_head = kb.block("upd_head");
    BlockRef upd_body = kb.block("upd_body");
    BlockRef it_join = kb.block("iter_join");
    BlockRef wb_init = kb.block("wb_init");
    BlockRef wb_head = kb.block("wb_head");
    BlockRef wb_body = kb.block("wb_body");
    BlockRef done = kb.block("done");

    Operand lane = Operand::special(SpecialReg::TidInCta);
    auto shadow = [&](BlockRef b, Operand r, Operand c) {
        return b.elemAddr(Operand::constU32(0),
                          b.iadd(b.imul(r, Operand::constI32(kTile)), c));
    };
    Operand cta = Operand::special(SpecialReg::CtaId);
    auto global = [&](BlockRef b, Operand r, Operand c) {
        // Each CTA works on its own matrix of the batch.
        Operand mbase = b.iadd(
            Operand::param(0),
            b.imul(cta, Operand::constI32(kMatBytes)));
        return b.elemAddr(mbase,
                          b.iadd(b.imul(r, Operand::param(1)), c));
    };

    // Cooperative load: thread `lane` loads row `lane` of the tile.
    ld_init.out(lv_j, Operand::constI32(0));
    ld_init.jump(ld_head);
    ld_head.branch(ld_head.ilt(ld_head.in(lv_j),
                               Operand::constI32(kTile)),
                   ld_body, it_init);
    {
        Operand j = ld_body.in(lv_j);
        Operand v = ld_body.load(Type::F32, global(ld_body, lane, j));
        ld_body.store(Type::F32, shadow(ld_body, lane, j), v,
                      MemSpace::Shared);
        ld_body.out(lv_j, ld_body.iadd(j, Operand::constI32(1)));
        ld_body.jump(ld_head);
    }

    it_init.out(lv_i, Operand::constI32(0));
    it_init.jump(it_head, /*barrier=*/true);

    it_head.branch(it_head.ilt(it_head.in(lv_i),
                               Operand::constI32(kTile - 1)),
                   phase1, wb_init);

    phase1.branch(phase1.igt(lane, phase1.in(lv_i)), div_do, p1_join);
    {
        Operand i = div_do.in(lv_i);
        Operand num = div_do.load(Type::F32, shadow(div_do, lane, i),
                                  MemSpace::Shared);
        Operand den = div_do.load(Type::F32, shadow(div_do, i, i),
                                  MemSpace::Shared);
        div_do.store(Type::F32, shadow(div_do, lane, i),
                     div_do.fdiv(num, den), MemSpace::Shared);
        div_do.jump(p1_join);
    }
    p1_join.jump(phase2, /*barrier=*/true);

    phase2.branch(phase2.igt(lane, phase2.in(lv_i)), upd_init, it_join);
    upd_init.out(lv_j, upd_init.iadd(upd_init.in(lv_i),
                                     Operand::constI32(1)));
    upd_init.jump(upd_head);
    upd_head.branch(upd_head.ilt(upd_head.in(lv_j),
                                 Operand::constI32(kTile)),
                    upd_body, it_join);
    {
        Operand i = upd_body.in(lv_i);
        Operand j = upd_body.in(lv_j);
        Operand cur = upd_body.load(Type::F32, shadow(upd_body, lane, j),
                                    MemSpace::Shared);
        Operand l = upd_body.load(Type::F32, shadow(upd_body, lane, i),
                                  MemSpace::Shared);
        Operand u = upd_body.load(Type::F32, shadow(upd_body, i, j),
                                  MemSpace::Shared);
        upd_body.store(Type::F32, shadow(upd_body, lane, j),
                       upd_body.fsub(cur, upd_body.fmul(l, u)),
                       MemSpace::Shared);
        upd_body.out(lv_j, upd_body.iadd(j, Operand::constI32(1)));
        upd_body.jump(upd_head);
    }
    it_join.out(lv_i, it_join.iadd(it_join.in(lv_i),
                                   Operand::constI32(1)));
    it_join.jump(it_head, /*barrier=*/true);

    // Write the factorised tile back.
    wb_init.out(lv_j, Operand::constI32(0));
    wb_init.jump(wb_head);
    wb_head.branch(wb_head.ilt(wb_head.in(lv_j),
                               Operand::constI32(kTile)),
                   wb_body, done);
    {
        Operand j = wb_body.in(lv_j);
        Operand v = wb_body.load(Type::F32, shadow(wb_body, lane, j),
                                 MemSpace::Shared);
        wb_body.store(Type::F32, global(wb_body, lane, j), v);
        wb_body.out(lv_j, wb_body.iadd(j, Operand::constI32(1)));
        wb_body.jump(wb_head);
    }
    done.exit();
    return kb.finish();
}

/**
 * lud_perimeter: one CTA of 2*kTile threads; the lower half substitutes
 * the top strip columns, the upper half the left strip rows.
 * Params: 0 = a, 1 = n.
 */
Kernel
buildPerimeter()
{
    KernelBuilder kb("lud_perimeter", 2);
    const uint16_t lv_i = kb.newLiveValue();
    const uint16_t lv_k = kb.newLiveValue();
    const uint16_t lv_acc = kb.newLiveValue();
    const uint16_t lv_idx = kb.newLiveValue();  // column (top) / row (left)

    BlockRef pick = kb.block("pick");
    // Top strip path.
    BlockRef t_init = kb.block("top_init");
    BlockRef t_ihead = kb.block("top_i_head");
    BlockRef t_kinit = kb.block("top_k_init");
    BlockRef t_khead = kb.block("top_k_head");
    BlockRef t_kbody = kb.block("top_k_body");
    BlockRef t_store = kb.block("top_store");
    // Left strip path.
    BlockRef l_init = kb.block("left_init");
    BlockRef l_jhead = kb.block("left_j_head");
    BlockRef l_kinit = kb.block("left_k_init");
    BlockRef l_khead = kb.block("left_k_head");
    BlockRef l_kbody = kb.block("left_k_body");
    BlockRef l_store = kb.block("left_store");
    BlockRef done = kb.block("done");

    Operand lane = Operand::special(SpecialReg::TidInCta);
    Operand cta = Operand::special(SpecialReg::CtaId);
    auto global = [&](BlockRef b, Operand r, Operand c) {
        // Each CTA works on its own matrix of the batch.
        Operand mbase = b.iadd(
            Operand::param(0),
            b.imul(cta, Operand::constI32(kMatBytes)));
        return b.elemAddr(mbase,
                          b.iadd(b.imul(r, Operand::param(1)), c));
    };

    pick.branch(pick.ilt(lane, Operand::constI32(kTile)), t_init, l_init);

    // ---- Top strip: thread handles column kTile + lane. --------------
    t_init.out(lv_idx, t_init.iadd(lane, Operand::constI32(kTile)));
    t_init.out(lv_i, Operand::constI32(1));
    t_init.jump(t_ihead);
    t_ihead.branch(t_ihead.ilt(t_ihead.in(lv_i),
                               Operand::constI32(kTile)),
                   t_kinit, done);
    {
        Operand c = t_kinit.in(lv_idx);
        Operand i = t_kinit.in(lv_i);
        Operand acc = t_kinit.load(Type::F32, global(t_kinit, i, c));
        t_kinit.out(lv_acc, acc);
        t_kinit.out(lv_k, Operand::constI32(0));
        t_kinit.jump(t_khead);
    }
    t_khead.branch(t_khead.ilt(t_khead.in(lv_k), t_khead.in(lv_i)),
                   t_kbody, t_store);
    {
        Operand i = t_kbody.in(lv_i);
        Operand k = t_kbody.in(lv_k);
        Operand c = t_kbody.in(lv_idx);
        Operand l = t_kbody.load(Type::F32, global(t_kbody, i, k));
        Operand u = t_kbody.load(Type::F32, global(t_kbody, k, c));
        t_kbody.out(lv_acc, t_kbody.fsub(t_kbody.in(lv_acc),
                                         t_kbody.fmul(l, u)));
        t_kbody.out(lv_k, t_kbody.iadd(k, Operand::constI32(1)));
        t_kbody.jump(t_khead);
    }
    {
        Operand i = t_store.in(lv_i);
        t_store.store(Type::F32, global(t_store, i, t_store.in(lv_idx)),
                      t_store.in(lv_acc));
        t_store.out(lv_i, t_store.iadd(i, Operand::constI32(1)));
        t_store.jump(t_ihead);
    }

    // ---- Left strip: thread handles row kTile + (lane - kTile). ------
    l_init.out(lv_idx, l_init.iadd(lane, Operand::constI32(0)));
    l_init.out(lv_i, Operand::constI32(0));  // j column iterator
    l_init.jump(l_jhead);
    l_jhead.branch(l_jhead.ilt(l_jhead.in(lv_i),
                               Operand::constI32(kTile)),
                   l_kinit, done);
    {
        Operand r = l_kinit.in(lv_idx);
        Operand j = l_kinit.in(lv_i);
        Operand acc = l_kinit.load(Type::F32, global(l_kinit, r, j));
        l_kinit.out(lv_acc, acc);
        l_kinit.out(lv_k, Operand::constI32(0));
        l_kinit.jump(l_khead);
    }
    l_khead.branch(l_khead.ilt(l_khead.in(lv_k), l_khead.in(lv_i)),
                   l_kbody, l_store);
    {
        Operand r = l_kbody.in(lv_idx);
        Operand j = l_kbody.in(lv_i);
        Operand k = l_kbody.in(lv_k);
        Operand lv = l_kbody.load(Type::F32, global(l_kbody, r, k));
        Operand uv = l_kbody.load(Type::F32, global(l_kbody, k, j));
        l_kbody.out(lv_acc, l_kbody.fsub(l_kbody.in(lv_acc),
                                         l_kbody.fmul(lv, uv)));
        l_kbody.out(lv_k, l_kbody.iadd(k, Operand::constI32(1)));
        l_kbody.jump(l_khead);
    }
    {
        Operand r = l_store.in(lv_idx);
        Operand j = l_store.in(lv_i);
        Operand diag = l_store.load(Type::F32, global(l_store, j, j));
        l_store.store(Type::F32, global(l_store, r, j),
                      l_store.fdiv(l_store.in(lv_acc), diag));
        l_store.out(lv_i, l_store.iadd(j, Operand::constI32(1)));
        l_store.jump(l_jhead);
    }
    done.exit();
    return kb.finish();
}

/**
 * lud_internal: kTile x kTile threads update the trailing tile.
 * Params: 0 = a, 1 = n.
 */
Kernel
buildInternal()
{
    KernelBuilder kb("lud_internal", 2);
    const uint16_t lv_k = kb.newLiveValue();
    const uint16_t lv_acc = kb.newLiveValue();
    const uint16_t lv_row = kb.newLiveValue();
    const uint16_t lv_col = kb.newLiveValue();

    BlockRef init = kb.block("init");
    BlockRef head = kb.block("k_head");
    BlockRef body = kb.block("k_body");
    BlockRef wb = kb.block("writeback");

    Operand lane = Operand::special(SpecialReg::TidInCta);
    Operand cta = Operand::special(SpecialReg::CtaId);
    auto global = [&](BlockRef b, Operand r, Operand c) {
        // Each CTA works on its own matrix of the batch.
        Operand mbase = b.iadd(
            Operand::param(0),
            b.imul(cta, Operand::constI32(kMatBytes)));
        return b.elemAddr(mbase,
                          b.iadd(b.imul(r, Operand::param(1)), c));
    };

    {
        Operand row = init.iadd(init.idiv(lane, Operand::constI32(kTile)),
                                Operand::constI32(kTile));
        Operand col = init.iadd(init.irem(lane, Operand::constI32(kTile)),
                                Operand::constI32(kTile));
        init.out(lv_row, row);
        init.out(lv_col, col);
        init.out(lv_acc, Operand::constF32(0.0f));
        init.out(lv_k, Operand::constI32(0));
        init.jump(head);
    }
    head.branch(head.ilt(head.in(lv_k), Operand::constI32(kTile)), body,
                wb);
    {
        Operand k = body.in(lv_k);
        Operand l = body.load(Type::F32,
                              global(body, body.in(lv_row), k));
        Operand u = body.load(Type::F32,
                              global(body, k, body.in(lv_col)));
        body.out(lv_acc,
                 body.fadd(body.in(lv_acc), body.fmul(l, u)));
        body.out(lv_k, body.iadd(k, Operand::constI32(1)));
        body.jump(head);
    }
    {
        Operand addr = global(wb, wb.in(lv_row), wb.in(lv_col));
        Operand cur = wb.load(Type::F32, addr);
        wb.store(Type::F32, addr, wb.fsub(cur, wb.in(lv_acc)));
        wb.exit();
    }
    return kb.finish();
}

WorkloadInstance
makeLud(const char *which)
{
    Rng rng(53);
    WorkloadInstance w;
    w.suite = "LUD";
    w.domain = "Linear Algebra";
    w.memory = MemoryImage(4u << 20);

    const std::string name = which;
    int batch;
    if (name == "diagonal") {
        w.kernel = buildDiagonal();
        batch = kBatchDiagonal;
        w.launch.ctaSize = kTile;
    } else if (name == "perimeter") {
        w.kernel = buildPerimeter();
        batch = kBatchPerimeter;
        w.launch.ctaSize = 2 * kTile;
    } else {
        w.kernel = buildInternal();
        batch = kBatchInternal;
        w.launch.ctaSize = kTile * kTile;
    }
    w.launch.numCtas = batch;

    // One independent matrix per CTA. Earlier pipeline stages are
    // applied natively so each kernel starts from its real input state.
    std::vector<float> expect(size_t(batch) * kN * kN);
    const uint32_t a = w.memory.allocWords(uint32_t(batch) * kN * kN);
    for (int b = 0; b < batch; ++b) {
        std::vector<float> m = randomMatrix(rng);
        if (name == "perimeter") {
            referenceDiagonal(m);
        } else if (name == "internal") {
            referenceDiagonal(m);
            referencePerimeter(m);
        }
        std::vector<float> e = m;
        if (name == "diagonal")
            referenceDiagonal(e);
        else if (name == "perimeter")
            referencePerimeter(e);
        else
            referenceInternal(e);
        for (int i = 0; i < kN * kN; ++i) {
            w.memory.storeF32(a, uint32_t(b * kN * kN + i),
                              m[size_t(i)]);
            expect[size_t(b) * kN * kN + size_t(i)] = e[size_t(i)];
        }
    }
    w.launch.params = {Scalar::fromU32(a), Scalar::fromI32(kN)};

    w.check = [a, expect](const MemoryImage &mem, std::string &err) {
        return checkF32(mem, a, expect, 1e-4f, err);
    };
    return w;
}

} // namespace

WorkloadInstance makeLudDiagonal() { return makeLud("diagonal"); }
WorkloadInstance makeLudPerimeter() { return makeLud("perimeter"); }
WorkloadInstance makeLudInternal() { return makeLud("internal"); }

} // namespace vgiw::workloads
