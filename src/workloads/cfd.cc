/**
 * @file
 * CFD — computational fluid dynamics solver kernels (Table 2: Fluid
 * Dynamics): initialize_variables (1 block), compute_step_factor (2),
 * time_step (1) and compute_flux (12). initialize_variables and
 * time_step are the pure data-movement kernels for which the paper
 * reports VGIW slowdowns (the CFD3 discussion in Section 5);
 * compute_step_factor and compute_flux are FP/SCU heavy, the latter with
 * a three-way boundary-condition branch in its neighbour loop.
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kNelr = 2048;     ///< elements
constexpr int kCtaSize = 256;
constexpr int kVars = 5;        ///< density, momentum xyz, energy
constexpr int kNeighbors = 4;
constexpr float kGamma = 1.4f;

uint32_t varIdx(int var, int i) { return uint32_t(var * kNelr + i); }

Kernel
buildInitializeVariables()
{
    // Params: 0 = variables, 1 = ff_variable (5 far-field values).
    KernelBuilder kb("initialize_variables", 2);
    BlockRef b = kb.block("body");
    Operand tid = Operand::special(SpecialReg::Tid);
    for (int v = 0; v < kVars; ++v) {
        Operand ff = b.load(
            Type::F32,
            b.elemAddr(Operand::param(1), Operand::constI32(v)));
        Operand dst = b.iadd(Operand::constI32(v * kNelr), tid);
        b.store(Type::F32, b.elemAddr(Operand::param(0), dst), ff);
    }
    b.exit();
    return kb.finish();
}

Kernel
buildComputeStepFactor()
{
    // Params: 0 = variables, 1 = areas, 2 = step_factor.
    KernelBuilder kb("compute_step_factor", 3);
    BlockRef b = kb.block("body");
    Operand tid = Operand::special(SpecialReg::Tid);

    auto var = [&](int v) {
        Operand idx = b.iadd(Operand::constI32(v * kNelr), tid);
        return b.load(Type::F32, b.elemAddr(Operand::param(0), idx));
    };
    Operand density = var(0);
    Operand mx = var(1), my = var(2), mz = var(3);
    Operand energy = var(4);

    Operand m2 = b.fadd(b.fadd(b.fmul(mx, mx), b.fmul(my, my)),
                        b.fmul(mz, mz));
    Operand speed_sqd = b.fdiv(m2, b.fmul(density, density));
    // pressure = (gamma-1) * (energy - 0.5*density*speed_sqd)
    Operand half_rho_v2 = b.fmul(Operand::constF32(0.5f),
                                 b.fmul(density, speed_sqd));
    Operand pressure = b.fmul(Operand::constF32(kGamma - 1.0f),
                              b.fsub(energy, half_rho_v2));
    Operand c = b.fsqrt(
        b.fdiv(b.fmul(Operand::constF32(kGamma), pressure), density));
    Operand area = b.load(Type::F32, b.elemAddr(Operand::param(1), tid));
    Operand denom = b.fmul(b.fsqrt(area),
                           b.fadd(b.fsqrt(speed_sqd), c));
    b.store(Type::F32, b.elemAddr(Operand::param(2), tid),
            b.fdiv(Operand::constF32(0.5f), denom));
    b.exit();
    return kb.finish();
}

Kernel
buildTimeStep()
{
    // Params: 0 = variables, 1 = old_variables, 2 = fluxes,
    //         3 = step_factor.
    KernelBuilder kb("time_step", 4);
    BlockRef b = kb.block("body");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand factor = b.load(Type::F32,
                            b.elemAddr(Operand::param(3), tid));
    for (int v = 0; v < kVars; ++v) {
        Operand idx = b.iadd(Operand::constI32(v * kNelr), tid);
        Operand old = b.load(Type::F32,
                             b.elemAddr(Operand::param(1), idx));
        Operand fl = b.load(Type::F32, b.elemAddr(Operand::param(2), idx));
        b.store(Type::F32, b.elemAddr(Operand::param(0), idx),
                b.fadd(old, b.fmul(factor, fl)));
    }
    b.exit();
    return kb.finish();
}

Kernel
buildComputeFlux()
{
    // Params: 0 = elements_surrounding (nelr x 4), 1 = normal weights
    //         (nelr x 4), 2 = variables, 3 = fluxes, 4 = ff_variable.
    // Neighbour encoding: >= 0 interior, -1 wall, -2 far field.
    KernelBuilder kb("compute_flux", 5);
    const uint16_t lv_j = kb.newLiveValue();
    const uint16_t lv_acc_d = kb.newLiveValue();  // density flux
    const uint16_t lv_acc_m = kb.newLiveValue();  // momentum-x flux
    const uint16_t lv_acc_e = kb.newLiveValue();  // energy flux
    const uint16_t lv_rho = kb.newLiveValue();    // own density
    const uint16_t lv_mx = kb.newLiveValue();     // own momentum-x
    const uint16_t lv_en = kb.newLiveValue();     // own energy
    const uint16_t lv_w = kb.newLiveValue();
    const uint16_t lv_nb = kb.newLiveValue();

    BlockRef init = kb.block("init");
    BlockRef head = kb.block("nb_loop_head");
    BlockRef body = kb.block("nb_body");
    BlockRef interior = kb.block("interior");
    BlockRef btest = kb.block("boundary_test");
    BlockRef wall = kb.block("wall");
    BlockRef farfield = kb.block("far_field");
    BlockRef inc = kb.block("nb_inc");
    BlockRef writeback = kb.block("writeback");

    Operand tid = Operand::special(SpecialReg::Tid);
    auto var_at = [&](BlockRef b, int v, Operand i) {
        Operand idx = b.iadd(Operand::constI32(v * kNelr), i);
        return b.load(Type::F32, b.elemAddr(Operand::param(2), idx));
    };
    {
        // Own state seeds the three flux accumulators.
        init.out(lv_rho, var_at(init, 0, tid));
        init.out(lv_mx, var_at(init, 1, tid));
        init.out(lv_en, var_at(init, 4, tid));
        init.out(lv_acc_d, Operand::constF32(0.0f));
        init.out(lv_acc_m, Operand::constF32(0.0f));
        init.out(lv_acc_e, Operand::constF32(0.0f));
        init.out(lv_j, Operand::constI32(0));
        init.jump(head);
    }
    {
        head.branch(head.ilt(head.in(lv_j),
                             Operand::constI32(kNeighbors)),
                    body, writeback);
    }
    {
        // nb = elements_surrounding[tid + j*nelr], w = normals[...]
        Operand off = body.iadd(
            body.imul(body.in(lv_j), Operand::constI32(kNelr)), tid);
        Operand nb = body.load(Type::I32,
                               body.elemAddr(Operand::param(0), off));
        Operand wgt = body.load(Type::F32,
                                body.elemAddr(Operand::param(1), off));
        body.out(lv_nb, nb);
        body.out(lv_w, wgt);
        body.branch(body.ige(nb, Operand::constI32(0)), interior, btest);
    }
    {
        // Interior: upwinded differences for density, momentum and
        // energy, plus a pressure-like coupling term (a simplified
        // analogue of Rodinia's compute_flux_contribution).
        BlockRef b = interior;
        Operand w = b.in(lv_w);
        Operand rho_nb = var_at(b, 0, b.in(lv_nb));
        Operand mx_nb = var_at(b, 1, b.in(lv_nb));
        Operand en_nb = var_at(b, 4, b.in(lv_nb));
        Operand d_d = b.fsub(rho_nb, b.in(lv_rho));
        Operand d_m = b.fsub(mx_nb, b.in(lv_mx));
        Operand d_e = b.fsub(en_nb, b.in(lv_en));
        // pressure-like coupling: p ~ 0.4 * (e - 0.5*m^2/rho)
        Operand m2 = b.fmul(mx_nb, mx_nb);
        Operand ke = b.fmul(Operand::constF32(0.5f),
                            b.fdiv(m2, rho_nb));
        Operand pnb = b.fmul(Operand::constF32(kGamma - 1.0f),
                             b.fsub(en_nb, ke));
        b.out(lv_acc_d, b.fadd(b.in(lv_acc_d), b.fmul(w, d_d)));
        b.out(lv_acc_m,
              b.fadd(b.in(lv_acc_m),
                     b.fadd(b.fmul(w, d_m), b.fmul(w, pnb))));
        b.out(lv_acc_e, b.fadd(b.in(lv_acc_e), b.fmul(w, d_e)));
        b.jump(inc);
    }
    {
        btest.branch(btest.ieq(btest.in(lv_nb), Operand::constI32(-1)),
                     wall, farfield);
    }
    {
        // Wall: reflective boundary — momentum flips, density and
        // energy see a mirrored state.
        BlockRef b = wall;
        Operand w = b.in(lv_w);
        b.out(lv_acc_d,
              b.fadd(b.in(lv_acc_d),
                     b.fmul(b.fmul(Operand::constF32(-2.0f), w),
                            b.in(lv_rho))));
        b.out(lv_acc_m,
              b.fadd(b.in(lv_acc_m),
                     b.fmul(b.fmul(Operand::constF32(-2.0f), w),
                            b.in(lv_mx))));
        b.jump(inc);
    }
    {
        // Far field: free-stream differences against ff_variable.
        BlockRef b = farfield;
        Operand w = b.in(lv_w);
        auto ff = [&](int v) {
            return b.load(Type::F32,
                          b.elemAddr(Operand::param(4),
                                     Operand::constI32(v)));
        };
        b.out(lv_acc_d,
              b.fadd(b.in(lv_acc_d),
                     b.fmul(w, b.fsub(ff(0), b.in(lv_rho)))));
        b.out(lv_acc_m,
              b.fadd(b.in(lv_acc_m),
                     b.fmul(w, b.fsub(ff(1), b.in(lv_mx)))));
        b.out(lv_acc_e,
              b.fadd(b.in(lv_acc_e),
                     b.fmul(w, b.fsub(ff(4), b.in(lv_en)))));
        b.jump(inc);
    }
    {
        inc.out(lv_j, inc.iadd(inc.in(lv_j), Operand::constI32(1)));
        inc.jump(head);
    }
    {
        BlockRef b = writeback;
        auto store_flux = [&](int v, uint16_t lv) {
            Operand idx = b.iadd(Operand::constI32(v * kNelr), tid);
            b.store(Type::F32, b.elemAddr(Operand::param(3), idx),
                    b.in(lv));
        };
        store_flux(0, lv_acc_d);
        store_flux(1, lv_acc_m);
        store_flux(4, lv_acc_e);
        b.exit();
    }
    return kb.finish();
}

struct CfdArrays
{
    MemoryImage mem{16u << 20};
    uint32_t variables, old_variables, fluxes, step_factor, areas,
        ff_variable, surrounding, normals;
};

CfdArrays
layoutCfd(Rng &rng)
{
    CfdArrays a;
    a.variables = a.mem.allocWords(kVars * kNelr);
    a.old_variables = a.mem.allocWords(kVars * kNelr);
    a.fluxes = a.mem.allocWords(kVars * kNelr);
    a.step_factor = a.mem.allocWords(kNelr);
    a.areas = a.mem.allocWords(kNelr);
    a.ff_variable = a.mem.allocWords(kVars);
    a.surrounding = a.mem.allocWords(kNeighbors * kNelr);
    a.normals = a.mem.allocWords(kNeighbors * kNelr);

    // Density and energy stay O(1); momentum is kept small so the
    // derived pressure is always positive (no NaN sound speeds).
    fillF32(a.mem, a.variables, kNelr, rng, 0.8f, 2.0f);
    fillF32(a.mem, a.variables + 4 * kNelr, 3 * kNelr, rng, 0.05f, 0.3f);
    fillF32(a.mem, a.variables + 16 * kNelr, kNelr, rng, 1.5f, 3.0f);
    fillF32(a.mem, a.old_variables, kVars * kNelr, rng, 0.8f, 2.0f);
    fillF32(a.mem, a.fluxes, kVars * kNelr, rng, -0.5f, 0.5f);
    fillF32(a.mem, a.step_factor, kNelr, rng, 0.001f, 0.01f);
    fillF32(a.mem, a.areas, kNelr, rng, 0.5f, 2.0f);
    for (int v = 0; v < kVars; ++v)
        a.mem.storeF32(a.ff_variable, uint32_t(v), 1.0f + 0.1f * float(v));
    // Neighbours: mostly interior, ~10% wall, ~10% far field.
    for (int i = 0; i < kNeighbors * kNelr; ++i) {
        const uint32_t r = rng.nextUInt(10);
        int32_t nb;
        if (r < 8)
            nb = int32_t(rng.nextUInt(kNelr));
        else if (r == 8)
            nb = -1;
        else
            nb = -2;
        a.mem.storeI32(a.surrounding, uint32_t(i), nb);
    }
    fillF32(a.mem, a.normals, kNeighbors * kNelr, rng, -1.0f, 1.0f);
    return a;
}

LaunchParams
cfdLaunch(std::vector<Scalar> params)
{
    LaunchParams lp;
    lp.numCtas = kNelr / kCtaSize;
    lp.ctaSize = kCtaSize;
    lp.params = std::move(params);
    return lp;
}

} // namespace

WorkloadInstance
makeCfdInitializeVariables()
{
    Rng rng(49);
    CfdArrays a = layoutCfd(rng);
    WorkloadInstance w;
    w.suite = "CFD";
    w.domain = "Fluid Dynamics";
    w.kernel = buildInitializeVariables();
    w.memory = a.mem;
    w.launch = cfdLaunch({Scalar::fromU32(a.variables),
                          Scalar::fromU32(a.ff_variable)});
    MemoryImage init = a.mem;
    w.check = [a, init](const MemoryImage &mem, std::string &err) {
        std::vector<float> expect(size_t(kVars) * kNelr);
        for (int v = 0; v < kVars; ++v)
            for (int i = 0; i < kNelr; ++i)
                expect[size_t(varIdx(v, i))] =
                    init.loadF32(a.ff_variable, uint32_t(v));
        return checkF32(mem, a.variables, expect, 0.0f, err);
    };
    return w;
}

WorkloadInstance
makeCfdComputeStepFactor()
{
    Rng rng(50);
    CfdArrays a = layoutCfd(rng);
    WorkloadInstance w;
    w.suite = "CFD";
    w.domain = "Fluid Dynamics";
    w.kernel = buildComputeStepFactor();
    w.memory = a.mem;
    w.launch = cfdLaunch({Scalar::fromU32(a.variables),
                          Scalar::fromU32(a.areas),
                          Scalar::fromU32(a.step_factor)});
    MemoryImage init = a.mem;
    w.check = [a, init](const MemoryImage &mem, std::string &err) {
        std::vector<float> expect(kNelr);
        for (int i = 0; i < kNelr; ++i) {
            const float density = init.loadF32(a.variables, varIdx(0, i));
            const float mx = init.loadF32(a.variables, varIdx(1, i));
            const float my = init.loadF32(a.variables, varIdx(2, i));
            const float mz = init.loadF32(a.variables, varIdx(3, i));
            const float energy = init.loadF32(a.variables, varIdx(4, i));
            const float m2 = mx * mx + my * my + mz * mz;
            const float speed_sqd = m2 / (density * density);
            const float pressure =
                (kGamma - 1.0f) *
                (energy - 0.5f * (density * speed_sqd));
            const float c =
                std::sqrt(kGamma * pressure / density);
            const float area = init.loadF32(a.areas, uint32_t(i));
            expect[size_t(i)] =
                0.5f /
                (std::sqrt(area) * (std::sqrt(speed_sqd) + c));
        }
        return checkF32(mem, a.step_factor, expect, 1e-4f, err);
    };
    return w;
}

WorkloadInstance
makeCfdTimeStep()
{
    Rng rng(51);
    CfdArrays a = layoutCfd(rng);
    WorkloadInstance w;
    w.suite = "CFD";
    w.domain = "Fluid Dynamics";
    w.kernel = buildTimeStep();
    w.memory = a.mem;
    w.launch = cfdLaunch(
        {Scalar::fromU32(a.variables), Scalar::fromU32(a.old_variables),
         Scalar::fromU32(a.fluxes), Scalar::fromU32(a.step_factor)});
    MemoryImage init = a.mem;
    w.check = [a, init](const MemoryImage &mem, std::string &err) {
        std::vector<float> expect(size_t(kVars) * kNelr);
        for (int i = 0; i < kNelr; ++i) {
            const float f = init.loadF32(a.step_factor, uint32_t(i));
            for (int v = 0; v < kVars; ++v) {
                expect[size_t(varIdx(v, i))] =
                    init.loadF32(a.old_variables, varIdx(v, i)) +
                    f * init.loadF32(a.fluxes, varIdx(v, i));
            }
        }
        return checkF32(mem, a.variables, expect, 1e-5f, err);
    };
    return w;
}

WorkloadInstance
makeCfdComputeFlux()
{
    Rng rng(52);
    CfdArrays a = layoutCfd(rng);
    WorkloadInstance w;
    w.suite = "CFD";
    w.domain = "Fluid Dynamics";
    w.kernel = buildComputeFlux();
    w.memory = a.mem;
    w.launch = cfdLaunch(
        {Scalar::fromU32(a.surrounding), Scalar::fromU32(a.normals),
         Scalar::fromU32(a.variables), Scalar::fromU32(a.fluxes),
         Scalar::fromU32(a.ff_variable)});
    MemoryImage init = a.mem;
    w.check = [a, init](const MemoryImage &mem, std::string &err) {
        std::vector<float> ed(kNelr), em(kNelr), ee(kNelr);
        const float ff_d = init.loadF32(a.ff_variable, 0);
        const float ff_m = init.loadF32(a.ff_variable, 1);
        const float ff_e = init.loadF32(a.ff_variable, 4);
        auto var = [&](int v, int i) {
            return init.loadF32(a.variables, varIdx(v, i));
        };
        for (int i = 0; i < kNelr; ++i) {
            const float rho = var(0, i), mx = var(1, i), en = var(4, i);
            float acc_d = 0.0f, acc_m = 0.0f, acc_e = 0.0f;
            for (int j = 0; j < kNeighbors; ++j) {
                const int32_t nb = init.loadI32(
                    a.surrounding, uint32_t(j * kNelr + i));
                const float wv =
                    init.loadF32(a.normals, uint32_t(j * kNelr + i));
                if (nb >= 0) {
                    const float rho_nb = var(0, nb), mx_nb = var(1, nb),
                                en_nb = var(4, nb);
                    const float ke =
                        0.5f * ((mx_nb * mx_nb) / rho_nb);
                    const float pnb =
                        (kGamma - 1.0f) * (en_nb - ke);
                    acc_d = acc_d + wv * (rho_nb - rho);
                    acc_m = acc_m +
                            (wv * (mx_nb - mx) + wv * pnb);
                    acc_e = acc_e + wv * (en_nb - en);
                } else if (nb == -1) {
                    acc_d = acc_d + (-2.0f * wv) * rho;
                    acc_m = acc_m + (-2.0f * wv) * mx;
                } else {
                    acc_d = acc_d + wv * (ff_d - rho);
                    acc_m = acc_m + wv * (ff_m - mx);
                    acc_e = acc_e + wv * (ff_e - en);
                }
            }
            ed[size_t(i)] = acc_d;
            em[size_t(i)] = acc_m;
            ee[size_t(i)] = acc_e;
        }
        auto slice_ok = [&](int v, const std::vector<float> &e) {
            for (int i = 0; i < kNelr; ++i) {
                const float got = mem.loadF32(a.fluxes, varIdx(v, i));
                const float want = e[size_t(i)];
                const float mag = std::max(std::fabs(want), 1.0f);
                if (std::fabs(got - want) > 1e-4f * mag) {
                    err = "flux mismatch var " + std::to_string(v) +
                          " elem " + std::to_string(i);
                    return false;
                }
            }
            return true;
        };
        return slice_ok(0, ed) && slice_ok(1, em) && slice_ok(4, ee);
    };
    return w;
}

} // namespace vgiw::workloads
