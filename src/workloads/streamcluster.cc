/**
 * @file
 * SM — streamcluster `compute_cost` kernel (Table 2: Data Mining, 6
 * basic blocks): each thread computes the weighted distance from its
 * point to a candidate centre and conditionally reassigns the point —
 * the assignment branch diverges on data.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kPoints = 4096;
constexpr int kDims = 4;
constexpr int kCtaSize = 256;
constexpr int kCandidate = 17;  ///< index of the candidate centre

Kernel
buildComputeCost()
{
    // Params: 0 = coords (dim-major), 1 = weights, 2 = costs,
    //         3 = assignments, 4 = n, 5 = candidate centre index.
    KernelBuilder kb("compute_cost", 6);
    const uint16_t lv_cost = kb.newLiveValue();
    const uint16_t lv_acc = kb.newLiveValue();
    const uint16_t lv_d = kb.newLiveValue();

    BlockRef guard = kb.block("guard");
    BlockRef dhead = kb.block("dim_head");
    BlockRef dbody = kb.block("dim_body");
    BlockRef weigh = kb.block("weigh");
    BlockRef cmp = kb.block("compare");
    BlockRef assign = kb.block("assign");
    BlockRef join = kb.block("join");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.out(lv_acc, Operand::constF32(0.0f));
    guard.out(lv_d, Operand::constI32(0));
    guard.branch(guard.ilt(tid, Operand::param(4)), dhead, done);

    // Squared distance to the candidate centre, dim loop (dim-major
    // layout, as in the Rodinia kernel).
    dhead.branch(dhead.ilt(dhead.in(lv_d), Operand::constI32(kDims)),
                 dbody, weigh);
    {
        Operand drow = dbody.imul(dbody.in(lv_d), Operand::param(4));
        Operand pv = dbody.load(
            Type::F32,
            dbody.elemAddr(Operand::param(0), dbody.iadd(drow, tid)));
        Operand cv = dbody.load(
            Type::F32, dbody.elemAddr(Operand::param(0),
                                      dbody.iadd(drow, Operand::param(5))));
        Operand diff = dbody.fsub(pv, cv);
        dbody.out(lv_acc, dbody.fadd(dbody.in(lv_acc),
                                     dbody.fmul(diff, diff)));
        dbody.out(lv_d, dbody.iadd(dbody.in(lv_d), Operand::constI32(1)));
        dbody.jump(dhead);
    }
    {
        Operand wv = weigh.load(Type::F32,
                                weigh.elemAddr(Operand::param(1), tid));
        weigh.out(lv_cost, weigh.fmul(weigh.in(lv_acc), wv));
        weigh.jump(cmp);
    }
    {
        Operand cur = cmp.load(Type::F32,
                               cmp.elemAddr(Operand::param(2), tid));
        cmp.branch(cmp.flt(cmp.in(lv_cost), cur), assign, join);
    }
    {
        assign.store(Type::F32, assign.elemAddr(Operand::param(2), tid),
                     assign.in(lv_cost));
        assign.store(Type::I32, assign.elemAddr(Operand::param(3), tid),
                     Operand::param(5));
        assign.jump(join);
    }
    join.exit();
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeSmComputeCost()
{
    WorkloadInstance w;
    w.suite = "SM";
    w.domain = "Data Mining";
    w.kernel = buildComputeCost();
    w.memory = MemoryImage(8u << 20);

    Rng rng(47);
    const uint32_t coords = w.memory.allocWords(kPoints * kDims);
    const uint32_t weights = w.memory.allocWords(kPoints);
    const uint32_t costs = w.memory.allocWords(kPoints);
    const uint32_t assign = w.memory.allocWords(kPoints);
    fillF32(w.memory, coords, kPoints * kDims, rng, 0.0f, 10.0f);
    fillF32(w.memory, weights, kPoints, rng, 0.5f, 2.0f);
    fillF32(w.memory, costs, kPoints, rng, 10.0f, 120.0f);
    fillI32(w.memory, assign, kPoints, rng, 0, 15);

    w.launch.numCtas = kPoints / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(coords), Scalar::fromU32(weights),
                       Scalar::fromU32(costs), Scalar::fromU32(assign),
                       Scalar::fromI32(kPoints),
                       Scalar::fromI32(kCandidate)};

    MemoryImage init = w.memory;
    w.check = [init, coords, weights, costs, assign](
                  const MemoryImage &mem, std::string &err) {
        std::vector<float> ecost(kPoints);
        std::vector<int32_t> eassign(kPoints);
        for (int i = 0; i < kPoints; ++i) {
            float acc = 0.0f;
            for (int d = 0; d < kDims; ++d) {
                const float pv =
                    init.loadF32(coords, uint32_t(d * kPoints + i));
                const float cv = init.loadF32(
                    coords, uint32_t(d * kPoints + kCandidate));
                const float diff = pv - cv;
                acc = acc + diff * diff;
            }
            const float cost = acc * init.loadF32(weights, uint32_t(i));
            const float cur = init.loadF32(costs, uint32_t(i));
            if (cost < cur) {
                ecost[size_t(i)] = cost;
                eassign[size_t(i)] = kCandidate;
            } else {
                ecost[size_t(i)] = cur;
                eassign[size_t(i)] = init.loadI32(assign, uint32_t(i));
            }
        }
        return checkF32(mem, costs, ecost, 1e-5f, err) &&
               checkI32(mem, assign, eassign, err);
    };
    return w;
}

} // namespace vgiw::workloads
