/**
 * @file
 * Workload abstraction: a kernel hand-lowered into the VGIW IR, a launch
 * configuration, a pre-initialised memory image, and a golden check that
 * validates the functional execution against a native C++ reference —
 * the role the as-is Rodinia CUDA kernels play in the paper (Table 2).
 */

#ifndef VGIW_WORKLOADS_WORKLOAD_HH
#define VGIW_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "interp/memory_image.hh"
#include "ir/kernel.hh"

namespace vgiw
{

/** One benchmark kernel instance, ready to run. */
struct WorkloadInstance
{
    std::string suite;   ///< e.g. "BFS" (Table 2's Application column)
    std::string domain;  ///< e.g. "Graph Algorithms"
    Kernel kernel;
    LaunchParams launch;
    MemoryImage memory;  ///< inputs laid out and initialised

    /**
     * Validates the post-run memory against a natively computed
     * reference. Returns true on success; on failure fills @p error.
     */
    std::function<bool(const MemoryImage &, std::string &error)> check;

    std::string
    fullName() const
    {
        return suite + "/" + kernel.name;
    }
};

/** A named workload constructor. */
struct WorkloadEntry
{
    std::string name;  ///< suite/kernel
    std::function<WorkloadInstance()> make;
};

/** All benchmark kernels of the evaluation (Table 2). */
const std::vector<WorkloadEntry> &workloadRegistry();

/** Look up one workload by its suite/kernel name; fatal if unknown. */
WorkloadInstance makeWorkload(const std::string &name);

} // namespace vgiw

#endif // VGIW_WORKLOADS_WORKLOAD_HH
