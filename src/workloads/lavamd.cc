/**
 * @file
 * LAVAMD — molecular dynamics kernel (Table 2: Molecular Dynamics,
 * kernel_gpu_cuda). Particles live in boxes; one CTA per home box, one
 * thread per particle. Each thread loops over the home box's neighbour
 * list and over every particle in each neighbour box, accumulating an
 * exp()-weighted pairwise interaction — a doubly nested loop with heavy
 * SCU (exp) use.
 */

#include "workloads/workloads.hh"

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kBoxes = 32;
constexpr int kPerBox = 32;
constexpr int kNeighbors = 3;  ///< neighbour boxes per home box (incl. self)
constexpr float kA2 = 0.5f;

Kernel
buildLavamd()
{
    // Params: 0 = x, 1 = y, 2 = q (charge), 3 = neighbour list
    //         (kBoxes x kNeighbors), 4 = force out, 5 = potential out.
    KernelBuilder kb("kernel_gpu_cuda", 6);
    const uint16_t lv_nn = kb.newLiveValue();
    const uint16_t lv_k = kb.newLiveValue();
    const uint16_t lv_box = kb.newLiveValue();
    const uint16_t lv_xi = kb.newLiveValue();
    const uint16_t lv_yi = kb.newLiveValue();
    const uint16_t lv_f = kb.newLiveValue();
    const uint16_t lv_v = kb.newLiveValue();

    BlockRef init = kb.block("init");
    BlockRef nhead = kb.block("nbox_head");
    BlockRef nbody = kb.block("nbox_body");
    BlockRef khead = kb.block("k_head");
    BlockRef kbody = kb.block("k_body");
    BlockRef ninc = kb.block("nbox_inc");
    BlockRef wb = kb.block("writeback");

    Operand tid = Operand::special(SpecialReg::Tid);
    Operand cta = Operand::special(SpecialReg::CtaId);

    {
        init.out(lv_xi, init.load(Type::F32,
                                  init.elemAddr(Operand::param(0), tid)));
        init.out(lv_yi, init.load(Type::F32,
                                  init.elemAddr(Operand::param(1), tid)));
        init.out(lv_f, Operand::constF32(0.0f));
        init.out(lv_v, Operand::constF32(0.0f));
        init.out(lv_nn, Operand::constI32(0));
        init.jump(nhead);
    }
    nhead.branch(nhead.ilt(nhead.in(lv_nn),
                           Operand::constI32(kNeighbors)),
                 nbody, wb);
    {
        // box = neighbour_list[cta * kNeighbors + nn]
        Operand idx = nbody.iadd(
            nbody.imul(cta, Operand::constI32(kNeighbors)),
            nbody.in(lv_nn));
        Operand box = nbody.load(Type::I32,
                                 nbody.elemAddr(Operand::param(3), idx));
        nbody.out(lv_box, nbody.imul(box, Operand::constI32(kPerBox)));
        nbody.out(lv_k, Operand::constI32(0));
        nbody.jump(khead);
    }
    khead.branch(khead.ilt(khead.in(lv_k), Operand::constI32(kPerBox)),
                 kbody, ninc);
    {
        BlockRef b = kbody;
        Operand other = b.iadd(b.in(lv_box), b.in(lv_k));
        Operand xk = b.load(Type::F32,
                            b.elemAddr(Operand::param(0), other));
        Operand yk = b.load(Type::F32,
                            b.elemAddr(Operand::param(1), other));
        Operand qk = b.load(Type::F32,
                            b.elemAddr(Operand::param(2), other));
        Operand dx = b.fsub(b.in(lv_xi), xk);
        Operand dy = b.fsub(b.in(lv_yi), yk);
        Operand r2 = b.fadd(b.fmul(dx, dx), b.fmul(dy, dy));
        Operand u2 = b.fmul(Operand::constF32(kA2), r2);
        Operand vij = b.fexp(b.fneg(u2));
        Operand fs = b.fmul(Operand::constF32(2.0f), vij);
        b.out(lv_v, b.fadd(b.in(lv_v), b.fmul(qk, vij)));
        b.out(lv_f, b.fadd(b.in(lv_f), b.fmul(fs, dx)));
        b.out(lv_k, b.iadd(b.in(lv_k), Operand::constI32(1)));
        b.jump(khead);
    }
    ninc.out(lv_nn, ninc.iadd(ninc.in(lv_nn), Operand::constI32(1)));
    ninc.jump(nhead);
    {
        wb.store(Type::F32, wb.elemAddr(Operand::param(4), tid),
                 wb.in(lv_f));
        wb.store(Type::F32, wb.elemAddr(Operand::param(5), tid),
                 wb.in(lv_v));
        wb.exit();
    }
    return kb.finish();
}

} // namespace

WorkloadInstance
makeLavamdKernel()
{
    WorkloadInstance w;
    w.suite = "LAVAMD";
    w.domain = "Molecular Dynamics";
    w.kernel = buildLavamd();
    w.memory = MemoryImage(1u << 20);

    constexpr int kParticles = kBoxes * kPerBox;
    Rng rng(56);
    const uint32_t x = w.memory.allocWords(kParticles);
    const uint32_t y = w.memory.allocWords(kParticles);
    const uint32_t q = w.memory.allocWords(kParticles);
    const uint32_t nlist = w.memory.allocWords(kBoxes * kNeighbors);
    const uint32_t force = w.memory.allocWords(kParticles);
    const uint32_t pot = w.memory.allocWords(kParticles);
    fillF32(w.memory, x, kParticles, rng, 0.0f, 4.0f);
    fillF32(w.memory, y, kParticles, rng, 0.0f, 4.0f);
    fillF32(w.memory, q, kParticles, rng, -1.0f, 1.0f);
    // Neighbour list: self plus the two ring neighbours.
    for (int b = 0; b < kBoxes; ++b) {
        w.memory.storeI32(nlist, uint32_t(b * kNeighbors + 0), b);
        w.memory.storeI32(nlist, uint32_t(b * kNeighbors + 1),
                          (b + 1) % kBoxes);
        w.memory.storeI32(nlist, uint32_t(b * kNeighbors + 2),
                          (b + kBoxes - 1) % kBoxes);
    }

    w.launch.numCtas = kBoxes;
    w.launch.ctaSize = kPerBox;
    w.launch.params = {Scalar::fromU32(x), Scalar::fromU32(y),
                       Scalar::fromU32(q), Scalar::fromU32(nlist),
                       Scalar::fromU32(force), Scalar::fromU32(pot)};

    MemoryImage init = w.memory;
    w.check = [init, x, y, q, nlist, force, pot](const MemoryImage &mem,
                                                 std::string &err) {
        std::vector<float> ef(kParticles), ev(kParticles);
        for (int box = 0; box < kBoxes; ++box) {
            for (int p = 0; p < kPerBox; ++p) {
                const int i = box * kPerBox + p;
                const float xi = init.loadF32(x, uint32_t(i));
                const float yi = init.loadF32(y, uint32_t(i));
                float f = 0.0f, v = 0.0f;
                for (int nn = 0; nn < kNeighbors; ++nn) {
                    const int nb = init.loadI32(
                        nlist, uint32_t(box * kNeighbors + nn));
                    for (int k = 0; k < kPerBox; ++k) {
                        const int o = nb * kPerBox + k;
                        const float dx = xi - init.loadF32(x, uint32_t(o));
                        const float dy = yi - init.loadF32(y, uint32_t(o));
                        const float r2 = dx * dx + dy * dy;
                        const float vij = std::exp(-(kA2 * r2));
                        const float fs = 2.0f * vij;
                        v = v + init.loadF32(q, uint32_t(o)) * vij;
                        f = f + fs * dx;
                    }
                }
                ef[size_t(i)] = f;
                ev[size_t(i)] = v;
            }
        }
        return checkF32(mem, force, ef, 1e-4f, err) &&
               checkF32(mem, pot, ev, 1e-4f, err);
    };
    return w;
}

} // namespace vgiw::workloads
