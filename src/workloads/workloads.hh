/**
 * @file
 * Constructors for every benchmark kernel of the evaluation (Table 2).
 * Each returns a ready-to-run WorkloadInstance; the registry in
 * workload.cc stitches them into the suite.
 */

#ifndef VGIW_WORKLOADS_WORKLOADS_HH
#define VGIW_WORKLOADS_WORKLOADS_HH

#include "workloads/workload.hh"

namespace vgiw::workloads
{

// BFS — Graph Algorithms: breadth-first search.
WorkloadInstance makeBfsKernel();
WorkloadInstance makeBfsKernel2();

// KMEANS — Data Mining: clustering.
WorkloadInstance makeKmeansInvertMapping();

// CFD — Fluid Dynamics: computational fluid dynamics solver.
WorkloadInstance makeCfdInitializeVariables();
WorkloadInstance makeCfdComputeStepFactor();
WorkloadInstance makeCfdTimeStep();
WorkloadInstance makeCfdComputeFlux();

// LUD — Linear Algebra: matrix decomposition.
WorkloadInstance makeLudInternal();
WorkloadInstance makeLudDiagonal();
WorkloadInstance makeLudPerimeter();

// GE — Linear Algebra: Gaussian elimination.
WorkloadInstance makeGeFan1();
WorkloadInstance makeGeFan2();

// HOTSPOT — Physics Simulation: thermal simulation.
WorkloadInstance makeHotspotKernel();

// LAVAMD — Molecular Dynamics: particle positions.
WorkloadInstance makeLavamdKernel();

// NN — Data Mining: k-nearest neighbours.
WorkloadInstance makeNnEuclid();

// PF — Medical Imaging: particle filter.
WorkloadInstance makePfNormalizeWeights();

// BPNN — Pattern Recognition: neural network training.
WorkloadInstance makeBpnnAdjustWeights();
WorkloadInstance makeBpnnLayerForward();

// NW — Bioinformatics: sequence alignment.
WorkloadInstance makeNwShared1();
WorkloadInstance makeNwShared2();

// SM — Data Mining: streamcluster.
WorkloadInstance makeSmComputeCost();

} // namespace vgiw::workloads

#endif // VGIW_WORKLOADS_WORKLOADS_HH
