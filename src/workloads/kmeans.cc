/**
 * @file
 * KMEANS — `invert_mapping` kernel (Table 2: Data Mining, 3 basic
 * blocks): converts the point array from point-major to feature-major
 * layout. Pure data movement — a memory-bound kernel where VGIW's lack
 * of memory coalescing shows (Section 5's discussion).
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kPoints = 4096;
constexpr int kFeatures = 4;
constexpr int kCtaSize = 256;

Kernel
buildInvertMapping()
{
    // Params: 0 = input (point-major), 1 = output (feature-major),
    //         2 = npoints.
    KernelBuilder kb("invert_mapping", 3);
    BlockRef guard = kb.block("guard");
    BlockRef body = kb.block("body");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(2)), body, done);

    // The feature loop is unrolled (kFeatures is a compile-time
    // constant in Rodinia too), keeping the kernel at 3 blocks.
    Operand in_base = body.imul(tid, Operand::constI32(kFeatures));
    for (int f = 0; f < kFeatures; ++f) {
        Operand src = body.iadd(in_base, Operand::constI32(f));
        Operand v = body.load(Type::F32,
                              body.elemAddr(Operand::param(0), src));
        Operand dst = body.iadd(
            body.imul(Operand::constI32(f), Operand::param(2)), tid);
        body.store(Type::F32, body.elemAddr(Operand::param(1), dst), v);
    }
    body.exit();
    done.exit();
    return kb.finish();
}

} // namespace

WorkloadInstance
makeKmeansInvertMapping()
{
    WorkloadInstance w;
    w.suite = "KMEANS";
    w.domain = "Data Mining";
    w.kernel = buildInvertMapping();
    w.memory = MemoryImage(8u << 20);

    Rng rng(43);
    const uint32_t in = w.memory.allocWords(kPoints * kFeatures);
    const uint32_t out = w.memory.allocWords(kPoints * kFeatures);
    fillF32(w.memory, in, kPoints * kFeatures, rng, 0.0f, 100.0f);

    w.launch.numCtas = kPoints / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(in), Scalar::fromU32(out),
                       Scalar::fromI32(kPoints)};

    MemoryImage init = w.memory;
    w.check = [init, in, out](const MemoryImage &mem, std::string &err) {
        std::vector<float> expect(kPoints * kFeatures);
        for (int p = 0; p < kPoints; ++p) {
            for (int f = 0; f < kFeatures; ++f) {
                expect[size_t(f) * kPoints + size_t(p)] =
                    init.loadF32(in, uint32_t(p * kFeatures + f));
            }
        }
        return checkF32(mem, out, expect, 0.0f, err);
    };
    return w;
}

} // namespace vgiw::workloads
