/**
 * @file
 * BFS — breadth-first search, Kernel (8 basic blocks) and Kernel2 (3
 * basic blocks) from Table 2 (Graph Algorithms). Kernel expands the
 * frontier: every masked node walks its CSR edge list and relaxes
 * unvisited neighbours; Kernel2 commits the updating mask. The frontier
 * test and the per-node degree variation make this the classic
 * control-divergent workload.
 *
 * The generated graph is a layered tree (plus back edges to visited
 * nodes), so each relaxed neighbour has exactly one frontier parent and
 * the kernel is free of write-write races.
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "ir/builder.hh"
#include "workloads/workload_util.hh"

namespace vgiw::workloads
{

namespace
{

constexpr int kNodes = 2048;
constexpr int kCtaSize = 256;

/** CSR graph plus BFS state arrays. */
struct BfsSetup
{
    std::vector<int32_t> starts;   // kNodes + 1
    std::vector<int32_t> edges;
    std::vector<int32_t> mask;     // frontier
    std::vector<int32_t> updating;
    std::vector<int32_t> visited;
    std::vector<int32_t> cost;
};

/**
 * Build a layered graph: level 0 is node 0 (visited), level 1 is the
 * current frontier, level 2 is unvisited. Frontier nodes have 1..6
 * children in level 2 (each child exactly one parent) plus back edges to
 * visited nodes that the kernel's `visited` test skips.
 */
BfsSetup
buildGraph(Rng &rng)
{
    BfsSetup s;
    const int level1 = kNodes / 8;
    const int level2_base = 1 + level1;

    s.mask.assign(kNodes, 0);
    s.updating.assign(kNodes, 0);
    s.visited.assign(kNodes, 0);
    s.cost.assign(kNodes, -1);
    s.visited[0] = 1;
    s.cost[0] = 0;
    for (int i = 1; i <= level1; ++i) {
        s.mask[size_t(i)] = 1;
        s.visited[size_t(i)] = 1;
        s.cost[size_t(i)] = 1;
    }

    s.starts.push_back(0);
    int next_child = level2_base;
    for (int n = 0; n < kNodes; ++n) {
        if (n >= 1 && n <= level1) {
            const int degree = 1 + int(rng.nextUInt(6));
            for (int d = 0; d < degree && next_child < kNodes; ++d)
                s.edges.push_back(next_child++);
            // Back edge to the source: skipped by the visited test.
            s.edges.push_back(0);
        } else if (n == 0) {
            for (int i = 1; i <= level1; ++i)
                s.edges.push_back(i);
        }
        s.starts.push_back(int32_t(s.edges.size()));
    }
    return s;
}

Kernel
buildKernel1()
{
    // Params: 0 starts, 1 edges, 2 mask, 3 updating, 4 visited,
    //         5 cost, 6 n.
    KernelBuilder kb("Kernel", 7);
    const uint16_t lv_i = kb.newLiveValue();
    const uint16_t lv_end = kb.newLiveValue();
    const uint16_t lv_cost1 = kb.newLiveValue();
    const uint16_t lv_nb = kb.newLiveValue();

    BlockRef guard = kb.block("guard_n");
    BlockRef mtest = kb.block("mask_test");
    BlockRef init = kb.block("init");
    BlockRef head = kb.block("edge_loop_head");
    BlockRef body = kb.block("edge_body");
    BlockRef relax = kb.block("relax");
    BlockRef inc = kb.block("edge_inc");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(6)), mtest, done);

    {
        Operand m = mtest.load(Type::I32,
                               mtest.elemAddr(Operand::param(2), tid));
        mtest.branch(m, init, done);
    }
    {
        // mask[tid] = 0; i = starts[tid]; end = starts[tid+1];
        // my_cost_plus_1 = cost[tid] + 1
        init.store(Type::I32, init.elemAddr(Operand::param(2), tid),
                   Operand::constI32(0));
        Operand st = init.load(Type::I32,
                               init.elemAddr(Operand::param(0), tid));
        Operand en = init.load(
            Type::I32,
            init.elemAddr(Operand::param(0),
                          init.iadd(tid, Operand::constI32(1))));
        Operand c = init.load(Type::I32,
                              init.elemAddr(Operand::param(5), tid));
        init.out(lv_i, st);
        init.out(lv_end, en);
        init.out(lv_cost1, init.iadd(c, Operand::constI32(1)));
        init.jump(head);
    }
    {
        head.branch(head.ilt(head.in(lv_i), head.in(lv_end)), body, done);
    }
    {
        // nb = edges[i]; if (!visited[nb]) relax
        Operand nb = body.load(
            Type::I32, body.elemAddr(Operand::param(1), body.in(lv_i)));
        body.out(lv_nb, nb);
        Operand vis = body.load(Type::I32,
                                body.elemAddr(Operand::param(4), nb));
        body.branch(body.ieq(vis, Operand::constI32(0)), relax, inc);
    }
    {
        // cost[nb] = my_cost + 1; updating[nb] = 1
        relax.store(Type::I32,
                    relax.elemAddr(Operand::param(5), relax.in(lv_nb)),
                    relax.in(lv_cost1));
        relax.store(Type::I32,
                    relax.elemAddr(Operand::param(3), relax.in(lv_nb)),
                    Operand::constI32(1));
        relax.jump(inc);
    }
    {
        inc.out(lv_i, inc.iadd(inc.in(lv_i), Operand::constI32(1)));
        inc.jump(head);
    }
    done.exit();
    return kb.finish();
}

Kernel
buildKernel2()
{
    // Params: 0 mask, 1 updating, 2 visited, 3 over flag, 4 n.
    KernelBuilder kb("Kernel2", 5);
    BlockRef guard = kb.block("guard");
    BlockRef utest = kb.block("updating_test");
    BlockRef commit = kb.block("commit");
    BlockRef done = kb.block("done");

    Operand tid = Operand::special(SpecialReg::Tid);
    guard.branch(guard.ilt(tid, Operand::param(4)), utest, done);
    {
        Operand u = utest.load(Type::I32,
                               utest.elemAddr(Operand::param(1), tid));
        utest.branch(u, commit, done);
    }
    {
        commit.store(Type::I32, commit.elemAddr(Operand::param(0), tid),
                     Operand::constI32(1));
        commit.store(Type::I32, commit.elemAddr(Operand::param(2), tid),
                     Operand::constI32(1));
        commit.store(Type::I32,
                     commit.elemAddr(Operand::param(3),
                                     Operand::constI32(0)),
                     Operand::constI32(1));
        commit.store(Type::I32, commit.elemAddr(Operand::param(1), tid),
                     Operand::constI32(0));
        commit.exit();
    }
    done.exit();
    return kb.finish();
}

/** Lay the BFS state out in a memory image. */
struct BfsImage
{
    MemoryImage mem{16u << 20};
    uint32_t starts, edges, mask, updating, visited, cost, over;
};

BfsImage
layout(const BfsSetup &s)
{
    BfsImage im;
    im.starts = im.mem.allocWords(uint32_t(s.starts.size()));
    im.edges = im.mem.allocWords(uint32_t(s.edges.size()));
    im.mask = im.mem.allocWords(kNodes);
    im.updating = im.mem.allocWords(kNodes);
    im.visited = im.mem.allocWords(kNodes);
    im.cost = im.mem.allocWords(kNodes);
    im.over = im.mem.allocWords(4);
    for (size_t i = 0; i < s.starts.size(); ++i)
        im.mem.storeI32(im.starts, uint32_t(i), s.starts[i]);
    for (size_t i = 0; i < s.edges.size(); ++i)
        im.mem.storeI32(im.edges, uint32_t(i), s.edges[i]);
    for (int i = 0; i < kNodes; ++i) {
        im.mem.storeI32(im.mask, uint32_t(i), s.mask[size_t(i)]);
        im.mem.storeI32(im.updating, uint32_t(i), s.updating[size_t(i)]);
        im.mem.storeI32(im.visited, uint32_t(i), s.visited[size_t(i)]);
        im.mem.storeI32(im.cost, uint32_t(i), s.cost[size_t(i)]);
    }
    return im;
}

/** Native reference of Kernel's frontier expansion. */
void
referenceKernel1(BfsSetup &s)
{
    for (int n = 0; n < kNodes; ++n) {
        if (!s.mask[size_t(n)])
            continue;
        s.mask[size_t(n)] = 0;
        for (int e = s.starts[size_t(n)]; e < s.starts[size_t(n) + 1];
             ++e) {
            const int nb = s.edges[size_t(e)];
            if (!s.visited[size_t(nb)]) {
                s.cost[size_t(nb)] = s.cost[size_t(n)] + 1;
                s.updating[size_t(nb)] = 1;
            }
        }
    }
}

} // namespace

WorkloadInstance
makeBfsKernel()
{
    Rng rng(48);
    BfsSetup s = buildGraph(rng);
    BfsImage im = layout(s);

    WorkloadInstance w;
    w.suite = "BFS";
    w.domain = "Graph Algorithms";
    w.kernel = buildKernel1();
    w.memory = im.mem;
    w.launch.numCtas = kNodes / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(im.starts), Scalar::fromU32(im.edges),
                       Scalar::fromU32(im.mask),
                       Scalar::fromU32(im.updating),
                       Scalar::fromU32(im.visited), Scalar::fromU32(im.cost),
                       Scalar::fromI32(kNodes)};

    w.check = [s, im](const MemoryImage &mem, std::string &err) mutable {
        referenceKernel1(s);
        return checkI32(mem, im.cost, s.cost, err) &&
               checkI32(mem, im.updating, s.updating, err) &&
               checkI32(mem, im.mask, s.mask, err);
    };
    return w;
}

WorkloadInstance
makeBfsKernel2()
{
    Rng rng(48);
    BfsSetup s = buildGraph(rng);
    referenceKernel1(s);  // Kernel2 runs on Kernel's output state
    BfsImage im = layout(s);

    WorkloadInstance w;
    w.suite = "BFS";
    w.domain = "Graph Algorithms";
    w.kernel = buildKernel2();
    w.memory = im.mem;
    w.launch.numCtas = kNodes / kCtaSize;
    w.launch.ctaSize = kCtaSize;
    w.launch.params = {Scalar::fromU32(im.mask),
                       Scalar::fromU32(im.updating),
                       Scalar::fromU32(im.visited),
                       Scalar::fromU32(im.over), Scalar::fromI32(kNodes)};

    w.check = [s, im](const MemoryImage &mem, std::string &err) {
        std::vector<int32_t> emask = s.mask, evis = s.visited,
                             eupd = s.updating;
        bool any = false;
        for (int i = 0; i < kNodes; ++i) {
            if (eupd[size_t(i)]) {
                emask[size_t(i)] = 1;
                evis[size_t(i)] = 1;
                eupd[size_t(i)] = 0;
                any = true;
            }
        }
        if (any && mem.loadI32(im.over, 0) != 1) {
            err = "over flag not set";
            return false;
        }
        return checkI32(mem, im.mask, emask, err) &&
               checkI32(mem, im.visited, evis, err) &&
               checkI32(mem, im.updating, eupd, err);
    };
    return w;
}

} // namespace vgiw::workloads
