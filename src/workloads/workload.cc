#include "workloads/workload.hh"

#include "cgrf/block_splitter.hh"
#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace vgiw
{

namespace
{

/**
 * Wrap a workload constructor with the compiler's oversized-block
 * splitting pass (Section 3.1's place-and-route flow): the kernel that
 * reaches the simulators is guaranteed to map onto the Table 1 grid.
 */
std::function<WorkloadInstance()>
compiled(WorkloadInstance (*make)())
{
    return [make]() {
        WorkloadInstance w = make();
        w.kernel = splitOversizedBlocks(std::move(w.kernel));
        return w;
    };
}

} // namespace

const std::vector<WorkloadEntry> &
workloadRegistry()
{
    using namespace workloads;
    static const std::vector<WorkloadEntry> registry = {
        {"BFS/Kernel", compiled(makeBfsKernel)},
        {"BFS/Kernel2", compiled(makeBfsKernel2)},
        {"KMEANS/invert_mapping", compiled(makeKmeansInvertMapping)},
        {"CFD/compute_step_factor", compiled(makeCfdComputeStepFactor)},
        {"CFD/initialize_variables", compiled(makeCfdInitializeVariables)},
        {"CFD/time_step", compiled(makeCfdTimeStep)},
        {"CFD/compute_flux", compiled(makeCfdComputeFlux)},
        {"LUD/lud_internal", compiled(makeLudInternal)},
        {"LUD/lud_diagonal", compiled(makeLudDiagonal)},
        {"LUD/lud_perimeter", compiled(makeLudPerimeter)},
        {"GE/Fan1", compiled(makeGeFan1)},
        {"GE/Fan2", compiled(makeGeFan2)},
        {"HOTSPOT/hotspot_kernel", compiled(makeHotspotKernel)},
        {"LAVAMD/kernel_gpu_cuda", compiled(makeLavamdKernel)},
        {"NN/euclid", compiled(makeNnEuclid)},
        {"PF/normalize_weights", compiled(makePfNormalizeWeights)},
        {"BPNN/adjust_weights", compiled(makeBpnnAdjustWeights)},
        {"BPNN/layerforward", compiled(makeBpnnLayerForward)},
        {"NW/needle_cuda_shared_1", compiled(makeNwShared1)},
        {"NW/needle_cuda_shared_2", compiled(makeNwShared2)},
        {"SM/compute_cost", compiled(makeSmComputeCost)},
    };
    return registry;
}

WorkloadInstance
makeWorkload(const std::string &name)
{
    for (const auto &e : workloadRegistry()) {
        if (e.name == name)
            return e.make();
    }
    vgiw_fatal("unknown workload '", name, "'");
}

} // namespace vgiw
