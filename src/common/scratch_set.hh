/**
 * @file
 * A reusable open-addressing set of 64-bit keys for replay hot loops.
 *
 * The VGIW coalescing ablation needs a per-block-vector "lines already
 * serviced" membership test. A std::unordered_set there allocates a node
 * per insert and is torn down per vector — millions of heap operations
 * per sweep. ScratchSet keeps one flat table alive for the whole replay:
 * clear() is O(1) (a generation bump), inserts are allocation-free until
 * the table grows, and growth is amortised across the entire run because
 * the table is never shrunk.
 */

#ifndef VGIW_COMMON_SCRATCH_SET_HH
#define VGIW_COMMON_SCRATCH_SET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vgiw
{

/** Reusable hash set of uint64_t keys with O(1) clear. */
class ScratchSet
{
  public:
    explicit ScratchSet(size_t expected = 64)
    {
        size_t cap = 16;
        while (cap < expected * 2)
            cap *= 2;
        keys_.resize(cap);
        stamps_.assign(cap, 0);
    }

    /** Insert @p key; true when it was not already present. */
    bool
    insert(uint64_t key)
    {
        if ((size_ + 1) * 10 > keys_.size() * 7)
            grow();
        size_t i = slotFor(key);
        while (stamps_[i] == gen_) {
            if (keys_[i] == key)
                return false;
            i = (i + 1) & (keys_.size() - 1);
        }
        keys_[i] = key;
        stamps_[i] = gen_;
        ++size_;
        return true;
    }

    bool
    contains(uint64_t key) const
    {
        size_t i = slotFor(key);
        while (stamps_[i] == gen_) {
            if (keys_[i] == key)
                return true;
            i = (i + 1) & (keys_.size() - 1);
        }
        return false;
    }

    /** Empty the set without releasing or touching the table. */
    void
    clear()
    {
        size_ = 0;
        if (++gen_ == 0) {
            // Generation counter wrapped: stale stamps could collide.
            stamps_.assign(stamps_.size(), 0);
            gen_ = 1;
        }
    }

    size_t size() const { return size_; }
    size_t capacity() const { return keys_.size(); }

  private:
    size_t
    slotFor(uint64_t key) const
    {
        // Fibonacci hashing: multiply spreads low-entropy line numbers
        // across the table; the mask needs the high bits mixed down.
        const uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return size_t(h >> 32) & (keys_.size() - 1);
    }

    void
    grow()
    {
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::vector<uint32_t> old_stamps = std::move(stamps_);
        keys_.assign(old_keys.size() * 2, 0);
        stamps_.assign(old_stamps.size() * 2, 0);
        const uint32_t live = gen_;
        gen_ = 1;
        size_ = 0;
        for (size_t i = 0; i < old_keys.size(); ++i)
            if (old_stamps[i] == live)
                insert(old_keys[i]);
    }

    std::vector<uint64_t> keys_;
    std::vector<uint32_t> stamps_;  ///< slot is live iff stamp == gen_
    uint32_t gen_ = 1;
    size_t size_ = 0;
};

} // namespace vgiw

#endif // VGIW_COMMON_SCRATCH_SET_HH
