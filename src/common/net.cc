#include "common/net.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace vgiw
{

namespace
{

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** getaddrinfo wrapper; caller owns the returned list. */
addrinfo *
resolve(const std::string &host, uint16_t port, bool passive,
        std::string *error)
{
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    char portStr[8];
    std::snprintf(portStr, sizeof portStr, "%u", unsigned(port));
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 portStr, &hints, &res);
    if (rc != 0) {
        if (error)
            *error = std::string("resolve '") + host +
                     "': " + ::gai_strerror(rc);
        return nullptr;
    }
    return res;
}

bool
setBlocking(int fd, bool blocking)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int next = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, next) == 0;
}

} // namespace

bool
parseHostPort(std::string_view spec, HostPort *out, std::string *error,
              bool allowEmptyHost)
{
    std::string_view host;
    std::string_view portPart;
    if (!spec.empty() && spec.front() == '[') {
        // [v6::literal]:port
        const size_t close = spec.find(']');
        if (close == std::string_view::npos || close + 1 >= spec.size() ||
            spec[close + 1] != ':') {
            if (error)
                *error = "malformed endpoint '" + std::string(spec) +
                         "' (expected [host]:port)";
            return false;
        }
        host = spec.substr(1, close - 1);
        portPart = spec.substr(close + 2);
    } else {
        const size_t colon = spec.rfind(':');
        if (colon == std::string_view::npos) {
            if (error)
                *error = "malformed endpoint '" + std::string(spec) +
                         "' (expected host:port)";
            return false;
        }
        host = spec.substr(0, colon);
        portPart = spec.substr(colon + 1);
    }
    if (host.empty() && !allowEmptyHost) {
        if (error)
            *error = "malformed endpoint '" + std::string(spec) +
                     "' (empty host)";
        return false;
    }
    if (portPart.empty()) {
        if (error)
            *error = "malformed endpoint '" + std::string(spec) +
                     "' (empty port)";
        return false;
    }
    unsigned long port = 0;
    for (char c : portPart) {
        if (c < '0' || c > '9') {
            if (error)
                *error = "malformed port in '" + std::string(spec) + "'";
            return false;
        }
        port = port * 10 + unsigned(c - '0');
        if (port > 65535) {
            if (error)
                *error = "port out of range in '" + std::string(spec) + "'";
            return false;
        }
    }
    out->host = std::string(host);
    out->port = uint16_t(port);
    return true;
}

int
listenTcp(const std::string &host, uint16_t port, uint16_t *boundPort,
          std::string *error)
{
    addrinfo *res = resolve(host, port, /*passive=*/true, error);
    if (!res)
        return -1;
    int fd = -1;
    std::string lastErr = "no usable address";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = errnoString("socket");
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 16) != 0) {
            lastErr = errnoString("bind/listen");
            ::close(fd);
            fd = -1;
            continue;
        }
        break;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        if (error)
            *error = lastErr;
        return -1;
    }
    if (boundPort) {
        sockaddr_storage ss = {};
        socklen_t slen = sizeof ss;
        *boundPort = port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss), &slen) ==
            0) {
            if (ss.ss_family == AF_INET)
                *boundPort = ntohs(
                    reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            else if (ss.ss_family == AF_INET6)
                *boundPort = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
        }
    }
    return fd;
}

int
acceptTcp(int listenFd, bool interruptible)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR && !interruptible)
            continue;
        return -1;
    }
}

int
connectTcp(const std::string &host, uint16_t port, uint64_t timeoutMs,
           std::string *error)
{
    addrinfo *res = resolve(host, port, /*passive=*/false, error);
    if (!res)
        return -1;
    std::string lastErr = "no usable address";
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = errnoString("socket");
            continue;
        }
        if (!setBlocking(fd, false)) {
            lastErr = errnoString("fcntl");
            ::close(fd);
            fd = -1;
            continue;
        }
        int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno == EINPROGRESS) {
            pollfd pfd = {fd, POLLOUT, 0};
            rc = ::poll(&pfd, 1, int(timeoutMs));
            if (rc == 0) {
                lastErr = "connect timed out";
                rc = -1;
            } else if (rc > 0) {
                int soErr = 0;
                socklen_t slen = sizeof soErr;
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &slen);
                if (soErr != 0) {
                    errno = soErr;
                    lastErr = errnoString("connect");
                    rc = -1;
                } else {
                    rc = 0;
                }
            } else {
                lastErr = errnoString("poll");
            }
        } else if (rc != 0) {
            lastErr = errnoString("connect");
        }
        if (rc != 0 || !setBlocking(fd, true)) {
            ::close(fd);
            fd = -1;
            continue;
        }
        // Small frames, request/response latencies matter more than
        // throughput: disable Nagle so heartbeats are not batched.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        break;
    }
    ::freeaddrinfo(res);
    if (fd < 0 && error)
        *error = lastErr;
    return fd;
}

bool
setSocketTimeouts(int fd, uint64_t recvMs, uint64_t sendMs)
{
    const auto toTv = [](uint64_t ms) {
        timeval tv = {};
        tv.tv_sec = time_t(ms / 1000);
        tv.tv_usec = suseconds_t((ms % 1000) * 1000);
        return tv;
    };
    bool ok = true;
    if (recvMs > 0) {
        const timeval tv = toTv(recvMs);
        ok &= ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
    }
    if (sendMs > 0) {
        const timeval tv = toTv(sendMs);
        ok &= ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) == 0;
    }
    return ok;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace vgiw
