#include "common/json.hh"

#include <cstdio>
#include <cstdlib>

namespace vgiw
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: {
            // Escape through the unsigned value: a plain (signed) char
            // would sign-extend bytes >= 0x80 into \uffxx garbage.
            // DEL (0x7f) and high bytes are escaped too, keeping the
            // output pure printable ASCII.
            const unsigned uc = static_cast<unsigned char>(c);
            if (uc < 0x20 || uc >= 0x7f) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", uc);
                out += buf;
            } else {
                out += c;
            }
          }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c != '\\' || i + 1 >= s.size()) {
            out += c;
            continue;
        }
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 < s.size()) {
                char buf[5] = {s[i + 1], s[i + 2], s[i + 3], s[i + 4], 0};
                char *end = nullptr;
                const unsigned long v = std::strtoul(buf, &end, 16);
                if (end == buf + 4 && v < 0x100) {
                    out += char(static_cast<unsigned char>(v));
                    i += 4;
                    break;
                }
            }
            // Malformed \u: keep the bytes verbatim rather than guess.
            out += '\\';
            out += 'u';
            break;
          }
          default:
            out += '\\';
            out += e;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace vgiw
