/**
 * @file
 * A 32-bit machine scalar with typed views. The VGIW fabric, like the
 * GPGPU it replaces, moves 32-bit words between functional units; the
 * interpretation (signed, unsigned, float) is a property of the consuming
 * instruction, not of the value.
 */

#ifndef VGIW_COMMON_SCALAR_HH
#define VGIW_COMMON_SCALAR_HH

#include <bit>
#include <cstdint>

namespace vgiw
{

/** Element types understood by the IR. */
enum class Type : uint8_t { I32, U32, F32 };

/** Return a short printable name for a type. */
const char *typeName(Type t);

/** An untyped 32-bit value with typed accessors. */
struct Scalar
{
    uint32_t bits = 0;

    Scalar() = default;
    explicit constexpr Scalar(uint32_t raw) : bits(raw) {}

    static constexpr Scalar fromI32(int32_t v)
    { return Scalar(static_cast<uint32_t>(v)); }
    static constexpr Scalar fromU32(uint32_t v) { return Scalar(v); }
    static Scalar fromF32(float v)
    { return Scalar(std::bit_cast<uint32_t>(v)); }

    int32_t asI32() const { return static_cast<int32_t>(bits); }
    uint32_t asU32() const { return bits; }
    float asF32() const { return std::bit_cast<float>(bits); }

    /** Branch conditions treat any non-zero word as true. */
    bool asBool() const { return bits != 0; }

    bool operator==(const Scalar &o) const { return bits == o.bits; }
    bool operator!=(const Scalar &o) const { return bits != o.bits; }
};

} // namespace vgiw

#endif // VGIW_COMMON_SCALAR_HH
