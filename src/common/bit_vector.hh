/**
 * @file
 * A dynamic bit vector tuned for the Control Vector Table: 64-bit word
 * granularity, read-and-reset word access, OR-merge updates, and fast
 * scans for the first set bit — exactly the operations the CVT hardware
 * provides (Section 3.3 of the paper).
 */

#ifndef VGIW_COMMON_BIT_VECTOR_HH
#define VGIW_COMMON_BIT_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace vgiw
{

/** A fixed-size vector of bits with 64-bit word access. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with all @p num_bits bits cleared. */
    explicit BitVector(size_t num_bits)
        : numBits_(num_bits), words_((num_bits + 63) / 64, 0)
    {}

    size_t size() const { return numBits_; }
    size_t numWords() const { return words_.size(); }

    bool
    test(size_t i) const
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void
    set(size_t i)
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        words_[i / 64] |= uint64_t{1} << (i % 64);
    }

    void
    clear(size_t i)
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        words_[i / 64] &= ~(uint64_t{1} << (i % 64));
    }

    /** Set every bit in [0, n). */
    void
    setFirstN(size_t n)
    {
        vgiw_assert(n <= numBits_, "range ", n, " out of bounds");
        bitops::setFirstN(span(), n);
    }

    void reset() { bitops::clear(span()); }

    /** Raw 64-bit word access (the CVT delivers 64-bit words). */
    uint64_t word(size_t w) const { return words_[w]; }

    /** The whole word array as a kernel-layer span. */
    bitops::WordSpan span() { return {words_.data(), words_.size()}; }
    bitops::ConstWordSpan
    span() const
    {
        return {words_.data(), words_.size()};
    }

    /**
     * Read a word and clear it, modelling the CVT's read-and-reset port
     * (used to avoid a second write port, Section 3.3).
     */
    uint64_t
    readAndResetWord(size_t w)
    {
        uint64_t v = words_[w];
        words_[w] = 0;
        return v;
    }

    /** OR a word in, modelling the CVT's merge of resolved branches. */
    void orWord(size_t w, uint64_t bits) { words_[w] |= bits; }

    /** Number of set bits. */
    size_t count() const { return size_t(bitops::popcount(span())); }

    bool any() const { return bitops::any(span()); }

    bool none() const { return !any(); }

    /** Index of the first set bit, or size() if none. */
    size_t
    findFirst() const
    {
        const size_t i = bitops::findFirstSet(span());
        return i < numBits_ ? i : numBits_;
    }

    /** Collect the indices of all set bits in ascending order. */
    std::vector<uint32_t>
    toIndices() const
    {
        std::vector<uint32_t> out;
        out.reserve(count());
        for (size_t w = 0; w < words_.size(); ++w) {
            uint32_t buf[64];
            const size_t n =
                bitops::expandWord(words_[w], uint32_t(w * 64), buf);
            out.insert(out.end(), buf, buf + n);
        }
        return out;
    }

    /** OR another vector of the same size into this one. */
    void
    orWith(const BitVector &o)
    {
        vgiw_assert(o.numBits_ == numBits_, "size mismatch");
        bitops::orInto(span(), o.span());
    }

  private:
    size_t numBits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace vgiw

#endif // VGIW_COMMON_BIT_VECTOR_HH
