/**
 * @file
 * A dynamic bit vector tuned for the Control Vector Table: 64-bit word
 * granularity, read-and-reset word access, OR-merge updates, and fast
 * scans for the first set bit — exactly the operations the CVT hardware
 * provides (Section 3.3 of the paper).
 */

#ifndef VGIW_COMMON_BIT_VECTOR_HH
#define VGIW_COMMON_BIT_VECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace vgiw
{

/** A fixed-size vector of bits with 64-bit word access. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with all @p num_bits bits cleared. */
    explicit BitVector(size_t num_bits)
        : numBits_(num_bits), words_((num_bits + 63) / 64, 0)
    {}

    size_t size() const { return numBits_; }
    size_t numWords() const { return words_.size(); }

    bool
    test(size_t i) const
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void
    set(size_t i)
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        words_[i / 64] |= uint64_t{1} << (i % 64);
    }

    void
    clear(size_t i)
    {
        vgiw_assert(i < numBits_, "bit index ", i, " out of range");
        words_[i / 64] &= ~(uint64_t{1} << (i % 64));
    }

    /** Set every bit in [0, n). */
    void
    setFirstN(size_t n)
    {
        vgiw_assert(n <= numBits_, "range ", n, " out of bounds");
        for (size_t i = 0; i < n / 64; ++i)
            words_[i] = ~uint64_t{0};
        if (n % 64)
            words_[n / 64] |= (uint64_t{1} << (n % 64)) - 1;
    }

    void
    reset()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Raw 64-bit word access (the CVT delivers 64-bit words). */
    uint64_t word(size_t w) const { return words_[w]; }

    /**
     * Read a word and clear it, modelling the CVT's read-and-reset port
     * (used to avoid a second write port, Section 3.3).
     */
    uint64_t
    readAndResetWord(size_t w)
    {
        uint64_t v = words_[w];
        words_[w] = 0;
        return v;
    }

    /** OR a word in, modelling the CVT's merge of resolved branches. */
    void orWord(size_t w, uint64_t bits) { words_[w] |= bits; }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (auto w : words_)
            n += std::popcount(w);
        return n;
    }

    bool
    any() const
    {
        for (auto w : words_)
            if (w)
                return true;
        return false;
    }

    bool none() const { return !any(); }

    /** Index of the first set bit, or size() if none. */
    size_t
    findFirst() const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            if (words_[w])
                return w * 64 + std::countr_zero(words_[w]);
        }
        return numBits_;
    }

    /** Collect the indices of all set bits in ascending order. */
    std::vector<uint32_t>
    toIndices() const
    {
        std::vector<uint32_t> out;
        out.reserve(count());
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t v = words_[w];
            while (v) {
                out.push_back(uint32_t(w * 64 + std::countr_zero(v)));
                v &= v - 1;
            }
        }
        return out;
    }

    /** OR another vector of the same size into this one. */
    void
    orWith(const BitVector &o)
    {
        vgiw_assert(o.numBits_ == numBits_, "size mismatch");
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] |= o.words_[w];
    }

  private:
    size_t numBits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace vgiw

#endif // VGIW_COMMON_BIT_VECTOR_HH
