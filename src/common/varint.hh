/**
 * @file
 * LEB128 varints and zigzag mapping — the wire primitives of the
 * compressed trace codec (see trace.hh). Kept separate so the codec
 * tests can pin the byte-level encoding independently of the trace
 * format built on top of it.
 */

#ifndef VGIW_COMMON_VARINT_HH
#define VGIW_COMMON_VARINT_HH

#include <cstdint>
#include <vector>

namespace vgiw
{
namespace varint
{

/** Map a signed delta to an unsigned code (0,-1,1,-2,... -> 0,1,2,3). */
inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

inline int64_t
unzigzag(uint64_t u)
{
    return int64_t(u >> 1) ^ -int64_t(u & 1);
}

/** Append @p v as an LEB128 varint (7 payload bits per byte). */
inline void
append(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

/** Decode one varint at @p p, advancing it. No bounds checks: streams
 * are trusted (produced by the encoder in the same process). */
inline uint64_t
decode(const uint8_t *&p)
{
    uint64_t v = uint64_t(*p) & 0x7f;
    if (*p++ & 0x80) [[unlikely]] {
        unsigned shift = 7;
        do {
            v |= (uint64_t(*p) & 0x7f) << shift;
            shift += 7;
        } while (*p++ & 0x80);
    }
    return v;
}

} // namespace varint
} // namespace vgiw

#endif // VGIW_COMMON_VARINT_HH
