/**
 * @file
 * Cooperative replay watchdogs.
 *
 * A timing model's scheduler loop (the VGIW BBS drain loop, the Fermi
 * issue loop, the SGMF injection loop) can livelock on a buggy kernel
 * or a pathological configuration; without a deadline that hangs one
 * sweep worker forever. The watchdog gives every replay two ceilings:
 *
 *  - maxReplayCycles: a model-cycle budget, checked on every poll —
 *    deterministic, so a tripped job trips identically on every run;
 *  - deadlineMs: a wall-clock deadline, checked every 1024 polls (a
 *    steady_clock read is ~20 ns; the mask keeps the healthy-path cost
 *    of polling at a compare-and-branch).
 *
 * Both are cooperative: the replay loop calls poll() once per scheduled
 * unit of work and the watchdog throws a WatchdogError — carrying the
 * partial cycle/op counters — when a ceiling is exceeded. The
 * experiment engine records it as a `watchdog`-kind job failure and the
 * sweep keeps going.
 */

#ifndef VGIW_COMMON_WATCHDOG_HH
#define VGIW_COMMON_WATCHDOG_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "common/sim_error.hh"

namespace vgiw
{

/** Replay ceilings; all disabled by default (zero = unlimited). */
struct WatchdogConfig
{
    /** Abort the replay after this many model cycles (0 = unlimited). */
    uint64_t maxReplayCycles = 0;

    /** Abort the replay past this wall-clock budget (0 = no deadline). */
    double deadlineMs = 0.0;

    /**
     * Deadline anchor. Default (epoch) means the budget starts when the
     * replay's Watchdog is constructed; the experiment engine re-anchors
     * it at job entry so time spent tracing/compiling/stalled counts
     * against the same per-job budget.
     */
    std::chrono::steady_clock::time_point anchor{};

    bool enabled() const { return maxReplayCycles || deadlineMs > 0; }
};

/** Per-replay watchdog state; construct at replay entry, poll in the
 * scheduler loop. */
class Watchdog
{
  public:
    Watchdog(const WatchdogConfig &cfg, std::string context)
        : maxCycles_(cfg.maxReplayCycles), context_(std::move(context))
    {
        if (cfg.deadlineMs > 0) {
            const auto anchor =
                cfg.anchor == std::chrono::steady_clock::time_point{}
                    ? std::chrono::steady_clock::now()
                    : cfg.anchor;
            deadline_ = anchor + std::chrono::duration_cast<
                                     std::chrono::steady_clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         cfg.deadlineMs));
            hasDeadline_ = true;
        }
    }

    /**
     * Check the ceilings against the replay's progress counters; throws
     * WatchdogError (carrying them) when one is exceeded. @p cycles is
     * the model's own cycle count — for SGMF, whose loop is not
     * cycle-stepped, the caller passes its issue-cycle proxy.
     */
    void
    poll(uint64_t cycles, uint64_t block_execs, uint64_t thread_ops)
    {
        if (maxCycles_ && cycles > maxCycles_) {
            throw WatchdogError(
                context_ + ": watchdog: replay exceeded " +
                    std::to_string(maxCycles_) + " cycles (at " +
                    std::to_string(cycles) + " cycles, " +
                    std::to_string(block_execs) + " block execs)",
                cycles, block_execs, thread_ops);
        }
        if (hasDeadline_ && (polls_++ & kDeadlineMask) == 0 &&
            std::chrono::steady_clock::now() > deadline_) {
            throw WatchdogError(
                context_ + ": watchdog: wall-clock deadline exceeded (at " +
                    std::to_string(cycles) + " cycles, " +
                    std::to_string(block_execs) + " block execs)",
                cycles, block_execs, thread_ops);
        }
    }

  private:
    /** Deadline checked on poll 0, 1024, 2048, ... */
    static constexpr uint64_t kDeadlineMask = 1023;

    uint64_t maxCycles_ = 0;
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    uint64_t polls_ = 0;
    std::string context_;
};

} // namespace vgiw

#endif // VGIW_COMMON_WATCHDOG_HH
