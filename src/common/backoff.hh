/**
 * @file
 * Jittered exponential backoff for respawn/reconnect loops.
 *
 * PR 8's respawn backoff was deterministic (`base << crashes`), which
 * has a thundering-herd failure mode: workers that crash together (one
 * poisoned job fanned out, an OOM sweep, a rebooted remote host)
 * respawn in lockstep and crash together again. The schedule here
 * keeps the exponential envelope but draws each delay uniformly from
 * [d/2, d] where d = min(base * 2^(n-1), cap) — so simultaneous
 * failures decorrelate within two or three rounds while the expected
 * delay still doubles per consecutive failure.
 *
 * The ceiling is explicit and documented: no matter how many times a
 * peer fails, the delay never exceeds `capMs` (default 10 s). Without
 * a cap, a flapping remote worker would back off into hours and look
 * quarantined without ever being reported as such.
 *
 * Determinism: the jitter source is a splitmix64 hash of (seed,
 * attempt), not a global RNG — the schedule is a pure function of its
 * fields, so tests can pin exact delays, and two schedules with
 * different seeds (different worker slots) decorrelate.
 */

#ifndef VGIW_COMMON_BACKOFF_HH
#define VGIW_COMMON_BACKOFF_HH

#include <cstdint>

namespace vgiw
{

struct BackoffSchedule
{
    /** First-failure delay envelope (ms). */
    uint64_t baseMs = 200;
    /** Hard ceiling (ms): delays never exceed this, jitter included. */
    uint64_t capMs = 10000;
    /** Jitter stream identity; give each worker slot its own. */
    uint64_t seed = 0;

    /**
     * Delay before retry number @p attempt (1-based consecutive
     * failure count; attempt 0 is treated as 1). Uniform in [d/2, d]
     * with d = min(baseMs << (attempt-1), capMs); always <= capMs.
     */
    uint64_t
    delayMs(unsigned attempt) const
    {
        if (attempt == 0)
            attempt = 1;
        // Clamp the shift so the envelope saturates instead of
        // overflowing; 63 doublings is past any real cap anyway.
        const unsigned shift = attempt - 1 > 32u ? 32u : attempt - 1;
        uint64_t d = baseMs << shift;
        if (d > capMs || d < baseMs)  // overflow also saturates
            d = capMs;
        if (d == 0)
            return 0;
        const uint64_t half = d / 2;
        return half + mix(seed, attempt) % (d - half + 1);
    }

  private:
    /** splitmix64 over (seed, attempt): cheap, stateless, well mixed. */
    static uint64_t
    mix(uint64_t seed, uint64_t attempt)
    {
        uint64_t z = seed + attempt * 0x9e3779b97f4a7c15ull +
                     0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

} // namespace vgiw

#endif // VGIW_COMMON_BACKOFF_HH
