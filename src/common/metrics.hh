/**
 * @file
 * The observability layer: named counters and scoped timing spans,
 * collected per sweep job, with zero overhead when disabled.
 *
 * End-of-run aggregates (RunStats) say *what* a config point cost;
 * they cannot say *where* the cycles went — which block drained how
 * many CVT vectors, how often the SIMT stack diverged, how long the
 * engine spent compiling versus replaying, how many times a retry
 * re-ran a job. This layer answers those questions with two
 * primitives, mirroring the per-mechanism attribution the paper uses
 * to explain its speedups:
 *
 *  - **counters** — named, ordered, deterministic numbers
 *    (`JobMetrics::add`/`set`). Replay is deterministic, so counter
 *    values are bit-identical across worker counts; they are what the
 *    `"metrics"` JSON object carries.
 *  - **spans** — scoped wall-clock intervals (`MetricSpan`) with a
 *    steady-clock begin/end, a thread tag and a nesting depth. Spans
 *    time host-side phases (trace / compile / replay / callback,
 *    retry attempts); they are inherently non-deterministic and are
 *    exported only to the Chrome-trace file, never into result JSON.
 *
 * **Sharding and determinism.** A `MetricsCollector` owns one
 * `JobMetrics` sink per sweep job, index-aligned with the submission
 * order (the same slot discipline as the engine's result vector).
 * Exactly one worker writes a given job's sink at a time, so sinks
 * need no locks, and collection — serialising counters, exporting
 * spans — walks the slots in submission order, making merged output
 * deterministic regardless of scheduling.
 *
 * **Zero overhead when disabled.** Core-model replay loops reach
 * their job's sink through a thread-local pointer
 * (`currentMetricSink()`), installed by the engine via a
 * `MetricSinkScope` for the duration of the job. With no collector
 * attached the pointer is null and every instrumentation site reduces
 * to one never-taken branch on a register value; `MetricSpan` against
 * a null sink takes no timestamp. bench_throughput's contract is that
 * the disabled path costs < 2% of sweep wall clock (in practice it is
 * unmeasurable).
 */

#ifndef VGIW_COMMON_METRICS_HH
#define VGIW_COMMON_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stat_set.hh"

namespace vgiw
{

/**
 * One closed timing span: a named steady-clock interval tagged with
 * the recording thread and its nesting depth within the job's sink.
 * Timestamps are steady-clock nanoseconds (an arbitrary epoch shared
 * by all spans of one process); the Chrome-trace exporter rebases
 * them to the earliest span it emits.
 */
struct SpanRecord
{
    std::string name;     ///< taxonomy name ("trace", "replay", ...)
    uint32_t depth = 0;   ///< 0 = top-level within the job
    uint64_t beginNs = 0; ///< steady-clock begin
    uint64_t endNs = 0;   ///< steady-clock end (>= beginNs)
    uint64_t threadTag = 0; ///< hashed std::thread::id of the recorder
};

/**
 * The per-job metric sink: ordered deterministic counters plus the
 * job's span log.
 *
 * Contract: a sink is written by exactly one thread at a time (the
 * worker that owns the job), so no member is synchronised. Counters
 * must be deterministic functions of the job definition — replay
 * statistics, never wall-clock or scheduling observables — because
 * they are serialised into result JSON whose bit-identity across
 * `--jobs 1` and `--jobs N` is tested. Anything timing-flavoured
 * belongs in a span.
 */
class JobMetrics
{
  public:
    /** Add @p value to counter @p name, creating it at 0 if absent. */
    void add(const std::string &name, double value)
    {
        counters_.add(name, value);
    }

    /** Overwrite counter @p name. */
    void set(const std::string &name, double value)
    {
        counters_.set(name, value);
    }

    const StatSet &counters() const { return counters_; }

    /**
     * Drop the counters (a retry re-runs the job; the final attempt's
     * counters are the ones reported). Spans are kept: the span log
     * spans every attempt.
     */
    void clearCounters() { counters_ = StatSet{}; }

    /**
     * Open a span: records the begin timestamp, the calling thread's
     * tag and the current nesting depth, and returns the span's index
     * for endSpan(). Prefer the RAII MetricSpan wrapper.
     */
    uint32_t beginSpan(const char *name);

    /** Close the span opened as @p index (sets its end timestamp). */
    void endSpan(uint32_t index);

    /** All spans opened so far, in begin order (closed or not). */
    const std::vector<SpanRecord> &spans() const { return spans_; }

    /**
     * Serialise the counters as one JSON object (`{"name":value,...}`,
     * insertion order, no whitespace) — the `"metrics"` field of a
     * result line. Deterministic: equal counters give equal bytes.
     */
    std::string countersJson() const;

  private:
    StatSet counters_;
    std::vector<SpanRecord> spans_;
    uint32_t depth_ = 0;
};

/**
 * RAII span: opens on construction, closes on destruction (including
 * unwinding — a watchdog throw mid-replay still closes the replay
 * span). A null sink makes both ends no-ops with no timestamp taken.
 */
class MetricSpan
{
  public:
    MetricSpan(JobMetrics *sink, const char *name) : sink_(sink)
    {
        if (sink_)
            index_ = sink_->beginSpan(name);
    }
    ~MetricSpan()
    {
        if (sink_)
            sink_->endSpan(index_);
    }
    MetricSpan(const MetricSpan &) = delete;
    MetricSpan &operator=(const MetricSpan &) = delete;

  private:
    JobMetrics *sink_;
    uint32_t index_ = 0;
};

/**
 * The current thread's metric sink, or nullptr when metrics are
 * disabled. Core-model replay loops read this once at entry; a null
 * result means every instrumentation site must be skipped (and costs
 * one predictable branch).
 */
JobMetrics *currentMetricSink();

/**
 * Installs @p sink as the calling thread's currentMetricSink() for
 * the scope's lifetime, restoring the previous sink on exit. The
 * engine opens one around each job so the core model it invokes finds
 * the job's sink without any CoreModel API change.
 */
class MetricSinkScope
{
  public:
    explicit MetricSinkScope(JobMetrics *sink);
    ~MetricSinkScope();
    MetricSinkScope(const MetricSinkScope &) = delete;
    MetricSinkScope &operator=(const MetricSinkScope &) = delete;

  private:
    JobMetrics *previous_;
};

/**
 * Sweep-wide metrics: one JobMetrics slot per job, index-aligned with
 * the engine's submission order, plus the per-job labels (job keys)
 * the exporters report under.
 *
 * Ownership/threading contract: reset() is called once before the
 * worker pool starts; after that, slot i is written only by the
 * worker running job i, and readers (exporters, tests) run after
 * ExperimentEngine::run returns. The collector itself takes no locks.
 */
class MetricsCollector
{
  public:
    /** Size the collector for a sweep, dropping prior contents. */
    void reset(size_t num_jobs);

    size_t size() const { return jobs_.size(); }

    JobMetrics &job(size_t index) { return jobs_[index]; }
    const JobMetrics &job(size_t index) const { return jobs_[index]; }

    /** Attach the label (the engine uses jobKey) exporters report. */
    void setLabel(size_t index, std::string label);
    const std::string &label(size_t index) const
    {
        return labels_[index];
    }

    /**
     * Export every closed span as a Chrome trace-event JSON document
     * (`chrome://tracing` / Perfetto "traceEvents" array of complete
     * "X" events; `ts`/`dur` in microseconds rebased to the earliest
     * span). Worker threads are renumbered 0..N-1 by first appearance
     * in submission order, so the `tid` assignment — though not the
     * timestamps — is stable run to run.
     */
    std::string chromeTraceJson() const;

  private:
    std::vector<JobMetrics> jobs_;
    std::vector<std::string> labels_;
};

} // namespace vgiw

#endif // VGIW_COMMON_METRICS_HH
