#include "common/signal_drain.hh"

#include <csignal>

namespace vgiw
{

namespace
{

std::atomic<bool> g_drain{false};
std::atomic<int> g_signal{0};

static_assert(std::atomic<bool>::is_always_lock_free,
              "the drain flag must be async-signal-safe");

extern "C" void
drainHandler(int sig)
{
    // Only lock-free atomic stores: anything else (locks, allocation,
    // stdio) is undefined in a signal handler.
    g_signal.store(sig, std::memory_order_relaxed);
    g_drain.store(true, std::memory_order_release);
}

} // namespace

void
installDrainHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = drainHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a worker blocked in a slow syscall should see
    // EINTR and get back to its drain poll promptly.
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

const std::atomic<bool> &
drainFlag()
{
    return g_drain;
}

bool
drainRequested()
{
    return g_drain.load(std::memory_order_acquire);
}

void
requestDrain()
{
    g_drain.store(true, std::memory_order_release);
}

int
drainSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

void
resetDrainFlag()
{
    g_drain.store(false, std::memory_order_release);
    g_signal.store(0, std::memory_order_relaxed);
}

} // namespace vgiw
