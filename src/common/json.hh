/**
 * @file
 * Minimal JSON string/number helpers shared by every component that
 * emits or re-reads the sweep's JSON-lines artifacts (the experiment
 * engine, the result journal, the bench harnesses). The emitters were
 * born as per-file static helpers; the result journal made a shared,
 * invertible pair (escape + unescape) load-bearing: a journal entry
 * must survive a write/load round trip byte-for-byte or resume breaks
 * the bit-identity contract.
 */

#ifndef VGIW_COMMON_JSON_HH
#define VGIW_COMMON_JSON_HH

#include <string>

namespace vgiw
{

/**
 * Escape @p s for embedding in a JSON string literal. Quotes,
 * backslashes and the usual control shorthands are escaped; every
 * other byte < 0x20 or >= 0x7f (DEL and high bytes, through the
 * unsigned value so nothing sign-extends) becomes \\u00xx — the output
 * is pure printable ASCII.
 */
std::string jsonEscape(const std::string &s);

/**
 * Inverse of jsonEscape: decode the escapes it produces (\\" \\\\ \\n
 * \\r \\t \\uXXXX with XXXX < 0x100). Not a general JSON string
 * decoder — surrogate pairs and multi-byte \\u escapes never appear in
 * jsonEscape output and are passed through undecoded.
 */
std::string jsonUnescape(const std::string &s);

/** Shortest round-trippable decimal for a double. */
std::string jsonNumber(double v);

} // namespace vgiw

#endif // VGIW_COMMON_JSON_HH
