/**
 * @file
 * Crash-safe file replacement.
 *
 * The sweep's on-disk artifacts — the --json results file and the
 * result journal — must never be observable half-written: a process
 * killed mid-write would otherwise leave a truncated file that parses
 * as a shorter-but-valid result set, which is worse than no file at
 * all. The helpers here follow the classic write-temp / fsync /
 * rename / fsync-directory protocol: readers see either the old
 * content or the complete new content, never a prefix.
 */

#ifndef VGIW_COMMON_ATOMIC_FILE_HH
#define VGIW_COMMON_ATOMIC_FILE_HH

#include <string>

namespace vgiw
{

/**
 * Durably replace @p path with @p contents: write to a temporary in
 * the same directory, fsync it, rename() over @p path, then fsync the
 * directory so the rename itself survives a crash. Returns false (and
 * fills @p error, if given) on any I/O failure; a failed write never
 * disturbs an existing @p path.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents,
                     std::string *error = nullptr);

/**
 * Rotate @p path aside to @p path + @p suffix (replacing any previous
 * rotation), durably: the rename is followed by a directory fsync. A
 * missing @p path succeeds as a no-op. Used to retire a superseded
 * result journal instead of silently destroying it.
 */
bool rotateFile(const std::string &path, const std::string &suffix = ".1",
                std::string *error = nullptr);

} // namespace vgiw

#endif // VGIW_COMMON_ATOMIC_FILE_HH
