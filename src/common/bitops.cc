#include "common/bitops.hh"

#include <cstdlib>

namespace vgiw
{
namespace bitops
{

namespace
{

bool
readForceScalarEnv()
{
    const char *v = std::getenv("VGIW_FORCE_SCALAR_BITOPS");
    return v && v[0] && !(v[0] == '0' && v[1] == '\0');
}

} // namespace

bool
runtimeForceScalar()
{
    static const bool force = readForceScalarEnv();
    return force;
}

const char *
backendName()
{
#if VGIW_BITOPS_HAVE_AVX2
    return runtimeForceScalar() ? "scalar" : "avx2";
#else
    return "scalar";
#endif
}

} // namespace bitops
} // namespace vgiw
