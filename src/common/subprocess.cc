#include "common/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace vgiw
{

namespace
{

/** FNV-1a over the payload — the frame checksum. (Deliberately local:
 * the store's fnv1a lives in a driver header and common must not
 * depend on driver.) */
uint64_t
frameChecksum(std::string_view bytes)
{
    uint64_t h = 14695981039346656037ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** Write all of @p len bytes, retrying EINTR and partial writes. */
bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= size_t(n);
    }
    return true;
}

/**
 * Read exactly @p len bytes. @p started tracks whether any byte of the
 * current frame has already arrived: before that, EINTR surfaces as
 * Interrupted (so a blocked worker can poll its drain flag); after it,
 * the frame is finished or declared Corrupt.
 */
ReadStatus
readAll(int fd, void *out, size_t len, bool *started)
{
    char *p = static_cast<char *>(out);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR) {
                if (!*started)
                    return ReadStatus::Interrupted;
                continue;
            }
            return ReadStatus::Error;
        }
        if (n == 0)
            return *started ? ReadStatus::Corrupt : ReadStatus::Eof;
        *started = true;
        p += n;
        len -= size_t(n);
    }
    return ReadStatus::Ok;
}

} // namespace

bool
writeFrame(int fd, FrameType type, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    // Header: u32 length, u8 type, u64 checksum — fixed layout, native
    // endianness (coordinator and workers are fork()s of one process).
    char header[13];
    const uint32_t len = uint32_t(payload.size());
    const uint8_t t = uint8_t(type);
    const uint64_t sum = frameChecksum(payload);
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &t, 1);
    std::memcpy(header + 5, &sum, 8);
    return writeAll(fd, header, sizeof header) &&
           writeAll(fd, payload.data(), payload.size());
}

ReadStatus
readFrame(int fd, Frame *out)
{
    bool started = false;
    char header[13];
    ReadStatus st = readAll(fd, header, sizeof header, &started);
    if (st != ReadStatus::Ok)
        return st;

    uint32_t len = 0;
    uint8_t type = 0;
    uint64_t sum = 0;
    std::memcpy(&len, header, 4);
    std::memcpy(&type, header + 4, 1);
    std::memcpy(&sum, header + 5, 8);
    if (len > kMaxFrameBytes)
        return ReadStatus::Corrupt;

    out->type = FrameType(type);
    out->payload.resize(len);
    if (len > 0) {
        st = readAll(fd, out->payload.data(), len, &started);
        if (st != ReadStatus::Ok)
            return st == ReadStatus::Eof ? ReadStatus::Corrupt : st;
    }
    if (frameChecksum(out->payload) != sum)
        return ReadStatus::Corrupt;
    return ReadStatus::Ok;
}

bool
spawnChild(const std::function<int(int in_fd, int out_fd)> &body,
           ChildProcess *out, std::string *error)
{
    int down[2];  // coordinator -> worker
    int up[2];    // worker -> coordinator
    if (::pipe(down) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(up) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(down[0]);
        ::close(down[1]);
        return false;
    }

    // A fork duplicates unflushed stdio buffers; flush so the child
    // cannot re-emit output the parent already printed.
    std::fflush(stdout);
    std::fflush(stderr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork: ") + std::strerror(errno);
        ::close(down[0]);
        ::close(down[1]);
        ::close(up[0]);
        ::close(up[1]);
        return false;
    }

    if (pid == 0) {
        // Child: keep only its two pipe ends.
        ::close(down[1]);
        ::close(up[0]);
#ifdef __linux__
        // Belt and braces against orphans: if the coordinator dies
        // without cleaning up, the kernel TERMs us.
        ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
        int rc = 127;
        try {
            rc = body(down[0], up[1]);
        } catch (...) {
            rc = 126;
        }
        std::fflush(stdout);
        std::fflush(stderr);
        ::_exit(rc);
    }

    ::close(down[0]);
    ::close(up[1]);
    out->pid = pid;
    out->toChild = down[1];
    out->fromChild = up[0];
    return true;
}

namespace
{

ChildStatus
reap(pid_t pid, int flags)
{
    for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, flags);
        if (r == 0)
            return {ChildState::Running, 0};
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return {ChildState::Lost, errno};
        }
        if (WIFEXITED(status))
            return {ChildState::Exited, WEXITSTATUS(status)};
        if (WIFSIGNALED(status))
            return {ChildState::Signaled, WTERMSIG(status)};
        // Stopped/continued: not terminal, keep treating as running.
        return {ChildState::Running, 0};
    }
}

} // namespace

ChildStatus
pollChild(pid_t pid)
{
    return reap(pid, WNOHANG);
}

ChildStatus
waitChild(pid_t pid)
{
    return reap(pid, 0);
}

std::string
describeChildStatus(const ChildStatus &status)
{
    char buf[96];
    switch (status.state) {
      case ChildState::Running:
        return "still running";
      case ChildState::Exited:
        std::snprintf(buf, sizeof buf, "exited with status %d",
                      status.code);
        return buf;
      case ChildState::Signaled: {
        const char *name = ::strsignal(status.code);
        std::snprintf(buf, sizeof buf, "killed by signal %d (%s)",
                      status.code, name ? name : "?");
        return buf;
      }
      case ChildState::Lost:
        return "lost (waitpid failed)";
    }
    return "?";
}

void
killChild(pid_t pid, int sig)
{
    if (pid > 0)
        ::kill(pid, sig);
}

void
ignoreSigpipe()
{
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

} // namespace vgiw
