#include "common/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace vgiw
{

namespace
{

/** FNV-1a — the frame checksum. (Deliberately local: the store's
 * fnv1a lives in a driver header and common must not depend on
 * driver.) */
uint64_t
fnv1aStep(uint64_t h, const void *data, size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Checksum over length + type + payload: a flipped header bit is
 * caught like a flipped payload bit. (A corrupted *length* field still
 * desynchronises the byte stream — the reader consumes the wrong
 * count — which is why CorruptRecord recovery is paired with a
 * consecutive-corruption cap at every call site.) */
uint64_t
frameChecksum(uint32_t len, uint8_t type, std::string_view payload)
{
    uint64_t h = 14695981039346656037ull;
    h = fnv1aStep(h, &len, sizeof len);
    h = fnv1aStep(h, &type, sizeof type);
    return fnv1aStep(h, payload.data(), payload.size());
}

/** Write all of @p len bytes, retrying EINTR and partial writes. A
 * socket whose SO_SNDTIMEO expires (stalled peer) fails with EAGAIN —
 * reported as an ordinary write failure the caller treats as a dead
 * link. */
bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= size_t(n);
    }
    return true;
}

/**
 * Read exactly @p len bytes. @p started tracks whether any byte of the
 * current frame has already arrived: before that, EINTR surfaces as
 * Interrupted (so a blocked worker can poll its drain flag); after it,
 * the frame is finished or declared Corrupt.
 */
ReadStatus
readAll(int fd, void *out, size_t len, bool *started)
{
    char *p = static_cast<char *>(out);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR) {
                if (!*started)
                    return ReadStatus::Interrupted;
                continue;
            }
            // Only fds with SO_RCVTIMEO set (sockets) produce EAGAIN
            // here: no data arrived within the timer — before a frame
            // that is a quiet peer, mid-frame it is a stall.
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return ReadStatus::Timeout;
            return ReadStatus::Error;
        }
        if (n == 0)
            return *started ? ReadStatus::Corrupt : ReadStatus::Eof;
        *started = true;
        p += n;
        len -= size_t(n);
    }
    return ReadStatus::Ok;
}

} // namespace

namespace
{

bool
writeFrameWithSum(int fd, FrameType type, std::string_view payload,
                  uint64_t sum)
{
    // Header: u32 length, u8 type, u64 checksum — fixed layout, native
    // endianness (pipe peers are fork()s of one process; TCP peers are
    // gated by the versioned Hello handshake and a same-architecture
    // fleet assumption).
    char header[13];
    const uint32_t len = uint32_t(payload.size());
    const uint8_t t = uint8_t(type);
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &t, 1);
    std::memcpy(header + 5, &sum, 8);
    return writeAll(fd, header, sizeof header) &&
           writeAll(fd, payload.data(), payload.size());
}

} // namespace

bool
writeFrame(int fd, FrameType type, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    return writeFrameWithSum(
        fd, type, payload,
        frameChecksum(uint32_t(payload.size()), uint8_t(type), payload));
}

bool
writeCorruptFrameForTest(int fd, FrameType type, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    const uint64_t good = frameChecksum(uint32_t(payload.size()),
                                        uint8_t(type), payload);
    return writeFrameWithSum(fd, type, payload, good ^ 1);
}

bool
writeFrameStalledForTest(int fd, FrameType type, std::string_view payload,
                         int millis)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    char header[13];
    const uint32_t len = uint32_t(payload.size());
    const uint8_t t = uint8_t(type);
    const uint64_t sum = frameChecksum(len, t, payload);
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &t, 1);
    std::memcpy(header + 5, &sum, 8);
    if (!writeAll(fd, header, sizeof header))
        return false;
    struct timespec ts = {millis / 1000, (millis % 1000) * 1000000L};
    ::nanosleep(&ts, nullptr);
    return writeAll(fd, payload.data(), payload.size());
}

ReadStatus
readFrame(int fd, Frame *out)
{
    bool started = false;
    char header[13];
    ReadStatus st = readAll(fd, header, sizeof header, &started);
    if (st != ReadStatus::Ok)
        return st;

    uint32_t len = 0;
    uint8_t type = 0;
    uint64_t sum = 0;
    std::memcpy(&len, header, 4);
    std::memcpy(&type, header + 4, 1);
    std::memcpy(&sum, header + 5, 8);
    if (len > kMaxFrameBytes)
        return ReadStatus::Corrupt;

    out->type = FrameType(type);
    out->payload.resize(len);
    if (len > 0) {
        st = readAll(fd, out->payload.data(), len, &started);
        if (st != ReadStatus::Ok)
            return st == ReadStatus::Eof ? ReadStatus::Corrupt : st;
    }
    // The declared length was plausible and fully consumed: the stream
    // is still frame-aligned, so a checksum mismatch here is the
    // recoverable grade — callers may skip exactly this record.
    if (frameChecksum(len, type, out->payload) != sum)
        return ReadStatus::CorruptRecord;
    return ReadStatus::Ok;
}

bool
spawnChild(const std::function<int(int in_fd, int out_fd)> &body,
           ChildProcess *out, std::string *error)
{
    int down[2];  // coordinator -> worker
    int up[2];    // worker -> coordinator
    if (::pipe(down) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(up) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(down[0]);
        ::close(down[1]);
        return false;
    }

    // A fork duplicates unflushed stdio buffers; flush so the child
    // cannot re-emit output the parent already printed.
    std::fflush(stdout);
    std::fflush(stderr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork: ") + std::strerror(errno);
        ::close(down[0]);
        ::close(down[1]);
        ::close(up[0]);
        ::close(up[1]);
        return false;
    }

    if (pid == 0) {
        // Child: keep only its two pipe ends.
        ::close(down[1]);
        ::close(up[0]);
#ifdef __linux__
        // Belt and braces against orphans: if the coordinator dies
        // without cleaning up, the kernel TERMs us.
        ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
        int rc = 127;
        try {
            rc = body(down[0], up[1]);
        } catch (...) {
            rc = 126;
        }
        std::fflush(stdout);
        std::fflush(stderr);
        ::_exit(rc);
    }

    ::close(down[0]);
    ::close(up[1]);
    out->pid = pid;
    out->toChild = down[1];
    out->fromChild = up[0];
    return true;
}

namespace
{

ChildStatus
reap(pid_t pid, int flags)
{
    for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, flags);
        if (r == 0)
            return {ChildState::Running, 0};
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return {ChildState::Lost, errno};
        }
        if (WIFEXITED(status))
            return {ChildState::Exited, WEXITSTATUS(status)};
        if (WIFSIGNALED(status))
            return {ChildState::Signaled, WTERMSIG(status)};
        // Stopped/continued: not terminal, keep treating as running.
        return {ChildState::Running, 0};
    }
}

} // namespace

ChildStatus
pollChild(pid_t pid)
{
    return reap(pid, WNOHANG);
}

ChildStatus
waitChild(pid_t pid)
{
    return reap(pid, 0);
}

std::string
describeChildStatus(const ChildStatus &status)
{
    char buf[96];
    switch (status.state) {
      case ChildState::Running:
        return "still running";
      case ChildState::Exited:
        std::snprintf(buf, sizeof buf, "exited with status %d",
                      status.code);
        return buf;
      case ChildState::Signaled: {
        const char *name = ::strsignal(status.code);
        std::snprintf(buf, sizeof buf, "killed by signal %d (%s)",
                      status.code, name ? name : "?");
        return buf;
      }
      case ChildState::Lost:
        return "lost (waitpid failed)";
    }
    return "?";
}

void
killChild(pid_t pid, int sig)
{
    if (pid > 0)
        ::kill(pid, sig);
}

void
ignoreSigpipe()
{
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

} // namespace vgiw
