/**
 * @file
 * Graceful-shutdown signalling for long sweeps.
 *
 * A multi-hour sweep that dies instantly on Ctrl-C throws away every
 * in-flight job and risks a half-written artifact; one that ignores
 * signals cannot be stopped without SIGKILL (and then loses even
 * more). The drain flag is the middle path: SIGINT/SIGTERM set a
 * process-wide atomic flag the experiment engine polls before
 * dequeueing each job — in-flight jobs finish (or trip their
 * watchdogs), the journal is flushed, and the process exits with the
 * documented "interrupted" code. The handler only stores to a
 * lock-free atomic, so it is async-signal-safe; it stays installed, so
 * repeated signals are idempotent (SIGKILL remains the force-quit
 * escape hatch).
 */

#ifndef VGIW_COMMON_SIGNAL_DRAIN_HH
#define VGIW_COMMON_SIGNAL_DRAIN_HH

#include <atomic>

namespace vgiw
{

/**
 * Install SIGINT and SIGTERM handlers that set the drain flag.
 * Idempotent; safe to call once at tool startup.
 */
void installDrainHandlers();

/** The flag the handlers set — pass &drainFlag() to EngineOptions. */
const std::atomic<bool> &drainFlag();

/** Whether a drain has been requested (by a signal or requestDrain). */
bool drainRequested();

/** Set the flag programmatically (tests, embedders with their own
 * signal handling). */
void requestDrain();

/** Signal number that tripped the flag; 0 when none (or programmatic). */
int drainSignal();

/** Clear the flag and recorded signal (tests). */
void resetDrainFlag();

} // namespace vgiw

#endif // VGIW_COMMON_SIGNAL_DRAIN_HH
