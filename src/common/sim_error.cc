#include "common/sim_error.hh"

namespace vgiw
{

namespace
{

thread_local int panic_capture_depth = 0;

} // namespace

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::None: return "none";
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Compile: return "compile";
      case SimErrorKind::Functional: return "functional";
      case SimErrorKind::Golden: return "golden";
      case SimErrorKind::Watchdog: return "watchdog";
      case SimErrorKind::Internal: return "internal";
      case SimErrorKind::WorkerCrash: return "worker_crash";
      case SimErrorKind::LinkLost: return "link_lost";
    }
    return "?";
}

PanicCaptureScope::PanicCaptureScope()
{
    ++panic_capture_depth;
}

PanicCaptureScope::~PanicCaptureScope()
{
    --panic_capture_depth;
}

bool
PanicCaptureScope::active()
{
    return panic_capture_depth > 0;
}

} // namespace vgiw
