/**
 * @file
 * A tiny ordered statistics registry. Modules keep strongly-typed counter
 * structs internally; StatSet is the common currency used by the driver to
 * print reports and by tests to assert on behaviour without reaching into
 * module internals.
 */

#ifndef VGIW_COMMON_STAT_SET_HH
#define VGIW_COMMON_STAT_SET_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vgiw
{

/** Ordered collection of named numeric statistics. */
class StatSet
{
  public:
    /** Add @p value to the stat named @p name, creating it if needed. */
    void
    add(const std::string &name, double value)
    {
        for (auto &kv : stats_) {
            if (kv.first == name) {
                kv.second += value;
                return;
            }
        }
        stats_.emplace_back(name, value);
    }

    /** Overwrite the stat named @p name. */
    void
    set(const std::string &name, double value)
    {
        for (auto &kv : stats_) {
            if (kv.first == name) {
                kv.second = value;
                return;
            }
        }
        stats_.emplace_back(name, value);
    }

    /** Value of @p name, or 0 if absent. */
    double
    get(const std::string &name) const
    {
        for (const auto &kv : stats_)
            if (kv.first == name)
                return kv.second;
        return 0.0;
    }

    bool
    has(const std::string &name) const
    {
        for (const auto &kv : stats_)
            if (kv.first == name)
                return true;
        return false;
    }

    /** Merge another StatSet into this one (summing shared names). */
    void
    merge(const StatSet &o)
    {
        for (const auto &kv : o.stats_)
            add(kv.first, kv.second);
    }

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return stats_;
    }

  private:
    std::vector<std::pair<std::string, double>> stats_;
};

} // namespace vgiw

#endif // VGIW_COMMON_STAT_SET_HH
