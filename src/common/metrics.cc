#include "common/metrics.hh"

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_map>

#include "common/json.hh"
#include "common/logging.hh"

namespace vgiw
{

namespace
{

uint64_t
steadyNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

uint64_t
threadTag()
{
    return uint64_t(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

thread_local JobMetrics *t_sink = nullptr;

} // namespace

uint32_t
JobMetrics::beginSpan(const char *name)
{
    SpanRecord s;
    s.name = name;
    s.depth = depth_++;
    s.beginNs = steadyNowNs();
    s.threadTag = threadTag();
    spans_.push_back(std::move(s));
    return uint32_t(spans_.size() - 1);
}

void
JobMetrics::endSpan(uint32_t index)
{
    vgiw_assert(index < spans_.size(), "endSpan of unknown span ", index);
    spans_[index].endNs = steadyNowNs();
    if (depth_ > 0)
        --depth_;
}

std::string
JobMetrics::countersJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : counters_.entries()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":" + jsonNumber(value);
    }
    out += "}";
    return out;
}

MetricSinkScope::MetricSinkScope(JobMetrics *sink) : previous_(t_sink)
{
    t_sink = sink;
}

MetricSinkScope::~MetricSinkScope() { t_sink = previous_; }

JobMetrics *
currentMetricSink()
{
    return t_sink;
}

void
MetricsCollector::reset(size_t num_jobs)
{
    jobs_.clear();
    jobs_.resize(num_jobs);
    labels_.clear();
    labels_.resize(num_jobs);
}

void
MetricsCollector::setLabel(size_t index, std::string label)
{
    labels_[index] = std::move(label);
}

std::string
MetricsCollector::chromeTraceJson() const
{
    // Rebase timestamps to the earliest span and renumber thread tags
    // by first appearance in submission order, so the only run-to-run
    // variance in the document is the timing itself.
    uint64_t base = ~uint64_t{0};
    for (const auto &jm : jobs_)
        for (const auto &s : jm.spans())
            if (s.endNs >= s.beginNs && s.endNs != 0)
                base = std::min(base, s.beginNs);
    std::unordered_map<uint64_t, unsigned> tids;

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buf[64];
    for (size_t i = 0; i < jobs_.size(); ++i) {
        for (const auto &s : jobs_[i].spans()) {
            if (s.endNs < s.beginNs || s.endNs == 0)
                continue;  // never closed: a crashed or torn span
            const auto [it, inserted] =
                tids.emplace(s.threadTag, unsigned(tids.size()));
            if (!first)
                out += ",";
            first = false;
            out += "{\"name\":\"" + jsonEscape(s.name) +
                   "\",\"cat\":\"job\",\"ph\":\"X\"";
            std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f",
                          double(s.beginNs - base) / 1e3,
                          double(s.endNs - s.beginNs) / 1e3);
            out += buf;
            std::snprintf(buf, sizeof buf, ",\"pid\":0,\"tid\":%u",
                          it->second);
            out += buf;
            out += ",\"args\":{\"job\":\"" + jsonEscape(labels_[i]) +
                   "\",\"depth\":" + std::to_string(s.depth) + "}}";
        }
    }
    out += "]}";
    return out;
}

} // namespace vgiw
