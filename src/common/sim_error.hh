/**
 * @file
 * The typed simulation-error taxonomy.
 *
 * A 1260-job design-space sweep must degrade per job, never per
 * process: every way a job can fail is classified into one of six
 * kinds, carried on the exception itself, recorded in the job's
 * result and emitted as `error_kind` in the JSON lines — so a sweep
 * report can distinguish "your config point is malformed" from "the
 * simulator hit an internal invariant violation" without string
 * matching.
 *
 *   config     — malformed SystemConfig / unknown workload or arch;
 *                rejected at job entry before any simulation state
 *   compile    — the kernel cannot be compiled for the architecture
 *                (e.g. a basic block that does not fit the MT-CGRF)
 *   functional — the functional execution (interpreter) failed
 *   golden     — the functional execution ran but mismatched the
 *                native golden reference
 *   watchdog   — replay exceeded its cycle ceiling or wall-clock
 *                deadline (livelock containment)
 *   internal   — an invariant violation (a captured vgiw_panic) or an
 *                unclassified exception escaping replay
 *   worker_crash — the worker *process* running the job died (SIGSEGV,
 *                abort, OOM kill, heartbeat silence); assigned by the
 *                shard supervisor, never by in-process code, since by
 *                definition the process that hit it cannot report it
 *   link_lost  — the *connection* to a remote sweep daemon died with
 *                the job in flight (TCP reset, handshake refusal,
 *                heartbeat silence on the socket); assigned by the
 *                remote pool. Distinct from worker_crash so a sweep
 *                report can separate "the remote machine's worker
 *                segfaulted" from "the network / daemon went away".
 */

#ifndef VGIW_COMMON_SIM_ERROR_HH
#define VGIW_COMMON_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vgiw
{

/** Classification of a per-job simulation failure. */
enum class SimErrorKind : uint8_t
{
    None,        ///< no error (the JobResult default)
    Config,      ///< malformed configuration, unknown workload/arch
    Compile,     ///< kernel does not compile for the architecture
    Functional,  ///< functional execution failed
    Golden,      ///< golden reference mismatch
    Watchdog,    ///< replay cycle ceiling / wall-clock deadline hit
    Internal,    ///< captured panic or unclassified replay exception
    WorkerCrash, ///< worker process died mid-job (shard supervisor)
    LinkLost,    ///< remote daemon link died mid-job (remote pool)
};

/** Stable lower-case name ("config", "watchdog", ...) for JSON. */
const char *simErrorKindName(SimErrorKind kind);

/** A typed, catchable simulation error. */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {}

    SimErrorKind kind() const { return kind_; }

  private:
    SimErrorKind kind_;
};

/**
 * A watchdog trip. Carries the partial progress counters at the moment
 * the replay was aborted, so the sweep report can still show how far
 * the job got (and how hot the livelock was spinning).
 */
class WatchdogError : public SimError
{
  public:
    WatchdogError(const std::string &what, uint64_t cycles,
                  uint64_t block_execs, uint64_t thread_ops)
        : SimError(SimErrorKind::Watchdog, what), cycles(cycles),
          dynBlockExecs(block_execs), dynThreadOps(thread_ops)
    {}

    uint64_t cycles;         ///< replay cycles at abort (model-defined)
    uint64_t dynBlockExecs;  ///< block executions replayed so far
    uint64_t dynThreadOps;   ///< thread operations replayed so far
};

/**
 * A vgiw_panic captured by a PanicCaptureScope instead of aborting the
 * process. Always SimErrorKind::Internal: a panic is by definition a
 * simulator bug, but one worker's bug must not kill the other 1259
 * jobs of a sweep.
 */
class SimPanic : public SimError
{
  public:
    explicit SimPanic(const std::string &what)
        : SimError(SimErrorKind::Internal, what)
    {}
};

/**
 * RAII guard: while at least one scope is alive on the current thread,
 * vgiw_panic / vgiw_assert throw SimPanic instead of std::abort(). The
 * experiment engine opens one around each job so an invariant
 * violation in a worker becomes a per-job `internal` failure.
 *
 * The scope is thread-local and nestable; it deliberately does NOT
 * leak into other threads — a panic on a thread nobody is guarding
 * still aborts, preserving fail-fast behaviour outside sweeps.
 */
class PanicCaptureScope
{
  public:
    PanicCaptureScope();
    ~PanicCaptureScope();
    PanicCaptureScope(const PanicCaptureScope &) = delete;
    PanicCaptureScope &operator=(const PanicCaptureScope &) = delete;

    /** Whether a scope is active on the calling thread. */
    static bool active();
};

} // namespace vgiw

#endif // VGIW_COMMON_SIM_ERROR_HH
