/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * user errors that prevent the simulation from continuing, warn() and
 * inform() for non-fatal status messages.
 */

#ifndef VGIW_COMMON_LOGGING_HH
#define VGIW_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace vgiw
{

namespace detail
{

/** Format a message from stream-able parts. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace vgiw

/**
 * Abort with a message. Use when something happens that should never
 * happen regardless of user input, i.e. an internal bug.
 */
#define vgiw_panic(...) \
    ::vgiw::detail::panicImpl(__FILE__, __LINE__, \
                              ::vgiw::detail::formatMessage(__VA_ARGS__))

/**
 * Exit with a message. Use when the simulation cannot continue because of
 * a user-level error (bad configuration, malformed kernel, ...).
 */
#define vgiw_fatal(...) \
    ::vgiw::detail::fatalImpl(__FILE__, __LINE__, \
                              ::vgiw::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable conditions. */
#define vgiw_warn(...) \
    ::vgiw::detail::warnImpl(::vgiw::detail::formatMessage(__VA_ARGS__))

/** Informative status message. */
#define vgiw_inform(...) \
    ::vgiw::detail::informImpl(::vgiw::detail::formatMessage(__VA_ARGS__))

/** Assert an invariant, panicking with a formatted message on failure. */
#define vgiw_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            vgiw_panic("assertion failed: " #cond " ", \
                       ::vgiw::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // VGIW_COMMON_LOGGING_HH
