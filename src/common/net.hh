/**
 * @file
 * Minimal TCP plumbing for the remote sweep service.
 *
 * The frame protocol (common/subprocess.hh) is transport-agnostic —
 * it only needs a file descriptor that delivers bytes in order. This
 * file provides the socket half: bind/listen for `vgiw_sweepd`,
 * connect-with-timeout for the `RemotePool` client, and the
 * SO_RCVTIMEO/SO_SNDTIMEO knobs that turn a stalled peer into a
 * `ReadStatus::Timeout` / failed write instead of a hung coordinator.
 *
 * Everything returns plain fds so the existing frame/poll machinery
 * works unchanged; errors come back as human-readable strings because
 * they end up verbatim in supervisor quarantine rows and daemon logs.
 *
 * Scope deliberately excluded: TLS, authentication, and multi-homed
 * listen lists. The service trusts its network (a lab fleet or an SSH
 * tunnel); DESIGN.md §16 records that boundary.
 */

#ifndef VGIW_COMMON_NET_HH
#define VGIW_COMMON_NET_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace vgiw
{

/** A parsed "host:port" endpoint. */
struct HostPort
{
    std::string host;
    uint16_t port = 0;
};

/**
 * Parse "host:port" (also "[v6::addr]:port"). Host may be empty only
 * when @p allowEmptyHost (listen-side "0.0.0.0" shorthand ":7433").
 * False with @p error set on malformed input — port 0 is allowed
 * (ephemeral bind) but non-numeric or out-of-range ports are not.
 */
bool parseHostPort(std::string_view spec, HostPort *out,
                   std::string *error, bool allowEmptyHost = false);

/**
 * Bind + listen on host:port. Returns the listening fd, or -1 with
 * @p error set. Port 0 binds an ephemeral port; the actual port is
 * written to @p boundPort (always written on success). SO_REUSEADDR is
 * set so a restarted daemon does not fight TIME_WAIT.
 */
int listenTcp(const std::string &host, uint16_t port, uint16_t *boundPort,
              std::string *error);

/**
 * Accept one connection (blocking; retries EINTR unless @p interruptible,
 * in which case EINTR returns -1 with errno preserved so the caller can
 * check its drain flag). Returns the connection fd or -1.
 */
int acceptTcp(int listenFd, bool interruptible = false);

/**
 * Connect to host:port with a bounded wait: a non-blocking connect
 * polled up to @p timeoutMs, then the socket is returned to blocking
 * mode. Returns the fd, or -1 with @p error set ("connection refused",
 * "connect timed out", resolver failures...). A refused connection
 * (daemon dead) fails fast; only a black-holed host pays the full
 * timeout.
 */
int connectTcp(const std::string &host, uint16_t port, uint64_t timeoutMs,
               std::string *error);

/**
 * Set SO_RCVTIMEO / SO_SNDTIMEO (milliseconds; 0 leaves that direction
 * unbounded). With a receive timeout, readFrame reports a stalled peer
 * as ReadStatus::Timeout; with a send timeout, writeFrame to a stalled
 * peer fails instead of blocking forever.
 */
bool setSocketTimeouts(int fd, uint64_t recvMs, uint64_t sendMs);

/** Close an fd if >= 0 (EINTR-safe best effort). */
void closeFd(int fd);

} // namespace vgiw

#endif // VGIW_COMMON_NET_HH
