#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/sim_error.hh"

namespace vgiw
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Under a PanicCaptureScope (an experiment-engine worker) an
    // invariant violation is a per-job failure, not a process abort:
    // throw a catchable SimPanic carrying the same diagnostic.
    if (PanicCaptureScope::active()) {
        throw SimPanic(msg + " (" + file + ":" + std::to_string(line) +
                       ")");
    }
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so that library users (and tests) can
    // observe fatal conditions without the process dying.
    throw std::runtime_error(msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace vgiw
