/**
 * @file
 * A small, fast, deterministic PRNG (xorshift128+) used by the workload
 * generators and property tests. Determinism across platforms matters more
 * here than statistical sophistication: every experiment must be exactly
 * reproducible.
 */

#ifndef VGIW_COMMON_RNG_HH
#define VGIW_COMMON_RNG_HH

#include <cstdint>

namespace vgiw
{

/** Deterministic xorshift128+ generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xorshift authors.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
    }

    uint64_t
    next()
    {
        uint64_t x = s0_;
        const uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint32_t
    nextUInt(uint32_t bound)
    {
        return uint32_t(next() % bound);
    }

    /** Uniform integer in [lo, hi]. */
    int32_t
    nextInt(int32_t lo, int32_t hi)
    {
        return lo + int32_t(next() % (uint64_t(hi) - lo + 1));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return float(next() >> 40) / float(1 << 24);
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(float p) { return nextFloat() < p; }

  private:
    uint64_t s0_;
    uint64_t s1_;
};

} // namespace vgiw

#endif // VGIW_COMMON_RNG_HH
