/**
 * @file
 * Process spawning and the framed wire protocol for supervised worker
 * fleets — over pipes (same-machine shards, PR 8) and TCP sockets
 * (remote sweep daemons, `vgiw_sweepd`).
 *
 * The in-process experiment engine contains every *soft* fault — a
 * typed exception, a watchdog trip, a captured panic — but a hard
 * fault (SIGSEGV, std::abort, an OOM kill) still destroys the whole
 * process and every in-flight job with it. The shard supervisor
 * (src/driver/worker_pool) moves job execution into forked child
 * processes so a hard fault costs one worker, not the sweep; this file
 * is the OS-facing layer underneath it:
 *
 *  - **spawnChild** — fork a child connected to the parent by two
 *    pipes (commands down, results up). The child runs a callable and
 *    `_exit`s, never unwinding the parent's stack or flushing its
 *    stdio twice. On Linux the child asks for SIGTERM on parent death
 *    (PR_SET_PDEATHSIG), so a crashed coordinator cannot leak workers.
 *  - **frames** — every message is length + type + FNV-1a checksum +
 *    payload. Pipes and sockets deliver bytes, not messages; the frame
 *    header re-creates message boundaries. The checksum covers the
 *    length and type bytes as well as the payload, so a flipped header
 *    bit is caught like a flipped payload bit. Detected corruption is
 *    split into two grades: `CorruptRecord` (the stream is still
 *    aligned — the declared payload length was plausible and fully
 *    consumed, only the checksum failed; the reader may skip exactly
 *    this record and keep parsing) and `Corrupt` (torn frame, mid-frame
 *    EOF, or an implausible length — the stream is desynchronised and
 *    must be abandoned).
 *  - **reaping** — waitpid wrappers that classify how a child ended
 *    (clean exit / signal / still running) and render it for error
 *    messages ("killed by signal 11 (SIGSEGV)").
 *
 * Blocking, signals, timeouts: reads and writes retry EINTR and short
 * transfers (pipes rarely split a 13-byte header; TCP will, and a
 * one-byte-at-a-time feed must reassemble — tests pin this). An EINTR
 * before the first byte returns `Interrupted` so a worker blocked
 * waiting for its next job can notice a SIGTERM drain promptly. On
 * sockets with SO_RCVTIMEO/SO_SNDTIMEO set, an expired timer surfaces
 * as `Timeout` — a peer that stalls mid-frame is detected instead of
 * hanging the coordinator forever (pipes never have timeouts set, so
 * the pipe transport never sees this status). Writers must
 * ignoreSigpipe() first: a write to a dead peer then fails with EPIPE
 * instead of killing the process — exactly the failure the supervisor
 * exists to contain.
 *
 * Endianness: headers use native byte order. For pipes the peers are
 * fork()s of one process; for TCP the handshake (FrameType::Hello)
 * carries a protocol version and the suite fingerprint, and the fleet
 * is assumed same-architecture — a mismatched peer fails the
 * handshake rather than silently misparsing frames.
 */

#ifndef VGIW_COMMON_SUBPROCESS_HH
#define VGIW_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include <sys/types.h>

namespace vgiw
{

/** Message types of the shard wire protocol (one byte on the wire). */
enum class FrameType : uint8_t
{
    Job = 1,       ///< coordinator -> worker: run this job index
    Result = 2,    ///< worker -> coordinator: one terminal job row
    Heartbeat = 3, ///< worker -> coordinator: liveness beacon
    Stats = 4,     ///< worker -> coordinator: final cache/store counters
    Shutdown = 5,  ///< coordinator -> worker: drain and exit cleanly
    Hello = 6,     ///< client -> daemon: version + sweep fingerprint
    HelloAck = 7,  ///< daemon -> client: accept/reject the handshake
    JobCrash = 8,  ///< daemon -> client: a local worker died on a job
};

/** One decoded message. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/** Outcome of readFrame. */
enum class ReadStatus
{
    Ok,            ///< a complete, checksum-valid frame was read
    Eof,           ///< orderly end of stream (peer closed the pipe)
    Interrupted,   ///< EINTR before any byte arrived (check drain flags)
    Timeout,       ///< SO_RCVTIMEO expired (sockets only): peer stalled
    CorruptRecord, ///< checksum mismatch but stream still aligned: the
                   ///< reader may skip this one record and continue
    Corrupt,       ///< torn frame, mid-frame EOF or oversized length:
                   ///< the stream is desynchronised, abandon it
    Error,         ///< read(2) failed
};

/** Frames larger than this are rejected as Corrupt: a length field
 * this big is a desynchronised stream, not a real message. */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame to @p fd: header (payload length, type, FNV-1a
 * checksum of length + type + payload) then the payload, retrying
 * partial writes and EINTR. False on any write failure (EPIPE when the
 * peer died — call ignoreSigpipe() once per process first; EAGAIN when
 * an SO_SNDTIMEO timer expired on a stalled socket).
 */
bool writeFrame(int fd, FrameType type, std::string_view payload);

/**
 * Read one frame from @p fd (blocking). EINTR before the first header
 * byte returns Interrupted; once a frame has started, reads are
 * retried until it completes or the stream ends (a mid-frame EOF is
 * Corrupt — the peer died mid-write). A checksum mismatch on a frame
 * whose length field was plausible is CorruptRecord: exactly
 * payload-length bytes were consumed, so the caller may skip the
 * record and keep reading the same stream.
 */
ReadStatus readFrame(int fd, Frame *out);

/**
 * Test hook: write a frame whose checksum is deliberately wrong but
 * whose length and type are valid, so the reader sees CorruptRecord
 * with the stream still aligned. Used by the corruption-recovery tests
 * and the `badframe`/`corruptframe` fault hooks; never by real traffic.
 */
bool writeCorruptFrameForTest(int fd, FrameType type,
                              std::string_view payload);

/**
 * Test hook: write a frame's header, sleep @p millis, then write the
 * payload — a peer that stalls mid-frame. Drives the reader's
 * SO_RCVTIMEO Timeout path (the `stallframe` network fault); never
 * used by real traffic.
 */
bool writeFrameStalledForTest(int fd, FrameType type,
                              std::string_view payload, int millis);

/** One spawned worker process and its two pipe ends (parent's view). */
struct ChildProcess
{
    pid_t pid = -1;
    int toChild = -1;   ///< write end: coordinator -> worker commands
    int fromChild = -1; ///< read end: worker -> coordinator frames
};

/**
 * Fork a child connected by two pipes. In the child, @p body runs with
 * (read fd, write fd) — its return value becomes the process exit code
 * via _exit (no unwinding, no atexit, no double stdio flush; stdout
 * and stderr are flushed in the parent before forking so buffered
 * output is not duplicated). False with @p error set if fork or pipe
 * creation fails.
 */
bool spawnChild(const std::function<int(int in_fd, int out_fd)> &body,
                ChildProcess *out, std::string *error = nullptr);

/** How a reaped child ended. */
enum class ChildState
{
    Running,  ///< still alive (WNOHANG poll)
    Exited,   ///< clean _exit/return; code holds the exit status
    Signaled, ///< killed by a signal; code holds the signal number
    Lost,     ///< waitpid failed (already reaped, or not our child)
};

struct ChildStatus
{
    ChildState state = ChildState::Running;
    int code = 0;  ///< exit status (Exited) or signal number (Signaled)
};

/** Non-blocking reap (WNOHANG). Running children stay running. */
ChildStatus pollChild(pid_t pid);

/** Blocking reap; retries EINTR. */
ChildStatus waitChild(pid_t pid);

/** "exited with status 3" / "killed by signal 11 (SIGSEGV)" ... */
std::string describeChildStatus(const ChildStatus &status);

/** Best-effort kill (ESRCH is fine: the child is already gone). */
void killChild(pid_t pid, int sig);

/**
 * Ignore SIGPIPE process-wide (idempotent). Any process that writes
 * frames to a peer that can die must call this once: the failure mode
 * for a dead peer must be an EPIPE write error the supervisor handles,
 * never a process-killing signal.
 */
void ignoreSigpipe();

} // namespace vgiw

#endif // VGIW_COMMON_SUBPROCESS_HH
