/**
 * @file
 * Process spawning and the framed pipe protocol for supervised worker
 * fleets.
 *
 * The in-process experiment engine contains every *soft* fault — a
 * typed exception, a watchdog trip, a captured panic — but a hard
 * fault (SIGSEGV, std::abort, an OOM kill) still destroys the whole
 * process and every in-flight job with it. The shard supervisor
 * (src/driver/worker_pool) moves job execution into forked child
 * processes so a hard fault costs one worker, not the sweep; this file
 * is the OS-facing layer underneath it:
 *
 *  - **spawnChild** — fork a child connected to the parent by two
 *    pipes (commands down, results up). The child runs a callable and
 *    `_exit`s, never unwinding the parent's stack or flushing its
 *    stdio twice. On Linux the child asks for SIGTERM on parent death
 *    (PR_SET_PDEATHSIG), so a crashed coordinator cannot leak workers.
 *  - **frames** — every message on a pipe is length + type + FNV-1a
 *    checksum + payload. Pipes deliver bytes, not messages; the frame
 *    header re-creates message boundaries, and the checksum turns a
 *    torn or corrupted write (a worker dying mid-frame) into a
 *    detectable `Corrupt` read instead of a desynchronised protocol.
 *  - **reaping** — waitpid wrappers that classify how a child ended
 *    (clean exit / signal / still running) and render it for error
 *    messages ("killed by signal 11 (SIGSEGV)").
 *
 * Blocking and signals: reads retry EINTR once any byte of a frame has
 * arrived (a frame, once started, is finished), but an EINTR before
 * the first byte returns `Interrupted` so a worker blocked waiting for
 * its next job can notice a SIGTERM drain promptly. Writers must
 * ignoreSigpipe() first: a write to a dead peer then fails with EPIPE
 * instead of killing the process — exactly the failure the supervisor
 * exists to contain.
 */

#ifndef VGIW_COMMON_SUBPROCESS_HH
#define VGIW_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include <sys/types.h>

namespace vgiw
{

/** Message types of the shard wire protocol (one byte on the wire). */
enum class FrameType : uint8_t
{
    Job = 1,       ///< coordinator -> worker: run this job index
    Result = 2,    ///< worker -> coordinator: one terminal job row
    Heartbeat = 3, ///< worker -> coordinator: liveness beacon
    Stats = 4,     ///< worker -> coordinator: final cache/store counters
    Shutdown = 5,  ///< coordinator -> worker: drain and exit cleanly
};

/** One decoded message. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/** Outcome of readFrame. */
enum class ReadStatus
{
    Ok,          ///< a complete, checksum-valid frame was read
    Eof,         ///< orderly end of stream (peer closed the pipe)
    Interrupted, ///< EINTR before any byte arrived (check drain flags)
    Corrupt,     ///< torn frame, bad checksum or oversized length
    Error,       ///< read(2) failed
};

/** Frames larger than this are rejected as Corrupt: a length field
 * this big is a desynchronised stream, not a real message. */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame to @p fd: header (payload length, type, FNV-1a
 * checksum of the payload) then the payload, retrying partial writes
 * and EINTR. False on any write failure (EPIPE when the peer died —
 * call ignoreSigpipe() once per process first).
 */
bool writeFrame(int fd, FrameType type, std::string_view payload);

/**
 * Read one frame from @p fd (blocking). EINTR before the first header
 * byte returns Interrupted; once a frame has started, reads are
 * retried until it completes or the stream ends (a mid-frame EOF is
 * Corrupt — the peer died mid-write).
 */
ReadStatus readFrame(int fd, Frame *out);

/** One spawned worker process and its two pipe ends (parent's view). */
struct ChildProcess
{
    pid_t pid = -1;
    int toChild = -1;   ///< write end: coordinator -> worker commands
    int fromChild = -1; ///< read end: worker -> coordinator frames
};

/**
 * Fork a child connected by two pipes. In the child, @p body runs with
 * (read fd, write fd) — its return value becomes the process exit code
 * via _exit (no unwinding, no atexit, no double stdio flush; stdout
 * and stderr are flushed in the parent before forking so buffered
 * output is not duplicated). False with @p error set if fork or pipe
 * creation fails.
 */
bool spawnChild(const std::function<int(int in_fd, int out_fd)> &body,
                ChildProcess *out, std::string *error = nullptr);

/** How a reaped child ended. */
enum class ChildState
{
    Running,  ///< still alive (WNOHANG poll)
    Exited,   ///< clean _exit/return; code holds the exit status
    Signaled, ///< killed by a signal; code holds the signal number
    Lost,     ///< waitpid failed (already reaped, or not our child)
};

struct ChildStatus
{
    ChildState state = ChildState::Running;
    int code = 0;  ///< exit status (Exited) or signal number (Signaled)
};

/** Non-blocking reap (WNOHANG). Running children stay running. */
ChildStatus pollChild(pid_t pid);

/** Blocking reap; retries EINTR. */
ChildStatus waitChild(pid_t pid);

/** "exited with status 3" / "killed by signal 11 (SIGSEGV)" ... */
std::string describeChildStatus(const ChildStatus &status);

/** Best-effort kill (ESRCH is fine: the child is already gone). */
void killChild(pid_t pid, int sig);

/**
 * Ignore SIGPIPE process-wide (idempotent). Any process that writes
 * frames to a peer that can die must call this once: the failure mode
 * for a dead peer must be an EPIPE write error the supervisor handles,
 * never a process-killing signal.
 */
void ignoreSigpipe();

} // namespace vgiw

#endif // VGIW_COMMON_SUBPROCESS_HH
