#include "common/scalar.hh"

namespace vgiw
{

const char *
typeName(Type t)
{
    switch (t) {
      case Type::I32: return "i32";
      case Type::U32: return "u32";
      case Type::F32: return "f32";
    }
    return "?";
}

} // namespace vgiw
