#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace vgiw
{

namespace
{

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

/** Directory component of @p path ("." when there is none). */
std::string
dirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

/** fsync the directory holding @p path so a rename in it is durable. */
bool
syncDir(const std::string &path, std::string *error)
{
    const std::string dir = dirOf(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        setError(error, "open directory '" + dir + "'");
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok)
        setError(error, "fsync directory '" + dir + "'");
    ::close(fd);
    return ok;
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &contents,
                std::string *error)
{
    // Same-directory temporary (rename must not cross filesystems);
    // the pid suffix keeps concurrent writers from clobbering each
    // other's in-flight temp.
    const std::string tmp =
        path + ".tmp." + std::to_string(long(::getpid()));

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "open '" + tmp + "'");
        return false;
    }

    const char *p = contents.data();
    size_t left = contents.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "write '" + tmp + "'");
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        left -= size_t(n);
    }

    if (::fsync(fd) != 0) {
        setError(error, "fsync '" + tmp + "'");
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setError(error, "close '" + tmp + "'");
        ::unlink(tmp.c_str());
        return false;
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename '" + tmp + "' -> '" + path + "'");
        ::unlink(tmp.c_str());
        return false;
    }
    return syncDir(path, error);
}

bool
rotateFile(const std::string &path, const std::string &suffix,
           std::string *error)
{
    if (::access(path.c_str(), F_OK) != 0)
        return true;  // nothing to rotate
    const std::string aside = path + suffix;
    if (::rename(path.c_str(), aside.c_str()) != 0) {
        setError(error, "rename '" + path + "' -> '" + aside + "'");
        return false;
    }
    return syncDir(path, error);
}

} // namespace vgiw
