/**
 * @file
 * The shared bitmap kernel layer: every 64-bit-word loop in the
 * simulator — the Control Vector Table's read-and-reset drains and
 * OR-merges (Section 3.3), thread-batch packing (Section 3.2), the
 * Fermi coalescer's sorted line array, BitVector itself — goes through
 * the WordSpan kernels defined here.
 *
 * Two backends implement the same contracts:
 *
 *  - `scalar::` — portable word-at-a-time loops, always compiled.
 *  - `simd::`   — AVX2 implementations processing four words (one CVT
 *    cache line's worth of control-vector bits) per step. Compiled only
 *    when the translation unit is built with AVX2; otherwise the names
 *    alias the scalar kernels so call sites never need #ifdefs.
 *
 * Backend selection is configure-time (`-DVGIW_SIMD=OFF` defines
 * VGIW_BITOPS_FORCE_SCALAR and pins the dispatchers to scalar) with a
 * runtime escape hatch: setting VGIW_FORCE_SCALAR_BITOPS=1 in the
 * environment forces the scalar backend in an AVX2 build — this is how
 * the suite bit-identity ctest runs both backends from one binary.
 *
 * Contract: for every kernel, scalar and SIMD results are bit-identical
 * (pinned by the randomized differential test in tests/common). The
 * kernels are pure data movement — no counters, no asserts — so callers
 * keep their own access accounting (CvtStats) unchanged.
 */

#ifndef VGIW_COMMON_BITOPS_HH
#define VGIW_COMMON_BITOPS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && !defined(VGIW_BITOPS_FORCE_SCALAR)
#define VGIW_BITOPS_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace vgiw
{
namespace bitops
{

/** A mutable view of 64-bit words (the CVT delivers 64-bit words). */
struct WordSpan
{
    uint64_t *data = nullptr;
    size_t words = 0;
};

/** An immutable view of 64-bit words. */
struct ConstWordSpan
{
    const uint64_t *data = nullptr;
    size_t words = 0;

    ConstWordSpan() = default;
    ConstWordSpan(const uint64_t *d, size_t n) : data(d), words(n) {}
    ConstWordSpan(WordSpan s) : data(s.data), words(s.words) {}
};

/** "scalar" or "avx2" — recorded by bench_throughput for perf context. */
const char *backendName();

/** True when VGIW_FORCE_SCALAR_BITOPS=1 is set (read once, cached). */
bool runtimeForceScalar();

// ---------------------------------------------------------------------
// Scalar backend: the reference semantics. Always compiled; the
// differential test compares the dispatched backend against these.
// ---------------------------------------------------------------------

namespace scalar
{

inline void
orInto(WordSpan dst, ConstWordSpan src)
{
    for (size_t i = 0; i < dst.words; ++i)
        dst.data[i] |= src.data[i];
}

inline uint64_t
popcount(ConstWordSpan s)
{
    uint64_t n = 0;
    for (size_t i = 0; i < s.words; ++i)
        n += uint64_t(std::popcount(s.data[i]));
    return n;
}

inline bool
any(ConstWordSpan s)
{
    for (size_t i = 0; i < s.words; ++i)
        if (s.data[i])
            return true;
    return false;
}

/** Index of the first set bit, or words*64 when none. */
inline size_t
findFirstSet(ConstWordSpan s)
{
    for (size_t i = 0; i < s.words; ++i)
        if (s.data[i])
            return i * 64 + size_t(std::countr_zero(s.data[i]));
    return s.words * 64;
}

inline void
clear(WordSpan s)
{
    for (size_t i = 0; i < s.words; ++i)
        s.data[i] = 0;
}

inline bool
equal(ConstWordSpan a, ConstWordSpan b)
{
    if (a.words != b.words)
        return false;
    for (size_t i = 0; i < a.words; ++i)
        if (a.data[i] != b.data[i])
            return false;
    return true;
}

/** OR ones into every bit position in [0, nbits). */
inline void
setFirstN(WordSpan s, size_t nbits)
{
    for (size_t i = 0; i < nbits / 64; ++i)
        s.data[i] = ~uint64_t{0};
    if (nbits % 64)
        s.data[nbits / 64] |= (uint64_t{1} << (nbits % 64)) - 1;
}

/**
 * Write the bit indices of @p word (offset by @p base) to @p out in
 * ascending order; returns the number written (<= 64).
 */
inline size_t
expandWord(uint64_t word, uint32_t base, uint32_t *out)
{
    size_t n = 0;
    while (word) {
        out[n++] = base + uint32_t(std::countr_zero(word));
        word &= word - 1;
    }
    return n;
}

/**
 * Read-and-reset every word of @p s, expanding the set bits into
 * ascending indices at @p out (capacity >= words*64). Returns the
 * count. Models the CVT's read-and-reset port applied to a whole
 * control vector.
 */
inline size_t
drainToIndices(WordSpan s, uint32_t *out)
{
    size_t n = 0;
    for (size_t w = 0; w < s.words; ++w) {
        uint64_t bits = s.data[w];
        if (!bits)
            continue;
        s.data[w] = 0;
        n += expandWord(bits, uint32_t(w * 64), out + n);
    }
    return n;
}

/**
 * Insert @p v into the ascending array @p vals of length @p n unless
 * already present; returns the new length. The Fermi coalescer's
 * sorted line stack (at most 32 lanes -> no heap).
 */
inline size_t
insertSortedUnique(uint32_t *vals, size_t n, uint32_t v)
{
    size_t pos = 0;
    while (pos < n && vals[pos] < v)
        ++pos;
    if (pos < n && vals[pos] == v)
        return n;
    for (size_t j = n; j > pos; --j)
        vals[j] = vals[j - 1];
    vals[pos] = v;
    return n + 1;
}

} // namespace scalar

// ---------------------------------------------------------------------
// SIMD backend (AVX2): four 64-bit words per step. When the TU is not
// built with AVX2 the names alias the scalar kernels, so the dispatch
// layer below is always well-formed.
// ---------------------------------------------------------------------

#if VGIW_BITOPS_HAVE_AVX2

namespace simd
{

inline void
orInto(WordSpan dst, ConstWordSpan src)
{
    size_t i = 0;
    for (; i + 4 <= dst.words; i += 4) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst.data + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src.data + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst.data + i),
                            _mm256_or_si256(a, b));
    }
    for (; i < dst.words; ++i)
        dst.data[i] |= src.data[i];
}

inline uint64_t
popcount(ConstWordSpan s)
{
    // Hardware POPCNT on each word already saturates the port; the
    // vector trick (pshufb nibble LUT) only wins on much longer runs
    // than a CVT tile. Unrolled-by-4 to match the load width.
    uint64_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
    size_t i = 0;
    for (; i + 4 <= s.words; i += 4) {
        n0 += uint64_t(std::popcount(s.data[i]));
        n1 += uint64_t(std::popcount(s.data[i + 1]));
        n2 += uint64_t(std::popcount(s.data[i + 2]));
        n3 += uint64_t(std::popcount(s.data[i + 3]));
    }
    uint64_t n = n0 + n1 + n2 + n3;
    for (; i < s.words; ++i)
        n += uint64_t(std::popcount(s.data[i]));
    return n;
}

inline bool
any(ConstWordSpan s)
{
    size_t i = 0;
    for (; i + 4 <= s.words; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s.data + i));
        if (!_mm256_testz_si256(v, v))
            return true;
    }
    for (; i < s.words; ++i)
        if (s.data[i])
            return true;
    return false;
}

inline size_t
findFirstSet(ConstWordSpan s)
{
    size_t i = 0;
    for (; i + 4 <= s.words; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s.data + i));
        if (!_mm256_testz_si256(v, v)) {
            for (size_t j = i; j < i + 4; ++j)
                if (s.data[j])
                    return j * 64 + size_t(std::countr_zero(s.data[j]));
        }
    }
    for (; i < s.words; ++i)
        if (s.data[i])
            return i * 64 + size_t(std::countr_zero(s.data[i]));
    return s.words * 64;
}

inline void
clear(WordSpan s)
{
    std::memset(s.data, 0, s.words * sizeof(uint64_t));
}

inline bool
equal(ConstWordSpan a, ConstWordSpan b)
{
    if (a.words != b.words)
        return false;
    size_t i = 0;
    for (; i + 4 <= a.words; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data + i));
        const __m256i y = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.data + i));
        const __m256i d = _mm256_xor_si256(x, y);
        if (!_mm256_testz_si256(d, d))
            return false;
    }
    for (; i < a.words; ++i)
        if (a.data[i] != b.data[i])
            return false;
    return true;
}

inline void
setFirstN(WordSpan s, size_t nbits)
{
    std::memset(s.data, 0xff, (nbits / 64) * sizeof(uint64_t));
    if (nbits % 64)
        s.data[nbits / 64] |= (uint64_t{1} << (nbits % 64)) - 1;
}

/** A dense word expands to 64 consecutive IDs with vector stores. */
inline size_t
expandWord(uint64_t word, uint32_t base, uint32_t *out)
{
    if (word == ~uint64_t{0}) {
        const __m256i step = _mm256_set1_epi32(8);
        __m256i v = _mm256_add_epi32(
            _mm256_set1_epi32(int(base)),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        for (int k = 0; k < 8; ++k) {
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 8 * k),
                                v);
            v = _mm256_add_epi32(v, step);
        }
        return 64;
    }
    return scalar::expandWord(word, base, out);
}

inline size_t
drainToIndices(WordSpan s, uint32_t *out)
{
    size_t n = 0;
    size_t w = 0;
    for (; w + 4 <= s.words; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s.data + w));
        if (_mm256_testz_si256(v, v))
            continue;  // a whole empty cache line skipped in one test
        for (size_t j = w; j < w + 4; ++j) {
            const uint64_t bits = s.data[j];
            if (!bits)
                continue;
            s.data[j] = 0;
            n += expandWord(bits, uint32_t(j * 64), out + n);
        }
    }
    for (; w < s.words; ++w) {
        const uint64_t bits = s.data[w];
        if (!bits)
            continue;
        s.data[w] = 0;
        n += expandWord(bits, uint32_t(w * 64), out + n);
    }
    return n;
}

inline size_t
insertSortedUnique(uint32_t *vals, size_t n, uint32_t v)
{
    // Vector search for the insertion point: count elements < v via
    // signed compare (line numbers are addr/128 < 2^25, sign-safe).
    const __m256i key = _mm256_set1_epi32(int(v));
    size_t pos = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vals + i));
        const unsigned lt = unsigned(_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(key, chunk))));
        pos += size_t(std::popcount(lt));
        if (lt != 0xffu)
            break;
    }
    if (i + 8 > n || pos < i + 8) {
        while (pos < n && vals[pos] < v)
            ++pos;
    }
    if (pos < n && vals[pos] == v)
        return n;
    for (size_t j = n; j > pos; --j)
        vals[j] = vals[j - 1];
    vals[pos] = v;
    return n + 1;
}

} // namespace simd

#else  // !VGIW_BITOPS_HAVE_AVX2

namespace simd = scalar;

#endif // VGIW_BITOPS_HAVE_AVX2

// ---------------------------------------------------------------------
// Dispatch: configure-time backend choice, runtime scalar override.
// One predictable branch per call in AVX2 builds; compiled straight to
// the scalar kernels otherwise.
// ---------------------------------------------------------------------

#if VGIW_BITOPS_HAVE_AVX2
#define VGIW_BITOPS_DISPATCH(call)                                        \
    (runtimeForceScalar() ? scalar::call : simd::call)
#else
#define VGIW_BITOPS_DISPATCH(call) (scalar::call)
#endif

inline void
orInto(WordSpan dst, ConstWordSpan src)
{
    VGIW_BITOPS_DISPATCH(orInto(dst, src));
}

inline uint64_t
popcount(ConstWordSpan s)
{
    return VGIW_BITOPS_DISPATCH(popcount(s));
}

inline bool
any(ConstWordSpan s)
{
    return VGIW_BITOPS_DISPATCH(any(s));
}

inline size_t
findFirstSet(ConstWordSpan s)
{
    return VGIW_BITOPS_DISPATCH(findFirstSet(s));
}

inline void
clear(WordSpan s)
{
    VGIW_BITOPS_DISPATCH(clear(s));
}

inline bool
equal(ConstWordSpan a, ConstWordSpan b)
{
    return VGIW_BITOPS_DISPATCH(equal(a, b));
}

inline void
setFirstN(WordSpan s, size_t nbits)
{
    VGIW_BITOPS_DISPATCH(setFirstN(s, nbits));
}

inline size_t
expandWord(uint64_t word, uint32_t base, uint32_t *out)
{
    return VGIW_BITOPS_DISPATCH(expandWord(word, base, out));
}

inline size_t
drainToIndices(WordSpan s, uint32_t *out)
{
    return VGIW_BITOPS_DISPATCH(drainToIndices(s, out));
}

inline size_t
insertSortedUnique(uint32_t *vals, size_t n, uint32_t v)
{
    return VGIW_BITOPS_DISPATCH(insertSortedUnique(vals, n, v));
}

#undef VGIW_BITOPS_DISPATCH

/**
 * Visit ascending thread IDs grouped into 64-aligned windows: @p emit
 * is called once per populated window with (base, bitmap) — the
 * <base, bitmap> batch packets of Section 3.2. Scalar by contract: the
 * grouping is a sequential scan whose output order is load-bearing.
 */
template <class Emit>
inline void
foreachAlignedWindow(const uint32_t *tids, size_t n, Emit &&emit)
{
    size_t i = 0;
    while (i < n) {
        const uint32_t base = tids[i] & ~63u;
        uint64_t bitmap = 0;
        do {
            bitmap |= uint64_t{1} << (tids[i] & 63u);
            ++i;
        } while (i < n && (tids[i] & ~63u) == base);
        emit(base, bitmap);
    }
}

} // namespace bitops
} // namespace vgiw

#endif // VGIW_COMMON_BITOPS_HH
