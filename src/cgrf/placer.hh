/**
 * @file
 * Greedy place-and-route of dataflow graphs onto the MT-CGRF grid, with
 * basic-block replication (Section 3.1: "for small basic blocks, the
 * compiler includes multiple replicas of a block's graph in the generated
 * configuration" to maximise utilisation and thread-level parallelism).
 *
 * This layer is shared by three of the four core models, which keeps
 * their critical paths and hop counts directly comparable:
 *
 *  - VGIW places one block DFG per configuration, replicated to fill
 *    the grid (replication > 1);
 *  - SGMF places the *whole kernel* CDFG at once (replication forced
 *    to 1; does not fit => the kernel is unsupported);
 *  - DICE places one block DFG per configuration, unreplicated, then
 *    folds it onto a smaller array via a modulo schedule — the placed
 *    criticalPathCycles seeds the schedule makespan and the DFG's unit
 *    needs feed the reservation-table initiation interval
 *    (src/dice/dice_core.cc).
 */

#ifndef VGIW_CGRF_PLACER_HH
#define VGIW_CGRF_PLACER_HH

#include <vector>

#include "cgrf/dataflow_graph.hh"
#include "cgrf/grid.hh"
#include "cgrf/interconnect.hh"

namespace vgiw
{

/** Result of placing one block (possibly replicated) on the grid. */
struct PlacedBlock
{
    bool fits = false;        ///< at least one replica placed
    int replicas = 0;
    UnitCounts needsPerReplica{};
    int nodesPerReplica = 0;
    /** Longest latency path through one replica, including hop cycles. */
    int criticalPathCycles = 0;
    /** Total token-hop count per thread execution (energy proxy). */
    int edgeHopsPerThread = 0;
    int edgesPerThread = 0;
    /** Units occupied over all replicas. */
    int unitsUsed = 0;

    double
    utilization(int grid_units) const
    {
        return grid_units ? double(unitsUsed) / grid_units : 0.0;
    }
};

/** Result of mapping an entire kernel spatially (the SGMF use case). */
struct PlacedKernel
{
    bool fits = false;
    std::vector<PlacedBlock> blocks;  ///< per-block placement (1 replica)
    int unitsUsed = 0;
    UnitCounts totalNeeds{};
};

/** Greedy wire-length-minimising placer. */
class Placer
{
  public:
    explicit Placer(const GridConfig &grid);

    /**
     * Place @p dfg with as many replicas as fit, up to @p max_replicas.
     * Replication is bounded by per-kind unit capacity (each replica
     * needs its own initiator + terminator CVU pair, so the Table 1 grid
     * caps replication at 8).
     */
    PlacedBlock place(const Dfg &dfg, int max_replicas = 8) const;

    /**
     * Place every block of a kernel simultaneously (one replica each),
     * sharing the grid — the SGMF whole-kernel static mapping. fits is
     * false when the kernel exceeds the fabric's capacity.
     */
    PlacedKernel placeKernel(const std::vector<Dfg> &block_dfgs) const;

    const GridConfig &grid() const { return grid_; }

  private:
    struct FreeCells;

    /** Place one replica; returns false (untouched stats) if it fails. */
    bool placeOne(const Dfg &dfg, FreeCells &free, PlacedBlock &out) const;

    GridConfig grid_;
    Interconnect net_;
};

} // namespace vgiw

#endif // VGIW_CGRF_PLACER_HH
