#include "cgrf/dataflow_graph.hh"

#include <map>

#include "common/logging.hh"

namespace vgiw
{

UnitCounts
Dfg::unitNeeds() const
{
    UnitCounts c{};
    for (const auto &n : nodes) {
        if (n.aliasOf < 0)
            ++countOf(c, n.unit);
    }
    return c;
}

namespace
{

int
latencyFor(ResourceClass rc, const CgrfTiming &t)
{
    switch (rc) {
      case ResourceClass::IntAlu: return t.intAluLatency;
      case ResourceClass::FpAlu: return t.fpAluLatency;
      case ResourceClass::Scu: return t.scuLatency;
      case ResourceClass::Mem: return t.ldstLatency;
    }
    return 1;
}

UnitKind
unitFor(ResourceClass rc)
{
    switch (rc) {
      case ResourceClass::IntAlu:
      case ResourceClass::FpAlu:
        return UnitKind::FpAlu;
      case ResourceClass::Scu:
        return UnitKind::Scu;
      case ResourceClass::Mem:
        return UnitKind::LdSt;
    }
    return UnitKind::FpAlu;
}

} // namespace

Dfg
buildBlockDfg(const BasicBlock &blk, const CgrfTiming &t)
{
    Dfg g;

    auto add_node = [&g](UnitKind u, DfgRole r, int lat) {
        g.nodes.push_back(DfgNode{u, r, lat, -1, -1, -1});
        return int(g.nodes.size()) - 1;
    };
    auto add_edge = [&g](int from, int to) {
        g.edges.push_back(DfgEdge{from, to});
    };

    const int initiator = add_node(UnitKind::Cvu, DfgRole::Initiator,
                                   t.cvuLatency);

    // One LVU read node per distinct live value consumed by the block.
    std::map<int, int> livein_node;
    auto livein_for = [&](uint16_t lvid) {
        auto it = livein_node.find(lvid);
        if (it != livein_node.end())
            return it->second;
        int n = add_node(UnitKind::Lvu, DfgRole::LiveInRead, t.lvuLatency);
        g.nodes[n].lvid = lvid;
        // The LVU indexes the LVC by <lvid, tid>: the thread ID token
        // comes from the initiator.
        add_edge(initiator, n);
        livein_node.emplace(lvid, n);
        return n;
    };

    // Scan operands first so LVU read nodes precede instruction nodes
    // that consume them (keeps node order topological).
    auto visit_operand = [&](const Operand &o) {
        if (o.kind == OperandKind::LiveIn)
            livein_for(o.index);
    };
    for (const auto &in : blk.instrs)
        for (const auto &s : in.src)
            visit_operand(s);
    for (const auto &lo : blk.liveOuts)
        visit_operand(lo.value);
    visit_operand(blk.term.cond);

    // Instruction nodes.
    std::vector<int> instr_node(blk.instrs.size(), -1);
    int last_load_node = -1;

    auto source_node = [&](const Operand &o) -> int {
        switch (o.kind) {
          case OperandKind::Local: return instr_node[o.index];
          case OperandKind::LiveIn: return livein_node.at(o.index);
          case OperandKind::Special: return initiator;
          case OperandKind::Const:
          case OperandKind::Param:
          case OperandKind::None:
            return -1;  // baked into the unit's configuration registers
        }
        return -1;
    };

    for (size_t i = 0; i < blk.instrs.size(); ++i) {
        const Instr &in = blk.instrs[i];
        const ResourceClass rc = in.resource();

        // Intra-thread memory ordering: a store must not issue before
        // program-earlier loads have completed (write-after-read). The
        // compiler places a join SJU between the last preceding load and
        // the store (Section 3.5, split/join units).
        int join = -1;
        if (in.op == Opcode::Store && last_load_node >= 0) {
            join = add_node(UnitKind::Sju, DfgRole::Join, t.sjuLatency);
            add_edge(last_load_node, join);
        }

        const int n = add_node(unitFor(rc), DfgRole::Instr,
                               latencyFor(rc, t));
        g.nodes[n].instrIndex = int(i);
        instr_node[i] = n;

        bool has_input = false;
        for (const auto &s : in.src) {
            int src = source_node(s);
            if (src >= 0) {
                add_edge(src, n);
                has_input = true;
            }
        }
        if (join >= 0) {
            add_edge(join, n);
            has_input = true;
        }
        if (!has_input) {
            // All-constant node: it still needs the thread's trigger
            // token to fire once per thread.
            add_edge(initiator, n);
        }

        if (in.op == Opcode::Load)
            last_load_node = n;
    }

    // Live-out LVU write nodes. When the block also reads the same live
    // value, the read node's LVU serves the write too (one configured
    // lvid per unit) — the write aliases the read's cell.
    for (const auto &lo : blk.liveOuts) {
        const int n = add_node(UnitKind::Lvu, DfgRole::LiveOutWrite,
                               t.lvuLatency);
        g.nodes[n].lvid = lo.lvid;
        auto shared = livein_node.find(lo.lvid);
        if (shared != livein_node.end())
            g.nodes[n].aliasOf = shared->second;
        const int src = source_node(lo.value);
        add_edge(src >= 0 ? src : initiator, n);
    }

    // Terminator CVU: consumes the branch condition (or fires off the
    // initiator token for jumps/exits) and reports batches to the BBS.
    const int term = add_node(UnitKind::Cvu, DfgRole::Terminator,
                              t.cvuLatency);
    {
        const int src = blk.term.kind == TermKind::Branch
                            ? source_node(blk.term.cond)
                            : -1;
        add_edge(src >= 0 ? src : initiator, term);
    }

    // Fanout extension: the interconnect feeds at most 4 consumers per
    // producer; wider fanouts are served through split SJUs, each adding
    // capacity for 3 more consumers (1 in, 4 out). The splits are
    // accounted as nodes for capacity/energy; routing latency through
    // them is folded into the hop model.
    std::vector<int> outdeg(g.nodes.size(), 0);
    for (const auto &e : g.edges)
        ++outdeg[e.from];
    const size_t n_before_splits = g.nodes.size();
    for (size_t n = 0; n < n_before_splits; ++n) {
        int extra = outdeg[n] - 4;
        while (extra > 0) {
            add_node(UnitKind::Sju, DfgRole::Split, t.sjuLatency);
            extra -= 3;
        }
    }

    return g;
}

} // namespace vgiw
