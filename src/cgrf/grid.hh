/**
 * @file
 * The MT-CGRF grid: unit kinds, unit counts and physical layout.
 *
 * Table 1: a VGIW core has 108 interconnected units — 32 merged FPU-ALU
 * compute units, 12 special compute units (SCU), 16 load/store units,
 * 16 live-value units (LVU), 16 split/join units (SJU) and 16 control
 * vector units (CVU). Load/store and live-value units sit on the grid
 * perimeter next to the banked L1 / LVC crossbars (Section 3.5).
 *
 * The grid doubles as the shared placement substrate for every
 * CGRA-flavoured core model: VGIW and SGMF execute on it directly,
 * and DICE routes on the same template before folding the placement
 * onto its smaller statically scheduled array (UnitCounts also names
 * that array's per-kind sizes, DiceConfig::arrayCounts).
 */

#ifndef VGIW_CGRF_GRID_HH
#define VGIW_CGRF_GRID_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vgiw
{

/** Kinds of functional unit in the MT-CGRF fabric. */
enum class UnitKind : uint8_t
{
    FpAlu,  ///< merged FPU-ALU compute unit
    Scu,    ///< special compute unit (non-pipelined circuits)
    LdSt,   ///< load/store unit (perimeter)
    Lvu,    ///< live-value load/store unit (perimeter)
    Sju,    ///< split/join unit
    Cvu,    ///< control vector unit (thread initiator / terminator)
};

constexpr int kNumUnitKinds = 6;

const char *unitKindName(UnitKind k);

/** Counts per unit kind, indexable by UnitKind. */
using UnitCounts = std::array<int, kNumUnitKinds>;

inline int &countOf(UnitCounts &c, UnitKind k)
{ return c[std::size_t(k)]; }
inline int countOf(const UnitCounts &c, UnitKind k)
{ return c[std::size_t(k)]; }

inline int
totalUnits(const UnitCounts &c)
{
    int n = 0;
    for (int v : c)
        n += v;
    return n;
}

/** A grid coordinate. */
struct GridPos
{
    int x = 0;
    int y = 0;
};

/** Static description of one MT-CGRF grid. */
struct GridConfig
{
    int width = 12;
    int height = 9;
    UnitCounts counts{};                ///< units per kind
    std::vector<UnitKind> kindAt;       ///< kind of the unit at each cell
    std::vector<GridPos> positions;     ///< position of each cell index

    int numUnits() const { return width * height; }

    /**
     * The Table 1 configuration: 12x9 grid, 32 FPU-ALU, 12 SCU, 16 LDST,
     * 16 LVU, 16 SJU, 16 CVU, with memory-facing units on the perimeter.
     */
    static GridConfig makeTable1();
};

/**
 * Structural validity check: positive dimensions, non-negative per-kind
 * counts that exactly fill the grid, and kindAt/positions tables sized
 * (and tallying) to match. Returns an empty string when the grid is
 * well-formed, otherwise a one-line diagnostic — config validation
 * turns what would be a deep placer assertion into a fast, readable
 * `config`-kind job failure.
 */
std::string validateGridConfig(const GridConfig &g);

/**
 * Compact textual identity of a grid (shape + per-kind counts), used in
 * CoreModel::compileKey() fingerprints. Two grids with equal
 * fingerprints place identically.
 */
inline std::string
gridFingerprint(const GridConfig &g)
{
    std::string s =
        std::to_string(g.width) + "x" + std::to_string(g.height);
    for (int c : g.counts)
        s += "," + std::to_string(c);
    return s;
}

} // namespace vgiw

#endif // VGIW_CGRF_GRID_HH
