/**
 * @file
 * Compiler pass that splits basic blocks whose dataflow graphs exceed
 * the MT-CGRF's per-kind unit capacity.
 *
 * The von Neumann side of VGIW removes any limit on *kernel* size
 * (Section 1), but each individual graph instruction word must still fit
 * the fabric. The compiler guarantees that by cutting an oversized block
 * in two: the prefix publishes every value the suffix consumes as a
 * fresh live value (an LVC round-trip), and the suffix inherits the
 * original terminator and live-outs. The pass iterates until every
 * block's placed DFG fits a single replica.
 */

#ifndef VGIW_CGRF_BLOCK_SPLITTER_HH
#define VGIW_CGRF_BLOCK_SPLITTER_HH

#include "cgrf/dataflow_graph.hh"
#include "cgrf/grid.hh"
#include "ir/kernel.hh"

namespace vgiw
{

/**
 * Return a kernel in which every block fits @p grid (single replica).
 * Blocks already fitting are untouched; oversized ones are split, with
 * block IDs renumbered so the reverse-post-order property (forward edges
 * to larger IDs) is preserved. Fatal if a single instruction cannot fit.
 */
Kernel splitOversizedBlocks(Kernel kernel,
                            const GridConfig &grid = GridConfig::makeTable1(),
                            const CgrfTiming &timing = {});

} // namespace vgiw

#endif // VGIW_CGRF_BLOCK_SPLITTER_HH
