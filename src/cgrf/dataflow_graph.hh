/**
 * @file
 * Construction of a basic block's dataflow graph ("graph instruction
 * word") as it is mapped onto MT-CGRF units.
 *
 * Beyond one node per IR instruction, the mapping materialises the
 * hardware helpers of Section 3.5: an initiator CVU that injects thread
 * IDs, a terminator CVU that resolves the block's branch, one LVU node
 * per distinct live value read or written, split SJUs for fanouts beyond
 * the interconnect degree, and join SJUs that preserve intra-thread
 * load->store ordering.
 */

#ifndef VGIW_CGRF_DATAFLOW_GRAPH_HH
#define VGIW_CGRF_DATAFLOW_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cgrf/grid.hh"
#include "ir/kernel.hh"

namespace vgiw
{

/** Per-unit pipeline latencies (cycles) used for critical-path timing. */
struct CgrfTiming
{
    int intAluLatency = 1;
    int fpAluLatency = 4;
    int scuLatency = 16;   ///< virtually pipelined; initiation interval 1
    int ldstLatency = 28;  ///< L1 hit; misses are modelled dynamically
    int lvuLatency = 6;    ///< LVC hit
    int cvuLatency = 1;
    int sjuLatency = 1;
};

/** Textual identity of a timing table for compileKey() fingerprints. */
inline std::string
timingFingerprint(const CgrfTiming &t)
{
    std::string s;
    for (int v : {t.intAluLatency, t.fpAluLatency, t.scuLatency,
                  t.ldstLatency, t.lvuLatency, t.cvuLatency,
                  t.sjuLatency})
        s += std::to_string(v) + ",";
    return s;
}

/** What a DFG node stands for. */
enum class DfgRole : uint8_t
{
    Initiator,     ///< CVU injecting thread batches
    Terminator,    ///< CVU resolving the branch / building out-batches
    Instr,         ///< an IR instruction
    LiveInRead,    ///< LVU load of a live value
    LiveOutWrite,  ///< LVU store of a live value
    Split,         ///< SJU extending fanout
    Join,          ///< SJU enforcing memory ordering
};

/** One node of the mapped dataflow graph. */
struct DfgNode
{
    UnitKind unit = UnitKind::FpAlu;
    DfgRole role = DfgRole::Instr;
    int latency = 1;
    int instrIndex = -1;  ///< for DfgRole::Instr
    int lvid = -1;        ///< for the LVU roles
    /**
     * Index of an earlier node whose physical unit this node shares, or
     * -1. A live value that a block both reads and writes is served by a
     * single LVU (the unit's configuration register holds one live-value
     * ID, and the unit performs both the load and the store for it), so
     * the write node aliases the read node's cell.
     */
    int aliasOf = -1;
};

/** Directed token edge between two nodes (indices into nodes). */
struct DfgEdge
{
    int from = 0;
    int to = 0;
};

/** A block's mapped dataflow graph. */
struct Dfg
{
    std::vector<DfgNode> nodes;
    std::vector<DfgEdge> edges;

    /** Units required per kind for one replica of this graph. */
    UnitCounts unitNeeds() const;

    int numNodes() const { return int(nodes.size()); }
};

/**
 * Build the mapped DFG for @p block. Nodes are emitted in a topological
 * order (every edge goes from a lower to a higher node index).
 */
Dfg buildBlockDfg(const BasicBlock &block, const CgrfTiming &timing = {});

} // namespace vgiw

#endif // VGIW_CGRF_DATAFLOW_GRAPH_HH
