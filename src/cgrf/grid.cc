#include "cgrf/grid.hh"

#include "common/logging.hh"

namespace vgiw
{

const char *
unitKindName(UnitKind k)
{
    switch (k) {
      case UnitKind::FpAlu: return "fpu-alu";
      case UnitKind::Scu: return "scu";
      case UnitKind::LdSt: return "ldst";
      case UnitKind::Lvu: return "lvu";
      case UnitKind::Sju: return "sju";
      case UnitKind::Cvu: return "cvu";
    }
    return "?";
}

std::string
validateGridConfig(const GridConfig &g)
{
    if (g.width <= 0 || g.height <= 0) {
        return "grid dimensions must be positive (got " +
               std::to_string(g.width) + "x" + std::to_string(g.height) +
               ")";
    }
    for (int kind = 0; kind < kNumUnitKinds; ++kind) {
        if (g.counts[size_t(kind)] < 0) {
            return std::string("negative unit count for kind '") +
                   unitKindName(UnitKind(kind)) + "'";
        }
    }
    if (totalUnits(g.counts) != g.numUnits()) {
        return "unit counts sum to " +
               std::to_string(totalUnits(g.counts)) +
               " but the grid has " + std::to_string(g.numUnits()) +
               " cells";
    }
    if (g.kindAt.size() != size_t(g.numUnits())) {
        return "kindAt describes " + std::to_string(g.kindAt.size()) +
               " cells, expected " + std::to_string(g.numUnits());
    }
    if (g.positions.size() != size_t(g.numUnits())) {
        return "positions describes " +
               std::to_string(g.positions.size()) + " cells, expected " +
               std::to_string(g.numUnits());
    }
    UnitCounts tally{};
    for (UnitKind k : g.kindAt)
        ++countOf(tally, k);
    if (tally != g.counts)
        return "kindAt tally does not match the per-kind unit counts";
    return {};
}

GridConfig
GridConfig::makeTable1()
{
    GridConfig g;
    g.width = 12;
    g.height = 9;
    countOf(g.counts, UnitKind::FpAlu) = 32;
    countOf(g.counts, UnitKind::Scu) = 12;
    countOf(g.counts, UnitKind::LdSt) = 16;
    countOf(g.counts, UnitKind::Lvu) = 16;
    countOf(g.counts, UnitKind::Sju) = 16;
    countOf(g.counts, UnitKind::Cvu) = 16;
    vgiw_assert(totalUnits(g.counts) == g.numUnits(),
                "unit counts must fill the grid");

    // Split cells into perimeter and interior, preserving a scan order
    // that spreads consecutive units of one kind across the grid.
    std::vector<int> perimeter, interior;
    for (int y = 0; y < g.height; ++y) {
        for (int x = 0; x < g.width; ++x) {
            const int cell = y * g.width + x;
            const bool per = x == 0 || y == 0 || x == g.width - 1 ||
                             y == g.height - 1;
            (per ? perimeter : interior).push_back(cell);
        }
    }

    g.kindAt.resize(size_t(g.numUnits()));
    g.positions.resize(size_t(g.numUnits()));
    for (int c = 0; c < g.numUnits(); ++c)
        g.positions[c] = {c % g.width, c / g.width};

    // Memory-facing units (LDST + LVU) occupy the perimeter, alternating
    // so both reach all L1 / LVC banks with short crossbar runs.
    size_t pi = 0;
    for (int i = 0; i < countOf(g.counts, UnitKind::LdSt) +
                        countOf(g.counts, UnitKind::Lvu); ++i) {
        g.kindAt[perimeter[pi++]] =
            (i % 2 == 0) ? UnitKind::LdSt : UnitKind::Lvu;
    }
    // CVUs next on the perimeter: they talk to the BBS at the grid edge.
    int cvus_on_perimeter = 0;
    while (pi < perimeter.size() &&
           cvus_on_perimeter < countOf(g.counts, UnitKind::Cvu)) {
        g.kindAt[perimeter[pi++]] = UnitKind::Cvu;
        ++cvus_on_perimeter;
    }

    // Remaining kinds fill the interior (and any perimeter slack):
    // interleave FPU-ALUs with SJUs and SCUs so compute clusters stay
    // close to routing resources.
    std::vector<UnitKind> rest;
    rest.insert(rest.end(),
                size_t(countOf(g.counts, UnitKind::Cvu)) - cvus_on_perimeter,
                UnitKind::Cvu);
    const int n_alu = countOf(g.counts, UnitKind::FpAlu);
    const int n_sju = countOf(g.counts, UnitKind::Sju);
    const int n_scu = countOf(g.counts, UnitKind::Scu);
    int a = 0, s = 0, c = 0;
    while (a < n_alu || s < n_sju || c < n_scu) {
        if (a < n_alu) { rest.push_back(UnitKind::FpAlu); ++a; }
        if (s < n_sju) { rest.push_back(UnitKind::Sju); ++s; }
        if (a < n_alu) { rest.push_back(UnitKind::FpAlu); ++a; }
        if (c < n_scu) { rest.push_back(UnitKind::Scu); ++c; }
    }

    size_t ri = 0;
    while (pi < perimeter.size())
        g.kindAt[perimeter[pi++]] = rest[ri++];
    for (int cell : interior)
        g.kindAt[cell] = rest[ri++];
    vgiw_assert(ri == rest.size(), "layout accounting error");

    // Sanity: per-kind totals match the declared counts.
    UnitCounts check{};
    for (auto k : g.kindAt)
        ++countOf(check, k);
    for (int i = 0; i < kNumUnitKinds; ++i)
        vgiw_assert(check[i] == g.counts[i], "kind count mismatch");

    return g;
}

} // namespace vgiw
