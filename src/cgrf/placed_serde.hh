/**
 * @file
 * Wire codec for placement results (PlacedBlock / PlacedKernel), shared
 * by the VGIW and SGMF compiled-artifact serializers. Fixed-width
 * little-endian fields through the artifact store's bounds-checked
 * ByteWriter/ByteReader; any truncation surfaces through reader.ok()
 * and the caller demotes the artifact to a cache miss.
 */

#ifndef VGIW_CGRF_PLACED_SERDE_HH
#define VGIW_CGRF_PLACED_SERDE_HH

#include "cgrf/placer.hh"
#include "driver/artifact_store.hh"

namespace vgiw
{

inline void
writeUnitCounts(ByteWriter &w, const UnitCounts &u)
{
    for (int v : u)
        w.i32(v);
}

inline void
readUnitCounts(ByteReader &r, UnitCounts &u)
{
    for (int &v : u)
        v = r.i32();
}

inline void
writePlacedBlock(ByteWriter &w, const PlacedBlock &b)
{
    w.u8(b.fits ? 1 : 0);
    w.i32(b.replicas);
    writeUnitCounts(w, b.needsPerReplica);
    w.i32(b.nodesPerReplica);
    w.i32(b.criticalPathCycles);
    w.i32(b.edgeHopsPerThread);
    w.i32(b.edgesPerThread);
    w.i32(b.unitsUsed);
}

inline void
readPlacedBlock(ByteReader &r, PlacedBlock &b)
{
    b.fits = r.u8() != 0;
    b.replicas = r.i32();
    readUnitCounts(r, b.needsPerReplica);
    b.nodesPerReplica = r.i32();
    b.criticalPathCycles = r.i32();
    b.edgeHopsPerThread = r.i32();
    b.edgesPerThread = r.i32();
    b.unitsUsed = r.i32();
}

inline void
writePlacedKernel(ByteWriter &w, const PlacedKernel &k)
{
    w.u8(k.fits ? 1 : 0);
    w.u64(k.blocks.size());
    for (const PlacedBlock &b : k.blocks)
        writePlacedBlock(w, b);
    w.i32(k.unitsUsed);
    writeUnitCounts(w, k.totalNeeds);
}

/** False when the block count is implausible for @p r's remainder. */
inline bool
readPlacedKernel(ByteReader &r, PlacedKernel &k)
{
    k.fits = r.u8() != 0;
    const uint64_t n = r.u64();
    // Each block occupies ≥ 1 byte on the wire; anything larger is a
    // corrupt count and would otherwise turn into a huge allocation.
    if (!r.ok() || n > r.remaining())
        return false;
    k.blocks.resize(size_t(n));
    for (PlacedBlock &b : k.blocks)
        readPlacedBlock(r, b);
    k.unitsUsed = r.i32();
    readUnitCounts(r, k.totalNeeds);
    return r.ok();
}

} // namespace vgiw

#endif // VGIW_CGRF_PLACED_SERDE_HH
