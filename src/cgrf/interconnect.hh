/**
 * @file
 * Hop-distance model of the MT-CGRF interconnect.
 *
 * Section 3.5: each functional unit connects to its four nearest units
 * and four nearest switches; switches additionally connect to the four
 * switches at Manhattan distance two, and the topology is a folded
 * hypercube, equalising perimeter connectivity via wrap links. We model
 * the resulting routing latency as one cycle per hop, where a hop covers
 * Manhattan distance two through the switch fabric (distance one for
 * directly adjacent units), with toroidal wrap-around from the fold.
 */

#ifndef VGIW_CGRF_INTERCONNECT_HH
#define VGIW_CGRF_INTERCONNECT_HH

#include <cstdlib>

#include "cgrf/grid.hh"

namespace vgiw
{

/** Folded-hypercube-style interconnect distance oracle. */
class Interconnect
{
  public:
    explicit Interconnect(const GridConfig &grid)
        : width_(grid.width), height_(grid.height)
    {}

    /**
     * Cycles for a token to travel between two cells. Adjacent units
     * (Manhattan distance 1) are one hop; switch-to-switch express links
     * cover distance two per cycle; the fold wraps each axis.
     */
    int
    hops(GridPos a, GridPos b) const
    {
        if (a.x == b.x && a.y == b.y)
            return 0;
        const int dx = wrapped(std::abs(a.x - b.x), width_);
        const int dy = wrapped(std::abs(a.y - b.y), height_);
        const int manhattan = dx + dy;
        return (manhattan + 1) / 2;  // ceil(manhattan / 2), min 1
    }

    /** Convenience overload on linear cell indices. */
    int
    hops(int cell_a, int cell_b) const
    {
        return hops(GridPos{cell_a % width_, cell_a / width_},
                    GridPos{cell_b % width_, cell_b / width_});
    }

  private:
    static int
    wrapped(int d, int extent)
    {
        return d < extent - d ? d : extent - d;
    }

    int width_;
    int height_;
};

} // namespace vgiw

#endif // VGIW_CGRF_INTERCONNECT_HH
