/**
 * @file
 * Reconfiguration cost model (Section 3.2): configuration tokens are fed
 * row-parallel from the grid's left perimeter, taking ceil(sqrt(N)) cycles
 * per pass; two passes deliver all configuration data, after a reset that
 * also clears the token buffers. For the 108-unit Table 1 grid this is
 * 2 * 11 + 12 = 34 cycles, matching the paper's "reconfiguration only
 * takes 34 cycles".
 */

#ifndef VGIW_CGRF_CONFIG_COST_HH
#define VGIW_CGRF_CONFIG_COST_HH

#include <cmath>

namespace vgiw
{

/** Cycles to reset the grid before loading a new configuration. */
constexpr int kGridResetCycles = 12;

/** Cycles of one row-parallel configuration pass over @p num_units. */
inline int
configPassCycles(int num_units)
{
    return int(std::ceil(std::sqrt(double(num_units))));
}

/** Total cycles to reconfigure a grid of @p num_units units. */
inline int
reconfigCycles(int num_units)
{
    return 2 * configPassCycles(num_units) + kGridResetCycles;
}

} // namespace vgiw

#endif // VGIW_CGRF_CONFIG_COST_HH
