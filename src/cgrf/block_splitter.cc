#include "cgrf/block_splitter.hh"

#include <map>
#include <vector>

#include "cgrf/placer.hh"
#include "common/logging.hh"
#include "ir/verifier.hh"

namespace vgiw
{

namespace
{

/** True when one replica of @p blk's DFG fits the grid. */
bool
fits(const BasicBlock &blk, const Placer &placer, const CgrfTiming &t)
{
    Dfg g = buildBlockDfg(blk, t);
    return placer.place(g, 1).fits;
}

/**
 * Split @p blk at instruction @p cut. The returned pair replaces it:
 * first = instrs [0, cut) + live-outs for every local the suffix needs;
 * second = instrs [cut, n) with Local operands remapped, plus the
 * original live-outs and terminator.
 */
std::pair<BasicBlock, BasicBlock>
splitAt(const BasicBlock &blk, size_t cut, int &next_lvid)
{
    BasicBlock first, second;
    first.name = blk.name + ".a";
    second.name = blk.name + ".b";
    first.instrs.assign(blk.instrs.begin(),
                        blk.instrs.begin() + long(cut));
    second.instrs.assign(blk.instrs.begin() + long(cut),
                         blk.instrs.end());

    // Locals of the prefix consumed by the suffix cross through the LVC.
    std::map<uint16_t, uint16_t> cut_lvid;  // old local idx -> lvid
    auto remap = [&](Operand &o) {
        if (o.kind != OperandKind::Local)
            return;
        if (o.index >= cut) {
            o.index = uint16_t(o.index - cut);
            return;
        }
        auto it = cut_lvid.find(o.index);
        if (it == cut_lvid.end()) {
            const uint16_t lvid = uint16_t(next_lvid++);
            first.liveOuts.push_back(LiveOut{lvid, Operand::local(o.index)});
            it = cut_lvid.emplace(o.index, lvid).first;
        }
        o = Operand::liveIn(it->second);
    };

    for (auto &in : second.instrs)
        for (auto &s : in.src)
            remap(s);
    second.liveOuts = blk.liveOuts;
    for (auto &lo : second.liveOuts)
        remap(lo.value);
    second.term = blk.term;
    remap(second.term.cond);

    // The prefix falls through to the suffix.
    first.term.kind = TermKind::Jump;
    first.term.target[0] = -1;  // patched by the caller
    first.term.barrier = false;
    return {first, second};
}

} // namespace

Kernel
splitOversizedBlocks(Kernel k, const GridConfig &grid,
                     const CgrfTiming &timing)
{
    Placer placer(grid);
    int next_lvid = k.numLiveValues;

    for (int b = 0; b < int(k.blocks.size()); /* advance inside */) {
        BasicBlock &blk = k.blocks[b];
        if (fits(blk, placer, timing)) {
            ++b;
            continue;
        }
        if (blk.instrs.size() <= 1) {
            vgiw_fatal("kernel '", k.name, "' block '", blk.name,
                       "': a single instruction exceeds the grid");
        }

        // Shift every target beyond b before copying the terminator
        // into the suffix, so the suffix's successors stay correct.
        for (auto &other : k.blocks) {
            for (int s = 0; s < other.term.numTargets(); ++s) {
                if (other.term.target[s] > b)
                    ++other.term.target[s];
            }
        }
        const size_t cut = blk.instrs.size() / 2;
        auto [first, second] = splitAt(blk, cut, next_lvid);
        first.term.target[0] = b + 1;
        k.blocks[b] = std::move(first);
        k.blocks.insert(k.blocks.begin() + b + 1, std::move(second));
        // Re-examine the first half (it may still be too large).
    }

    k.numLiveValues = next_lvid;
    verifyKernel(k);
    return k;
}

} // namespace vgiw
