#include "cgrf/placer.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace vgiw
{

/** Mutable pool of unoccupied cells, bucketed by unit kind. */
struct Placer::FreeCells
{
    std::array<std::vector<int>, kNumUnitKinds> byKind;

    explicit FreeCells(const GridConfig &g)
    {
        for (int cell = 0; cell < g.numUnits(); ++cell)
            byKind[size_t(g.kindAt[cell])].push_back(cell);
    }

    bool
    canHost(const UnitCounts &needs) const
    {
        for (int k = 0; k < kNumUnitKinds; ++k)
            if (int(byKind[k].size()) < needs[k])
                return false;
        return true;
    }

    /** Remove and return the cell at @p slot for @p kind. */
    int
    take(UnitKind kind, size_t slot)
    {
        auto &v = byKind[size_t(kind)];
        int cell = v[slot];
        v.erase(v.begin() + long(slot));
        return cell;
    }
};

Placer::Placer(const GridConfig &grid) : grid_(grid), net_(grid) {}

bool
Placer::placeOne(const Dfg &dfg, FreeCells &free, PlacedBlock &out) const
{
    if (!free.canHost(dfg.unitNeeds()))
        return false;

    // Predecessor lists (node order is topological by construction).
    std::vector<std::vector<int>> preds(dfg.nodes.size());
    for (const auto &e : dfg.edges)
        preds[e.to].push_back(e.from);

    // Greedy placement: each node takes the free cell of its kind that
    // minimises total hop distance to its already-placed predecessors.
    std::vector<int> cell_of(dfg.nodes.size(), -1);
    for (size_t n = 0; n < dfg.nodes.size(); ++n) {
        if (dfg.nodes[n].aliasOf >= 0) {
            // Shares a physical unit with an earlier node.
            cell_of[n] = cell_of[size_t(dfg.nodes[n].aliasOf)];
            continue;
        }
        const UnitKind kind = dfg.nodes[n].unit;
        const auto &candidates = free.byKind[size_t(kind)];
        vgiw_assert(!candidates.empty(), "capacity pre-check failed");

        size_t best_slot = 0;
        long best_cost = std::numeric_limits<long>::max();
        for (size_t s = 0; s < candidates.size(); ++s) {
            long cost = 0;
            for (int p : preds[n])
                cost += net_.hops(cell_of[p], candidates[s]);
            if (cost < best_cost) {
                best_cost = cost;
                best_slot = s;
            }
        }
        cell_of[n] = free.take(kind, best_slot);
    }

    // Critical path: longest latency path through the placed graph with
    // one cycle per interconnect hop on each edge.
    std::vector<int> dist(dfg.nodes.size(), 0);
    int critical = 0;
    int total_hops = 0;
    for (size_t n = 0; n < dfg.nodes.size(); ++n)
        dist[n] = dfg.nodes[n].latency;
    for (const auto &e : dfg.edges) {
        const int hop = net_.hops(cell_of[e.from], cell_of[e.to]);
        total_hops += hop;
        dist[e.to] = std::max(dist[e.to],
                              dist[e.from] + hop + dfg.nodes[e.to].latency);
    }
    for (size_t n = 0; n < dfg.nodes.size(); ++n)
        critical = std::max(critical, dist[n]);

    out.criticalPathCycles = std::max(out.criticalPathCycles, critical);
    out.edgeHopsPerThread = std::max(out.edgeHopsPerThread, total_hops);
    out.edgesPerThread = int(dfg.edges.size());
    out.unitsUsed += totalUnits(dfg.unitNeeds());
    return true;
}

PlacedBlock
Placer::place(const Dfg &dfg, int max_replicas) const
{
    PlacedBlock out;
    out.needsPerReplica = dfg.unitNeeds();
    out.nodesPerReplica = dfg.numNodes();

    FreeCells free(grid_);
    for (int r = 0; r < max_replicas; ++r) {
        if (!placeOne(dfg, free, out))
            break;
        ++out.replicas;
    }
    out.fits = out.replicas > 0;
    return out;
}

PlacedKernel
Placer::placeKernel(const std::vector<Dfg> &block_dfgs) const
{
    PlacedKernel out;
    out.fits = true;

    FreeCells free(grid_);
    for (const auto &dfg : block_dfgs) {
        PlacedBlock pb;
        pb.needsPerReplica = dfg.unitNeeds();
        pb.nodesPerReplica = dfg.numNodes();
        for (int k = 0; k < kNumUnitKinds; ++k)
            out.totalNeeds[k] += pb.needsPerReplica[k];
        if (out.fits && placeOne(dfg, free, pb)) {
            pb.fits = true;
            pb.replicas = 1;
            out.unitsUsed += pb.unitsUsed;
        } else {
            out.fits = false;
        }
        out.blocks.push_back(pb);
    }
    return out;
}

} // namespace vgiw
