/**
 * @file
 * A GDDR5-style main-memory model: 6 channels x 16 banks (Table 1), one
 * open row per bank, and latency composed from row-buffer hit/miss state.
 * Bandwidth is accounted at line (128 B) granularity so the cores can
 * apply a DRAM service-time floor to memory-bound kernels.
 */

#ifndef VGIW_MEM_DRAM_HH
#define VGIW_MEM_DRAM_HH

#include <cstdint>
#include <vector>

namespace vgiw
{

/** DRAM timing/geometry parameters (in core cycles). */
struct DramConfig
{
    uint32_t channels = 6;
    uint32_t banksPerChannel = 16;
    uint32_t rowBytes = 2048;
    /** Latency of an access that hits the open row. */
    uint32_t rowHitLatency = 160;
    /** Additional latency to precharge + activate on a row miss. */
    uint32_t rowMissPenalty = 120;
    /** Core cycles a channel is busy transferring one 128 B line. */
    uint32_t cyclesPerLine = 12;
};

/** Counters for DRAM behaviour. */
struct DramStats
{
    uint64_t accesses = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;

    double
    rowHitRate() const
    {
        return accesses ? double(rowHits) / double(accesses) : 0.0;
    }
};

/** Open-row main-memory model. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = {});

    /**
     * Access the line containing @p addr; returns the access latency in
     * core cycles (row hit or miss, not including channel queuing).
     */
    uint32_t access(uint32_t addr);

    /**
     * Minimum cycles the channels need to transfer all lines accessed so
     * far — the bandwidth floor for a kernel's execution time.
     */
    uint64_t
    minServiceCycles() const
    {
        return stats_.accesses * cfg_.cyclesPerLine / cfg_.channels;
    }

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return cfg_; }
    void reset();

  private:
    uint32_t channelOf(uint32_t addr) const;
    uint32_t bankOf(uint32_t addr) const;
    uint32_t rowOf(uint32_t addr) const;

    DramConfig cfg_;
    std::vector<int64_t> openRow_;  // per (channel, bank); -1 = closed
    DramStats stats_;
};

} // namespace vgiw

#endif // VGIW_MEM_DRAM_HH
