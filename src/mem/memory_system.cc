#include "mem/memory_system.hh"

namespace vgiw
{

CacheGeometry
vgiwL1Geometry()
{
    CacheGeometry g;
    g.sizeBytes = 64 * 1024;
    g.lineBytes = 128;
    g.ways = 4;
    g.banks = 32;
    g.writePolicy = WritePolicy::WriteBack;
    g.allocPolicy = AllocPolicy::WriteAllocate;
    return g;
}

CacheGeometry
fermiL1Geometry()
{
    CacheGeometry g = vgiwL1Geometry();
    g.writePolicy = WritePolicy::WriteThrough;
    g.allocPolicy = AllocPolicy::WriteNoAllocate;
    return g;
}

CacheGeometry
l2Geometry()
{
    CacheGeometry g;
    g.sizeBytes = 768 * 1024;
    g.lineBytes = 128;
    g.ways = 16;
    g.banks = 6;
    g.writePolicy = WritePolicy::WriteBack;
    g.allocPolicy = AllocPolicy::WriteAllocate;
    return g;
}

MemorySystem::MemorySystem(const CacheGeometry &l1_geom,
                           const CacheGeometry &l2_geom,
                           const DramConfig &dram_cfg,
                           const MemTimings &timings)
    : l1_("L1", l1_geom), l2_("L2", l2_geom), dram_(dram_cfg),
      timings_(timings)
{}

uint32_t
MemorySystem::accessL2(uint32_t addr, bool is_write, MemLevel &level)
{
    Cache::Result r2 = l2_.access(addr, is_write);
    uint32_t latency = timings_.l2HitLatency;
    if (r2.hit) {
        level = MemLevel::L2;
        return latency;
    }
    level = MemLevel::Dram;
    if (r2.writeback)
        dram_.access(addr);  // victim traffic occupies a channel slot
    if (r2.fill) {
        latency += dram_.access(addr);
    } else if (r2.forwardWrite) {
        // Write that bypasses allocation still travels to DRAM, but the
        // store completes without waiting for it.
        dram_.access(addr);
    }
    return latency;
}

MemAccessResult
MemorySystem::accessL2Direct(uint32_t addr, bool is_write)
{
    MemAccessResult out;
    MemLevel level = MemLevel::L2;
    out.latency = accessL2(addr, is_write, level);
    out.servicedBy = level;
    return out;
}

MemAccessResult
MemorySystem::access(uint32_t addr, bool is_write)
{
    MemAccessResult out;
    Cache::Result r1 = l1_.access(addr, is_write);
    out.latency = timings_.l1HitLatency;
    out.servicedBy = MemLevel::L1;

    if (r1.hit && !r1.forwardWrite)
        return out;

    MemLevel level = MemLevel::L2;
    uint32_t deeper = 0;

    if (r1.writeback) {
        MemLevel wb_level;
        accessL2(addr, true, wb_level);  // victim line to L2
    }
    if (r1.fill) {
        deeper = accessL2(addr, false, level);
    } else if (r1.forwardWrite) {
        // The word goes to L2; a write-through store does not stall the
        // core on the deeper levels, so only the L1 latency is exposed,
        // but the traffic is recorded.
        MemLevel wt_level;
        accessL2(addr, true, wt_level);
        if (r1.hit)
            return out;
        level = wt_level;
    }

    out.servicedBy = level;
    if (r1.fill)
        out.latency += deeper;
    return out;
}

void
MemorySystem::reset()
{
    l1_.reset();
    l2_.reset();
    dram_.reset();
}

} // namespace vgiw
