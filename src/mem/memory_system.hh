/**
 * @file
 * The two-level cache hierarchy + DRAM shared by every core model.
 *
 * Table 1 / Section 3.6: a 64 KB 32-bank 4-way L1 (128 B lines), a 768 KB
 * 6-bank 16-way L2, and GDDR5 DRAM. VGIW uses write-back/write-allocate
 * L1 policies, Fermi write-through/write-no-allocate; the rest of the
 * hierarchy is identical — which is exactly how the paper isolates the
 * core's contribution.
 */

#ifndef VGIW_MEM_MEMORY_SYSTEM_HH
#define VGIW_MEM_MEMORY_SYSTEM_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace vgiw
{

/** Latency composition parameters (core cycles @ 1.4 GHz). */
struct MemTimings
{
    uint32_t l1HitLatency = 28;
    uint32_t l2HitLatency = 160;
    // DRAM latency comes from the Dram model on top of the L2 latency.
};

/** Which level ultimately serviced an access. */
enum class MemLevel : uint8_t { L1, L2, Dram };

/** Result of one word access through the hierarchy. */
struct MemAccessResult
{
    uint32_t latency = 0;
    MemLevel servicedBy = MemLevel::L1;
};

/** Builds the Table 1 hierarchy with VGIW L1 policies. */
CacheGeometry vgiwL1Geometry();
/** Builds the Table 1 hierarchy with Fermi L1 policies. */
CacheGeometry fermiL1Geometry();
/** The shared 768 KB L2 (6 banks, 16-way, write-back). */
CacheGeometry l2Geometry();

/** L1 -> L2 -> DRAM hierarchy for one core. */
class MemorySystem
{
  public:
    MemorySystem(const CacheGeometry &l1_geom,
                 const CacheGeometry &l2_geom = l2Geometry(),
                 const DramConfig &dram_cfg = {},
                 const MemTimings &timings = {});

    /** One word access; returns latency and the servicing level. */
    MemAccessResult access(uint32_t addr, bool is_write);

    /**
     * An access that bypasses the L1 and goes straight to the L2 — the
     * path used by the Live Value Cache, which is backed by the L2
     * (Section 3.4).
     */
    MemAccessResult accessL2Direct(uint32_t addr, bool is_write);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Dram &dram() { return dram_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Dram &dram() const { return dram_; }
    const MemTimings &timings() const { return timings_; }

    /** Bandwidth floor from the DRAM channels (see Dram). */
    uint64_t dramServiceCycles() const { return dram_.minServiceCycles(); }

    void reset();

  private:
    /** Run an L2-level access (line granularity) and return latency. */
    uint32_t accessL2(uint32_t addr, bool is_write, MemLevel &level);

    Cache l1_;
    Cache l2_;
    Dram dram_;
    MemTimings timings_;
};

} // namespace vgiw

#endif // VGIW_MEM_MEMORY_SYSTEM_HH
