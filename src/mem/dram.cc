#include "mem/dram.hh"

#include <cstddef>

using std::size_t;

namespace vgiw
{

Dram::Dram(const DramConfig &cfg)
    : cfg_(cfg),
      openRow_(size_t(cfg.channels) * cfg.banksPerChannel, -1)
{}

uint32_t
Dram::channelOf(uint32_t addr) const
{
    // Interleave channels at 1 KB granularity: fine enough to spread
    // streaming traffic, coarse enough that sequential lines within a
    // chunk hit the same open row (GPU memory controllers interleave at
    // a similar sub-row granularity).
    return (addr / 1024) % cfg_.channels;
}

uint32_t
Dram::bankOf(uint32_t addr) const
{
    return (addr / 1024 / cfg_.channels) % cfg_.banksPerChannel;
}

uint32_t
Dram::rowOf(uint32_t addr) const
{
    return addr / cfg_.rowBytes;
}

uint32_t
Dram::access(uint32_t addr)
{
    ++stats_.accesses;
    const size_t slot =
        size_t(channelOf(addr)) * cfg_.banksPerChannel + bankOf(addr);
    const int64_t row = rowOf(addr);
    if (openRow_[slot] == row) {
        ++stats_.rowHits;
        return cfg_.rowHitLatency;
    }
    ++stats_.rowMisses;
    openRow_[slot] = row;
    return cfg_.rowHitLatency + cfg_.rowMissPenalty;
}

void
Dram::reset()
{
    for (auto &r : openRow_)
        r = -1;
    stats_ = DramStats{};
}

} // namespace vgiw
