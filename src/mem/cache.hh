/**
 * @file
 * A banked, set-associative, LRU cache model.
 *
 * Both processors in the study use the same cache structures with
 * different policies: the VGIW L1 is write-back / write-allocate while the
 * Fermi L1 is write-through / write-no-allocate (Section 3.6 / Table 1).
 * The model is functional at tag granularity — it tracks hits, misses,
 * fills and write-backs — and leaves latency composition to MemorySystem.
 */

#ifndef VGIW_MEM_CACHE_HH
#define VGIW_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace vgiw
{

enum class WritePolicy : uint8_t { WriteBack, WriteThrough };
enum class AllocPolicy : uint8_t { WriteAllocate, WriteNoAllocate };

/** Static geometry and policy of one cache level. */
struct CacheGeometry
{
    uint32_t sizeBytes = 0;
    uint32_t lineBytes = 128;
    uint32_t ways = 4;
    uint32_t banks = 1;
    WritePolicy writePolicy = WritePolicy::WriteBack;
    AllocPolicy allocPolicy = AllocPolicy::WriteAllocate;

    uint32_t
    numSets() const
    {
        return sizeBytes / (lineBytes * ways);
    }
};

/** Hit/miss/traffic counters for one cache. */
struct CacheStats
{
    uint64_t readHits = 0;
    uint64_t readMisses = 0;
    uint64_t writeHits = 0;
    uint64_t writeMisses = 0;
    uint64_t fills = 0;        ///< lines brought in from the next level
    uint64_t writebacks = 0;   ///< dirty lines evicted to the next level
    uint64_t writethroughs = 0;///< writes forwarded by a WT cache

    uint64_t accesses() const
    { return readHits + readMisses + writeHits + writeMisses; }
    uint64_t misses() const { return readMisses + writeMisses; }

    double
    missRate() const
    {
        const uint64_t a = accesses();
        return a ? double(misses()) / double(a) : 0.0;
    }
};

/** One level of cache. */
class Cache
{
  public:
    /** Outcome of a single access. */
    struct Result
    {
        bool hit = false;
        /** The access must fetch a line from the next level. */
        bool fill = false;
        /** A dirty victim must be written to the next level. */
        bool writeback = false;
        /** The write must be forwarded to the next level (WT or no-alloc
         * write miss). */
        bool forwardWrite = false;
    };

    Cache(std::string name, const CacheGeometry &geom);

    /**
     * Perform one word access at byte address @p addr.
     *
     * Defined inline: this is the single hottest leaf of timing replay
     * (tens of millions of calls per suite sweep), and set/tag indexing
     * uses geometry precomputed at construction instead of re-deriving
     * the set count (a division) on every access.
     */
    Result
    access(uint32_t addr, bool is_write)
    {
        ++tick_;
        const uint32_t line_addr = addr >> lineShift_;
        uint32_t set, tag;
        if (setShift_ >= 0) {
            set = line_addr & (numSets_ - 1);
            tag = line_addr >> setShift_;
        } else {
            set = line_addr % numSets_;
            tag = line_addr / numSets_;
        }
        Line *base = &lines_[size_t(set) * geom_.ways];

        Result res;

        // Probe.
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            Line &ln = base[w];
            if (ln.valid && ln.tag == tag) {
                ln.lastUse = tick_;
                res.hit = true;
                if (is_write) {
                    ++stats_.writeHits;
                    if (geom_.writePolicy == WritePolicy::WriteBack) {
                        ln.dirty = true;
                    } else {
                        // Write-through: update line, forward the word.
                        ++stats_.writethroughs;
                        res.forwardWrite = true;
                    }
                } else {
                    ++stats_.readHits;
                }
                return res;
            }
        }
        return accessMiss(base, tag, is_write);
    }

    /** Bank serving @p addr; lines are interleaved across banks. */
    uint32_t
    bankOf(uint32_t addr) const
    {
        return (addr / geom_.lineBytes) % geom_.banks;
    }

    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Drop all contents and zero the statistics. */
    void reset();

  private:
    struct Line
    {
        uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };

    /** Miss path: victim selection, writeback, fill. */
    Result accessMiss(Line *base, uint32_t tag, bool is_write);

    std::string name_;
    CacheGeometry geom_;
    std::vector<Line> lines_;  // numSets * ways, way-major within a set
    CacheStats stats_;
    uint64_t tick_ = 0;
    uint32_t numSets_ = 1;
    uint32_t lineShift_ = 7;   ///< log2(lineBytes); lineBytes is pow2
    int32_t setShift_ = -1;    ///< log2(numSets) if pow2, else -1
};

} // namespace vgiw

#endif // VGIW_MEM_CACHE_HH
