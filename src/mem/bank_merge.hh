/**
 * @file
 * Bank-occupancy model with same-line request merging.
 *
 * The VGIW LDST units do not coalesce accesses across threads (Section
 * 5), but their reservation buffers do merge back-to-back requests for
 * the same cache line within a small window — the MSHR-style merging any
 * banked L1 performs. Scattered traffic therefore still pays one bank
 * cycle per word (the no-coalescing penalty the paper reports for
 * CFD-style kernels), while broadcast and unit-stride streams collapse
 * into per-line transactions.
 */

#ifndef VGIW_MEM_BANK_MERGE_HH
#define VGIW_MEM_BANK_MERGE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace vgiw
{

/** Per-bank cycle accounting with a same-line merge window. */
class BankMergeModel
{
  public:
    explicit BankMergeModel(uint32_t banks, uint32_t window = 8)
        : window_(window), cycles_(banks, 0),
          lastLine_(banks, ~uint32_t{0}), run_(banks, 0)
    {}

    /** Record an access to @p line on @p bank. */
    void
    access(uint32_t bank, uint32_t line)
    {
        if (line == lastLine_[bank] && run_[bank] < window_) {
            ++run_[bank];
            return;  // merged into the in-flight line request
        }
        lastLine_[bank] = line;
        run_[bank] = 1;
        ++cycles_[bank];
    }

    /** Cycles consumed by the busiest bank. */
    uint64_t
    maxCycles() const
    {
        return *std::max_element(cycles_.begin(), cycles_.end());
    }

    void
    reset()
    {
        std::fill(cycles_.begin(), cycles_.end(), 0);
        std::fill(lastLine_.begin(), lastLine_.end(), ~uint32_t{0});
        std::fill(run_.begin(), run_.end(), 0);
    }

  private:
    uint32_t window_;
    std::vector<uint64_t> cycles_;
    std::vector<uint32_t> lastLine_;
    std::vector<uint32_t> run_;
};

} // namespace vgiw

#endif // VGIW_MEM_BANK_MERGE_HH
