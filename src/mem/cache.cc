#include "mem/cache.hh"

#include <bit>

namespace vgiw
{

Cache::Cache(std::string name, const CacheGeometry &geom)
    : name_(std::move(name)), geom_(geom)
{
    vgiw_assert(geom_.sizeBytes % (geom_.lineBytes * geom_.ways) == 0,
                "cache '", name_, "': size not divisible by line*ways");
    vgiw_assert(geom_.numSets() > 0, "cache '", name_, "': zero sets");
    vgiw_assert(std::has_single_bit(geom_.lineBytes),
                "cache '", name_, "': line size not a power of two");
    lines_.resize(size_t(geom_.numSets()) * geom_.ways);
    numSets_ = geom_.numSets();
    lineShift_ = uint32_t(std::countr_zero(geom_.lineBytes));
    setShift_ = std::has_single_bit(numSets_)
                    ? int32_t(std::countr_zero(numSets_))
                    : -1;
}

Cache::Result
Cache::accessMiss(Line *base, uint32_t tag, bool is_write)
{
    Result res;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    const bool allocate =
        !is_write || geom_.allocPolicy == AllocPolicy::WriteAllocate;

    if (is_write &&
        (geom_.writePolicy == WritePolicy::WriteThrough || !allocate)) {
        // The word itself travels to the next level.
        ++stats_.writethroughs;
        res.forwardWrite = true;
    }

    if (!allocate)
        return res;

    // Victim selection: invalid way first, else LRU.
    Line *victim = &base[0];
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        Line &ln = base[w];
        if (!ln.valid) {
            victim = &ln;
            break;
        }
        if (ln.lastUse < victim->lastUse)
            victim = &ln;
    }

    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        res.writeback = true;
    }

    ++stats_.fills;
    res.fill = true;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty =
        is_write && geom_.writePolicy == WritePolicy::WriteBack;

    return res;
}

void
Cache::reset()
{
    for (auto &ln : lines_)
        ln = Line{};
    stats_ = CacheStats{};
    tick_ = 0;
}

} // namespace vgiw
