#include "simt/simt_stack.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vgiw
{

SimtStack::SimtStack(uint32_t initial_mask, int entry_block)
{
    if (initial_mask)
        stack_.push_back(Entry{entry_block, kReconvergeAtExit,
                               initial_mask});
}

void
SimtStack::dropEmptyTop()
{
    while (!stack_.empty() && stack_.back().mask == 0)
        stack_.pop_back();
}

void
SimtStack::advance(const std::array<int, 32> &lane_succ,
                   const PostDominators &pd)
{
    vgiw_assert(!stack_.empty(), "advance on a finished warp");
    const Entry e = stack_.back();
    stack_.pop_back();

    // Partition the active lanes by successor block; exited lanes drop
    // out of the mask entirely.
    std::vector<std::pair<int, uint32_t>> groups;  // (succ, mask)
    for (int lane = 0; lane < 32; ++lane) {
        if (!((e.mask >> lane) & 1))
            continue;
        const int succ = lane_succ[lane];
        vgiw_assert(succ != kLaneInactive,
                    "active lane reported as inactive");
        if (succ == kLaneExit)
            continue;
        auto it = std::find_if(groups.begin(), groups.end(),
                               [succ](const auto &g) {
                                   return g.first == succ;
                               });
        if (it == groups.end())
            groups.emplace_back(succ, uint32_t(1) << lane);
        else
            it->second |= uint32_t(1) << lane;
    }

    if (groups.empty()) {
        dropEmptyTop();
        return;
    }

    if (groups.size() == 1) {
        auto [succ, mask] = groups.front();
        bool merged = false;
        if (succ == e.rpc) {
            // Reconvergence: the lanes rejoin the entry pushed when the
            // warp diverged. Sibling divergent entries may still sit
            // above it, so search downwards for pc == rpc.
            for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
                if (it->pc == succ) {
                    it->mask |= mask;
                    merged = true;
                    break;
                }
            }
        }
        if (!merged)
            stack_.push_back(Entry{succ, e.rpc, mask});
        dropEmptyTop();
        return;
    }

    // Divergence: reconverge at the immediate post-dominator of the
    // branching block.
    const int ip = pd.ipdom(e.pc);
    const int rpc = ip == PostDominators::kVirtualExit ? kReconvergeAtExit
                                                       : ip;

    // Reconvergence entry (reuse the one below when it already targets
    // the same block, which happens for back-to-back divergence). Track
    // it by index: pushes may reallocate the stack.
    long reconv = -1;
    if (rpc != kReconvergeAtExit) {
        for (long i = long(stack_.size()) - 1; i >= 0; --i) {
            if (stack_[i].pc == rpc) {
                reconv = i;
                break;
            }
        }
        if (reconv < 0) {
            stack_.push_back(Entry{rpc, e.rpc, 0});
            reconv = long(stack_.size()) - 1;
        }
    }

    // Push target entries, larger block IDs first so the smallest block
    // ID executes first (matching GPGPU taken-path-first scheduling and
    // keeping loop bodies before loop exits).
    std::sort(groups.begin(), groups.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    for (auto [succ, mask] : groups) {
        if (reconv >= 0 && succ == rpc)
            stack_[size_t(reconv)].mask |= mask;
        else
            stack_.push_back(Entry{succ, rpc, mask});
    }
    dropEmptyTop();
}

} // namespace vgiw
