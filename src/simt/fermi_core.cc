#include "simt/fermi_core.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "driver/artifact_store.hh"
#include "ir/post_dominators.hh"
#include "mem/memory_system.hh"
#include "simt/simt_stack.hh"

namespace vgiw
{

namespace
{

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

/** Per-warp execution state. */
struct Warp
{
    int cta = 0;
    std::array<int, 32> tids{};  ///< global tid per lane, -1 = none
    SimtStack stack{0, 0};
    size_t instrIdx = 0;
    bool blockStarted = false;
    uint64_t readyAt = 0;
    bool atBarrier = false;
    bool done = false;
};

} // namespace

std::string
FermiConfig::validate() const
{
    if (warpSize < 1 || warpSize > 32) {
        return "fermi: warpSize (" + std::to_string(warpSize) +
               ") must be in [1, 32] (lane state is 32 wide)";
    }
    if (maxResidentWarps < 1)
        return "fermi: maxResidentWarps must be at least 1";
    if (maxResidentCtas < 1)
        return "fermi: maxResidentCtas must be at least 1";
    if (scuIssueCycles < 1)
        return "fermi: scuIssueCycles must be at least 1 (a zero-cost "
               "issue stalls the clock)";
    return {};
}

std::string
FermiCore::compileKey() const
{
    // Decode and the post-dominator tree depend on the kernel alone:
    // one artifact serves every Fermi configuration point.
    return "fermi";
}

std::string
FermiCore::replayKey() const
{
    // The scheduler limits and latencies the issue loop reads; the
    // compile artifact is configuration-independent (see compileKey).
    return "warp:" + std::to_string(cfg_.warpSize) +
           "|res:" + std::to_string(cfg_.maxResidentWarps) + "," +
           std::to_string(cfg_.maxResidentCtas) +
           "|scu:" + std::to_string(cfg_.scuIssueCycles) +
           "|dep:" + std::to_string(cfg_.aluDependencyLatency) +
           "|shm:" + std::to_string(cfg_.sharedLatency);
}

std::shared_ptr<const CompiledKernel>
FermiCore::compile(const Kernel &k) const
{
    auto ck = std::make_shared<FermiCompiledKernel>(k);
    ck->decoded.reserve(k.blocks.size());
    ck->branchCondRf.reserve(k.blocks.size());
    for (const auto &blk : k.blocks) {
        std::vector<FermiDecodedInstr> ds;
        ds.reserve(blk.instrs.size());
        for (const Instr &in : blk.instrs) {
            FermiDecodedInstr d;
            for (const auto &s : in.src)
                if (s.isRegisterRead())
                    ++d.rfAccesses;
            if (in.op != Opcode::Store)
                ++d.rfAccesses;  // destination write
            d.isMemory = in.isMemory();
            d.isShared = in.space == MemSpace::Shared;
            d.isStore = in.op == Opcode::Store;
            d.resource = opcodeResource(in.op, in.type);
            ds.push_back(d);
        }
        ck->decoded.push_back(std::move(ds));
        ck->branchCondRf.push_back(blk.term.kind == TermKind::Branch &&
                                   blk.term.cond.isRegisterRead());
    }
    return ck;
}

namespace
{
/** Bumped when the Fermi artifact payload layout changes. */
constexpr uint32_t kFermiArtifactVersion = 1;
} // namespace

std::string
FermiCore::serializeArtifact(const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const FermiCompiledKernel *>(&compiled);
    if (!ck)
        return {};
    std::string out;
    ByteWriter w(out);
    w.u32(kFermiArtifactVersion);
    const std::vector<int> &ipd = ck->pd.ipdoms();
    w.u64(ipd.size());
    w.raw(ipd.data(), ipd.size() * sizeof(int));
    w.u64(ck->decoded.size());
    for (const auto &ds : ck->decoded) {
        w.u64(ds.size());
        for (const FermiDecodedInstr &d : ds) {
            w.u32(d.rfAccesses);
            w.u8(uint8_t(d.isMemory) | uint8_t(d.isShared) << 1 |
                 uint8_t(d.isStore) << 2);
            w.u8(uint8_t(d.resource));
        }
    }
    w.u64(ck->branchCondRf.size());
    w.raw(ck->branchCondRf.data(), ck->branchCondRf.size());
    return out;
}

std::shared_ptr<const CompiledKernel>
FermiCore::deserializeArtifact(std::string_view bytes) const
{
    ByteReader r(bytes.data(), bytes.size());
    if (r.u32() != kFermiArtifactVersion)
        return nullptr;
    const uint64_t n_ipd = r.u64();
    const uint8_t *p =
        r.ok() && n_ipd <= r.remaining() / sizeof(int)
            ? r.bytes(size_t(n_ipd) * sizeof(int))
            : nullptr;
    if (!p)
        return nullptr;
    std::vector<int> ipd;
    ipd.resize(size_t(n_ipd));
    std::memcpy(ipd.data(), p, size_t(n_ipd) * sizeof(int));
    auto ck = std::make_shared<FermiCompiledKernel>(
        PostDominators::fromIpdoms(std::move(ipd)));

    const uint64_t n_blocks = r.u64();
    if (!r.ok() || n_blocks > r.remaining())
        return nullptr;
    ck->decoded.resize(size_t(n_blocks));
    for (auto &ds : ck->decoded) {
        const uint64_t n = r.u64();
        // 6 wire bytes per decoded instruction.
        if (!r.ok() || n > r.remaining() / 6)
            return nullptr;
        ds.resize(size_t(n));
        for (FermiDecodedInstr &d : ds) {
            d.rfAccesses = r.u32();
            const uint8_t flags = r.u8();
            const uint8_t res = r.u8();
            if (flags > 7 || res > uint8_t(ResourceClass::Mem))
                return nullptr;
            d.isMemory = flags & 1;
            d.isShared = (flags >> 1) & 1;
            d.isStore = (flags >> 2) & 1;
            d.resource = ResourceClass(res);
        }
    }
    const uint64_t n_br = r.u64();
    p = r.ok() && n_br <= r.remaining() ? r.bytes(size_t(n_br))
                                        : nullptr;
    if (!p)
        return nullptr;
    ck->branchCondRf.assign(p, p + n_br);
    if (!r.done())
        return nullptr;
    return ck;
}

RunStats
FermiCore::run(const TraceSet &traces, const CompiledKernel &compiled) const
{
    const auto *ck = dynamic_cast<const FermiCompiledKernel *>(&compiled);
    vgiw_assert(ck, "FermiCore::run needs a Fermi compile artifact");

    const Kernel &k = *traces.kernel;
    const LaunchParams &launch = traces.launch;
    const int num_threads = launch.numThreads();
    const EnergyTable &e = cfg_.energy;

    RunStats rs;
    rs.arch = "fermi";
    rs.kernelName = k.name;

    const PostDominators &pd = ck->pd;
    MemorySystem ms(fermiL1Geometry());

    // One forward-only decode cursor per thread: block entry peeks the
    // current exec, memory instructions pull its accesses lane by lane,
    // and the terminator advances it.
    std::vector<ThreadCursor> cursor(size_t{unsigned(num_threads)});
    for (int t = 0; t < num_threads; ++t)
        cursor[size_t(t)] = traces.thread(uint32_t(t));

    // Build warps. CTAs are scheduled in order under the residency
    // limits; warps of resident CTAs interleave on the issue port.
    const int warps_per_cta =
        (launch.ctaSize + cfg_.warpSize - 1) / cfg_.warpSize;
    const int total_warps = launch.numCtas * warps_per_cta;
    std::vector<Warp> warps(static_cast<size_t>(total_warps));
    for (int w = 0; w < total_warps; ++w) {
        Warp &warp = warps[w];
        warp.cta = w / warps_per_cta;
        uint32_t mask = 0;
        for (int lane = 0; lane < cfg_.warpSize; ++lane) {
            const int in_cta =
                (w % warps_per_cta) * cfg_.warpSize + lane;
            const int tid = warp.cta * launch.ctaSize + in_cta;
            warp.tids[lane] =
                in_cta < launch.ctaSize && tid < num_threads ? tid : -1;
            if (warp.tids[lane] >= 0)
                mask |= uint32_t(1) << lane;
        }
        warp.stack = SimtStack(mask, 0);
        warp.done = warp.stack.done();
    }

    // CTA residency window [cta_lo, cta_hi).
    int resident_ctas = std::min(
        {launch.numCtas, cfg_.maxResidentCtas,
         std::max(1, cfg_.maxResidentWarps / warps_per_cta)});
    int cta_hi = resident_ctas;
    std::vector<int> live_warps_in_cta(size_t(launch.numCtas),
                                       warps_per_cta);

    uint64_t clock = 0;
    uint64_t shared_accesses = 0;
    uint64_t active_lane_slots = 0;  // Fig. 1b: occupied lanes per issue
    uint64_t issued_slots = 0;
    int rr = 0;  // round-robin pointer

    // Observability counters (deterministic scheduling statistics):
    // SIMT-stack pushes/pops across advance() — the divergence and
    // reconvergence events the paper's Fig. 1b waste stems from — and
    // the residency-window pick scans the round-robin issue performs.
    JobMetrics *jm = currentMetricSink();
    uint64_t m_divergence = 0;
    uint64_t m_reconvergence = 0;
    uint64_t m_scans = 0;
    uint64_t m_scan_steps = 0;

    // Scheduler candidate list: warp IDs not yet done, ascending. The
    // per-issue pick scan walks this instead of all warps — completed
    // warps can never be selected again, and without pruning them the
    // scan is O(total warps) per issued instruction (quadratic end-game
    // on large launches, the dominant cost of big SIMT replays).
    std::vector<int> alive;
    alive.reserve(size_t(total_warps));
    for (int w = 0; w < total_warps; ++w)
        if (!warps[w].done)
            alive.push_back(w);

    // Barrier release: when every live warp of a CTA is waiting. A
    // CTA's warps occupy the contiguous ID range [cta*warps_per_cta,
    // (cta+1)*warps_per_cta).
    auto try_release_barrier = [&](int cta) {
        const int lo = cta * warps_per_cta;
        const int hi = lo + warps_per_cta;
        int waiting = 0, live = 0;
        for (int w = lo; w < hi; ++w) {
            if (warps[w].done)
                continue;
            ++live;
            if (warps[w].atBarrier)
                ++waiting;
        }
        if (live > 0 && waiting == live) {
            for (int w = lo; w < hi; ++w) {
                if (!warps[w].done && warps[w].atBarrier) {
                    warps[w].atBarrier = false;
                    warps[w].readyAt = clock + 1;
                }
            }
        }
    };

    auto on_warp_done = [&](int w) {
        Warp &warp = warps[w];
        warp.done = true;
        alive.erase(std::lower_bound(alive.begin(), alive.end(), w));
        if (--live_warps_in_cta[warp.cta] == 0) {
            if (cta_hi < launch.numCtas)
                ++cta_hi;
        } else {
            try_release_barrier(warp.cta);  // it may have been the straggler
        }
    };

    // Livelock containment: polled once per scheduler iteration (every
    // issue, terminator or idle-advance — the loop's unit of work).
    std::optional<Watchdog> wd;
    if (cfg_.watchdog.enabled())
        wd.emplace(cfg_.watchdog, "fermi replay of '" + k.name + "'");

    while (!alive.empty()) {
        if (wd)
            wd->poll(clock, rs.dynBlockExecs, rs.dynThreadOps);
        // Pick the next ready, resident warp: the first candidate in
        // circular warp-ID order starting at rr — the same round-robin
        // greedy policy as scanning every warp. Residency is a prefix of
        // CTA (hence warp) IDs, so the scan is bounded by the resident
        // window (<= maxResidentWarps), not the launch size; the
        // earliest-wakeup fallback folds into the same pass.
        const int res_limit = cta_hi * warps_per_cta;
        const size_t upper = size_t(
            std::lower_bound(alive.begin(), alive.end(), res_limit) -
            alive.begin());
        int pick = -1;
        uint64_t next = kNever;
        if (jm)
            ++m_scans;
        if (upper > 0) {
            size_t start = size_t(
                std::lower_bound(alive.begin(), alive.begin() + long(upper),
                                 rr) -
                alive.begin());
            if (start == upper)
                start = 0;  // rr past the window: wrap to the smallest ID
            for (size_t i = 0; i < upper; ++i) {
                const size_t j =
                    start + i < upper ? start + i : start + i - upper;
                if (jm)
                    ++m_scan_steps;
                const Warp &warp = warps[alive[j]];
                if (warp.atBarrier)
                    continue;
                if (warp.readyAt <= clock) {
                    pick = alive[j];
                    break;
                }
                next = std::min(next, warp.readyAt);
            }
        }
        if (pick < 0) {
            vgiw_assert(next != kNever, "kernel '", k.name,
                        "': SM deadlock (barrier without release?)");
            clock = next;
            continue;
        }
        rr = (pick + 1) % total_warps;

        Warp &warp = warps[pick];
        const int b = warp.stack.currentBlock();
        const BasicBlock &blk = k.blocks[b];
        const uint32_t mask = warp.stack.activeMask();
        const int active = warp.stack.activeLanes();

        // On block entry, check each active lane sits on its next trace
        // exec; the per-thread cursors already point at its accesses.
        if (!warp.blockStarted) {
            for (int lane = 0; lane < 32; ++lane) {
                if (!((mask >> lane) & 1))
                    continue;
                const int tid = warp.tids[lane];
                vgiw_assert(!cursor[size_t(tid)].done(),
                            "trace underrun (SIMT replay diverged)");
                vgiw_assert(cursor[size_t(tid)].block() == b,
                            "SIMT replay off-trace: warp ", pick,
                            " block ", b, " trace ",
                            cursor[size_t(tid)].block());
            }
            warp.blockStarted = true;
            warp.instrIdx = 0;
        }

        if (warp.instrIdx < blk.instrs.size()) {
            // ---- Issue one warp instruction. -------------------------
            const FermiDecodedInstr &in = ck->decoded[b][warp.instrIdx];
            ++warp.instrIdx;
            ++rs.dynWarpInstrs;
            rs.dynThreadOps += uint64_t(active);
            active_lane_slots += uint64_t(active);
            ++issued_slots;

            // Register file: one access per warp register operand plus
            // the result write (Fig. 3's counting rule), pre-counted at
            // decode time.
            const uint32_t rf = in.rfAccesses;
            rs.rfAccesses += rf;
            rs.energy.add(EnergyComponent::RegisterFile,
                          rf * e.rfAccessWarp);
            rs.energy.add(EnergyComponent::Frontend, e.frontendWarpInstr);

            uint64_t issue_cost = 1;

            if (in.isMemory) {
                const bool is_store = in.isStore;
                if (in.isShared) {
                    // Scratchpad: serialised by bank conflicts.
                    std::array<uint32_t, 32> bank{};
                    for (int lane = 0; lane < 32; ++lane) {
                        if (!((mask >> lane) & 1))
                            continue;
                        const int tid = warp.tids[lane];
                        const MemAccess acc =
                            cursor[size_t(tid)].nextAccess();
                        ++bank[(acc.addr / 4) % 32];
                        ++shared_accesses;
                    }
                    const uint32_t passes =
                        *std::max_element(bank.begin(), bank.end());
                    issue_cost = std::max<uint64_t>(1, passes);
                    if (!is_store) {
                        warp.readyAt =
                            clock + issue_cost + cfg_.sharedLatency;
                    }
                    rs.energy.add(EnergyComponent::Scratchpad,
                                  double(active) * e.sharedAccessWord);
                } else {
                    // Coalescer: merge the warp's accesses into 128 B
                    // transactions, issued in ascending line order. At
                    // most 32 lanes -> a sorted stack array, no heap.
                    std::array<uint32_t, 32> lines;
                    int num_lines = 0;
                    for (int lane = 0; lane < 32; ++lane) {
                        if (!((mask >> lane) & 1))
                            continue;
                        const int tid = warp.tids[lane];
                        const MemAccess acc =
                            cursor[size_t(tid)].nextAccess();
                        num_lines = int(bitops::insertSortedUnique(
                            lines.data(), size_t(num_lines),
                            acc.addr / 128));
                    }
                    uint32_t max_lat = 0;
                    for (int i = 0; i < num_lines; ++i) {
                        const MemAccessResult r =
                            ms.access(lines[i] * 128, is_store);
                        max_lat = std::max(max_lat, r.latency);
                        rs.energy.add(EnergyComponent::L1,
                                      e.l1AccessLine);
                    }
                    issue_cost = std::max<uint64_t>(1, uint64_t(num_lines));
                    if (!is_store)
                        warp.readyAt = clock + issue_cost + max_lat;
                    // Stores retire through the write-through path
                    // without stalling the warp.
                }
                rs.energy.add(EnergyComponent::Datapath,
                              double(active) * e.ldstIssue);
            } else {
                switch (in.resource) {
                  case ResourceClass::Scu:
                    issue_cost = uint64_t(cfg_.scuIssueCycles);
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.scuOp);
                    break;
                  case ResourceClass::FpAlu:
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.fpAluOp);
                    break;
                  default:
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.intAluOp);
                    break;
                }
                // The scoreboard blocks this warp until the result can
                // be forwarded to the (almost always dependent) next
                // instruction; other warps fill the gap.
                warp.readyAt = clock + cfg_.aluDependencyLatency;
            }

            clock += issue_cost;
            warp.readyAt = std::max(warp.readyAt, clock);
            continue;
        }

        // ---- Terminator: one branch instruction on the SM. -----------
        if (blk.term.kind == TermKind::Branch) {
            ++rs.dynWarpInstrs;
            rs.energy.add(EnergyComponent::Frontend, e.frontendWarpInstr);
            if (ck->branchCondRf[b]) {
                ++rs.rfAccesses;
                rs.energy.add(EnergyComponent::RegisterFile,
                              e.rfAccessWarp);
            }
            clock += 1;
        }

        // Consume the execs and collect per-lane successors.
        std::array<int, 32> lane_succ;
        lane_succ.fill(SimtStack::kLaneInactive);
        for (int lane = 0; lane < 32; ++lane) {
            if (!((mask >> lane) & 1))
                continue;
            const int tid = warp.tids[lane];
            ThreadCursor &c = cursor[size_t(tid)];
            const int succ = c.succ();
            c.nextExec();
            lane_succ[lane] =
                succ < 0 ? SimtStack::kLaneExit : succ;
        }
        rs.dynBlockExecs += uint64_t(active);

        if (jm) {
            const size_t before = warp.stack.depth();
            warp.stack.advance(lane_succ, pd);
            const size_t after = warp.stack.depth();
            if (after > before)
                m_divergence += after - before;
            else
                m_reconvergence += before - after;
        } else {
            warp.stack.advance(lane_succ, pd);
        }
        warp.blockStarted = false;
        warp.readyAt = std::max(warp.readyAt, clock);

        if (warp.stack.done()) {
            on_warp_done(pick);
        } else if (blk.term.barrier) {
            warp.atBarrier = true;
            try_release_barrier(warp.cta);
        }
    }

    rs.cycles = std::max(clock, ms.dramServiceCycles());
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.dramStats = ms.dram().stats();
    rs.extra.set("fermi.warps", double(total_warps));
    rs.extra.set("fermi.shared_accesses", double(shared_accesses));
    // SIMD lane occupancy: 1.0 means no divergence waste (Fig. 1b's
    // masked-off lanes push this below 1).
    rs.extra.set("fermi.lane_occupancy",
                 issued_slots ? double(active_lane_slots) /
                                    (32.0 * double(issued_slots))
                              : 0.0);

    if (jm) {
        jm->set("fermi.divergence_events", double(m_divergence));
        jm->set("fermi.reconvergence_events", double(m_reconvergence));
        jm->set("fermi.residency_scans", double(m_scans));
        jm->set("fermi.residency_scan_steps", double(m_scan_steps));
        jm->set("fermi.lane_occupancy",
                issued_slots ? double(active_lane_slots) /
                                   (32.0 * double(issued_slots))
                             : 0.0);
        jm->set("fermi.warps", double(total_warps));
    }
    return rs;
}

} // namespace vgiw
