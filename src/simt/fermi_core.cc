#include "simt/fermi_core.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "ir/op_counts.hh"
#include "ir/post_dominators.hh"
#include "mem/memory_system.hh"
#include "simt/simt_stack.hh"

namespace vgiw
{

namespace
{

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

/** Per-warp execution state. */
struct Warp
{
    int cta = 0;
    std::array<int, 32> tids{};  ///< global tid per lane, -1 = none
    SimtStack stack{0, 0};
    size_t instrIdx = 0;
    /** Per-lane cursor into the thread's access array for the block in
     * flight; valid while instrIdx > 0 or block started. */
    std::array<uint32_t, 32> accessCursor{};
    bool blockStarted = false;
    uint64_t readyAt = 0;
    bool atBarrier = false;
    bool done = false;
};

} // namespace

RunStats
FermiCore::run(const TraceSet &traces) const
{
    const Kernel &k = *traces.kernel;
    const LaunchParams &launch = traces.launch;
    const int num_threads = launch.numThreads();
    const EnergyTable &e = cfg_.energy;

    RunStats rs;
    rs.arch = "fermi";
    rs.kernelName = k.name;

    PostDominators pd(k);
    MemorySystem ms(fermiL1Geometry());

    // Per-thread pointer into its trace.
    std::vector<uint32_t> exec_ptr(size_t(num_threads), 0);

    // Build warps. CTAs are scheduled in order under the residency
    // limits; warps of resident CTAs interleave on the issue port.
    const int warps_per_cta =
        (launch.ctaSize + cfg_.warpSize - 1) / cfg_.warpSize;
    const int total_warps = launch.numCtas * warps_per_cta;
    std::vector<Warp> warps(static_cast<size_t>(total_warps));
    for (int w = 0; w < total_warps; ++w) {
        Warp &warp = warps[w];
        warp.cta = w / warps_per_cta;
        uint32_t mask = 0;
        for (int lane = 0; lane < cfg_.warpSize; ++lane) {
            const int in_cta =
                (w % warps_per_cta) * cfg_.warpSize + lane;
            const int tid = warp.cta * launch.ctaSize + in_cta;
            warp.tids[lane] =
                in_cta < launch.ctaSize && tid < num_threads ? tid : -1;
            if (warp.tids[lane] >= 0)
                mask |= uint32_t(1) << lane;
        }
        warp.stack = SimtStack(mask, 0);
        warp.done = warp.stack.done();
    }

    // CTA residency window [cta_lo, cta_hi).
    int resident_ctas = std::min(
        {launch.numCtas, cfg_.maxResidentCtas,
         std::max(1, cfg_.maxResidentWarps / warps_per_cta)});
    int cta_hi = resident_ctas;
    std::vector<int> live_warps_in_cta(size_t(launch.numCtas),
                                       warps_per_cta);

    auto warp_resident = [&](const Warp &w) { return w.cta < cta_hi; };

    uint64_t clock = 0;
    uint64_t shared_accesses = 0;
    uint64_t active_lane_slots = 0;  // Fig. 1b: occupied lanes per issue
    uint64_t issued_slots = 0;
    int rr = 0;  // round-robin pointer

    auto all_done = [&warps]() {
        for (const auto &w : warps)
            if (!w.done)
                return false;
        return true;
    };

    // Barrier release: when every live warp of a CTA is waiting.
    auto try_release_barrier = [&](int cta) {
        int waiting = 0, live = 0;
        for (const auto &w : warps) {
            if (w.cta != cta || w.done)
                continue;
            ++live;
            if (w.atBarrier)
                ++waiting;
        }
        if (live > 0 && waiting == live) {
            for (auto &w : warps) {
                if (w.cta == cta && !w.done && w.atBarrier) {
                    w.atBarrier = false;
                    w.readyAt = clock + 1;
                }
            }
        }
    };

    auto on_warp_done = [&](Warp &w) {
        w.done = true;
        if (--live_warps_in_cta[w.cta] == 0) {
            if (cta_hi < launch.numCtas)
                ++cta_hi;
        } else {
            try_release_barrier(w.cta);  // it may have been the straggler
        }
    };

    while (!all_done()) {
        // Pick the next ready, resident warp (round-robin, greedy).
        int pick = -1;
        for (int i = 0; i < total_warps; ++i) {
            const int w = (rr + i) % total_warps;
            const Warp &warp = warps[w];
            if (!warp.done && !warp.atBarrier && warp_resident(warp) &&
                warp.readyAt <= clock) {
                pick = w;
                break;
            }
        }
        if (pick < 0) {
            uint64_t next = kNever;
            for (const auto &w : warps) {
                if (!w.done && !w.atBarrier && warp_resident(w))
                    next = std::min(next, w.readyAt);
            }
            vgiw_assert(next != kNever, "kernel '", k.name,
                        "': SM deadlock (barrier without release?)");
            clock = next;
            continue;
        }
        rr = (pick + 1) % total_warps;

        Warp &warp = warps[pick];
        const int b = warp.stack.currentBlock();
        const BasicBlock &blk = k.blocks[b];
        const uint32_t mask = warp.stack.activeMask();
        const int active = warp.stack.activeLanes();

        // On block entry, bind each active lane to its next trace exec.
        if (!warp.blockStarted) {
            for (int lane = 0; lane < 32; ++lane) {
                if (!((mask >> lane) & 1))
                    continue;
                const int tid = warp.tids[lane];
                const ThreadTrace &tr = traces.threads[tid];
                vgiw_assert(exec_ptr[tid] < tr.execs.size(),
                            "trace underrun (SIMT replay diverged)");
                const BlockExec &ex = tr.execs[exec_ptr[tid]];
                vgiw_assert(ex.block == b, "SIMT replay off-trace: warp ",
                            pick, " block ", b, " trace ", ex.block);
                warp.accessCursor[lane] = ex.accessBegin;
            }
            warp.blockStarted = true;
            warp.instrIdx = 0;
        }

        if (warp.instrIdx < blk.instrs.size()) {
            // ---- Issue one warp instruction. -------------------------
            const Instr &in = blk.instrs[warp.instrIdx];
            ++warp.instrIdx;
            ++rs.dynWarpInstrs;
            rs.dynThreadOps += uint64_t(active);
            active_lane_slots += uint64_t(active);
            ++issued_slots;

            // Register file: one access per warp register operand plus
            // the result write (Fig. 3's counting rule).
            uint32_t rf = 0;
            for (const auto &s : in.src)
                if (s.isRegisterRead())
                    ++rf;
            if (in.op != Opcode::Store)
                ++rf;  // destination write
            rs.rfAccesses += rf;
            rs.energy.add(EnergyComponent::RegisterFile,
                          rf * e.rfAccessWarp);
            rs.energy.add(EnergyComponent::Frontend, e.frontendWarpInstr);

            uint64_t issue_cost = 1;

            if (in.isMemory()) {
                const bool is_store = in.op == Opcode::Store;
                if (in.space == MemSpace::Shared) {
                    // Scratchpad: serialised by bank conflicts.
                    std::array<uint32_t, 32> bank{};
                    for (int lane = 0; lane < 32; ++lane) {
                        if (!((mask >> lane) & 1))
                            continue;
                        const int tid = warp.tids[lane];
                        const MemAccess &acc =
                            traces.threads[tid]
                                .accesses[warp.accessCursor[lane]++];
                        ++bank[(acc.addr / 4) % 32];
                        ++shared_accesses;
                    }
                    const uint32_t passes =
                        *std::max_element(bank.begin(), bank.end());
                    issue_cost = std::max<uint64_t>(1, passes);
                    if (!is_store) {
                        warp.readyAt =
                            clock + issue_cost + cfg_.sharedLatency;
                    }
                    rs.energy.add(EnergyComponent::Scratchpad,
                                  double(active) * e.sharedAccessWord);
                } else {
                    // Coalescer: merge the warp's accesses into 128 B
                    // transactions.
                    std::map<uint32_t, bool> lines;  // line -> any access
                    for (int lane = 0; lane < 32; ++lane) {
                        if (!((mask >> lane) & 1))
                            continue;
                        const int tid = warp.tids[lane];
                        const MemAccess &acc =
                            traces.threads[tid]
                                .accesses[warp.accessCursor[lane]++];
                        lines.emplace(acc.addr / 128, true);
                    }
                    uint32_t max_lat = 0;
                    for (const auto &[line, unused] : lines) {
                        (void)unused;
                        const MemAccessResult r =
                            ms.access(line * 128, is_store);
                        max_lat = std::max(max_lat, r.latency);
                        rs.energy.add(EnergyComponent::L1,
                                      e.l1AccessLine);
                    }
                    issue_cost = std::max<uint64_t>(1, lines.size());
                    if (!is_store)
                        warp.readyAt = clock + issue_cost + max_lat;
                    // Stores retire through the write-through path
                    // without stalling the warp.
                }
                rs.energy.add(EnergyComponent::Datapath,
                              double(active) * e.ldstIssue);
            } else {
                switch (opcodeResource(in.op, in.type)) {
                  case ResourceClass::Scu:
                    issue_cost = uint64_t(cfg_.scuIssueCycles);
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.scuOp);
                    break;
                  case ResourceClass::FpAlu:
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.fpAluOp);
                    break;
                  default:
                    rs.energy.add(EnergyComponent::Datapath,
                                  double(active) * e.intAluOp);
                    break;
                }
                // The scoreboard blocks this warp until the result can
                // be forwarded to the (almost always dependent) next
                // instruction; other warps fill the gap.
                warp.readyAt = clock + cfg_.aluDependencyLatency;
            }

            clock += issue_cost;
            warp.readyAt = std::max(warp.readyAt, clock);
            continue;
        }

        // ---- Terminator: one branch instruction on the SM. -----------
        if (blk.term.kind == TermKind::Branch) {
            ++rs.dynWarpInstrs;
            rs.energy.add(EnergyComponent::Frontend, e.frontendWarpInstr);
            if (blk.term.cond.isRegisterRead()) {
                ++rs.rfAccesses;
                rs.energy.add(EnergyComponent::RegisterFile,
                              e.rfAccessWarp);
            }
            clock += 1;
        }

        // Consume the execs and collect per-lane successors.
        std::array<int, 32> lane_succ;
        lane_succ.fill(SimtStack::kLaneInactive);
        for (int lane = 0; lane < 32; ++lane) {
            if (!((mask >> lane) & 1))
                continue;
            const int tid = warp.tids[lane];
            const BlockExec &ex =
                traces.threads[tid].execs[exec_ptr[tid]++];
            lane_succ[lane] =
                ex.succ < 0 ? SimtStack::kLaneExit : int(ex.succ);
        }
        rs.dynBlockExecs += uint64_t(active);

        warp.stack.advance(lane_succ, pd);
        warp.blockStarted = false;
        warp.readyAt = std::max(warp.readyAt, clock);

        if (warp.stack.done()) {
            on_warp_done(warp);
        } else if (blk.term.barrier) {
            warp.atBarrier = true;
            try_release_barrier(warp.cta);
        }
    }

    rs.cycles = std::max(clock, ms.dramServiceCycles());
    rs.energy.add(EnergyComponent::L2,
                  ms.l2().stats().accesses() * e.l2AccessLine);
    rs.energy.add(EnergyComponent::Dram,
                  ms.dram().stats().accesses * e.dramAccessLine);

    rs.l1Stats = ms.l1().stats();
    rs.l2Stats = ms.l2().stats();
    rs.dramStats = ms.dram().stats();
    rs.extra.set("fermi.warps", double(total_warps));
    rs.extra.set("fermi.shared_accesses", double(shared_accesses));
    // SIMD lane occupancy: 1.0 means no divergence waste (Fig. 1b's
    // masked-off lanes push this below 1).
    rs.extra.set("fermi.lane_occupancy",
                 issued_slots ? double(active_lane_slots) /
                                    (32.0 * double(issued_slots))
                              : 0.0);
    return rs;
}

} // namespace vgiw
