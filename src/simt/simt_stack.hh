/**
 * @file
 * The per-warp SIMT reconvergence stack of the von Neumann GPGPU
 * baseline. Diverging warps push one entry per branch outcome and
 * reconverge at the immediate post-dominator of the divergent block —
 * the classic execution-mask scheme whose cost Figure 1b illustrates.
 */

#ifndef VGIW_SIMT_SIMT_STACK_HH
#define VGIW_SIMT_SIMT_STACK_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "ir/post_dominators.hh"

namespace vgiw
{

/** Reconvergence stack of one warp (32 lanes). */
class SimtStack
{
  public:
    /** rpc sentinel: reconvergence only at thread exit. */
    static constexpr int kReconvergeAtExit =
        std::numeric_limits<int>::max();

    /** Lane successor meaning "lane was inactive". */
    static constexpr int kLaneInactive = -2;
    /** Lane successor meaning "thread exited". */
    static constexpr int kLaneExit = -1;

    SimtStack(uint32_t initial_mask, int entry_block);

    bool done() const { return stack_.empty(); }

    /** Block the warp executes next. */
    int currentBlock() const { return stack_.back().pc; }

    /** Execution mask for the current block. */
    uint32_t activeMask() const { return stack_.back().mask; }

    /** Number of active lanes. */
    int activeLanes() const
    { return __builtin_popcount(activeMask()); }

    /**
     * Advance after executing the current block: @p lane_succ gives each
     * lane's next block (kLaneExit when the thread retired, kLaneInactive
     * for masked-off lanes). Divergent outcomes push per-target entries
     * that reconverge at ipdom(current block).
     */
    void advance(const std::array<int, 32> &lane_succ,
                 const PostDominators &pd);

    /** Depth of the stack (for tests/stats). */
    size_t depth() const { return stack_.size(); }

  private:
    struct Entry
    {
        int pc;
        int rpc;
        uint32_t mask;
    };

    void dropEmptyTop();

    std::vector<Entry> stack_;
};

} // namespace vgiw

#endif // VGIW_SIMT_SIMT_STACK_HH
