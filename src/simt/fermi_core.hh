/**
 * @file
 * The von Neumann GPGPU baseline: a Fermi-style streaming multiprocessor.
 *
 * Warps of 32 threads execute in lockstep under SIMT execution masks with
 * a reconvergence stack (so divergent warps pay for both branch paths —
 * the cost Figure 1b illustrates). The model is event-driven at warp
 * instruction granularity: every issue occupies the SM's issue port, ALU
 * latency is hidden by multithreading, loads block the issuing warp until
 * the cache hierarchy answers, and an inter-warp coalescer merges a
 * warp's accesses into 128 B transactions before the L1 (the capability
 * VGIW lacks, Section 5). Register-file traffic is counted one access per
 * warp operand, exactly the Figure 3 denominator.
 */

#ifndef VGIW_SIMT_FERMI_CORE_HH
#define VGIW_SIMT_FERMI_CORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/watchdog.hh"
#include "driver/core_model.hh"
#include "driver/run_stats.hh"
#include "interp/trace.hh"
#include "ir/opcode.hh"
#include "ir/post_dominators.hh"
#include "power/energy_model.hh"

namespace vgiw
{

/** Configuration of the Fermi-style SM model. */
struct FermiConfig
{
    int warpSize = 32;
    int maxResidentWarps = 48;  ///< Fermi SM limit
    int maxResidentCtas = 8;
    /** Issue-port cycles for a non-pipelined (SFU) operation: 32 lanes
     * over 4 SFUs. */
    int scuIssueCycles = 8;
    /**
     * Dependent-issue latency of the arithmetic pipeline (Fermi's
     * documented read-after-write latency is ~18-22 cycles). A warp
     * whose next instruction depends on the previous one — the common
     * case in the address/compute chains of these kernels — is not
     * ready again until the result is forwarded; other resident warps
     * hide the gap when occupancy suffices.
     */
    uint32_t aluDependencyLatency = 20;
    uint32_t sharedLatency = 24;
    EnergyTable energy{};

    /** Replay ceilings (cycle budget / wall-clock deadline). */
    WatchdogConfig watchdog{};

    /**
     * Well-formedness check, run at job entry by the experiment engine.
     * The warp state arrays are 32 wide and scheduling divides by the
     * residency limits, so out-of-range values must fail fast as a
     * `config`-kind error. Empty string when valid.
     */
    std::string validate() const;
};

/** One pre-decoded warp instruction (the SM frontend's work, done once
 * per kernel instead of once per dynamic issue). */
struct FermiDecodedInstr
{
    uint32_t rfAccesses = 0;  ///< warp RF ops: register reads + dest write
    bool isMemory = false;
    bool isShared = false;
    bool isStore = false;
    ResourceClass resource = ResourceClass::IntAlu;
};

/**
 * Fermi compile artifact: the post-dominator tree that drives SIMT
 * reconvergence plus the per-block decoded instruction streams.
 */
struct FermiCompiledKernel final : CompiledKernel
{
    explicit FermiCompiledKernel(const Kernel &kernel) : pd(kernel) {}
    /** Rehydration path: an already-computed reconvergence tree. */
    explicit FermiCompiledKernel(PostDominators pdoms)
        : pd(std::move(pdoms))
    {
    }

    PostDominators pd;
    std::vector<std::vector<FermiDecodedInstr>> decoded;  ///< per block
    /** Per block: terminator is a branch whose condition reads a
     * register (one RF access per dynamic branch). */
    std::vector<uint8_t> branchCondRf;
};

/** Event-driven Fermi SM model. */
class FermiCore final : public CoreModel
{
  public:
    explicit FermiCore(const FermiConfig &cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "fermi"; }

    std::string compileKey() const override;
    std::string replayKey() const override;

    /** Decode the kernel and build the reconvergence (post-dominator)
     * tree. Config-independent: every Fermi sweep point shares it. */
    std::shared_ptr<const CompiledKernel>
    compile(const Kernel &kernel) const override;

    /** Replay @p traces and return timing/energy statistics. */
    RunStats run(const TraceSet &traces,
                 const CompiledKernel &compiled) const override;
    using CoreModel::run;

    /** Persist / rehydrate a FermiCompiledKernel (artifact store). */
    std::string
    serializeArtifact(const CompiledKernel &compiled) const override;
    std::shared_ptr<const CompiledKernel>
    deserializeArtifact(std::string_view bytes) const override;

    const FermiConfig &config() const { return cfg_; }

  private:
    FermiConfig cfg_;
};

} // namespace vgiw

#endif // VGIW_SIMT_FERMI_CORE_HH
