/**
 * @file
 * Basic blocks, terminators and kernels of the VGIW IR.
 *
 * Blocks are numbered by the compiler in reverse post-order: the entry
 * block holds the reserved ID 0 and a loop back-edge always targets a
 * smaller block ID (Section 3.1). This property is what lets the hardware
 * Basic Block Scheduler be a trivial "smallest non-empty vector" priority
 * selector.
 */

#ifndef VGIW_IR_KERNEL_HH
#define VGIW_IR_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr.hh"

namespace vgiw
{

/** A live value written by this block, addressed by live-value ID. */
struct LiveOut
{
    uint16_t lvid = 0;
    Operand value{};
};

/** How a block ends. */
enum class TermKind : uint8_t
{
    Jump,    ///< unconditional jump to target[0]
    Branch,  ///< cond ? target[0] : target[1]
    Exit,    ///< thread retires
};

/** Block terminator, executed by the terminator CVU. */
struct Terminator
{
    TermKind kind = TermKind::Exit;
    Operand cond{};           ///< Branch only
    int target[2] = {-1, -1};
    /**
     * CTA-level barrier: threads wait at this block's end until every
     * thread of their CTA has arrived, then proceed to the successor.
     * (Extension over the paper, needed by the shared-memory Rodinia
     * kernels; block-vector draining gives VGIW these semantics almost
     * for free — see DESIGN.md §9.)
     */
    bool barrier = false;

    int
    numTargets() const
    {
        switch (kind) {
          case TermKind::Jump: return 1;
          case TermKind::Branch: return 2;
          case TermKind::Exit: return 0;
        }
        return 0;
    }
};

/** A basic block: a straight-line dataflow graph plus a terminator. */
struct BasicBlock
{
    std::string name;
    std::vector<Instr> instrs;     ///< in topological (program) order
    std::vector<LiveOut> liveOuts;
    Terminator term;

    /** Count of distinct live-value IDs read by this block. */
    int numLiveInReads() const;

    /** Static memory operation count. */
    int numMemOps() const;
};

/** A compiled kernel: blocks indexed by block ID, entry at ID 0. */
struct Kernel
{
    std::string name;
    std::vector<BasicBlock> blocks;
    int numParams = 0;
    int numLiveValues = 0;  ///< live-value IDs are in [0, numLiveValues)
    int sharedBytesPerCta = 0;

    int numBlocks() const { return int(blocks.size()); }

    /** Total static instruction count over all blocks. */
    int totalInstrs() const;
};

/** Parameters of one kernel launch. */
struct LaunchParams
{
    int numCtas = 1;
    int ctaSize = 32;
    std::vector<Scalar> params;

    int numThreads() const { return numCtas * ctaSize; }
};

} // namespace vgiw

#endif // VGIW_IR_KERNEL_HH
