/**
 * @file
 * Instruction opcodes for the VGIW kernel IR and their static properties.
 *
 * The IR is deliberately close to the PTX-level SSA code the paper's
 * compiler consumes (Section 4, "Compiler"): type-polymorphic three-address
 * operations, explicit loads/stores, and compare results materialised as
 * 0/1 words. Each opcode maps to a functional-unit resource class that the
 * place-and-route stage and the energy model both consume.
 */

#ifndef VGIW_IR_OPCODE_HH
#define VGIW_IR_OPCODE_HH

#include <cstdint>

#include "common/scalar.hh"

namespace vgiw
{

/** IR operation codes. */
enum class Opcode : uint8_t
{
    // Type-polymorphic arithmetic (pipelined on the merged FPU-ALU).
    Add, Sub, Mul, Min, Max, Neg, Abs,
    // Integer-only bitwise / shift operations.
    And, Or, Xor, Not, Shl, Shr,
    // Comparisons; result is a U32 0/1 word.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    // Conditional select: c ? a : b.
    Select,
    // Non-pipelined operations, executed on the Special Compute Units.
    Div, Rem, Sqrt, Rsqrt, Exp, Log, Sin, Cos,
    // Conversions (pipelined).
    I2F, U2F, F2I, F2U,
    // Memory.
    Load, Store,

    NumOpcodes,
};

/** Memory address spaces. */
enum class MemSpace : uint8_t { Global, Shared };

/**
 * Functional-unit resource class an operation occupies, used for
 * place-and-route capacity accounting and for per-op energy.
 */
enum class ResourceClass : uint8_t
{
    IntAlu,   ///< integer side of the merged FPU-ALU
    FpAlu,    ///< floating-point side of the merged FPU-ALU
    Scu,      ///< special compute unit (non-pipelined circuits)
    Mem,      ///< load/store unit
};

/** Number of source operands an opcode consumes. */
int opcodeArity(Opcode op);

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** True for Load and Store. */
bool opcodeIsMemory(Opcode op);

/** True for operations that run on the SCUs (non-pipelined circuits). */
bool opcodeIsSpecial(Opcode op);

/**
 * Resource class of an operation given its element type. Division and the
 * transcendentals always occupy an SCU; everything else occupies the
 * integer or floating-point side of a merged compute unit.
 */
ResourceClass opcodeResource(Opcode op, Type type);

} // namespace vgiw

#endif // VGIW_IR_OPCODE_HH
