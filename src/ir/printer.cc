#include "ir/printer.hh"

#include <ostream>
#include <sstream>

namespace vgiw
{

std::string
operandToString(const Operand &op)
{
    std::ostringstream os;
    switch (op.kind) {
      case OperandKind::None:
        os << "_";
        break;
      case OperandKind::Local:
        os << "%" << op.index;
        break;
      case OperandKind::LiveIn:
        os << "lv" << op.index;
        break;
      case OperandKind::Param:
        os << "p" << op.index;
        break;
      case OperandKind::Const:
        os << "#" << op.constant.asI32();
        break;
      case OperandKind::Special:
        switch (op.specialReg()) {
          case SpecialReg::Tid: os << "tid"; break;
          case SpecialReg::TidInCta: os << "tid.cta"; break;
          case SpecialReg::CtaId: os << "ctaid"; break;
          case SpecialReg::CtaSize: os << "ntid"; break;
          case SpecialReg::NumCtas: os << "nctaid"; break;
          case SpecialReg::NumThreads: os << "nthreads"; break;
        }
        break;
    }
    return os.str();
}

void
printKernel(const Kernel &k, std::ostream &os)
{
    os << "kernel " << k.name << " (params: " << k.numParams
       << ", live values: " << k.numLiveValues;
    if (k.sharedBytesPerCta)
        os << ", shared: " << k.sharedBytesPerCta << "B/cta";
    os << ")\n";

    for (int b = 0; b < k.numBlocks(); ++b) {
        const BasicBlock &blk = k.blocks[b];
        os << "  BB" << b << " '" << blk.name << "':\n";
        for (size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            os << "    %" << i << " = " << opcodeName(in.op) << "."
               << typeName(in.type);
            if (in.isMemory() && in.space == MemSpace::Shared)
                os << ".shared";
            const int arity = opcodeArity(in.op);
            for (int s = 0; s < arity; ++s)
                os << (s ? ", " : " ") << operandToString(in.src[s]);
            os << "\n";
        }
        for (const auto &lo : blk.liveOuts) {
            os << "    lv" << lo.lvid << " <- "
               << operandToString(lo.value) << "\n";
        }
        switch (blk.term.kind) {
          case TermKind::Jump:
            os << "    jump BB" << blk.term.target[0];
            break;
          case TermKind::Branch:
            os << "    branch " << operandToString(blk.term.cond)
               << " ? BB" << blk.term.target[0] << " : BB"
               << blk.term.target[1];
            break;
          case TermKind::Exit:
            os << "    exit";
            break;
        }
        if (blk.term.barrier)
            os << "  [barrier]";
        os << "\n";
    }
}

std::string
kernelToString(const Kernel &k)
{
    std::ostringstream os;
    printKernel(k, os);
    return os.str();
}

} // namespace vgiw
