#include "ir/op_counts.hh"

namespace vgiw
{

OpCounts
staticOpCounts(const BasicBlock &blk)
{
    OpCounts c;
    for (const auto &in : blk.instrs) {
        switch (in.resource()) {
          case ResourceClass::IntAlu:
            ++c.intAlu;
            break;
          case ResourceClass::FpAlu:
            ++c.fpAlu;
            break;
          case ResourceClass::Scu:
            ++c.scu;
            break;
          case ResourceClass::Mem:
            if (in.op == Opcode::Load)
                ++c.loads;
            else
                ++c.stores;
            break;
        }
    }
    return c;
}

} // namespace vgiw
