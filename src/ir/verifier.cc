#include "ir/verifier.hh"

#include <vector>

#include "common/logging.hh"

namespace vgiw
{

namespace
{

/** Per-live-value "definitely written" bit set, one bool per lvid. */
using WrittenSet = std::vector<bool>;

void
intersectInto(WrittenSet &dst, const WrittenSet &src)
{
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] = dst[i] && src[i];
}

void
checkOperand(const Kernel &k, int bid, int instr_idx, const Operand &o,
             const char *what)
{
    const BasicBlock &b = k.blocks[bid];
    switch (o.kind) {
      case OperandKind::Local:
        if (int(o.index) >= instr_idx) {
            vgiw_fatal("kernel '", k.name, "' block '", b.name, "': ", what,
                       " references instruction ", o.index,
                       " which does not precede it");
        }
        break;
      case OperandKind::LiveIn:
        if (int(o.index) >= k.numLiveValues) {
            vgiw_fatal("kernel '", k.name, "' block '", b.name, "': ", what,
                       " reads live value ", o.index, " out of range");
        }
        break;
      case OperandKind::Param:
        if (int(o.index) >= k.numParams) {
            vgiw_fatal("kernel '", k.name, "' block '", b.name, "': ", what,
                       " reads parameter ", o.index, " out of range");
        }
        break;
      default:
        break;
    }
}

} // namespace

void
verifyKernel(const Kernel &k)
{
    const int n = k.numBlocks();
    if (n == 0)
        vgiw_fatal("kernel '", k.name, "' has no blocks");

    // -- Structure: targets in range; arity; local operand ordering.
    for (int bid = 0; bid < n; ++bid) {
        const BasicBlock &b = k.blocks[bid];
        for (int s = 0; s < b.term.numTargets(); ++s) {
            int t = b.term.target[s];
            if (t < 0 || t >= n) {
                vgiw_fatal("kernel '", k.name, "' block '", b.name,
                           "': branch target ", t, " out of range");
            }
        }
        for (int i = 0; i < int(b.instrs.size()); ++i) {
            const Instr &in = b.instrs[i];
            const int arity = opcodeArity(in.op);
            for (int s = 0; s < arity; ++s) {
                if (in.src[s].isNone()) {
                    vgiw_fatal("kernel '", k.name, "' block '", b.name,
                               "': instr ", i, " (", opcodeName(in.op),
                               ") is missing operand ", s);
                }
                checkOperand(k, bid, i, in.src[s], "operand");
            }
            for (int s = arity; s < 3; ++s) {
                if (!in.src[s].isNone()) {
                    vgiw_fatal("kernel '", k.name, "' block '", b.name,
                               "': instr ", i, " (", opcodeName(in.op),
                               ") has excess operand ", s);
                }
            }
        }
        const int n_instrs = int(b.instrs.size());
        for (const auto &lo : b.liveOuts) {
            if (int(lo.lvid) >= k.numLiveValues) {
                vgiw_fatal("kernel '", k.name, "' block '", b.name,
                           "': live-out id ", lo.lvid, " out of range");
            }
            checkOperand(k, bid, n_instrs, lo.value, "live-out");
        }
        if (b.term.kind == TermKind::Branch) {
            if (b.term.cond.isNone()) {
                vgiw_fatal("kernel '", k.name, "' block '", b.name,
                           "': branch without condition");
            }
            checkOperand(k, bid, n_instrs, b.term.cond, "branch condition");
        }
    }

    // -- Live-value read-before-write analysis. Forward dataflow to a
    // fixpoint: written[b] = intersection over predecessors p of
    // (written[p] | liveOuts(p)); entry starts empty.
    const size_t nlv = size_t(k.numLiveValues);
    std::vector<WrittenSet> written(n, WrittenSet(nlv, true));
    written[0] = WrittenSet(nlv, false);

    bool changed = true;
    while (changed) {
        changed = false;
        for (int bid = 0; bid < n; ++bid) {
            WrittenSet out = written[bid];
            for (const auto &lo : k.blocks[bid].liveOuts)
                out[lo.lvid] = true;
            for (int s = 0; s < k.blocks[bid].term.numTargets(); ++s) {
                const int t = k.blocks[bid].term.target[s];
                WrittenSet next = written[t];
                intersectInto(next, out);
                // Entry keeps its empty in-set even if targeted by a
                // back edge: re-entry cannot happen for a fresh thread.
                if (t != 0 && next != written[t]) {
                    written[t] = next;
                    changed = true;
                }
            }
        }
    }

    for (int bid = 0; bid < n; ++bid) {
        const BasicBlock &b = k.blocks[bid];
        auto check_live_in = [&](const Operand &o, const char *what) {
            if (o.kind == OperandKind::LiveIn && !written[bid][o.index]) {
                vgiw_fatal("kernel '", k.name, "' block '", b.name, "': ",
                           what, " reads live value ", o.index,
                           " which is not written on all paths from entry");
            }
        };
        for (const auto &in : b.instrs)
            for (const auto &s : in.src)
                check_live_in(s, "instruction");
        for (const auto &lo : b.liveOuts)
            check_live_in(lo.value, "live-out");
        check_live_in(b.term.cond, "branch condition");
    }
}

} // namespace vgiw
