#include "ir/post_dominators.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vgiw
{

PostDominators::PostDominators(const Kernel &k)
{
    const int n = k.numBlocks();
    const int vexit = n;  // virtual exit node id
    const int total = n + 1;

    // Reversed-CFG edges: preds on the reversed graph are the kernel's
    // successors, so walk from the virtual exit over predecessor lists.
    std::vector<std::vector<int>> succs(total);  // in the reversed graph
    std::vector<std::vector<int>> preds(total);
    for (int b = 0; b < n; ++b) {
        const Terminator &t = k.blocks[b].term;
        if (t.kind == TermKind::Exit) {
            succs[vexit].push_back(b);
            preds[b].push_back(vexit);
        }
        for (int s = 0; s < t.numTargets(); ++s) {
            succs[t.target[s]].push_back(b);
            preds[b].push_back(t.target[s]);
        }
    }

    // RPO of the reversed graph from the virtual exit.
    std::vector<int> post;
    std::vector<uint8_t> state(total, 0);
    std::vector<std::pair<int, size_t>> stack{{vexit, 0}};
    state[vexit] = 1;
    while (!stack.empty()) {
        auto &[node, slot] = stack.back();
        if (slot >= succs[node].size()) {
            post.push_back(node);
            stack.pop_back();
            continue;
        }
        int nxt = succs[node][slot++];
        if (!state[nxt]) {
            state[nxt] = 1;
            stack.emplace_back(nxt, 0);
        }
    }
    std::vector<int> rpo_num(total, -1);
    std::vector<int> order;  // nodes in reversed-graph RPO
    for (int i = int(post.size()) - 1, r = 0; i >= 0; --i, ++r) {
        rpo_num[post[i]] = r;
        order.push_back(post[i]);
    }
    for (int b = 0; b < n; ++b) {
        vgiw_assert(rpo_num[b] >= 0,
                    "block ", b, " cannot reach an exit block");
    }

    // Cooper-Harvey-Kennedy iteration.
    std::vector<int> idom(total, -2);  // -2 = undefined
    idom[vexit] = vexit;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_num[a] > rpo_num[b])
                a = idom[a];
            while (rpo_num[b] > rpo_num[a])
                b = idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int node : order) {
            if (node == vexit)
                continue;
            int new_idom = -2;
            for (int p : preds[node]) {
                if (idom[p] == -2)
                    continue;
                new_idom = (new_idom == -2) ? p : intersect(p, new_idom);
            }
            vgiw_assert(new_idom != -2, "no processed predecessor");
            if (idom[node] != new_idom) {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }

    ipdom_.resize(n);
    for (int b = 0; b < n; ++b)
        ipdom_[b] = idom[b] == vexit ? kVirtualExit : idom[b];
}

bool
PostDominators::postDominates(int a, int b) const
{
    if (a == b)
        return true;
    int cur = b;
    while (true) {
        cur = cur == kVirtualExit ? kVirtualExit : ipdom_[cur];
        if (cur == a)
            return true;
        if (cur == kVirtualExit)
            return a == kVirtualExit;
    }
}

} // namespace vgiw
