/**
 * @file
 * Static per-block operation counts by resource class, shared by the
 * timing and energy models of all three architectures.
 */

#ifndef VGIW_IR_OP_COUNTS_HH
#define VGIW_IR_OP_COUNTS_HH

#include <cstdint>

#include "ir/kernel.hh"

namespace vgiw
{

/** Instruction counts of one basic block, split by resource class. */
struct OpCounts
{
    uint32_t intAlu = 0;
    uint32_t fpAlu = 0;
    uint32_t scu = 0;
    uint32_t loads = 0;
    uint32_t stores = 0;

    uint32_t mem() const { return loads + stores; }
    uint32_t total() const { return intAlu + fpAlu + scu + mem(); }
};

/** Count @p block's instructions by resource class. */
OpCounts staticOpCounts(const BasicBlock &block);

} // namespace vgiw

#endif // VGIW_IR_OP_COUNTS_HH
