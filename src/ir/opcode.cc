#include "ir/opcode.hh"

#include "common/logging.hh"

namespace vgiw
{

int
opcodeArity(Opcode op)
{
    switch (op) {
      case Opcode::Neg:
      case Opcode::Abs:
      case Opcode::Not:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::I2F:
      case Opcode::U2F:
      case Opcode::F2I:
      case Opcode::F2U:
      case Opcode::Load:
        return 1;
      case Opcode::Select:
        return 3;
      case Opcode::Store:
        return 2;
      default:
        return 2;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Neg: return "neg";
      case Opcode::Abs: return "abs";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmp.eq";
      case Opcode::CmpNe: return "cmp.ne";
      case Opcode::CmpLt: return "cmp.lt";
      case Opcode::CmpLe: return "cmp.le";
      case Opcode::CmpGt: return "cmp.gt";
      case Opcode::CmpGe: return "cmp.ge";
      case Opcode::Select: return "select";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Rsqrt: return "rsqrt";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::I2F: return "i2f";
      case Opcode::U2F: return "u2f";
      case Opcode::F2I: return "f2i";
      case Opcode::F2U: return "f2u";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::NumOpcodes: break;
    }
    vgiw_panic("bad opcode");
}

bool
opcodeIsMemory(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
opcodeIsSpecial(Opcode op)
{
    switch (op) {
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Sin:
      case Opcode::Cos:
        return true;
      default:
        return false;
    }
}

ResourceClass
opcodeResource(Opcode op, Type type)
{
    if (opcodeIsMemory(op))
        return ResourceClass::Mem;
    if (opcodeIsSpecial(op))
        return ResourceClass::Scu;
    if (type == Type::F32 || op == Opcode::I2F || op == Opcode::U2F)
        return ResourceClass::FpAlu;
    return ResourceClass::IntAlu;
}

} // namespace vgiw
