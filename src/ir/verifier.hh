/**
 * @file
 * Structural and dataflow validation of a finished kernel.
 */

#ifndef VGIW_IR_VERIFIER_HH
#define VGIW_IR_VERIFIER_HH

#include "ir/kernel.hh"

namespace vgiw
{

/**
 * Validate @p kernel, calling vgiw_fatal() with a diagnostic on the first
 * violation found. Checks performed:
 *
 *  - the entry block exists and branch targets are in range;
 *  - block numbering is a valid reverse post-order (every forward edge
 *    goes to a larger ID; back edges, and only back edges, go to smaller
 *    or equal IDs that dominate a loop);
 *  - Local operands reference strictly earlier instructions in the block;
 *  - operand slots match each opcode's arity and stores carry a value;
 *  - every LiveIn read is preceded, on all paths from the entry, by a
 *    block that wrote the same live-value ID (no read-before-write);
 *  - live-value IDs are within the kernel's declared range.
 */
void verifyKernel(const Kernel &kernel);

} // namespace vgiw

#endif // VGIW_IR_VERIFIER_HH
