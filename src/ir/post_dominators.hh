/**
 * @file
 * Immediate post-dominator analysis.
 *
 * The Fermi-style SIMT baseline reconverges diverged warps at the
 * immediate post-dominator of the divergent branch — the classic
 * reconvergence-stack scheme the paper's GPGPU baseline implements.
 * Computed with the Cooper-Harvey-Kennedy iterative algorithm on the
 * reversed CFG, with a virtual exit node joining all Exit blocks.
 */

#ifndef VGIW_IR_POST_DOMINATORS_HH
#define VGIW_IR_POST_DOMINATORS_HH

#include <vector>

#include "ir/kernel.hh"

namespace vgiw
{

/** Immediate post-dominators of a kernel's CFG. */
class PostDominators
{
  public:
    /** Sentinel meaning "the virtual exit node". */
    static constexpr int kVirtualExit = -1;

    explicit PostDominators(const Kernel &kernel);

    /**
     * Rehydrate from a previously computed ipdom vector (the compiled-
     * artifact store round-trip); @p ipdoms must come from ipdoms() on
     * a kernel with an identical CFG, which the store key guarantees.
     */
    static PostDominators
    fromIpdoms(std::vector<int> ipdoms)
    {
        PostDominators pd;
        pd.ipdom_ = std::move(ipdoms);
        return pd;
    }

    /**
     * Immediate post-dominator of @p block, or kVirtualExit when the only
     * post-dominator is the virtual exit (i.e. reconvergence happens at
     * thread termination).
     */
    int ipdom(int block) const { return ipdom_[block]; }

    /** True if @p a post-dominates @p b (a == b counts). */
    bool postDominates(int a, int b) const;

    /** The full immediate-post-dominator vector (serialization). */
    const std::vector<int> &ipdoms() const { return ipdom_; }

  private:
    PostDominators() = default;

    std::vector<int> ipdom_;
};

} // namespace vgiw

#endif // VGIW_IR_POST_DOMINATORS_HH
