/**
 * @file
 * Human-readable dump of a kernel's IR — the debugging view of the
 * "graph instruction words" the compiler produces.
 */

#ifndef VGIW_IR_PRINTER_HH
#define VGIW_IR_PRINTER_HH

#include <iosfwd>
#include <string>

#include "ir/kernel.hh"

namespace vgiw
{

/** Print one operand (e.g. "%3", "lv2", "p0", "#42", "tid"). */
std::string operandToString(const Operand &op);

/** Print a whole kernel, block by block. */
void printKernel(const Kernel &kernel, std::ostream &os);

/** Convenience: printKernel into a string. */
std::string kernelToString(const Kernel &kernel);

} // namespace vgiw

#endif // VGIW_IR_PRINTER_HH
