#include "ir/builder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ir/verifier.hh"

namespace vgiw
{

Operand
BlockRef::op(Opcode o, Type t, Operand a, Operand b, Operand c)
{
    vgiw_assert(!opcodeIsMemory(o), "use load()/store() for memory ops");
    BasicBlock &blk = kb_->blockAt(index_);
    Instr in;
    in.op = o;
    in.type = t;
    in.src = {a, b, c};
    blk.instrs.push_back(in);
    return Operand::local(uint16_t(blk.instrs.size() - 1));
}

Operand
BlockRef::memOp(Opcode o, Type t, MemSpace space, Operand a, Operand b)
{
    BasicBlock &blk = kb_->blockAt(index_);
    Instr in;
    in.op = o;
    in.type = t;
    in.space = space;
    in.src = {a, b, Operand{}};
    blk.instrs.push_back(in);
    return Operand::local(uint16_t(blk.instrs.size() - 1));
}

void
BlockRef::out(uint16_t lvid, Operand value)
{
    kb_->blockAt(index_).liveOuts.push_back(LiveOut{lvid, value});
}

void
BlockRef::jump(BlockRef target, bool barrier)
{
    BasicBlock &blk = kb_->blockAt(index_);
    blk.term.kind = TermKind::Jump;
    blk.term.target[0] = target.index();
    blk.term.target[1] = -1;
    blk.term.barrier = barrier;
    kb_->terminated_[index_] = true;
}

void
BlockRef::branch(Operand cond, BlockRef if_true, BlockRef if_false,
                 bool barrier)
{
    BasicBlock &blk = kb_->blockAt(index_);
    blk.term.kind = TermKind::Branch;
    blk.term.cond = cond;
    blk.term.target[0] = if_true.index();
    blk.term.target[1] = if_false.index();
    blk.term.barrier = barrier;
    kb_->terminated_[index_] = true;
}

void
BlockRef::exit()
{
    BasicBlock &blk = kb_->blockAt(index_);
    blk.term.kind = TermKind::Exit;
    blk.term.target[0] = blk.term.target[1] = -1;
    kb_->terminated_[index_] = true;
}

KernelBuilder::KernelBuilder(std::string name, int num_params)
{
    kernel_.name = std::move(name);
    kernel_.numParams = num_params;
}

BlockRef
KernelBuilder::block(std::string name)
{
    vgiw_assert(!finished_, "builder already finished");
    kernel_.blocks.emplace_back();
    kernel_.blocks.back().name = std::move(name);
    terminated_.push_back(false);
    return BlockRef(this, int(kernel_.blocks.size()) - 1);
}

uint16_t
KernelBuilder::newLiveValue()
{
    return uint16_t(nextLvid_++);
}

void
KernelBuilder::setSharedBytesPerCta(int bytes)
{
    kernel_.sharedBytesPerCta = bytes;
}

BasicBlock &
KernelBuilder::blockAt(int idx)
{
    vgiw_assert(idx >= 0 && idx < int(kernel_.blocks.size()),
                "bad block index ", idx);
    return kernel_.blocks[idx];
}

Kernel
KernelBuilder::finish()
{
    vgiw_assert(!finished_, "builder already finished");
    finished_ = true;

    const int n = int(kernel_.blocks.size());
    if (n == 0)
        vgiw_fatal("kernel '", kernel_.name, "' has no blocks");
    for (int i = 0; i < n; ++i) {
        if (!terminated_[i]) {
            vgiw_fatal("block '", kernel_.blocks[i].name,
                       "' has no terminator");
        }
    }

    // Reverse post-order numbering with successors visited in reverse
    // declared order. This makes the taken target (written first) receive
    // the smaller ID, so a loop written as `branch cond ? body : exit`
    // orders header < body < exit — exactly the property the hardware
    // block scheduler relies on (Section 3.1).
    std::vector<int> post_order;
    std::vector<uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<int, int>> stack;  // (block, next succ slot)
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, slot] = stack.back();
        const Terminator &t = kernel_.blocks[b].term;
        const int nt = t.numTargets();
        if (slot >= nt) {
            post_order.push_back(b);
            state[b] = 2;
            stack.pop_back();
            continue;
        }
        // Visit targets in reverse declared order.
        int succ = t.target[nt - 1 - slot];
        ++slot;
        if (state[succ] == 0) {
            state[succ] = 1;
            stack.emplace_back(succ, 0);
        }
    }

    if (int(post_order.size()) != n) {
        for (int i = 0; i < n; ++i) {
            if (state[i] == 0) {
                vgiw_fatal("block '", kernel_.blocks[i].name,
                           "' is unreachable from the entry block");
            }
        }
    }

    // post_order reversed is the new ID order.
    std::vector<int> new_id(n, -1);
    for (int i = 0; i < n; ++i)
        new_id[post_order[n - 1 - i]] = i;

    std::vector<BasicBlock> reordered(n);
    for (int old = 0; old < n; ++old) {
        BasicBlock blk = std::move(kernel_.blocks[old]);
        for (int s = 0; s < blk.term.numTargets(); ++s)
            blk.term.target[s] = new_id[blk.term.target[s]];
        reordered[new_id[old]] = std::move(blk);
    }
    kernel_.blocks = std::move(reordered);
    kernel_.numLiveValues = nextLvid_;

    verifyKernel(kernel_);
    return std::move(kernel_);
}

} // namespace vgiw
