/**
 * @file
 * Operands and instructions of the VGIW kernel IR.
 *
 * Inside a basic block, values flow directly from producer to consumer —
 * an operand of kind Local names an earlier instruction in the same block,
 * which becomes a direct token edge on the MT-CGRF. Values that cross
 * block boundaries are named by compiler-allocated live-value IDs and
 * travel through the Live Value Cache (operand kind LiveIn, and the
 * block's live-out list).
 */

#ifndef VGIW_IR_INSTR_HH
#define VGIW_IR_INSTR_HH

#include <array>
#include <cstdint>

#include "common/scalar.hh"
#include "ir/opcode.hh"

namespace vgiw
{

/** Where an operand's value comes from. */
enum class OperandKind : uint8_t
{
    None,     ///< unused slot
    Local,    ///< result of an earlier instruction in the same block
    LiveIn,   ///< live value produced by a previously executed block
    Const,    ///< compile-time constant baked into the unit configuration
    Special,  ///< thread coordinates delivered by the initiator CVU
    Param,    ///< kernel launch parameter (pointer / scalar argument)
};

/** Thread-coordinate specials (the CUDA ThreadIDX family). */
enum class SpecialReg : uint8_t
{
    Tid,         ///< global linear thread id
    TidInCta,    ///< thread id within its CTA (threadIdx.x)
    CtaId,       ///< CTA id (blockIdx.x)
    CtaSize,     ///< threads per CTA (blockDim.x)
    NumCtas,     ///< CTAs in the launch (gridDim.x)
    NumThreads,  ///< total threads in the launch
};

/** A single instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    uint16_t index = 0;  ///< Local: instr index; LiveIn: lvid; Param: slot
    Scalar constant{};   ///< Const: the value; Special: SpecialReg in bits

    static Operand
    local(uint16_t instr_idx)
    {
        return {OperandKind::Local, instr_idx, Scalar{}};
    }

    static Operand
    liveIn(uint16_t lvid)
    {
        return {OperandKind::LiveIn, lvid, Scalar{}};
    }

    static Operand
    constant32(Scalar v)
    {
        return {OperandKind::Const, 0, v};
    }

    static Operand constI32(int32_t v) { return constant32(Scalar::fromI32(v)); }
    static Operand constU32(uint32_t v) { return constant32(Scalar::fromU32(v)); }
    static Operand constF32(float v) { return constant32(Scalar::fromF32(v)); }

    static Operand
    special(SpecialReg r)
    {
        return {OperandKind::Special, 0,
                Scalar(static_cast<uint32_t>(r))};
    }

    static Operand
    param(uint16_t slot)
    {
        return {OperandKind::Param, slot, Scalar{}};
    }

    bool isNone() const { return kind == OperandKind::None; }
    SpecialReg specialReg() const
    { return static_cast<SpecialReg>(constant.bits); }

    /**
     * True when reading this operand costs a register-file access on a
     * von Neumann GPGPU. Constants are immediates; specials come from
     * dedicated registers on both machines.
     */
    bool
    isRegisterRead() const
    {
        return kind == OperandKind::Local || kind == OperandKind::LiveIn;
    }
};

/** A three-address IR instruction. */
struct Instr
{
    Opcode op = Opcode::Add;
    Type type = Type::I32;        ///< element type the operation works on
    MemSpace space = MemSpace::Global;  ///< for Load/Store
    std::array<Operand, 3> src{};

    ResourceClass resource() const { return opcodeResource(op, type); }
    bool isMemory() const { return opcodeIsMemory(op); }
};

} // namespace vgiw

#endif // VGIW_IR_INSTR_HH
