/**
 * @file
 * A fluent construction API for VGIW kernels.
 *
 * The builder plays the role of the paper's LLVM-based compiler front-end
 * (Section 3.1): the user describes blocks, instructions and control flow
 * in any order; finish() then (a) renumbers blocks in reverse post-order so
 * the entry block gets the reserved ID 0 and back-edges target smaller IDs,
 * (b) allocates the live-value ID space, and (c) verifies the kernel.
 */

#ifndef VGIW_IR_BUILDER_HH
#define VGIW_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/kernel.hh"

namespace vgiw
{

class KernelBuilder;

/** Handle to a block under construction; provides emission shorthands. */
class BlockRef
{
  public:
    BlockRef() = default;
    BlockRef(KernelBuilder *kb, int index) : kb_(kb), index_(index) {}

    int index() const { return index_; }

    /** Emit a generic instruction; returns its result operand. */
    Operand op(Opcode o, Type t, Operand a = {}, Operand b = {},
               Operand c = {});

    // Integer (I32) shorthands.
    Operand iadd(Operand a, Operand b) { return op(Opcode::Add, Type::I32, a, b); }
    Operand isub(Operand a, Operand b) { return op(Opcode::Sub, Type::I32, a, b); }
    Operand imul(Operand a, Operand b) { return op(Opcode::Mul, Type::I32, a, b); }
    Operand imin(Operand a, Operand b) { return op(Opcode::Min, Type::I32, a, b); }
    Operand imax(Operand a, Operand b) { return op(Opcode::Max, Type::I32, a, b); }
    Operand idiv(Operand a, Operand b) { return op(Opcode::Div, Type::I32, a, b); }
    Operand irem(Operand a, Operand b) { return op(Opcode::Rem, Type::I32, a, b); }
    Operand iand(Operand a, Operand b) { return op(Opcode::And, Type::I32, a, b); }
    Operand ior(Operand a, Operand b) { return op(Opcode::Or, Type::I32, a, b); }
    Operand ixor(Operand a, Operand b) { return op(Opcode::Xor, Type::I32, a, b); }
    Operand ishl(Operand a, Operand b) { return op(Opcode::Shl, Type::I32, a, b); }
    Operand ishr(Operand a, Operand b) { return op(Opcode::Shr, Type::I32, a, b); }
    Operand ieq(Operand a, Operand b) { return op(Opcode::CmpEq, Type::I32, a, b); }
    Operand ine(Operand a, Operand b) { return op(Opcode::CmpNe, Type::I32, a, b); }
    Operand ilt(Operand a, Operand b) { return op(Opcode::CmpLt, Type::I32, a, b); }
    Operand ile(Operand a, Operand b) { return op(Opcode::CmpLe, Type::I32, a, b); }
    Operand igt(Operand a, Operand b) { return op(Opcode::CmpGt, Type::I32, a, b); }
    Operand ige(Operand a, Operand b) { return op(Opcode::CmpGe, Type::I32, a, b); }

    // Unsigned (U32) shorthands.
    Operand uadd(Operand a, Operand b) { return op(Opcode::Add, Type::U32, a, b); }
    Operand umul(Operand a, Operand b) { return op(Opcode::Mul, Type::U32, a, b); }
    Operand udiv(Operand a, Operand b) { return op(Opcode::Div, Type::U32, a, b); }
    Operand urem(Operand a, Operand b) { return op(Opcode::Rem, Type::U32, a, b); }
    Operand ushr(Operand a, Operand b) { return op(Opcode::Shr, Type::U32, a, b); }
    Operand ult(Operand a, Operand b) { return op(Opcode::CmpLt, Type::U32, a, b); }

    // Floating-point (F32) shorthands.
    Operand fadd(Operand a, Operand b) { return op(Opcode::Add, Type::F32, a, b); }
    Operand fsub(Operand a, Operand b) { return op(Opcode::Sub, Type::F32, a, b); }
    Operand fmul(Operand a, Operand b) { return op(Opcode::Mul, Type::F32, a, b); }
    Operand fdiv(Operand a, Operand b) { return op(Opcode::Div, Type::F32, a, b); }
    Operand fmin(Operand a, Operand b) { return op(Opcode::Min, Type::F32, a, b); }
    Operand fmax(Operand a, Operand b) { return op(Opcode::Max, Type::F32, a, b); }
    Operand fneg(Operand a) { return op(Opcode::Neg, Type::F32, a); }
    Operand fabs(Operand a) { return op(Opcode::Abs, Type::F32, a); }
    Operand fsqrt(Operand a) { return op(Opcode::Sqrt, Type::F32, a); }
    Operand frsqrt(Operand a) { return op(Opcode::Rsqrt, Type::F32, a); }
    Operand fexp(Operand a) { return op(Opcode::Exp, Type::F32, a); }
    Operand flog(Operand a) { return op(Opcode::Log, Type::F32, a); }
    Operand fsin(Operand a) { return op(Opcode::Sin, Type::F32, a); }
    Operand fcos(Operand a) { return op(Opcode::Cos, Type::F32, a); }
    Operand flt(Operand a, Operand b) { return op(Opcode::CmpLt, Type::F32, a, b); }
    Operand fle(Operand a, Operand b) { return op(Opcode::CmpLe, Type::F32, a, b); }
    Operand fgt(Operand a, Operand b) { return op(Opcode::CmpGt, Type::F32, a, b); }
    Operand fge(Operand a, Operand b) { return op(Opcode::CmpGe, Type::F32, a, b); }
    Operand feq(Operand a, Operand b) { return op(Opcode::CmpEq, Type::F32, a, b); }

    Operand i2f(Operand a) { return op(Opcode::I2F, Type::F32, a); }
    Operand u2f(Operand a) { return op(Opcode::U2F, Type::F32, a); }
    Operand f2i(Operand a) { return op(Opcode::F2I, Type::I32, a); }
    Operand f2u(Operand a) { return op(Opcode::F2U, Type::U32, a); }

    Operand
    select(Type t, Operand c, Operand a, Operand b)
    {
        return op(Opcode::Select, t, c, a, b);
    }

    Operand
    load(Type t, Operand addr, MemSpace space = MemSpace::Global)
    {
        return memOp(Opcode::Load, t, space, addr, Operand{});
    }

    void
    store(Type t, Operand addr, Operand value,
          MemSpace space = MemSpace::Global)
    {
        memOp(Opcode::Store, t, space, addr, value);
    }

    /**
     * Byte address of 32-bit element @p index in the array at byte
     * address @p base: base + (index << 2). Emitted as shift + add.
     */
    Operand
    elemAddr(Operand base, Operand index)
    {
        Operand off = op(Opcode::Shl, Type::U32, index, Operand::constU32(2));
        return op(Opcode::Add, Type::U32, base, off);
    }

    /** Read a live value produced by a predecessor block. */
    Operand in(uint16_t lvid) { return Operand::liveIn(lvid); }

    /** Publish @p value as live value @p lvid for successor blocks. */
    void out(uint16_t lvid, Operand value);

    // Terminators.
    void jump(BlockRef target, bool barrier = false);
    void branch(Operand cond, BlockRef if_true, BlockRef if_false,
                bool barrier = false);
    void exit();

  private:
    Operand memOp(Opcode o, Type t, MemSpace space, Operand a, Operand b);

    KernelBuilder *kb_ = nullptr;
    int index_ = -1;
};

/** Builds and finalises a Kernel. */
class KernelBuilder
{
  public:
    KernelBuilder(std::string name, int num_params);

    /** Create a new block. The first block created is the kernel entry. */
    BlockRef block(std::string name);

    /** Allocate a fresh live-value ID. */
    uint16_t newLiveValue();

    /** Declare per-CTA scratchpad usage. */
    void setSharedBytesPerCta(int bytes);

    /**
     * Renumber blocks in reverse post-order, verify, and return the
     * finished kernel. The builder must not be reused afterwards.
     */
    Kernel finish();

  private:
    friend class BlockRef;

    BasicBlock &blockAt(int idx);

    Kernel kernel_;
    int nextLvid_ = 0;
    std::vector<bool> terminated_;
    bool finished_ = false;
};

} // namespace vgiw

#endif // VGIW_IR_BUILDER_HH
