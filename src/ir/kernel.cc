#include "ir/kernel.hh"

#include <algorithm>

namespace vgiw
{

int
BasicBlock::numLiveInReads() const
{
    std::vector<uint16_t> seen;
    auto note = [&seen](const Operand &o) {
        if (o.kind == OperandKind::LiveIn &&
            std::find(seen.begin(), seen.end(), o.index) == seen.end()) {
            seen.push_back(o.index);
        }
    };
    for (const auto &in : instrs)
        for (const auto &s : in.src)
            note(s);
    for (const auto &lo : liveOuts)
        note(lo.value);
    note(term.cond);
    return int(seen.size());
}

int
BasicBlock::numMemOps() const
{
    int n = 0;
    for (const auto &in : instrs)
        if (in.isMemory())
            ++n;
    return n;
}

int
Kernel::totalInstrs() const
{
    int n = 0;
    for (const auto &b : blocks)
        n += int(b.instrs.size());
    return n;
}

} // namespace vgiw
