/**
 * @file
 * Failure-injection tests for the functional executor: runaway loops,
 * out-of-range memory, barrier deadlocks and scratchpad overruns must be
 * caught with diagnostics rather than corrupting the simulation.
 */

#include <gtest/gtest.h>

#include "helpers/test_kernels.hh"
#include "interp/interpreter.hh"

namespace vgiw
{
namespace
{

TEST(InterpGuards, RunawayLoopIsCaught)
{
    // while(true) kernel: the dynamic block-execution budget trips.
    KernelBuilder kb("spin", 0);
    BlockRef entry = kb.block("entry");
    BlockRef loop = kb.block("loop");
    entry.jump(loop);
    loop.jump(loop);
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    InterpOptions opts;
    opts.maxBlockExecs = 1000;
    EXPECT_THROW(Interpreter(opts).run(k, lp, mem), std::runtime_error);
}

TEST(InterpGuards, OutOfRangeLoadPanics)
{
    KernelBuilder kb("oob", 0);
    BlockRef b = kb.block("entry");
    b.load(Type::I32, Operand::constU32(0x7ffffffc));
    b.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    EXPECT_DEATH(Interpreter{}.run(k, lp, mem), "out of range");
}

TEST(InterpGuards, UnalignedAccessPanics)
{
    KernelBuilder kb("unaligned", 0);
    BlockRef b = kb.block("entry");
    b.load(Type::I32, Operand::constU32(130));
    b.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    EXPECT_DEATH(Interpreter{}.run(k, lp, mem), "unaligned");
}

TEST(InterpGuards, SharedOverrunPanics)
{
    KernelBuilder kb("shared_oob", 0);
    kb.setSharedBytesPerCta(64);
    BlockRef b = kb.block("entry");
    b.store(Type::I32, Operand::constU32(128), Operand::constI32(1),
            MemSpace::Shared);
    b.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    EXPECT_DEATH(Interpreter{}.run(k, lp, mem), "shared store");
}

TEST(InterpGuards, BarrierDeadlockDetected)
{
    // Half the CTA exits before the barrier: the arrivals can never
    // match the live count... actually exits reduce the live count, so
    // build a real deadlock: two groups waiting at *different* barriers.
    KernelBuilder kb("deadlock", 0);
    const uint16_t lv = kb.newLiveValue();
    BlockRef entry = kb.block("entry");
    BlockRef a = kb.block("a");
    BlockRef b = kb.block("b");
    BlockRef a2 = kb.block("a2");
    BlockRef b2 = kb.block("b2");
    Operand lane = Operand::special(SpecialReg::TidInCta);
    entry.out(lv, lane);
    entry.branch(entry.ilt(lane, Operand::constI32(2)), a, b);
    a.jump(a2, /*barrier=*/true);
    b.jump(b2, /*barrier=*/true);
    a2.exit();
    b2.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 4;
    EXPECT_THROW(Interpreter{}.run(k, lp, mem), std::runtime_error);
}

TEST(InterpGuards, ExitBeforeBarrierReleasesWaiters)
{
    // Threads 0-1 exit immediately; threads 2-3 hit a barrier. The
    // live count shrinks, so the barrier releases with 2 arrivals
    // (CUDA's semantics for exited threads).
    KernelBuilder kb("early_exit", 1);
    BlockRef entry = kb.block("entry");
    BlockRef work = kb.block("work");
    BlockRef after = kb.block("after");
    BlockRef out = kb.block("out");
    Operand lane = Operand::special(SpecialReg::TidInCta);
    entry.branch(entry.ilt(lane, Operand::constI32(2)), out, work);
    out.exit();
    work.jump(after, /*barrier=*/true);
    after.store(Type::I32,
                after.elemAddr(Operand::param(0), lane),
                Operand::constI32(7));
    after.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    uint32_t buf = mem.allocWords(8);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 4;
    lp.params = {Scalar::fromU32(buf)};
    EXPECT_NO_THROW(Interpreter{}.run(k, lp, mem));
    EXPECT_EQ(mem.loadI32(buf, 2), 7);
    EXPECT_EQ(mem.loadI32(buf, 3), 7);
}

TEST(MemoryImageGuards, AllocationExhaustionPanics)
{
    MemoryImage mem(1024);
    mem.allocWords(128);
    EXPECT_DEATH(mem.allocWords(256), "exhausted");
}

TEST(MemoryImageGuards, AllocationsAreLineAligned)
{
    MemoryImage mem(1 << 16);
    uint32_t a = mem.allocWords(3);
    uint32_t b = mem.allocWords(3);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace vgiw
