/**
 * @file
 * Round-trip tests for the compressed trace codec: randomized
 * ThreadTraces through TraceSet::fromThreads and back via both the
 * materialising decoder (decodeThread) and the streaming ThreadCursor
 * must reproduce every block, successor and access exactly. Also pins
 * the shapes the run code exists for (tight loops) actually compress,
 * and that the exec-only blockExecCount walk matches a full decode.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "interp/trace.hh"

namespace vgiw
{
namespace
{

/** Append one execution with @p naccs random accesses. */
void
addExec(ThreadTrace &t, std::mt19937_64 &rng, int block, int succ,
        uint32_t naccs)
{
    BlockExec e;
    e.block = uint16_t(block);
    e.succ = int16_t(succ);
    e.accessBegin = uint32_t(t.accesses.size());
    for (uint32_t a = 0; a < naccs; ++a) {
        MemAccess m;
        m.isShared = (rng() % 4) == 0;
        m.isStore = (rng() % 3) == 0;
        // Mix strided progress with jumps; shared stays small.
        m.addr = m.isShared ? uint32_t(rng() % 4096)
                            : uint32_t(0x80000000u + (rng() % (1u << 20)));
        t.accesses.push_back(m);
    }
    e.accessEnd = uint32_t(t.accesses.size());
    t.execs.push_back(e);
}

ThreadTrace
randomTrace(std::mt19937_64 &rng)
{
    ThreadTrace t;
    const int num_blocks = 1 + int(rng() % 12);
    int block = int(rng() % num_blocks);
    const size_t len = rng() % 200;
    for (size_t i = 0; i < len; ++i) {
        const bool exit = i + 1 == len;
        const int succ = exit ? -1 : int(rng() % num_blocks);
        addExec(t, rng, block, succ, uint32_t(rng() % 5));
        if (!exit)
            block = succ;
    }
    return t;
}

void
expectEqual(const ThreadTrace &a, const ThreadTrace &b)
{
    ASSERT_EQ(a.execs.size(), b.execs.size());
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    for (size_t i = 0; i < a.execs.size(); ++i) {
        EXPECT_EQ(a.execs[i].block, b.execs[i].block) << "exec " << i;
        EXPECT_EQ(a.execs[i].succ, b.execs[i].succ) << "exec " << i;
        EXPECT_EQ(a.execs[i].accessBegin, b.execs[i].accessBegin);
        EXPECT_EQ(a.execs[i].accessEnd, b.execs[i].accessEnd);
    }
    for (size_t i = 0; i < a.accesses.size(); ++i) {
        EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr) << "acc " << i;
        EXPECT_EQ(a.accesses[i].isStore, b.accesses[i].isStore);
        EXPECT_EQ(a.accesses[i].isShared, b.accesses[i].isShared);
    }
}

TEST(TraceCodec, RandomizedRoundTrip)
{
    std::mt19937_64 rng(42);
    for (int round = 0; round < 20; ++round) {
        std::vector<ThreadTrace> threads(1 + rng() % 8);
        for (auto &t : threads)
            t = randomTrace(rng);
        const TraceSet ts =
            TraceSet::fromThreads(nullptr, LaunchParams{}, threads);
        ASSERT_EQ(ts.numThreads(), threads.size());
        uint64_t execs = 0, accs = 0;
        for (uint32_t tid = 0; tid < threads.size(); ++tid) {
            EXPECT_EQ(ts.numExecs(tid), threads[tid].execs.size());
            EXPECT_EQ(ts.numAccesses(tid), threads[tid].accesses.size());
            expectEqual(threads[tid], ts.decodeThread(tid));
            execs += threads[tid].execs.size();
            accs += threads[tid].accesses.size();
        }
        EXPECT_EQ(ts.totalBlockExecs(), execs);
        EXPECT_EQ(ts.totalAccesses(), accs);
    }
}

TEST(TraceCodec, CursorSkipsUnconsumedAccesses)
{
    // A replay model may advance without draining an execution's
    // accesses; the cursor must resynchronise the delta chains.
    std::mt19937_64 rng(7);
    ThreadTrace t = randomTrace(rng);
    const std::vector<ThreadTrace> threads{t};
    const TraceSet ts =
        TraceSet::fromThreads(nullptr, LaunchParams{}, threads);

    size_t i = 0;
    uint32_t consumed_phase = 0;
    for (ThreadCursor c = ts.thread(0); !c.done(); c.nextExec(), ++i) {
        ASSERT_LT(i, t.execs.size());
        EXPECT_EQ(c.block(), int(t.execs[i].block));
        EXPECT_EQ(c.succ(), int(t.execs[i].succ));
        const uint32_t nacc = c.numAccesses();
        ASSERT_EQ(nacc, t.execs[i].accessEnd - t.execs[i].accessBegin);
        // Consume a varying prefix: 0, all, half, 1, ...
        const uint32_t take = nacc == 0 ? 0 : consumed_phase % (nacc + 1);
        consumed_phase += 1;
        for (uint32_t a = 0; a < take; ++a) {
            const MemAccess got = c.nextAccess();
            const MemAccess &want = t.accesses[t.execs[i].accessBegin + a];
            EXPECT_EQ(got.addr, want.addr);
            EXPECT_EQ(got.isStore, want.isStore);
            EXPECT_EQ(got.isShared, want.isShared);
        }
    }
    EXPECT_EQ(i, t.execs.size());
}

TEST(TraceCodec, BlockExecCountMatchesFullDecode)
{
    std::mt19937_64 rng(11);
    std::vector<ThreadTrace> threads(6);
    for (auto &t : threads)
        t = randomTrace(rng);
    const TraceSet ts =
        TraceSet::fromThreads(nullptr, LaunchParams{}, threads);
    for (int b = 0; b < 12; ++b) {
        uint64_t want = 0;
        for (const auto &t : threads)
            for (const auto &e : t.execs)
                want += e.block == b;
        EXPECT_EQ(ts.blockExecCount(b), want) << "block " << b;
    }
}

TEST(TraceCodec, TightLoopCompresses)
{
    // The shape the run token exists for: a two-block loop body
    // iterated many times. The encoded stream must be far smaller
    // than the raw arrays (conservatively: at least 8x).
    std::mt19937_64 rng(3);
    ThreadTrace t;
    for (int it = 0; it < 1000; ++it) {
        addExec(t, rng, 4, 5, 0);
        addExec(t, rng, 5, it + 1 < 1000 ? 4 : -1, 0);
    }
    const std::vector<ThreadTrace> threads{t};
    const TraceSet ts =
        TraceSet::fromThreads(nullptr, LaunchParams{}, threads);
    expectEqual(t, ts.decodeThread(0));
    EXPECT_LT(ts.compressedBytes() * 8, ts.uncompressedBytes());
}

TEST(TraceCodec, EmptyAndSingleExecThreads)
{
    std::vector<ThreadTrace> threads(3);
    std::mt19937_64 rng(9);
    // threads[0]: empty. threads[1]: one exec, no accesses.
    addExec(threads[1], rng, 2, -1, 0);
    // threads[2]: one exec with accesses.
    addExec(threads[2], rng, 0, -1, 3);
    const TraceSet ts =
        TraceSet::fromThreads(nullptr, LaunchParams{}, threads);
    EXPECT_TRUE(ts.thread(0).done());
    EXPECT_EQ(ts.numExecs(0), 0u);
    expectEqual(threads[1], ts.decodeThread(1));
    expectEqual(threads[2], ts.decodeThread(2));
}

} // namespace
} // namespace vgiw
