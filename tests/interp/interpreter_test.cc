#include <gtest/gtest.h>

#include <cmath>

#include "helpers/test_kernels.hh"
#include "interp/interpreter.hh"

namespace vgiw
{
namespace
{

/** Run a one-block kernel computing `op(a, b)` and return the result. */
Scalar
evalBinary(Opcode op, Type t, Scalar a, Scalar b)
{
    KernelBuilder kb("unit", 3);
    BlockRef blk = kb.block("entry");
    Operand r = blk.op(op, t, Operand::param(1), Operand::param(2));
    blk.store(Type::U32, Operand::param(0), r);
    blk.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    uint32_t out = mem.allocWords(1);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    lp.params = {Scalar::fromU32(out), a, b};
    Interpreter{}.run(k, lp, mem);
    return Scalar(mem.loadWord(out));
}

Scalar
evalUnary(Opcode op, Type t, Scalar a)
{
    KernelBuilder kb("unit", 2);
    BlockRef blk = kb.block("entry");
    Operand r = blk.op(op, t, Operand::param(1));
    blk.store(Type::U32, Operand::param(0), r);
    blk.exit();
    Kernel k = kb.finish();

    MemoryImage mem(4096);
    uint32_t out = mem.allocWords(1);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 1;
    lp.params = {Scalar::fromU32(out), a};
    Interpreter{}.run(k, lp, mem);
    return Scalar(mem.loadWord(out));
}

TEST(InterpOps, IntegerArithmetic)
{
    auto I = [](int32_t v) { return Scalar::fromI32(v); };
    EXPECT_EQ(evalBinary(Opcode::Add, Type::I32, I(3), I(4)).asI32(), 7);
    EXPECT_EQ(evalBinary(Opcode::Sub, Type::I32, I(3), I(5)).asI32(), -2);
    EXPECT_EQ(evalBinary(Opcode::Mul, Type::I32, I(-3), I(4)).asI32(), -12);
    EXPECT_EQ(evalBinary(Opcode::Min, Type::I32, I(-3), I(4)).asI32(), -3);
    EXPECT_EQ(evalBinary(Opcode::Max, Type::I32, I(-3), I(4)).asI32(), 4);
    EXPECT_EQ(evalBinary(Opcode::Div, Type::I32, I(7), I(2)).asI32(), 3);
    EXPECT_EQ(evalBinary(Opcode::Rem, Type::I32, I(7), I(2)).asI32(), 1);
    // Division by zero is defined as 0 (no UB in the model).
    EXPECT_EQ(evalBinary(Opcode::Div, Type::I32, I(7), I(0)).asI32(), 0);
    EXPECT_EQ(evalBinary(Opcode::Rem, Type::I32, I(7), I(0)).asI32(), 0);
}

TEST(InterpOps, UnsignedVsSignedSemantics)
{
    auto I = [](int32_t v) { return Scalar::fromI32(v); };
    // -1 < 1 signed, but 0xffffffff > 1 unsigned.
    EXPECT_EQ(evalBinary(Opcode::CmpLt, Type::I32, I(-1), I(1)).asU32(), 1u);
    EXPECT_EQ(evalBinary(Opcode::CmpLt, Type::U32, I(-1), I(1)).asU32(), 0u);
    // Arithmetic vs logical shift right.
    EXPECT_EQ(evalBinary(Opcode::Shr, Type::I32, I(-8), I(1)).asI32(), -4);
    EXPECT_EQ(evalBinary(Opcode::Shr, Type::U32, I(-8), I(1)).asU32(),
              0x7ffffffcu);
}

TEST(InterpOps, Bitwise)
{
    auto U = [](uint32_t v) { return Scalar::fromU32(v); };
    EXPECT_EQ(evalBinary(Opcode::And, Type::U32, U(0b1100), U(0b1010)).asU32(),
              0b1000u);
    EXPECT_EQ(evalBinary(Opcode::Or, Type::U32, U(0b1100), U(0b1010)).asU32(),
              0b1110u);
    EXPECT_EQ(evalBinary(Opcode::Xor, Type::U32, U(0b1100), U(0b1010)).asU32(),
              0b0110u);
    EXPECT_EQ(evalUnary(Opcode::Not, Type::U32, U(0)).asU32(), 0xffffffffu);
    EXPECT_EQ(evalBinary(Opcode::Shl, Type::U32, U(1), U(5)).asU32(), 32u);
}

TEST(InterpOps, FloatArithmetic)
{
    auto F = [](float v) { return Scalar::fromF32(v); };
    EXPECT_FLOAT_EQ(
        evalBinary(Opcode::Add, Type::F32, F(1.5f), F(2.25f)).asF32(), 3.75f);
    EXPECT_FLOAT_EQ(
        evalBinary(Opcode::Mul, Type::F32, F(3.0f), F(-2.0f)).asF32(), -6.0f);
    EXPECT_FLOAT_EQ(
        evalBinary(Opcode::Div, Type::F32, F(1.0f), F(4.0f)).asF32(), 0.25f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Sqrt, Type::F32, F(9.0f)).asF32(), 3.0f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Rsqrt, Type::F32, F(4.0f)).asF32(),
                    0.5f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Exp, Type::F32, F(0.0f)).asF32(), 1.0f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Log, Type::F32, F(1.0f)).asF32(), 0.0f);
    EXPECT_NEAR(evalUnary(Opcode::Sin, Type::F32, F(0.5f)).asF32(),
                std::sin(0.5f), 1e-6f);
    EXPECT_NEAR(evalUnary(Opcode::Cos, Type::F32, F(0.5f)).asF32(),
                std::cos(0.5f), 1e-6f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Abs, Type::F32, F(-2.5f)).asF32(), 2.5f);
    EXPECT_FLOAT_EQ(evalUnary(Opcode::Neg, Type::F32, F(2.5f)).asF32(), -2.5f);
}

TEST(InterpOps, Conversions)
{
    auto F = [](float v) { return Scalar::fromF32(v); };
    EXPECT_FLOAT_EQ(
        evalUnary(Opcode::I2F, Type::F32, Scalar::fromI32(-7)).asF32(), -7.f);
    EXPECT_FLOAT_EQ(
        evalUnary(Opcode::U2F, Type::F32, Scalar::fromU32(7)).asF32(), 7.f);
    EXPECT_EQ(evalUnary(Opcode::F2I, Type::I32, F(-7.9f)).asI32(), -7);
    EXPECT_EQ(evalUnary(Opcode::F2U, Type::U32, F(7.9f)).asU32(), 7u);
}

TEST(InterpOps, Select)
{
    KernelBuilder kb("sel", 4);
    BlockRef blk = kb.block("entry");
    Operand r = blk.select(Type::I32, Operand::param(1), Operand::param(2),
                           Operand::param(3));
    blk.store(Type::U32, Operand::param(0), r);
    blk.exit();
    Kernel k = kb.finish();

    for (int cond = 0; cond < 2; ++cond) {
        MemoryImage mem(4096);
        uint32_t out = mem.allocWords(1);
        LaunchParams lp;
        lp.numCtas = 1;
        lp.ctaSize = 1;
        lp.params = {Scalar::fromU32(out), Scalar::fromI32(cond),
                     Scalar::fromI32(111), Scalar::fromI32(222)};
        Interpreter{}.run(k, lp, mem);
        EXPECT_EQ(Scalar(mem.loadWord(out)).asI32(), cond ? 111 : 222);
    }
}

TEST(Interpreter, Fig1DivergentPathsComputeCorrectly)
{
    Kernel k = testing::makeFig1Kernel();
    MemoryImage mem(1 << 16);
    const int n = 8;
    uint32_t in = mem.allocWords(n);
    uint32_t out = mem.allocWords(n);
    uint32_t out2 = mem.allocWords(n);
    // Divergence pattern from the paper: threads {0,2,7}->BB2,
    // {1,6}->BB4, {3,4,5}->BB5.
    const int32_t vals[n] = {1, 0, 3, 2, 2, 2, 3, 1};
    for (int i = 0; i < n; ++i)
        mem.storeI32(in, i, vals[i] & 1 ? vals[i] : (vals[i] == 0 ? 0 : 2));
    // Rewrite: use the raw vals directly; the branch tests bit 0 then 1.
    const int32_t raw[n] = {1, 2, 1, 0, 0, 0, 2, 1};
    for (int i = 0; i < n; ++i)
        mem.storeI32(in, i, raw[i]);

    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = n;
    lp.params = {Scalar::fromU32(in), Scalar::fromU32(out),
                 Scalar::fromU32(out2)};
    TraceSet ts = Interpreter{}.run(k, lp, mem);

    for (int i = 0; i < n; ++i) {
        int32_t x = raw[i];
        int32_t expect = x & 1 ? x + 10 : (x & 2 ? x + 100 : x + 1000);
        EXPECT_EQ(mem.loadI32(out, i), expect) << "thread " << i;
        EXPECT_EQ(mem.loadI32(out2, i), x) << "thread " << i;
    }

    // Each thread executed exactly 3 blocks: BB1, one of {BB2, BB3+BB4/5}.
    for (int i = 0; i < n; ++i) {
        const auto execs = ts.decodeThread(uint32_t(i)).execs;
        EXPECT_EQ(execs.front().block, 0u);
        EXPECT_EQ(execs.back().block, 5u);
        EXPECT_EQ(execs.back().succ, -1);
        if (raw[i] & 1)
            EXPECT_EQ(execs.size(), 3u);
        else
            EXPECT_EQ(execs.size(), 4u);
    }
}

TEST(Interpreter, LoopExecutesNTimes)
{
    Kernel k = testing::makeLoopKernel();
    MemoryImage mem(1 << 16);
    const int n_threads = 5, trips = 7;
    uint32_t out = mem.allocWords(n_threads);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = n_threads;
    lp.params = {Scalar::fromU32(out), Scalar::fromI32(trips)};
    TraceSet ts = Interpreter{}.run(k, lp, mem);

    const int32_t series = trips * (trips - 1) / 2;  // sum 0..trips-1
    for (int t = 0; t < n_threads; ++t)
        EXPECT_EQ(mem.loadI32(out, t), series * t) << "thread " << t;

    // Trace shape: entry + (head+body)*trips + head + done.
    for (int t = 0; t < n_threads; ++t)
        EXPECT_EQ(ts.numExecs(uint32_t(t)), uint32_t(2 * trips + 3));
}

TEST(Interpreter, BarrierSharedMemoryReversal)
{
    const int cta = 8, ctas = 3;
    Kernel k = testing::makeBarrierKernel(cta);
    MemoryImage mem(1 << 16);
    uint32_t in = mem.allocWords(cta * ctas);
    uint32_t out = mem.allocWords(cta * ctas);
    for (int i = 0; i < cta * ctas; ++i)
        mem.storeI32(in, i, 1000 + i);

    LaunchParams lp;
    lp.numCtas = ctas;
    lp.ctaSize = cta;
    lp.params = {Scalar::fromU32(in), Scalar::fromU32(out)};
    Interpreter{}.run(k, lp, mem);

    for (int c = 0; c < ctas; ++c) {
        for (int l = 0; l < cta; ++l) {
            EXPECT_EQ(mem.loadI32(out, c * cta + l),
                      1000 + c * cta + (cta - 1 - l));
        }
    }
}

TEST(Interpreter, TracesRecordMemoryAccesses)
{
    Kernel k = testing::makeFig1Kernel();
    MemoryImage mem(1 << 16);
    uint32_t in = mem.allocWords(8);
    uint32_t out = mem.allocWords(8);
    uint32_t out2 = mem.allocWords(8);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 8;
    lp.params = {Scalar::fromU32(in), Scalar::fromU32(out),
                 Scalar::fromU32(out2)};
    TraceSet ts = Interpreter{}.run(k, lp, mem);

    // Every thread: 1 load in BB1, 1 store in BB2/4/5, 1 store in BB6.
    for (int t = 0; t < 8; ++t) {
        const ThreadTrace tr = ts.decodeThread(uint32_t(t));
        ASSERT_EQ(tr.accesses.size(), 3u);
        EXPECT_FALSE(tr.accesses[0].isStore);
        EXPECT_EQ(tr.accesses[0].addr, in + 4u * t);
        EXPECT_TRUE(tr.accesses[1].isStore);
        EXPECT_TRUE(tr.accesses[2].isStore);
        EXPECT_EQ(tr.accesses[2].addr, out2 + 4u * t);
    }
    EXPECT_EQ(ts.totalAccesses(), 24u);
}

TEST(Interpreter, ParamCountMismatchPanics)
{
    Kernel k = testing::makeLoopKernel();
    MemoryImage mem(4096);
    LaunchParams lp;
    lp.params = {Scalar::fromU32(0)};  // needs 2
    EXPECT_DEATH(Interpreter{}.run(k, lp, mem), "expects");
}

} // namespace
} // namespace vgiw
