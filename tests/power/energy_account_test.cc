#include <gtest/gtest.h>

#include "power/energy_model.hh"

namespace vgiw
{
namespace
{

TEST(EnergyAccount, StartsEmpty)
{
    EnergyAccount a;
    EXPECT_EQ(a.corePj(), 0.0);
    EXPECT_EQ(a.diePj(), 0.0);
    EXPECT_EQ(a.systemPj(), 0.0);
}

TEST(EnergyAccount, AddAccumulatesPerComponent)
{
    EnergyAccount a;
    a.add(EnergyComponent::Datapath, 10.0);
    a.add(EnergyComponent::Datapath, 5.0);
    a.add(EnergyComponent::L1, 7.0);
    EXPECT_EQ(a.get(EnergyComponent::Datapath), 15.0);
    EXPECT_EQ(a.get(EnergyComponent::L1), 7.0);
    EXPECT_EQ(a.get(EnergyComponent::Dram), 0.0);
}

TEST(EnergyAccount, LevelAggregationMatchesFig10Definitions)
{
    // Fig. 10: core = compute engine (incl. LVC/CVT or RF); die = core +
    // caches; system = die + DRAM.
    EnergyAccount a;
    a.add(EnergyComponent::Datapath, 1.0);
    a.add(EnergyComponent::Frontend, 2.0);
    a.add(EnergyComponent::RegisterFile, 4.0);
    a.add(EnergyComponent::TokenFabric, 8.0);
    a.add(EnergyComponent::Lvc, 16.0);
    a.add(EnergyComponent::Cvt, 32.0);
    a.add(EnergyComponent::Config, 64.0);
    a.add(EnergyComponent::Scratchpad, 128.0);
    a.add(EnergyComponent::L1, 256.0);
    a.add(EnergyComponent::L2, 512.0);
    a.add(EnergyComponent::Dram, 1024.0);

    EXPECT_EQ(a.corePj(), 255.0);
    EXPECT_EQ(a.diePj(), 255.0 + 256.0 + 512.0);
    EXPECT_EQ(a.systemPj(), a.diePj() + 1024.0);
}

TEST(EnergyAccount, MergeSums)
{
    EnergyAccount a, b;
    a.add(EnergyComponent::L1, 3.0);
    b.add(EnergyComponent::L1, 4.0);
    b.add(EnergyComponent::Dram, 9.0);
    a.merge(b);
    EXPECT_EQ(a.get(EnergyComponent::L1), 7.0);
    EXPECT_EQ(a.get(EnergyComponent::Dram), 9.0);
}

TEST(EnergyTable, VonNeumannOverheadsDominatePerOpCosts)
{
    // The premise the paper builds on ([3,4]): the per-warp front-end
    // and RF costs dwarf the per-op datapath energy, so removing them
    // (dataflow) and replacing with cheap token movement wins.
    EnergyTable t;
    EXPECT_GT(t.frontendWarpInstr, 10 * t.fpAluOp);
    EXPECT_GT(t.rfAccessWarp, 10 * t.fpAluOp);
    EXPECT_LT(t.tokenBufferRw + 2 * t.tokenHop, t.fpAluOp);
    EXPECT_LT(t.lvcAccessWord, t.rfAccessWarp / 32);
    // Memory hierarchy energies are ordered.
    EXPECT_LT(t.l1AccessWord, t.l2AccessLine);
    EXPECT_LT(t.l2AccessLine, t.dramAccessLine);
}

TEST(EnergyComponentNames, AllDistinct)
{
    for (size_t i = 0; i < kNumEnergyComponents; ++i) {
        for (size_t j = i + 1; j < kNumEnergyComponents; ++j) {
            EXPECT_STRNE(energyComponentName(EnergyComponent(i)),
                         energyComponentName(EnergyComponent(j)));
        }
    }
}

} // namespace
} // namespace vgiw
