/**
 * @file
 * Residency and latency-hiding behaviour of the Fermi SM model: CTA
 * residency limits throttle parallelism, and the dependent-ALU latency
 * is hidden only when enough warps are resident.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hh"
#include "ir/builder.hh"
#include "simt/fermi_core.hh"

namespace vgiw
{
namespace
{

/** A compute chain kernel: out[tid] = chain of dependent adds. */
Kernel
chainKernel(int depth)
{
    KernelBuilder kb("chain", 1);
    BlockRef b = kb.block("entry");
    Operand acc = Operand::special(SpecialReg::Tid);
    for (int i = 0; i < depth; ++i)
        acc = b.iadd(acc, Operand::constI32(i + 1));
    b.store(Type::I32,
            b.elemAddr(Operand::param(0),
                       Operand::special(SpecialReg::Tid)),
            acc);
    b.exit();
    return kb.finish();
}

TraceSet
traceChain(const Kernel &k, MemoryImage &mem, int ctas, int cta_size)
{
    uint32_t out = mem.allocWords(uint32_t(ctas * cta_size));
    LaunchParams lp;
    lp.numCtas = ctas;
    lp.ctaSize = cta_size;
    lp.params = {Scalar::fromU32(out)};
    return Interpreter{}.run(k, lp, mem);
}

TEST(FermiResidency, SingleWarpExposesAluLatency)
{
    Kernel k = chainKernel(16);
    MemoryImage mem(1 << 20);
    TraceSet traces = traceChain(k, mem, 1, 32);  // one warp
    FermiConfig cfg;
    RunStats rs = FermiCore(cfg).run(traces);
    // One warp cannot hide the dependency latency: ~depth x latency.
    EXPECT_GT(rs.cycles, 16u * cfg.aluDependencyLatency / 2);
}

TEST(FermiResidency, ManyWarpsHideAluLatency)
{
    Kernel k = chainKernel(16);
    MemoryImage mem1(1 << 20), mem2(1 << 20);
    TraceSet one = traceChain(k, mem1, 1, 32);
    TraceSet many = traceChain(k, mem2, 8, 256);  // 64 warps
    RunStats a = FermiCore{}.run(one);
    RunStats b = FermiCore{}.run(many);
    // 64x the work for much less than 64x the cycles.
    EXPECT_LT(b.cycles, a.cycles * 16);
}

TEST(FermiResidency, CtaLimitThrottlesThroughput)
{
    Kernel k = chainKernel(16);
    FermiConfig wide;
    FermiConfig narrow;
    narrow.maxResidentCtas = 1;

    MemoryImage mem(1 << 20);
    TraceSet traces = traceChain(k, mem, 8, 64);  // 8 CTAs, 2 warps each
    RunStats a = FermiCore(wide).run(traces);
    RunStats b = FermiCore(narrow).run(traces);
    EXPECT_GT(b.cycles, a.cycles);
    // Same work either way.
    EXPECT_EQ(a.dynWarpInstrs, b.dynWarpInstrs);
}

TEST(FermiResidency, PartialWarpStillExecutes)
{
    Kernel k = chainKernel(4);
    MemoryImage mem(1 << 20);
    TraceSet traces = traceChain(k, mem, 1, 20);  // 20 of 32 lanes
    RunStats rs = FermiCore{}.run(traces);
    EXPECT_EQ(rs.dynBlockExecs, 20u);
    // One warp-instruction stream regardless of lane count.
    EXPECT_EQ(rs.dynWarpInstrs, uint64_t(4 + 2 + 1));  // adds+addr+store
}

TEST(FermiResidency, ScuOpsOccupyTheIssuePortLonger)
{
    // sqrt-heavy kernel vs add-heavy kernel with equal op counts: the
    // SFU path must cost more cycles.
    auto build = [](bool scu) {
        KernelBuilder kb("k", 1);
        BlockRef b = kb.block("entry");
        Operand acc = b.u2f(Operand::special(SpecialReg::Tid));
        for (int i = 0; i < 8; ++i)
            acc = scu ? b.fsqrt(acc)
                      : b.fadd(acc, Operand::constF32(1.0f));
        b.store(Type::F32,
                b.elemAddr(Operand::param(0),
                           Operand::special(SpecialReg::Tid)),
                acc);
        b.exit();
        return kb.finish();
    };
    MemoryImage m1(1 << 20), m2(1 << 20);
    Kernel ka = build(false), ks = build(true);
    TraceSet ta = traceChain(ka, m1, 4, 256);
    TraceSet ts = traceChain(ks, m2, 4, 256);
    RunStats a = FermiCore{}.run(ta);
    RunStats s = FermiCore{}.run(ts);
    EXPECT_GT(s.cycles, a.cycles);
}

} // namespace
} // namespace vgiw
