#include <gtest/gtest.h>

#include "helpers/test_kernels.hh"
#include "simt/simt_stack.hh"

namespace vgiw
{
namespace
{

std::array<int, 32>
succs(std::initializer_list<std::pair<int, int>> lane_to_succ)
{
    std::array<int, 32> out;
    out.fill(SimtStack::kLaneInactive);
    for (auto [lane, succ] : lane_to_succ)
        out[lane] = succ;
    return out;
}

TEST(SimtStack, StartsAtEntryWithFullMask)
{
    SimtStack s(0xff, 0);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.currentBlock(), 0);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.activeLanes(), 8);
}

TEST(SimtStack, UniformBranchKeepsOneEntry)
{
    Kernel k = testing::makeFig1Kernel();
    PostDominators pd(k);
    SimtStack s(0b11, 0);
    s.advance(succs({{0, 1}, {1, 1}}), pd);
    EXPECT_EQ(s.currentBlock(), 1);
    EXPECT_EQ(s.activeMask(), 0b11u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergenceExecutesBothPathsThenReconverges)
{
    Kernel k = testing::makeFig1Kernel();
    PostDominators pd(k);
    // Lanes 0-2 take BB2 (id 1), lanes 3-4 take BB3 (id 2); ipdom(BB1)
    // is BB6 (id 5).
    SimtStack s(0b11111, 0);
    s.advance(succs({{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}}), pd);

    // Smallest block first: BB2 under mask {0,1,2}.
    EXPECT_EQ(s.currentBlock(), 1);
    EXPECT_EQ(s.activeMask(), 0b00111u);
    s.advance(succs({{0, 5}, {1, 5}, {2, 5}}), pd);

    // Then BB3 under the complementary mask.
    EXPECT_EQ(s.currentBlock(), 2);
    EXPECT_EQ(s.activeMask(), 0b11000u);
    s.advance(succs({{3, 5}, {4, 5}}), pd);

    // Reconverged: BB6 with the full mask.
    EXPECT_EQ(s.currentBlock(), 5);
    EXPECT_EQ(s.activeMask(), 0b11111u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NestedDivergenceMatchesFig1b)
{
    Kernel k = testing::makeFig1Kernel();
    PostDominators pd(k);
    // The paper's 8-thread pattern: {0,2,7}->BB2, {1,6}->BB4, {3,4,5}->BB5.
    SimtStack s(0xff, 0);
    s.advance(succs({{0, 1}, {1, 2}, {2, 1}, {3, 2}, {4, 2},
                     {5, 2}, {6, 2}, {7, 1}}),
              pd);
    EXPECT_EQ(s.currentBlock(), 1);  // BB2 mask {0,2,7}
    EXPECT_EQ(s.activeMask(), 0b10000101u);
    s.advance(succs({{0, 5}, {2, 5}, {7, 5}}), pd);

    EXPECT_EQ(s.currentBlock(), 2);  // BB3 mask {1,3,4,5,6}
    EXPECT_EQ(s.activeMask(), 0b01111010u);
    s.advance(succs({{1, 3}, {3, 4}, {4, 4}, {5, 4}, {6, 3}}), pd);

    EXPECT_EQ(s.currentBlock(), 3);  // BB4 mask {1,6}
    EXPECT_EQ(s.activeMask(), 0b01000010u);
    s.advance(succs({{1, 5}, {6, 5}}), pd);

    EXPECT_EQ(s.currentBlock(), 4);  // BB5 mask {3,4,5}
    EXPECT_EQ(s.activeMask(), 0b00111000u);
    s.advance(succs({{3, 5}, {4, 5}, {5, 5}}), pd);

    EXPECT_EQ(s.currentBlock(), 5);  // BB6, everyone back
    EXPECT_EQ(s.activeMask(), 0xffu);
    s.advance(succs({{0, -1}, {1, -1}, {2, -1}, {3, -1}, {4, -1},
                     {5, -1}, {6, -1}, {7, -1}}),
              pd);
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, LoopIteratesUntilAllLanesExit)
{
    Kernel k = testing::makeLoopKernel();
    PostDominators pd(k);
    // head=1, body=2, done=3. Lane 0 iterates twice, lane 1 once.
    SimtStack s(0b11, 1);
    s.advance(succs({{0, 2}, {1, 2}}), pd);   // both enter body
    EXPECT_EQ(s.currentBlock(), 2);
    s.advance(succs({{0, 1}, {1, 1}}), pd);   // back edge
    EXPECT_EQ(s.currentBlock(), 1);
    s.advance(succs({{0, 2}, {1, 3}}), pd);   // lane 1 leaves the loop
    EXPECT_EQ(s.currentBlock(), 2);           // body first (smaller id)
    EXPECT_EQ(s.activeMask(), 0b01u);
    s.advance(succs({{0, 1}}), pd);
    EXPECT_EQ(s.currentBlock(), 1);
    s.advance(succs({{0, 3}}), pd);           // lane 0 exits the loop
    EXPECT_EQ(s.currentBlock(), 3);
    EXPECT_EQ(s.activeMask(), 0b11u);         // reconverged in 'done'
}

TEST(SimtStack, ThreadExitDropsLanes)
{
    Kernel k = testing::makeFig1Kernel();
    PostDominators pd(k);
    SimtStack s(0b111, 5);
    s.advance(succs({{0, -1}, {1, -1}, {2, -1}}), pd);
    EXPECT_TRUE(s.done());
}

TEST(SimtStack, PartialExitKeepsRemainingLanes)
{
    Kernel k = testing::makeLoopKernel();
    PostDominators pd(k);
    SimtStack s(0b11, 1);
    // Lane 1's thread exits immediately (succ -1 through 'done' path is
    // modelled here as exit); lane 0 continues to body.
    s.advance(succs({{0, 2}, {1, -1}}), pd);
    EXPECT_EQ(s.currentBlock(), 2);
    EXPECT_EQ(s.activeMask(), 0b01u);
}

} // namespace
} // namespace vgiw
