/**
 * @file
 * Inter-warp coalescer corner cases on the Fermi model: broadcast,
 * 2-line-split and fully scattered access patterns.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hh"
#include "ir/builder.hh"
#include "simt/fermi_core.hh"

namespace vgiw
{
namespace
{

/** out[tid] = data[f(tid)] for an index expression built by @p f. */
template <typename F>
RunStats
runPattern(F &&f, uint32_t data_words)
{
    KernelBuilder kb("pattern", 2);
    BlockRef b = kb.block("entry");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand idx = f(b, tid);
    Operand v = b.load(Type::I32, b.elemAddr(Operand::param(0), idx));
    b.store(Type::I32, b.elemAddr(Operand::param(1), tid), v);
    b.exit();
    Kernel k = kb.finish();

    MemoryImage mem(8u << 20);
    uint32_t data = mem.allocWords(data_words);
    uint32_t out = mem.allocWords(32);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 32;
    lp.params = {Scalar::fromU32(data), Scalar::fromU32(out)};
    TraceSet traces = Interpreter{}.run(k, lp, mem);
    return FermiCore{}.run(traces);
}

TEST(Coalescer, BroadcastIsOneTransaction)
{
    RunStats rs = runPattern(
        [](BlockRef &b, Operand) {
            (void)b;
            return Operand::constI32(5);
        },
        64);
    // 1 load transaction + 1 store transaction.
    EXPECT_EQ(rs.l1Stats.accesses(), 2u);
}

TEST(Coalescer, MisalignedWarpSplitsIntoTwoTransactions)
{
    // tid + 16 words: the warp's 32 words straddle two 128 B lines.
    RunStats rs = runPattern(
        [](BlockRef &b, Operand tid) {
            return b.iadd(tid, Operand::constI32(16));
        },
        256);
    EXPECT_EQ(rs.l1Stats.accesses(), 3u);  // 2 loads + 1 store
}

TEST(Coalescer, Stride2CoversTwoLines)
{
    RunStats rs = runPattern(
        [](BlockRef &b, Operand tid) {
            return b.imul(tid, Operand::constI32(2));
        },
        256);
    EXPECT_EQ(rs.l1Stats.accesses(), 3u);  // 64 words = 2 lines + store
}

TEST(Coalescer, FullyScatteredIs32Transactions)
{
    RunStats rs = runPattern(
        [](BlockRef &b, Operand tid) {
            return b.imul(tid, Operand::constI32(64));
        },
        32 * 64 + 64);
    EXPECT_EQ(rs.l1Stats.accesses(), 33u);
}

} // namespace
} // namespace vgiw
