#include <gtest/gtest.h>

#include "helpers/test_kernels.hh"
#include "interp/interpreter.hh"
#include "simt/fermi_core.hh"

namespace vgiw
{
namespace
{

TraceSet
fig1Traces(MemoryImage &mem, int n = 8)
{
    static Kernel k = testing::makeFig1Kernel();
    uint32_t in = mem.allocWords(n);
    uint32_t out = mem.allocWords(n);
    uint32_t out2 = mem.allocWords(n);
    const int32_t pattern[8] = {1, 2, 1, 0, 0, 0, 2, 1};
    for (int i = 0; i < n; ++i)
        mem.storeI32(in, i, pattern[i % 8]);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = n;
    lp.params = {Scalar::fromU32(in), Scalar::fromU32(out),
                 Scalar::fromU32(out2)};
    return Interpreter{}.run(k, lp, mem);
}

TEST(FermiCore, ConsumesAllWork)
{
    MemoryImage mem(1 << 16);
    TraceSet traces = fig1Traces(mem);
    RunStats rs = FermiCore{}.run(traces);
    EXPECT_EQ(rs.dynBlockExecs, traces.totalBlockExecs());
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_GT(rs.dynWarpInstrs, 0u);
}

TEST(FermiCore, DivergencePaysForBothPaths)
{
    // A single warp executing the Fig. 1a divergence pattern issues the
    // instructions of BB2, BB3, BB4 and BB5 serially (Fig. 1b), so it
    // must issue more warp instructions than a uniform warp that takes
    // only BB2.
    Kernel k = testing::makeFig1Kernel();

    auto run_with = [&k](std::vector<int32_t> inputs) {
        MemoryImage mem(1 << 16);
        int n = int(inputs.size());
        uint32_t in = mem.allocWords(n);
        uint32_t out = mem.allocWords(n);
        uint32_t out2 = mem.allocWords(n);
        for (int i = 0; i < n; ++i)
            mem.storeI32(in, i, inputs[i]);
        LaunchParams lp;
        lp.numCtas = 1;
        lp.ctaSize = n;
        lp.params = {Scalar::fromU32(in), Scalar::fromU32(out),
                     Scalar::fromU32(out2)};
        TraceSet t = Interpreter{}.run(k, lp, mem);
        return FermiCore{}.run(t);
    };

    RunStats uniform = run_with(std::vector<int32_t>(32, 1));
    RunStats divergent = run_with(
        {1, 2, 1, 0, 0, 0, 2, 1, 1, 2, 1, 0, 0, 0, 2, 1,
         1, 2, 1, 0, 0, 0, 2, 1, 1, 2, 1, 0, 0, 0, 2, 1});
    EXPECT_GT(divergent.dynWarpInstrs, uniform.dynWarpInstrs);
    EXPECT_GT(divergent.cycles, uniform.cycles);
    // But the per-thread work is comparable (each thread runs 3-4
    // blocks); the extra warp instructions are the divergence tax.
    EXPECT_EQ(uniform.dynBlockExecs, 32u * 3u);
}

TEST(FermiCore, RfAccessesCountedPerWarpOperand)
{
    // One warp, one block: out[tid] = a[tid] + b[tid].
    KernelBuilder kb("axpy1", 3);
    BlockRef blk = kb.block("entry");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand va = blk.load(Type::I32, blk.elemAddr(Operand::param(0), tid));
    Operand vb = blk.load(Type::I32, blk.elemAddr(Operand::param(1), tid));
    Operand s = blk.iadd(va, vb);
    blk.store(Type::I32, blk.elemAddr(Operand::param(2), tid), s);
    blk.exit();
    Kernel k = kb.finish();

    MemoryImage mem(1 << 16);
    uint32_t a = mem.allocWords(32), b = mem.allocWords(32),
             c = mem.allocWords(32);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 32;
    lp.params = {Scalar::fromU32(a), Scalar::fromU32(b),
                 Scalar::fromU32(c)};
    TraceSet traces = Interpreter{}.run(k, lp, mem);
    RunStats rs = FermiCore{}.run(traces);

    // Instructions: 3 address chains of (shl, add) + 2 loads + 1 add +
    // 1 store = 10 warp instructions.
    EXPECT_EQ(rs.dynWarpInstrs, 10u);
    // RF accesses, counting a single access per warp operand: specials
    // and immediates are free; every Local/LiveIn read costs one access
    // and every value-producing instruction one write.
    //   load chain (shl: 0r+1w, add: 1r+1w, ld: 1r+1w) = 5, twice = 10
    //   iadd(va, vb): 2r+1w = 3
    //   store chain (shl: 1, add: 2, st: 2r+0w) = 5
    EXPECT_EQ(rs.rfAccesses, 18u);
}

TEST(FermiCore, CoalescedWarpIssuesOneTransaction)
{
    // Consecutive tids load consecutive words: one 128 B transaction.
    KernelBuilder kb("coal", 2);
    BlockRef blk = kb.block("entry");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand v = blk.load(Type::I32, blk.elemAddr(Operand::param(0), tid));
    blk.store(Type::I32, blk.elemAddr(Operand::param(1), tid), v);
    blk.exit();
    Kernel k = kb.finish();

    MemoryImage mem(1 << 16);
    uint32_t a = mem.allocWords(32), b = mem.allocWords(32);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 32;
    lp.params = {Scalar::fromU32(a), Scalar::fromU32(b)};
    TraceSet traces = Interpreter{}.run(k, lp, mem);
    RunStats rs = FermiCore{}.run(traces);
    // 1 load transaction + 1 store transaction.
    EXPECT_EQ(rs.l1Stats.accesses(), 2u);
}

TEST(FermiCore, StridedWarpIssues32Transactions)
{
    // Stride-32 loads touch 32 distinct lines: no coalescing possible.
    KernelBuilder kb("strided", 2);
    BlockRef blk = kb.block("entry");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand idx = blk.imul(tid, Operand::constI32(32));
    Operand v = blk.load(Type::I32, blk.elemAddr(Operand::param(0), idx));
    blk.store(Type::I32, blk.elemAddr(Operand::param(1), tid), v);
    blk.exit();
    Kernel k = kb.finish();

    MemoryImage mem(1 << 20);
    uint32_t a = mem.allocWords(32 * 32), b = mem.allocWords(32);
    LaunchParams lp;
    lp.numCtas = 1;
    lp.ctaSize = 32;
    lp.params = {Scalar::fromU32(a), Scalar::fromU32(b)};
    TraceSet traces = Interpreter{}.run(k, lp, mem);
    RunStats rs = FermiCore{}.run(traces);
    // 32 load transactions + 1 store transaction.
    EXPECT_EQ(rs.l1Stats.accesses(), 33u);
}

TEST(FermiCore, MultipleWarpsHideMemoryLatency)
{
    // With many warps the SM overlaps load latency; cycles should grow
    // far slower than linearly in the warp count.
    KernelBuilder kb("stream", 2);
    BlockRef blk = kb.block("entry");
    Operand tid = Operand::special(SpecialReg::Tid);
    Operand v = blk.load(Type::I32, blk.elemAddr(Operand::param(0), tid));
    Operand w = blk.iadd(v, Operand::constI32(1));
    blk.store(Type::I32, blk.elemAddr(Operand::param(1), tid), w);
    blk.exit();
    Kernel k = kb.finish();

    auto cycles_for = [&k](int threads) {
        MemoryImage mem(1 << 22);
        uint32_t a = mem.allocWords(uint32_t(threads));
        uint32_t b = mem.allocWords(uint32_t(threads));
        LaunchParams lp;
        lp.numCtas = threads / 256;
        lp.ctaSize = 256;
        lp.params = {Scalar::fromU32(a), Scalar::fromU32(b)};
        TraceSet t = Interpreter{}.run(k, lp, mem);
        return FermiCore{}.run(t).cycles;
    };

    uint64_t one = cycles_for(256);
    uint64_t eight = cycles_for(2048);
    EXPECT_LT(eight, one * 8);
}

TEST(FermiCore, BarrierSynchronisesWarpsOfACta)
{
    const int cta = 64, ctas = 2;  // 2 warps per CTA
    Kernel k = testing::makeBarrierKernel(cta);
    MemoryImage mem(1 << 18);
    uint32_t in = mem.allocWords(cta * ctas), out = mem.allocWords(cta * ctas);
    for (int i = 0; i < cta * ctas; ++i)
        mem.storeI32(in, i, i);
    LaunchParams lp;
    lp.numCtas = ctas;
    lp.ctaSize = cta;
    lp.params = {Scalar::fromU32(in), Scalar::fromU32(out)};
    TraceSet traces = Interpreter{}.run(k, lp, mem);
    RunStats rs = FermiCore{}.run(traces);
    EXPECT_EQ(rs.dynBlockExecs, traces.totalBlockExecs());
}

TEST(FermiCore, FrontendAndRfEnergyAreSignificant)
{
    // The paper's motivation: pipeline + RF ~= 30% of GPGPU power.
    MemoryImage mem(1 << 16);
    TraceSet traces = fig1Traces(mem);
    RunStats rs = FermiCore{}.run(traces);
    const double fe = rs.energy.get(EnergyComponent::Frontend) +
                      rs.energy.get(EnergyComponent::RegisterFile);
    EXPECT_GT(fe / rs.energy.corePj(), 0.2);
    // And no dataflow structures on a von Neumann machine.
    EXPECT_EQ(rs.energy.get(EnergyComponent::TokenFabric), 0.0);
    EXPECT_EQ(rs.energy.get(EnergyComponent::Lvc), 0.0);
}

} // namespace
} // namespace vgiw
