/**
 * @file
 * Backoff-schedule tests: the jittered exponential envelope is pinned —
 * delays double per attempt, every delay stays within [d/2, d], the
 * documented ceiling is never exceeded even at absurd attempt counts,
 * and the jitter is deterministic per (seed, attempt) but decorrelated
 * across seeds so a simultaneously-crashed fleet does not respawn in
 * lockstep.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/backoff.hh"

namespace vgiw
{
namespace
{

TEST(BackoffSchedule, EnvelopeDoublesAndJitterStaysInHalfOpenBand)
{
    BackoffSchedule b;
    b.baseMs = 200;
    b.capMs = 10000;
    b.seed = 42;

    // Attempt k's envelope is min(base << (k-1), cap); every delay must
    // land in [envelope/2, envelope].
    uint64_t envelope = b.baseMs;
    for (unsigned attempt = 1; attempt <= 12; ++attempt) {
        const uint64_t d = b.delayMs(attempt);
        EXPECT_GE(d, envelope / 2) << "attempt " << attempt;
        EXPECT_LE(d, envelope) << "attempt " << attempt;
        envelope = std::min(envelope * 2, b.capMs);
    }
}

TEST(BackoffSchedule, CeilingHoldsAtAbsurdAttemptCounts)
{
    BackoffSchedule b;
    b.baseMs = 200;
    b.capMs = 10000;
    b.seed = 7;
    // Shifts beyond 63 bits must saturate to the cap, not wrap to a
    // tiny (or huge) delay.
    for (unsigned attempt : {20u, 33u, 64u, 100u, 1000000u}) {
        const uint64_t d = b.delayMs(attempt);
        EXPECT_GE(d, b.capMs / 2) << "attempt " << attempt;
        EXPECT_LE(d, b.capMs) << "attempt " << attempt;
    }
}

TEST(BackoffSchedule, DeterministicPerSeedAttemptButDecorrelated)
{
    BackoffSchedule a;
    a.baseMs = 200;
    a.capMs = 10000;
    a.seed = 1;
    BackoffSchedule b = a;

    // Same (seed, attempt) -> same delay: the schedule is replayable.
    for (unsigned attempt = 1; attempt <= 8; ++attempt)
        EXPECT_EQ(a.delayMs(attempt), b.delayMs(attempt));

    // Different seeds must not all collapse onto one schedule (this is
    // the whole point of the jitter: crashed-together workers spread
    // out). With a 5000ms-wide band at attempt 7, 16 seeds colliding
    // on one value would be astronomically unlikely.
    std::set<uint64_t> delays;
    for (uint64_t seed = 0; seed < 16; ++seed) {
        BackoffSchedule s;
        s.baseMs = 200;
        s.capMs = 10000;
        s.seed = seed;
        delays.insert(s.delayMs(7));
    }
    EXPECT_GT(delays.size(), 1u);
}

TEST(BackoffSchedule, AttemptZeroIsTreatedAsFirstAttempt)
{
    BackoffSchedule b;
    b.baseMs = 100;
    b.capMs = 1000;
    b.seed = 3;
    EXPECT_EQ(b.delayMs(0), b.delayMs(1));
}

TEST(BackoffSchedule, CapBelowBaseClampsToCap)
{
    // A misconfigured cap below the base must still honour the ceiling
    // contract: no delay ever exceeds capMs.
    BackoffSchedule b;
    b.baseMs = 5000;
    b.capMs = 100;
    b.seed = 9;
    for (unsigned attempt = 1; attempt <= 6; ++attempt)
        EXPECT_LE(b.delayMs(attempt), b.capMs) << attempt;
}

} // namespace
} // namespace vgiw
