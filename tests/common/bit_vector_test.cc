#include <gtest/gtest.h>

#include "common/bit_vector.hh"

namespace vgiw
{
namespace
{

TEST(BitVector, StartsEmpty)
{
    BitVector bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_EQ(bv.count(), 0u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.findFirst(), 130u);
}

TEST(BitVector, SetTestClear)
{
    BitVector bv(100);
    bv.set(0);
    bv.set(63);
    bv.set(64);
    bv.set(99);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(99));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 4u);
    bv.clear(63);
    EXPECT_FALSE(bv.test(63));
    EXPECT_EQ(bv.count(), 3u);
}

TEST(BitVector, SetFirstN)
{
    BitVector bv(200);
    bv.setFirstN(130);
    EXPECT_EQ(bv.count(), 130u);
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(130));

    BitVector exact(128);
    exact.setFirstN(128);
    EXPECT_EQ(exact.count(), 128u);
}

TEST(BitVector, FindFirstScansWords)
{
    BitVector bv(256);
    bv.set(200);
    EXPECT_EQ(bv.findFirst(), 200u);
    bv.set(70);
    EXPECT_EQ(bv.findFirst(), 70u);
    bv.set(3);
    EXPECT_EQ(bv.findFirst(), 3u);
}

TEST(BitVector, ReadAndResetWordModelsCvtPort)
{
    BitVector bv(128);
    bv.set(1);
    bv.set(65);
    EXPECT_EQ(bv.readAndResetWord(0), uint64_t{1} << 1);
    EXPECT_EQ(bv.word(0), 0u);
    EXPECT_TRUE(bv.test(65));  // other words untouched
}

TEST(BitVector, OrWordMergesResolvedBranches)
{
    BitVector bv(64);
    bv.orWord(0, 0b1010);
    bv.orWord(0, 0b0110);
    EXPECT_EQ(bv.word(0), 0b1110u);
}

TEST(BitVector, ToIndicesAscending)
{
    BitVector bv(256);
    bv.set(5);
    bv.set(64);
    bv.set(255);
    auto idx = bv.toIndices();
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 5u);
    EXPECT_EQ(idx[1], 64u);
    EXPECT_EQ(idx[2], 255u);
}

TEST(BitVector, OrWithWholeVector)
{
    BitVector a(100), b(100);
    a.set(1);
    b.set(99);
    a.orWith(b);
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(99));
    EXPECT_EQ(a.count(), 2u);
}

} // namespace
} // namespace vgiw
