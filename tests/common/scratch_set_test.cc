/**
 * @file
 * ScratchSet tests: set semantics match std::unordered_set, clear() is
 * O(1) and actually empties the set, and the generation stamp survives
 * growth and many clear cycles.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "common/scratch_set.hh"

namespace vgiw
{
namespace
{

TEST(ScratchSet, InsertReportsNewKeysOnly)
{
    ScratchSet s;
    EXPECT_TRUE(s.insert(42));
    EXPECT_FALSE(s.insert(42));
    EXPECT_TRUE(s.insert(43));
    EXPECT_TRUE(s.contains(42));
    EXPECT_TRUE(s.contains(43));
    EXPECT_FALSE(s.contains(44));
    EXPECT_EQ(s.size(), 2u);
}

TEST(ScratchSet, ClearEmptiesWithoutShrinking)
{
    ScratchSet s;
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_TRUE(s.insert(k * 257));
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(s.contains(k * 257));
    // Keys are insertable again after clear.
    EXPECT_TRUE(s.insert(257));
    EXPECT_FALSE(s.insert(257));
}

TEST(ScratchSet, MatchesUnorderedSetUnderMixedWorkload)
{
    // Deterministic pseudo-random keys with many duplicates — exactly
    // the coalescing-set access pattern the replay loop uses.
    ScratchSet s;
    std::unordered_set<uint64_t> ref;
    uint64_t x = 0x243F6A8885A308D3ull;
    for (int round = 0; round < 50; ++round) {
        s.clear();
        ref.clear();
        for (int i = 0; i < 400; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const uint64_t key = (x >> 33) % 97;  // dense, collision-heavy
            EXPECT_EQ(s.insert(key), ref.insert(key).second);
        }
        EXPECT_EQ(s.size(), ref.size());
        for (uint64_t k = 0; k < 97; ++k)
            EXPECT_EQ(s.contains(k), ref.count(k) == 1);
    }
}

TEST(ScratchSet, SurvivesGrowthMidGeneration)
{
    ScratchSet s;
    s.insert(1);
    s.clear();
    // Force growth after several generation bumps: old entries must not
    // resurface and pre-growth entries of the live generation survive.
    for (uint64_t k = 0; k < 5000; ++k)
        EXPECT_TRUE(s.insert(k << 7));
    for (uint64_t k = 0; k < 5000; ++k)
        EXPECT_TRUE(s.contains(k << 7));
    EXPECT_FALSE(s.contains(1ull << 40));
    EXPECT_EQ(s.size(), 5000u);
}

} // namespace
} // namespace vgiw
