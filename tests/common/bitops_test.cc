/**
 * @file
 * Randomized differential test for the bitmap kernel layer: every
 * kernel's SIMD implementation must be bit-identical to the scalar
 * reference over uneven span lengths, sparse/dense words and partial
 * tail words. Under a scalar-only build (`-DVGIW_SIMD=OFF` or no
 * AVX2) `simd::` aliases `scalar::` and the comparisons pin the
 * aliasing instead — the test is meaningful in both build modes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "common/bitops.hh"

namespace vgiw
{
namespace
{

using bitops::ConstWordSpan;
using bitops::WordSpan;

/** Word patterns that exercise carry/boundary behaviour, not just
 * uniform noise: empty, full, single bits at the edges, sparse. */
uint64_t
randomWord(std::mt19937_64 &rng)
{
    switch (rng() % 6) {
    case 0: return 0;
    case 1: return ~uint64_t{0};
    case 2: return uint64_t{1} << (rng() % 64);
    case 3: return rng() & rng() & rng();  // sparse
    case 4: return rng() | rng();          // dense
    default: return rng();
    }
}

std::vector<uint64_t>
randomWords(std::mt19937_64 &rng, size_t n)
{
    std::vector<uint64_t> v(n);
    for (auto &w : v)
        w = randomWord(rng);
    return v;
}

// Span lengths straddle the SIMD width (4 words): scalar tails of
// every phase, the empty span, and a couple of long spans.
constexpr size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33};
constexpr int kRounds = 64;

TEST(BitopsDifferential, OrInto)
{
    std::mt19937_64 rng(1);
    for (size_t n : kLengths) {
        for (int r = 0; r < kRounds; ++r) {
            const auto src = randomWords(rng, n);
            auto a = randomWords(rng, n);
            auto b = a;
            bitops::scalar::orInto({a.data(), n}, {src.data(), n});
            bitops::simd::orInto({b.data(), n}, {src.data(), n});
            EXPECT_EQ(a, b) << "n=" << n;
        }
    }
}

TEST(BitopsDifferential, PopcountAnyFindFirst)
{
    std::mt19937_64 rng(2);
    for (size_t n : kLengths) {
        for (int r = 0; r < kRounds; ++r) {
            const auto v = randomWords(rng, n);
            const ConstWordSpan s{v.data(), n};
            EXPECT_EQ(bitops::scalar::popcount(s),
                      bitops::simd::popcount(s));
            EXPECT_EQ(bitops::scalar::any(s), bitops::simd::any(s));
            EXPECT_EQ(bitops::scalar::findFirstSet(s),
                      bitops::simd::findFirstSet(s));
        }
    }
}

TEST(BitopsDifferential, Equal)
{
    std::mt19937_64 rng(3);
    for (size_t n : kLengths) {
        for (int r = 0; r < kRounds; ++r) {
            auto a = randomWords(rng, n);
            auto b = a;
            if (n && (rng() & 1))
                b[rng() % n] ^= uint64_t{1} << (rng() % 64);
            EXPECT_EQ(
                bitops::scalar::equal({a.data(), n}, {b.data(), n}),
                bitops::simd::equal({a.data(), n}, {b.data(), n}));
        }
    }
}

TEST(BitopsDifferential, SetFirstNPartialTails)
{
    std::mt19937_64 rng(4);
    for (size_t n : kLengths) {
        // Every tail phase 0..63 plus full words, ORed over noise.
        for (size_t nbits = 0; nbits <= n * 64; nbits += 7) {
            auto a = randomWords(rng, n);
            auto b = a;
            bitops::scalar::setFirstN({a.data(), n}, nbits);
            bitops::simd::setFirstN({b.data(), n}, nbits);
            EXPECT_EQ(a, b) << "n=" << n << " nbits=" << nbits;
        }
    }
}

TEST(BitopsDifferential, ExpandWord)
{
    std::mt19937_64 rng(5);
    for (int r = 0; r < kRounds * 8; ++r) {
        const uint64_t w = randomWord(rng);
        const uint32_t base = uint32_t(rng() % 100000) * 64;
        uint32_t sa[64], sb[64];
        const size_t na = bitops::scalar::expandWord(w, base, sa);
        const size_t nb = bitops::simd::expandWord(w, base, sb);
        ASSERT_EQ(na, nb);
        EXPECT_EQ(0, std::memcmp(sa, sb, na * sizeof(uint32_t)));
    }
}

TEST(BitopsDifferential, DrainToIndices)
{
    std::mt19937_64 rng(6);
    for (size_t n : kLengths) {
        for (int r = 0; r < kRounds; ++r) {
            auto a = randomWords(rng, n);
            auto b = a;
            std::vector<uint32_t> oa(n * 64 + 1), ob(n * 64 + 1);
            const size_t na =
                bitops::scalar::drainToIndices({a.data(), n}, oa.data());
            const size_t nb =
                bitops::simd::drainToIndices({b.data(), n}, ob.data());
            ASSERT_EQ(na, nb) << "n=" << n;
            EXPECT_EQ(0,
                      std::memcmp(oa.data(), ob.data(),
                                  na * sizeof(uint32_t)));
            // Both must have reset every word (read-and-reset port).
            EXPECT_EQ(a, b);
            for (size_t w = 0; w < n; ++w)
                EXPECT_EQ(a[w], 0u);
        }
    }
}

TEST(BitopsDifferential, InsertSortedUnique)
{
    std::mt19937_64 rng(7);
    for (int r = 0; r < kRounds * 4; ++r) {
        // Grow two line stacks with an identical insertion sequence
        // drawn from a small value range so duplicates are common.
        uint32_t a[40], b[40];
        size_t na = 0, nb = 0;
        for (int i = 0; i < 32; ++i) {
            const uint32_t v = uint32_t(rng() % 48);
            na = bitops::scalar::insertSortedUnique(a, na, v);
            nb = bitops::simd::insertSortedUnique(b, nb, v);
            ASSERT_EQ(na, nb);
            ASSERT_EQ(0, std::memcmp(a, b, na * sizeof(uint32_t)));
        }
        for (size_t i = 1; i < na; ++i)
            EXPECT_LT(a[i - 1], a[i]);  // ascending, unique
    }
}

TEST(Bitops, BackendNameMatchesBuild)
{
#if defined(VGIW_BITOPS_HAVE_AVX2)
    if (!bitops::runtimeForceScalar())
        EXPECT_STREQ(bitops::backendName(), "avx2");
    else
        EXPECT_STREQ(bitops::backendName(), "scalar");
#else
    EXPECT_STREQ(bitops::backendName(), "scalar");
#endif
}

} // namespace
} // namespace vgiw
