#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/scalar.hh"
#include "common/stat_set.hh"

namespace vgiw
{
namespace
{

TEST(Scalar, TypedViewsRoundTrip)
{
    EXPECT_EQ(Scalar::fromI32(-5).asI32(), -5);
    EXPECT_EQ(Scalar::fromU32(0xdeadbeef).asU32(), 0xdeadbeefu);
    EXPECT_FLOAT_EQ(Scalar::fromF32(3.25f).asF32(), 3.25f);
    // Bit-level aliasing: the float view of an int pattern is a bitcast.
    EXPECT_EQ(Scalar::fromF32(1.0f).bits, 0x3f800000u);
}

TEST(Scalar, BoolSemantics)
{
    EXPECT_FALSE(Scalar::fromI32(0).asBool());
    EXPECT_TRUE(Scalar::fromI32(1).asBool());
    EXPECT_TRUE(Scalar::fromI32(-1).asBool());
    // Negative zero float is a non-zero bit pattern: true, like hardware
    // predicates on raw words.
    EXPECT_TRUE(Scalar::fromF32(-0.0f).asBool());
}

TEST(Scalar, TypeNames)
{
    EXPECT_STREQ(typeName(Type::I32), "i32");
    EXPECT_STREQ(typeName(Type::U32), "u32");
    EXPECT_STREQ(typeName(Type::F32), "f32");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, RangesRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const uint32_t u = r.nextUInt(10);
        EXPECT_LT(u, 10u);
        const int32_t s = r.nextInt(-5, 5);
        EXPECT_GE(s, -5);
        EXPECT_LE(s, 5);
        const float f = r.nextFloat(2.0f, 3.0f);
        EXPECT_GE(f, 2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Rng, FloatRoughlyUniform)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.nextFloat();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("cycles", 10);
    s.add("cycles", 5);
    s.set("ipc", 1.5);
    s.set("ipc", 2.0);
    EXPECT_EQ(s.get("cycles"), 15.0);
    EXPECT_EQ(s.get("ipc"), 2.0);
    EXPECT_EQ(s.get("missing"), 0.0);
    EXPECT_TRUE(s.has("cycles"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatSet, MergeSumsSharedNames)
{
    StatSet a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3.0);
    EXPECT_EQ(a.get("y"), 3.0);
    EXPECT_EQ(a.entries().size(), 2u);
}

TEST(StatSet, PreservesInsertionOrder)
{
    StatSet s;
    s.add("z", 1);
    s.add("a", 2);
    ASSERT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].first, "z");
    EXPECT_EQ(s.entries()[1].first, "a");
}

} // namespace
} // namespace vgiw
