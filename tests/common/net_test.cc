/**
 * @file
 * Net-layer tests: host:port parsing accepts v4/v6/hostname forms and
 * rejects malformed specs with a diagnostic, listen on an ephemeral
 * port reports the bound port, connect round-trips frames over a real
 * localhost socket, and connecting to a dead port fails with an error
 * instead of hanging.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include <unistd.h>

#include "common/net.hh"
#include "common/subprocess.hh"

namespace vgiw
{
namespace
{

TEST(Net, ParseHostPortAcceptsCommonForms)
{
    HostPort hp;
    std::string err;
    ASSERT_TRUE(parseHostPort("localhost:9000", &hp, &err)) << err;
    EXPECT_EQ(hp.host, "localhost");
    EXPECT_EQ(hp.port, 9000);

    ASSERT_TRUE(parseHostPort("10.1.2.3:65535", &hp, &err)) << err;
    EXPECT_EQ(hp.host, "10.1.2.3");
    EXPECT_EQ(hp.port, 65535);

    ASSERT_TRUE(parseHostPort("[::1]:8080", &hp, &err)) << err;
    EXPECT_EQ(hp.host, "::1");
    EXPECT_EQ(hp.port, 8080);

    // Empty host means "all interfaces" and is only valid when the
    // caller opts in (the daemon's --listen does; --workers does not).
    ASSERT_TRUE(
        parseHostPort(":7000", &hp, &err, /*allowEmptyHost=*/true))
        << err;
    EXPECT_EQ(hp.host, "");
    EXPECT_EQ(hp.port, 7000);
    EXPECT_FALSE(parseHostPort(":7000", &hp, &err));
}

TEST(Net, ParseHostPortRejectsMalformedSpecs)
{
    HostPort hp;
    for (const char *bad :
         {"nohost", "host:", "host:abc", "host:70000", "host:-1",
          "[::1]", "[::1]8080", ""}) {
        std::string err;
        EXPECT_FALSE(parseHostPort(bad, &hp, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Net, ListenConnectRoundTripsFrames)
{
    std::string err;
    uint16_t port = 0;
    const int lfd = listenTcp("127.0.0.1", 0, &port, &err);
    ASSERT_GE(lfd, 0) << err;
    ASSERT_NE(port, 0);

    std::thread server([&]() {
        const int cfd = acceptTcp(lfd);
        ASSERT_GE(cfd, 0);
        Frame f;
        ASSERT_EQ(readFrame(cfd, &f), ReadStatus::Ok);
        EXPECT_EQ(f.type, FrameType::Hello);
        ASSERT_TRUE(writeFrame(cfd, FrameType::HelloAck, f.payload));
        ::close(cfd);
    });

    const int fd = connectTcp("127.0.0.1", port, 2000, &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, "handshake"));
    Frame f;
    ASSERT_EQ(readFrame(fd, &f), ReadStatus::Ok);
    EXPECT_EQ(f.type, FrameType::HelloAck);
    EXPECT_EQ(f.payload, "handshake");
    // Server closed after the ack: orderly EOF, not an error.
    EXPECT_EQ(readFrame(fd, &f), ReadStatus::Eof);
    ::close(fd);
    server.join();
    ::close(lfd);
}

TEST(Net, ConnectToDeadPortFailsWithDiagnostic)
{
    // Bind (reserving a port) then close, so nothing listens there.
    std::string err;
    uint16_t port = 0;
    const int lfd = listenTcp("127.0.0.1", 0, &port, &err);
    ASSERT_GE(lfd, 0) << err;
    ::close(lfd);

    const int fd = connectTcp("127.0.0.1", port, 500, &err);
    EXPECT_LT(fd, 0);
    EXPECT_FALSE(err.empty());
    if (fd >= 0)
        ::close(fd);
}

} // namespace
} // namespace vgiw
