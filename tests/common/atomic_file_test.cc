/**
 * @file
 * Atomic-file-helper tests: the write-temp/rename protocol must leave
 * either the old content or the complete new content at the target —
 * never a prefix — and must clean up its temporary on every path.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <dirent.h>

#include "common/atomic_file.hh"

namespace vgiw
{
namespace
{

std::string
testPath(const std::string &name)
{
    return ::testing::TempDir() + "vgiw_atomic_file_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Number of leftover "<base>.tmp.*" entries in TempDir. */
int
tempLeftovers(const std::string &base)
{
    int count = 0;
    DIR *d = ::opendir(::testing::TempDir().c_str());
    if (!d)
        return -1;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind(base + ".tmp.", 0) == 0)
            ++count;
    }
    ::closedir(d);
    return count;
}

TEST(AtomicFile, WriteCreatesFileWithExactContents)
{
    const std::string path = testPath("create");
    std::remove(path.c_str());

    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, "line one\nline two\n", &err))
        << err;
    EXPECT_EQ(slurp(path), "line one\nline two\n");
    EXPECT_EQ(tempLeftovers("vgiw_atomic_file_create"), 0);
}

TEST(AtomicFile, WriteReplacesExistingContentsCompletely)
{
    const std::string path = testPath("replace");
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, "old old old old", &err)) << err;
    // Shorter replacement: a non-atomic in-place write would leave a
    // tail of the old content.
    ASSERT_TRUE(writeFileAtomic(path, "new", &err)) << err;
    EXPECT_EQ(slurp(path), "new");
}

TEST(AtomicFile, FailedWriteLeavesExistingFileUntouched)
{
    const std::string path = testPath("protected");
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, "precious", &err)) << err;

    // An unwritable directory makes the temp-file creation fail.
    const std::string bad = "/nonexistent-dir-vgiw/out.json";
    EXPECT_FALSE(writeFileAtomic(bad, "x", &err));
    EXPECT_FALSE(err.empty());

    EXPECT_EQ(slurp(path), "precious");
}

TEST(AtomicFile, RotateMovesAsideAndIsIdempotentOnMissing)
{
    const std::string path = testPath("rotate");
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());

    std::string err;
    // Rotating a missing file is a no-op success.
    EXPECT_TRUE(rotateFile(path, ".1", &err)) << err;

    ASSERT_TRUE(writeFileAtomic(path, "generation 1", &err)) << err;
    ASSERT_TRUE(rotateFile(path, ".1", &err)) << err;
    EXPECT_EQ(slurp(path + ".1"), "generation 1");
    // The original is gone; a new file can take its place.
    std::ifstream gone(path);
    EXPECT_FALSE(gone.good());
}

} // namespace
} // namespace vgiw
