/**
 * @file
 * Unit tests for the observability layer: counter semantics and JSON
 * serialisation, span nesting and RAII closure (including unwinding),
 * thread-local sink installation/restoration, and the shape of the
 * Chrome-trace export (rebased timestamps, renumbered tids, unclosed
 * spans dropped).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "common/metrics.hh"

namespace vgiw
{
namespace
{

TEST(JobMetrics, CountersAddSetAndSerialise)
{
    JobMetrics m;
    m.add("a.count", 1.0);
    m.add("a.count", 2.0);
    m.set("b.value", 0.5);
    m.set("a.count", 7.0);  // set overwrites, keeps insertion order

    EXPECT_EQ(m.countersJson(), "{\"a.count\":7,\"b.value\":0.5}");
}

TEST(JobMetrics, EmptyCountersSerialiseAsEmptyObject)
{
    JobMetrics m;
    EXPECT_EQ(m.countersJson(), "{}");
}

TEST(JobMetrics, ClearCountersKeepsSpans)
{
    JobMetrics m;
    m.add("x", 3.0);
    {
        MetricSpan s(&m, "attempt");
    }
    m.clearCounters();
    EXPECT_EQ(m.countersJson(), "{}");
    ASSERT_EQ(m.spans().size(), 1u);
    EXPECT_EQ(m.spans()[0].name, "attempt");
}

TEST(JobMetrics, SpanNestingRecordsDepth)
{
    JobMetrics m;
    {
        MetricSpan outer(&m, "attempt");
        {
            MetricSpan inner(&m, "replay");
        }
        {
            MetricSpan inner2(&m, "callback");
        }
    }
    {
        MetricSpan second(&m, "attempt");
    }
    ASSERT_EQ(m.spans().size(), 4u);
    EXPECT_EQ(m.spans()[0].depth, 0u);
    EXPECT_EQ(m.spans()[1].depth, 1u);
    EXPECT_EQ(m.spans()[2].depth, 1u);
    EXPECT_EQ(m.spans()[3].depth, 0u);  // depth restored after close
    for (const auto &s : m.spans()) {
        EXPECT_GE(s.endNs, s.beginNs) << s.name;
        EXPECT_NE(s.endNs, 0u) << s.name;
    }
}

TEST(JobMetrics, SpanClosesOnException)
{
    JobMetrics m;
    try {
        MetricSpan s(&m, "replay");
        throw std::runtime_error("watchdog");
    } catch (const std::runtime_error &) {
    }
    ASSERT_EQ(m.spans().size(), 1u);
    EXPECT_GE(m.spans()[0].endNs, m.spans()[0].beginNs);
    EXPECT_NE(m.spans()[0].endNs, 0u);
}

TEST(MetricSpan, NullSinkIsANoOp)
{
    // Must not crash or allocate a record anywhere.
    MetricSpan s(nullptr, "replay");
}

TEST(MetricSinkScope, InstallsAndRestores)
{
    EXPECT_EQ(currentMetricSink(), nullptr);
    JobMetrics a, b;
    {
        MetricSinkScope sa(&a);
        EXPECT_EQ(currentMetricSink(), &a);
        {
            MetricSinkScope sb(&b);
            EXPECT_EQ(currentMetricSink(), &b);
        }
        EXPECT_EQ(currentMetricSink(), &a);
    }
    EXPECT_EQ(currentMetricSink(), nullptr);
}

TEST(MetricSinkScope, IsThreadLocal)
{
    JobMetrics a;
    MetricSinkScope sa(&a);
    JobMetrics *seen = &a;  // must be overwritten with null
    std::thread t([&] { seen = currentMetricSink(); });
    t.join();
    EXPECT_EQ(seen, nullptr);
    EXPECT_EQ(currentMetricSink(), &a);
}

TEST(MetricsCollector, ResetSizesAndLabels)
{
    MetricsCollector c;
    c.reset(3);
    ASSERT_EQ(c.size(), 3u);
    c.setLabel(1, "BFS/Kernel|vgiw");
    EXPECT_EQ(c.label(1), "BFS/Kernel|vgiw");
    c.job(1).add("x", 1.0);
    c.reset(2);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.job(1).countersJson(), "{}");  // prior contents dropped
    EXPECT_EQ(c.label(1), "");
}

TEST(MetricsCollector, ChromeTraceShape)
{
    MetricsCollector c;
    c.reset(2);
    c.setLabel(0, "job0");
    c.setLabel(1, "job1");
    {
        MetricSpan s(&c.job(0), "attempt");
        MetricSpan inner(&c.job(0), "replay");
    }
    {
        MetricSpan s(&c.job(1), "attempt");
    }
    const std::string doc = c.chromeTraceJson();
    EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(doc.find("\"name\":\"attempt\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"replay\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"job\":\"job0\""), std::string::npos);
    EXPECT_NE(doc.find("\"job\":\"job1\""), std::string::npos);
    // One recording thread: every event must carry tid 0 (renumbered by
    // first appearance, not the raw hashed thread id).
    EXPECT_NE(doc.find("\"tid\":0"), std::string::npos);
    EXPECT_EQ(doc.find("\"tid\":1"), std::string::npos);
    // Rebased to the earliest span: the first event begins at ts 0.
    EXPECT_NE(doc.find("\"ts\":0.000"), std::string::npos);
}

TEST(MetricsCollector, ChromeTraceSkipsUnclosedSpans)
{
    MetricsCollector c;
    c.reset(1);
    c.setLabel(0, "torn");
    c.job(0).beginSpan("never_closed");
    {
        MetricSpan s(&c.job(0), "closed");
    }
    const std::string doc = c.chromeTraceJson();
    EXPECT_EQ(doc.find("never_closed"), std::string::npos);
    EXPECT_NE(doc.find("closed"), std::string::npos);
}

TEST(MetricsCollector, EmptyCollectorProducesValidDocument)
{
    MetricsCollector c;
    EXPECT_EQ(c.chromeTraceJson(), "{\"traceEvents\":[]}");
}

} // namespace
} // namespace vgiw
