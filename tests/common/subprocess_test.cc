/**
 * @file
 * Subprocess-layer tests: frames round-trip over real pipes (including
 * a one-byte-at-a-time feed — the short-read case TCP produces
 * constantly), corruption is graded correctly (checksum mismatch on an
 * aligned record reads as CorruptRecord and leaves the next frame
 * parseable; torn frames, oversized lengths and mid-frame peer death
 * read as Corrupt), SO_RCVTIMEO expiry surfaces as Timeout, and
 * spawnChild/waitChild classify clean exits and signal deaths
 * correctly. Fork-based: these suites are deliberately outside the
 * sanitizer allowlist filters.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/net.hh"
#include "common/subprocess.hh"

namespace vgiw
{
namespace
{

struct Pipe
{
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    int readEnd() const { return fds[0]; }
    int writeEnd() const { return fds[1]; }
    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

TEST(Subprocess, FramesRoundTripAllTypes)
{
    Pipe p;
    // The large payload stays under the default 64 KiB pipe capacity:
    // this test writes and reads from one thread, so a frame larger
    // than the buffer would deadlock the writer. (Real traffic has a
    // concurrent reader; the size cap there is kMaxFrameBytes.)
    const std::string payloads[] = {
        "",
        "x",
        std::string("embedded\0nul", 12),
        std::string(60000, 'y'),
    };
    const FrameType types[] = {FrameType::Job, FrameType::Result,
                               FrameType::Heartbeat, FrameType::Stats,
                               FrameType::Shutdown};
    for (FrameType t : types) {
        for (const auto &payload : payloads) {
            ASSERT_TRUE(writeFrame(p.writeEnd(), t, payload));
            Frame f;
            ASSERT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok);
            EXPECT_EQ(f.type, t);
            EXPECT_EQ(f.payload, payload);
        }
    }
}

TEST(Subprocess, BackToBackFramesKeepBoundaries)
{
    // Pipes deliver bytes, not messages: several frames written before
    // any read must come back as distinct messages, in order.
    Pipe p;
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(writeFrame(p.writeEnd(), FrameType::Result,
                               std::string(size_t(i * 7), char('a' + i))));
    }
    for (int i = 0; i < 20; ++i) {
        Frame f;
        ASSERT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok) << i;
        EXPECT_EQ(f.payload.size(), size_t(i * 7)) << i;
    }
}

TEST(Subprocess, ClosedPipeReadsAsEofOnFrameBoundary)
{
    Pipe p;
    ASSERT_TRUE(writeFrame(p.writeEnd(), FrameType::Heartbeat, ""));
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok);
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Eof);
}

TEST(Subprocess, OneByteAtATimeFeedReassembles)
{
    // TCP (and a pathological pipe writer) may deliver a frame in
    // arbitrarily small pieces; readFrame must loop over short reads
    // until the header and payload are complete. Feed a frame one byte
    // at a time from a writer thread while the reader blocks.
    Pipe p;
    Pipe capture;
    const std::string payload = "short-read torture";
    ASSERT_TRUE(
        writeFrame(capture.writeEnd(), FrameType::Result, payload));
    capture.closeWrite();
    char buf[64];
    const ssize_t n = ::read(capture.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 0);

    std::thread writer([&]() {
        for (ssize_t i = 0; i < n; ++i) {
            ASSERT_EQ(::write(p.writeEnd(), buf + i, 1), 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        p.closeWrite();
    });
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Result);
    EXPECT_EQ(f.payload, payload);
    writer.join();
}

TEST(Subprocess, FlippedPayloadByteIsCorruptRecordAndSkippable)
{
    // Build a valid frame in a buffer, corrupt the payload, then push
    // the damaged bytes through a pipe: the checksum must catch it.
    // The length field is intact, so the stream stays aligned —
    // CorruptRecord, and the *next* frame must still parse.
    Pipe capture;
    ASSERT_TRUE(
        writeFrame(capture.writeEnd(), FrameType::Result, "payload"));
    capture.closeWrite();
    char buf[64];
    const ssize_t n = ::read(capture.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    buf[n - 2] ^= 0x40;  // a payload byte

    Pipe p;
    ASSERT_EQ(::write(p.writeEnd(), buf, size_t(n)), n);
    ASSERT_TRUE(writeFrame(p.writeEnd(), FrameType::Heartbeat, "next"));
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::CorruptRecord);
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Heartbeat);
    EXPECT_EQ(f.payload, "next");
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Eof);
}

TEST(Subprocess, FlippedTypeByteIsCaughtByChecksum)
{
    // The checksum covers the header too: a flipped *type* byte (with
    // payload intact) must read as CorruptRecord, not dispatch as a
    // different message kind.
    Pipe capture;
    ASSERT_TRUE(writeFrame(capture.writeEnd(), FrameType::Result, "x"));
    capture.closeWrite();
    char buf[64];
    const ssize_t n = ::read(capture.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 0);
    buf[4] = char(FrameType::Shutdown);  // type byte lives at offset 4

    Pipe p;
    ASSERT_EQ(::write(p.writeEnd(), buf, size_t(n)), n);
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::CorruptRecord);
}

TEST(Subprocess, CorruptFrameForTestReadsAsCorruptRecord)
{
    Pipe p;
    ASSERT_TRUE(writeCorruptFrameForTest(p.writeEnd(),
                                         FrameType::Heartbeat, "drill"));
    ASSERT_TRUE(writeFrame(p.writeEnd(), FrameType::Result, "after"));
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::CorruptRecord);
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Ok);
    EXPECT_EQ(f.payload, "after");
}

TEST(Subprocess, SocketRecvTimeoutSurfacesAsTimeout)
{
    // A stalled TCP peer must surface as Timeout (via SO_RCVTIMEO),
    // not hang the reader. Pipes never set timeouts, so sockets are
    // the only transport that sees this status.
    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(setSocketTimeouts(sv[0], /*recvMs=*/50, /*sendMs=*/0));

    Frame f;
    EXPECT_EQ(readFrame(sv[0], &f), ReadStatus::Timeout);

    // Mid-frame stall: send only part of a frame, then nothing.
    Pipe capture;
    ASSERT_TRUE(writeFrame(capture.writeEnd(), FrameType::Result,
                           std::string(100, 'q')));
    capture.closeWrite();
    char buf[160];
    const ssize_t n = ::read(capture.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 20);
    ASSERT_EQ(::write(sv[1], buf, size_t(n) / 2), n / 2);
    EXPECT_EQ(readFrame(sv[0], &f), ReadStatus::Timeout);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(Subprocess, MidFramePeerDeathIsCorruptNotEof)
{
    // The peer died mid-write: header promises more bytes than ever
    // arrive. That must read as Corrupt (a torn frame), not Eof (an
    // orderly shutdown).
    Pipe capture;
    ASSERT_TRUE(writeFrame(capture.writeEnd(), FrameType::Result,
                           std::string(500, 'z')));
    capture.closeWrite();
    char buf[600];
    const ssize_t n = ::read(capture.readEnd(), buf, sizeof buf);
    ASSERT_GT(n, 100);

    Pipe p;
    ASSERT_EQ(::write(p.writeEnd(), buf, size_t(n) / 2), n / 2);
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Corrupt);
}

TEST(Subprocess, OversizedLengthIsCorruptNotAllocated)
{
    // A desynchronised stream can present any length field; lengths
    // beyond kMaxFrameBytes are rejected before any allocation.
    Pipe p;
    const uint32_t huge = kMaxFrameBytes + 1;
    char header[13] = {};
    std::memcpy(header, &huge, sizeof huge);
    header[4] = char(FrameType::Result);
    ASSERT_EQ(::write(p.writeEnd(), header, sizeof header),
              ssize_t(sizeof header));
    p.closeWrite();
    Frame f;
    EXPECT_EQ(readFrame(p.readEnd(), &f), ReadStatus::Corrupt);
}

TEST(Subprocess, SpawnChildEchoesAndExitsClean)
{
    ChildProcess cp;
    std::string err;
    ASSERT_TRUE(spawnChild(
        [](int in_fd, int out_fd) -> int {
            Frame f;
            while (readFrame(in_fd, &f) == ReadStatus::Ok) {
                if (f.type == FrameType::Shutdown)
                    return 7;
                if (!writeFrame(out_fd, FrameType::Result, f.payload))
                    return 1;
            }
            return 1;
        },
        &cp, &err))
        << err;

    ASSERT_TRUE(writeFrame(cp.toChild, FrameType::Job, "ping"));
    Frame f;
    ASSERT_EQ(readFrame(cp.fromChild, &f), ReadStatus::Ok);
    EXPECT_EQ(f.payload, "ping");

    ASSERT_TRUE(writeFrame(cp.toChild, FrameType::Shutdown, ""));
    const ChildStatus st = waitChild(cp.pid);
    EXPECT_EQ(st.state, ChildState::Exited);
    EXPECT_EQ(st.code, 7);
    EXPECT_EQ(describeChildStatus(st), "exited with status 7");
    ::close(cp.toChild);
    ::close(cp.fromChild);
}

TEST(Subprocess, SignalDeathIsClassifiedAndDescribed)
{
    ChildProcess cp;
    std::string err;
    ASSERT_TRUE(spawnChild(
        [](int in_fd, int) -> int {
            // Wait for the go signal so the kill cannot race the fork.
            Frame f;
            (void)readFrame(in_fd, &f);
            ::pause();
            return 0;
        },
        &cp, &err))
        << err;

    ASSERT_TRUE(writeFrame(cp.toChild, FrameType::Job, ""));
    killChild(cp.pid, SIGKILL);
    const ChildStatus st = waitChild(cp.pid);
    EXPECT_EQ(st.state, ChildState::Signaled);
    EXPECT_EQ(st.code, SIGKILL);
    EXPECT_NE(describeChildStatus(st).find("killed by signal 9"),
              std::string::npos)
        << describeChildStatus(st);
    ::close(cp.toChild);
    ::close(cp.fromChild);
}

TEST(Subprocess, PollChildSeesRunningThenExit)
{
    ChildProcess cp;
    std::string err;
    ASSERT_TRUE(spawnChild(
        [](int in_fd, int) -> int {
            Frame f;
            (void)readFrame(in_fd, &f);
            return 0;
        },
        &cp, &err))
        << err;

    EXPECT_EQ(pollChild(cp.pid).state, ChildState::Running);
    ASSERT_TRUE(writeFrame(cp.toChild, FrameType::Shutdown, ""));
    const ChildStatus st = waitChild(cp.pid);
    EXPECT_EQ(st.state, ChildState::Exited);
    EXPECT_EQ(st.code, 0);
    // A second reap of the same pid is Lost, not a stale success.
    EXPECT_EQ(pollChild(cp.pid).state, ChildState::Lost);
    ::close(cp.toChild);
    ::close(cp.fromChild);
}

TEST(Subprocess, WriteToDeadPeerFailsInsteadOfKilling)
{
    ignoreSigpipe();
    Pipe p;
    p.closeRead();
    // With SIGPIPE ignored this is an EPIPE write failure the
    // supervisor handles — not a fatal signal.
    EXPECT_FALSE(writeFrame(p.writeEnd(), FrameType::Job, "x"));
}

} // namespace
} // namespace vgiw
