/**
 * @file
 * ResultTable: the columnar result store and its single JSON-lines
 * formatter. The reference formatter below is a frozen copy of the
 * engine's historical per-struct ostringstream serialiser — renderRow
 * must reproduce its bytes exactly for every result shape, which is
 * the byte-identity contract the journal and --json artifacts rely
 * on across the columnar migration.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/json.hh"
#include "driver/experiment_engine.hh"
#include "driver/result_table.hh"

namespace vgiw
{
namespace
{

/** Frozen copy of the pre-columnar serialiser (the golden bytes). */
std::string
referenceJsonLine(const JobResult &r)
{
    if (r.restored)
        return r.restoredJson;
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(r.workload) << "\""
       << ",\"arch\":\"" << jsonEscape(r.arch) << "\""
       << ",\"config\":\"" << jsonEscape(r.configLabel) << "\""
       << ",\"golden\":" << (r.goldenPassed ? "true" : "false")
       << ",\"ok\":" << (r.ok() ? "true" : "false");
    if (!r.error.empty())
        os << ",\"error\":\"" << jsonEscape(r.error) << "\"";
    if (r.errorKind != SimErrorKind::None)
        os << ",\"error_kind\":\"" << simErrorKindName(r.errorKind)
           << "\"";
    if (r.partial.valid)
        os << ",\"partial_cycles\":" << r.partial.cycles
           << ",\"partial_block_execs\":" << r.partial.dynBlockExecs
           << ",\"partial_thread_ops\":" << r.partial.dynThreadOps;
    if (!r.ok()) {
        if (r.attempts > 1)
            os << ",\"attempts\":" << r.attempts;
        if (r.quarantined)
            os << ",\"quarantined\":true";
    }
    if (r.ran) {
        const RunStats &s = r.stats;
        os << ",\"supported\":" << (s.supported ? "true" : "false")
           << ",\"cycles\":" << s.cycles
           << ",\"config_cycles\":" << s.configCycles
           << ",\"reconfigs\":" << s.reconfigs
           << ",\"dyn_block_execs\":" << s.dynBlockExecs
           << ",\"dyn_thread_ops\":" << s.dynThreadOps
           << ",\"dyn_warp_instrs\":" << s.dynWarpInstrs
           << ",\"rf_accesses\":" << s.rfAccesses
           << ",\"lvc_accesses\":" << s.lvcAccesses
           << ",\"energy_core_pj\":" << jsonNumber(s.energy.corePj())
           << ",\"energy_die_pj\":" << jsonNumber(s.energy.diePj())
           << ",\"energy_system_pj\":" << jsonNumber(s.energy.systemPj())
           << ",\"l1_accesses\":" << s.l1Stats.accesses()
           << ",\"l1_misses\":" << s.l1Stats.misses()
           << ",\"l2_accesses\":" << s.l2Stats.accesses()
           << ",\"l2_misses\":" << s.l2Stats.misses()
           << ",\"lvc_misses\":" << s.lvcStats.misses()
           << ",\"dram_accesses\":" << s.dramStats.accesses
           << ",\"dram_row_hits\":" << s.dramStats.rowHits;
        os << ",\"extra\":{";
        bool first = true;
        for (const auto &[name, value] : s.extra.entries()) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << jsonEscape(name) << "\":" << jsonNumber(value);
        }
        os << "}";
    }
    if (!r.metricsJson.empty())
        os << ",\"metrics\":" << r.metricsJson;
    os << "}";
    return os.str();
}

JobResult
successResult()
{
    JobResult r;
    r.workload = "BFS/Kernel";
    r.arch = "vgiw";
    r.configLabel = "lvc=64k";
    r.goldenPassed = true;
    r.ran = true;
    r.stats.supported = true;
    r.stats.cycles = 123456789012345ull;
    r.stats.configCycles = 4096;
    r.stats.reconfigs = 17;
    r.stats.dynBlockExecs = 99;
    r.stats.dynThreadOps = 1234;
    r.stats.dynWarpInstrs = 0;
    r.stats.rfAccesses = 7;
    r.stats.lvcAccesses = 4242;
    r.stats.energy.add(EnergyComponent(0), 1.5e6);
    r.stats.extra.set("vgiw.batches", 321.0);
    r.stats.extra.set("vgiw.replicas", 2.5);
    return r;
}

JobResult
failureResult()
{
    JobResult r;
    r.workload = "NW/needle \"quoted\"";
    r.arch = "sgmf";
    r.configLabel = "tab\there";
    r.error = "watchdog: exceeded 10 cycles\nline two";
    r.errorKind = SimErrorKind::Watchdog;
    r.partial.valid = true;
    r.partial.cycles = 11;
    r.partial.dynBlockExecs = 22;
    r.partial.dynThreadOps = 33;
    r.attempts = 3;
    r.quarantined = true;
    return r;
}

TEST(ResultTable, MatchesReferenceFormatterForEveryShape)
{
    std::vector<JobResult> cases;
    cases.push_back(successResult());
    cases.push_back(failureResult());
    {
        JobResult r = successResult();  // success with metrics attached
        r.metricsJson = "{\"cvt.drains\":12,\"lvc.hits\":34}";
        cases.push_back(r);
    }
    {
        JobResult r = failureResult();  // failure with metrics attached
        r.metricsJson = "{\"engine.attempts\":3}";
        cases.push_back(r);
    }
    {
        JobResult r;  // config error: never ran, no stats block
        r.workload = "X/y";
        r.arch = "fermi";
        r.error = "unknown architecture";
        r.errorKind = SimErrorKind::Config;
        cases.push_back(r);
    }
    {
        JobResult r;  // restored: verbatim bytes, never re-rendered
        r.workload = "BFS/Kernel";
        r.arch = "vgiw";
        r.restored = true;
        r.restoredJson = "{\"workload\":\"BFS/Kernel\",\"frozen\":true}";
        r.goldenPassed = true;
        r.ran = true;
        cases.push_back(r);
    }

    ResultTable table;
    table.reset(cases.size());
    for (size_t i = 0; i < cases.size(); ++i)
        table.fill(i, cases[i]);
    for (size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(std::string(table.renderRow(i)),
                  referenceJsonLine(cases[i]))
            << "case " << i;
        // The static shim must agree with the table path.
        EXPECT_EQ(ExperimentEngine::toJsonLine(cases[i]),
                  referenceJsonLine(cases[i]))
            << "case " << i;
    }
}

TEST(ResultTable, RenderIntoSkipsDrainedAndPreservesOrder)
{
    ResultTable table;
    table.reset(3);
    JobResult a = successResult();
    JobResult d;
    d.workload = "drained/one";
    d.drained = true;
    JobResult b = failureResult();
    table.fill(0, a);
    table.fill(1, d);
    table.fill(2, b);

    struct CollectSink : ResultSink
    {
        std::vector<size_t> indices;
        std::vector<std::string> lines;
        void row(size_t i, std::string_view line) override
        {
            indices.push_back(i);
            lines.emplace_back(line);
        }
    } sink;
    table.renderInto(sink);
    ASSERT_EQ(sink.indices.size(), 2u);
    EXPECT_EQ(sink.indices[0], 0u);
    EXPECT_EQ(sink.indices[1], 2u);
    EXPECT_EQ(sink.lines[0], referenceJsonLine(a));
    EXPECT_EQ(sink.lines[1], referenceJsonLine(b));
}

TEST(ResultTable, RefillInvalidatesRenderCache)
{
    ResultTable table;
    table.reset(1);
    JobResult r = successResult();
    table.fill(0, r);
    const std::string first(table.renderRow(0));
    // A callback demotion re-fills the row; the render must follow.
    r.error = "onResult callback threw: boom";
    r.errorKind = SimErrorKind::Internal;
    table.fill(0, r);
    EXPECT_EQ(std::string(table.renderRow(0)), referenceJsonLine(r));
    EXPECT_NE(std::string(table.renderRow(0)), first);
}

TEST(ResultTable, ArenaSurvivesManyRowsAndLongStrings)
{
    // Force multiple arena chunks plus an oversized dedicated chunk
    // and verify earlier rows' interned strings stay intact.
    const std::string huge(100000, 'x');
    ResultTable table;
    table.reset(600);
    std::vector<JobResult> rows(600);
    for (size_t i = 0; i < rows.size(); ++i) {
        rows[i] = successResult();
        rows[i].workload = "W/" + std::to_string(i * 7919);
        rows[i].configLabel = std::string(200, char('a' + i % 26));
        if (i == 300)
            rows[i].error = huge;
        table.fill(i, rows[i]);
    }
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(std::string(table.renderRow(i)),
                  referenceJsonLine(rows[i]))
            << "row " << i;
    EXPECT_GT(table.arenaBytes(), huge.size());
}

} // namespace
} // namespace vgiw
