/**
 * @file
 * Experiment-engine tests: a parallel sweep must be bit-identical to a
 * serial one (same traces, same replays, deterministic result order), a
 * golden-failing workload must be skipped rather than abort the sweep,
 * and the JSON-lines emission must produce one well-formed object per
 * result.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "driver/experiment_engine.hh"
#include "driver/result_journal.hh"
#include "power/energy_model.hh"
#include "workloads/workload.hh"

namespace vgiw
{
namespace
{

void
expectBitIdentical(const RunStats &a, const RunStats &b,
                   const std::string &what)
{
    EXPECT_EQ(a.arch, b.arch) << what;
    EXPECT_EQ(a.supported, b.supported) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.configCycles, b.configCycles) << what;
    EXPECT_EQ(a.reconfigs, b.reconfigs) << what;
    EXPECT_EQ(a.dynBlockExecs, b.dynBlockExecs) << what;
    EXPECT_EQ(a.dynThreadOps, b.dynThreadOps) << what;
    EXPECT_EQ(a.dynWarpInstrs, b.dynWarpInstrs) << what;
    EXPECT_EQ(a.rfAccesses, b.rfAccesses) << what;
    EXPECT_EQ(a.lvcAccesses, b.lvcAccesses) << what;
    for (size_t c = 0; c < kNumEnergyComponents; ++c) {
        EXPECT_EQ(a.energy.get(EnergyComponent(c)),
                  b.energy.get(EnergyComponent(c)))
            << what << " energy component " << c;
    }
    for (const CacheStats RunStats::*m :
         {&RunStats::l1Stats, &RunStats::l2Stats, &RunStats::lvcStats}) {
        EXPECT_EQ((a.*m).readHits, (b.*m).readHits) << what;
        EXPECT_EQ((a.*m).readMisses, (b.*m).readMisses) << what;
        EXPECT_EQ((a.*m).writeHits, (b.*m).writeHits) << what;
        EXPECT_EQ((a.*m).writeMisses, (b.*m).writeMisses) << what;
        EXPECT_EQ((a.*m).fills, (b.*m).fills) << what;
        EXPECT_EQ((a.*m).writebacks, (b.*m).writebacks) << what;
        EXPECT_EQ((a.*m).writethroughs, (b.*m).writethroughs) << what;
    }
    EXPECT_EQ(a.dramStats.accesses, b.dramStats.accesses) << what;
    EXPECT_EQ(a.dramStats.rowHits, b.dramStats.rowHits) << what;
    EXPECT_EQ(a.dramStats.rowMisses, b.dramStats.rowMisses) << what;
    EXPECT_EQ(a.extra.entries(), b.extra.entries()) << what;
}

/** A registry-shaped entry whose golden check always fails. */
ExperimentJob
failingJob()
{
    ExperimentJob job;
    job.workload = "SYNTH/always_fails";
    job.arch = "vgiw";
    job.make = []() {
        WorkloadInstance w = makeWorkload("NN/euclid");
        w.suite = "SYNTH";
        w.check = [](const MemoryImage &, std::string &err) {
            err = "intentional mismatch";
            return false;
        };
        return w;
    };
    return job;
}

TEST(ExperimentEngine, ParallelRunIsBitIdenticalToSerial)
{
    // The acceptance criterion: N>=4 workers produce bit-identical
    // RunStats to the serial path across the full registry x all
    // architectures, in the same (submission) order.
    SystemConfig cfg;
    auto jobs = ExperimentEngine::suiteJobs(cfg);
    ASSERT_EQ(jobs.size(), workloadRegistry().size() * 4);

    ExperimentEngine serial{EngineOptions{1}};
    ExperimentEngine parallel{EngineOptions{4}};
    auto a = serial.run(jobs);
    auto b = parallel.run(jobs);

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << i;
        EXPECT_EQ(a[i].arch, b[i].arch) << i;
        EXPECT_TRUE(a[i].ok()) << a[i].workload << ": " << a[i].error;
        EXPECT_TRUE(b[i].ok()) << b[i].workload << ": " << b[i].error;
        expectBitIdentical(a[i].stats, b[i].stats,
                           a[i].workload + "/" + a[i].arch);
    }
}

TEST(ExperimentEngine, GoldenFailureIsSkippedNotFatal)
{
    std::vector<ExperimentJob> jobs;
    jobs.push_back(failingJob());
    ExperimentJob good;
    good.workload = "NN/euclid";
    good.arch = "vgiw";
    jobs.push_back(good);

    std::atomic<int> failures{0};
    EngineOptions opts;
    opts.jobs = 2;
    opts.onFailure = [&failures](const JobResult &r) {
        ++failures;
        EXPECT_EQ(r.workload, "SYNTH/always_fails");
    };
    ExperimentEngine engine(opts);
    auto results = engine.run(jobs);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_FALSE(results[0].goldenPassed);
    EXPECT_FALSE(results[0].ran);
    EXPECT_NE(results[0].error.find("intentional mismatch"),
              std::string::npos);
    EXPECT_TRUE(results[1].ok());
    EXPECT_GT(results[1].stats.cycles, 0u);
    EXPECT_EQ(failures.load(), 1);
}

TEST(ExperimentEngine, UnknownWorkloadAndArchAreReportedNotFatal)
{
    std::vector<ExperimentJob> jobs(2);
    jobs[0].workload = "NOPE/nope";
    jobs[0].arch = "vgiw";
    jobs[1].workload = "NN/euclid";
    jobs[1].arch = "bogus";

    ExperimentEngine engine;
    auto results = engine.run(jobs);
    EXPECT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("unknown workload"),
              std::string::npos);
    EXPECT_FALSE(results[1].ok());
    EXPECT_NE(results[1].error.find("unknown architecture"),
              std::string::npos);
}

TEST(ExperimentEngine, ProgressCallbackSeesEveryJobOnce)
{
    SystemConfig cfg;
    auto jobs = ExperimentEngine::suiteJobs(cfg, {"vgiw"});
    std::vector<int> seen(jobs.size(), 0);
    EngineOptions opts;
    opts.jobs = 4;
    opts.onResult = [&seen](size_t index, const JobResult &r) {
        ASSERT_LT(index, seen.size());
        ++seen[index];
        EXPECT_TRUE(r.ok()) << r.workload;
    };
    ExperimentEngine engine(opts);
    engine.run(jobs);
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << i;
}

TEST(ExperimentEngine, CompareSuiteMatchesSerialRunner)
{
    // The rebased runSuite path must agree with the original serial
    // Runner::compare on every field the figure harnesses consume.
    SystemConfig cfg;
    ExperimentEngine engine{EngineOptions{4}};
    auto suite = engine.compareSuite(cfg);
    ASSERT_EQ(suite.size(), workloadRegistry().size());

    Runner runner(cfg);
    for (size_t i = 0; i < 3; ++i) {  // spot-check a prefix; full
                                      // equality is covered above
        ArchComparison direct =
            runner.compare(workloadRegistry()[i].make());
        EXPECT_EQ(suite[i].workload, workloadRegistry()[i].name);
        EXPECT_TRUE(suite[i].goldenPassed);
        expectBitIdentical(suite[i].vgiw, direct.vgiw, suite[i].workload);
        expectBitIdentical(suite[i].fermi, direct.fermi,
                           suite[i].workload);
        expectBitIdentical(suite[i].sgmf, direct.sgmf, suite[i].workload);
        expectBitIdentical(suite[i].dice, direct.dice, suite[i].workload);
    }
}

TEST(ExperimentEngine, JournaledParallelSweepRendersRowsRaceFree)
{
    // Regression test for a data race: with a journal attached, each
    // worker renders its own row for the journal line while other
    // workers are still filling theirs (interning strings and
    // appending stats extras). Row rendering must read only row-owned
    // state — under TSan this test is the canary; everywhere it also
    // pins journal lines == table renders.
    std::vector<ExperimentJob> jobs;
    for (const char *w : {"NN/euclid", "BFS/Kernel", "GE/Fan1",
                          "KMEANS/invert_mapping"}) {
        // All four archs so every row carries arch-specific extras.
        for (const char *arch : {"vgiw", "fermi", "sgmf", "dice"}) {
            ExperimentJob j;
            j.workload = w;
            j.arch = arch;
            jobs.push_back(j);
        }
    }
    const std::string path =
        ::testing::TempDir() + "vgiw_engine_journal_race.jsonl";
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    const std::string hash = ExperimentEngine::sweepHash(jobs);

    ResultJournal journal;
    ASSERT_TRUE(journal.create(path, hash));
    EngineOptions opts{4};
    opts.journal = &journal;
    ExperimentEngine engine(opts);
    auto results = engine.run(jobs);
    journal.close();
    ASSERT_EQ(results.size(), jobs.size());

    // The line journaled mid-sweep must equal the row the table
    // renders at rest: one formatter, no divergence.
    ResultJournal readback;
    ASSERT_TRUE(readback.openForResume(path, hash));
    ASSERT_EQ(readback.entries().size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto it = readback.entries().find(ExperimentEngine::jobKey(jobs[i]));
        ASSERT_NE(it, readback.entries().end()) << jobs[i].workload;
        EXPECT_EQ(it->second.jsonLine, engine.resultTable().renderRow(i))
            << jobs[i].workload << "/" << jobs[i].arch;
    }
    std::remove(path.c_str());
}

TEST(ExperimentEngine, JsonLineIsWellFormedPerResult)
{
    ExperimentJob job;
    job.workload = "NN/euclid";
    job.arch = "vgiw";
    job.configLabel = "base \"quoted\"";
    ExperimentEngine engine;
    auto results = engine.run({job});
    ASSERT_EQ(results.size(), 1u);

    const std::string line = ExperimentEngine::toJsonLine(results[0]);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("\"workload\":\"NN/euclid\""), std::string::npos);
    EXPECT_NE(line.find("\"arch\":\"vgiw\""), std::string::npos);
    EXPECT_NE(line.find("\"config\":\"base \\\"quoted\\\"\""),
              std::string::npos);
    EXPECT_NE(line.find("\"golden\":true"), std::string::npos);
    EXPECT_NE(line.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(line.find("\"energy_system_pj\":"), std::string::npos);

    // Balanced braces and quotes outside escapes => minimally parseable.
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
        } else if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}') {
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);

    // A failed job still serialises, with its error attached.
    auto failed = engine.run({failingJob()});
    const std::string fline = ExperimentEngine::toJsonLine(failed[0]);
    EXPECT_NE(fline.find("\"golden\":false"), std::string::npos);
    EXPECT_NE(fline.find("\"error\":"), std::string::npos);
    EXPECT_EQ(fline.find("\"cycles\":"), std::string::npos);
}

} // namespace
} // namespace vgiw
