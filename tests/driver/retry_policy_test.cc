/**
 * @file
 * Retry/quarantine policy tests: only budget-sensitive failure kinds
 * retry, escalation multiplies the finite watchdog ceilings (zero stays
 * unlimited, huge products saturate), a transient fault recovers to a
 * result bit-identical to an undisturbed run, exhaustion quarantines,
 * and the drain flag stops the engine from dequeueing new jobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <limits>
#include <string>

#include "common/signal_drain.hh"
#include "driver/experiment_engine.hh"
#include "driver/fault_injector.hh"
#include "driver/retry_policy.hh"

namespace vgiw
{
namespace
{

ExperimentJob
job(const std::string &workload, const std::string &arch)
{
    ExperimentJob j;
    j.workload = workload;
    j.arch = arch;
    return j;
}

TEST(RetryPolicy, OnlyBudgetSensitiveKindsAreRetryable)
{
    EXPECT_TRUE(RetryPolicy::retryableKind(SimErrorKind::Watchdog));
    EXPECT_TRUE(RetryPolicy::retryableKind(SimErrorKind::Internal));

    EXPECT_FALSE(RetryPolicy::retryableKind(SimErrorKind::None));
    EXPECT_FALSE(RetryPolicy::retryableKind(SimErrorKind::Config));
    EXPECT_FALSE(RetryPolicy::retryableKind(SimErrorKind::Compile));
    EXPECT_FALSE(RetryPolicy::retryableKind(SimErrorKind::Functional));
    EXPECT_FALSE(RetryPolicy::retryableKind(SimErrorKind::Golden));
}

TEST(RetryPolicy, ShouldRetryRespectsBudgetAndKind)
{
    RetryPolicy rp;
    rp.maxAttempts = 3;
    EXPECT_TRUE(rp.shouldRetry(SimErrorKind::Watchdog, 1));
    EXPECT_TRUE(rp.shouldRetry(SimErrorKind::Watchdog, 2));
    EXPECT_FALSE(rp.shouldRetry(SimErrorKind::Watchdog, 3));
    EXPECT_FALSE(rp.shouldRetry(SimErrorKind::Golden, 1));

    RetryPolicy off;  // default maxAttempts == 1: retries disabled
    EXPECT_FALSE(off.shouldRetry(SimErrorKind::Watchdog, 1));
}

TEST(RetryPolicy, EscalateScalesFiniteCeilingsPerRetry)
{
    RetryPolicy rp;  // cycle x4, deadline x2 per retry
    WatchdogConfig base;
    base.maxReplayCycles = 100;
    base.deadlineMs = 10.0;

    const WatchdogConfig a1 = rp.escalate(base, 1);
    EXPECT_EQ(a1.maxReplayCycles, 100u);
    EXPECT_DOUBLE_EQ(a1.deadlineMs, 10.0);

    const WatchdogConfig a2 = rp.escalate(base, 2);
    EXPECT_EQ(a2.maxReplayCycles, 400u);
    EXPECT_DOUBLE_EQ(a2.deadlineMs, 20.0);

    const WatchdogConfig a3 = rp.escalate(base, 3);
    EXPECT_EQ(a3.maxReplayCycles, 1600u);
    EXPECT_DOUBLE_EQ(a3.deadlineMs, 40.0);
}

TEST(RetryPolicy, EscalateKeepsUnlimitedCeilingsUnlimited)
{
    RetryPolicy rp;
    WatchdogConfig base;  // both ceilings zero = disabled
    const WatchdogConfig wd = rp.escalate(base, 4);
    EXPECT_EQ(wd.maxReplayCycles, 0u);
    EXPECT_DOUBLE_EQ(wd.deadlineMs, 0.0);
}

TEST(RetryPolicy, EscalateSaturatesInsteadOfWrapping)
{
    RetryPolicy rp;
    WatchdogConfig base;
    base.maxReplayCycles = std::numeric_limits<uint64_t>::max() / 2;
    const WatchdogConfig wd = rp.escalate(base, 2);
    EXPECT_EQ(wd.maxReplayCycles, std::numeric_limits<uint64_t>::max());
}

TEST(RetryPolicy, EscalateClearsDeadlineAnchor)
{
    RetryPolicy rp;
    WatchdogConfig base;
    base.deadlineMs = 5.0;
    base.anchor = std::chrono::steady_clock::now();
    // Every attempt — including the first — gets a fresh anchor, so a
    // retry's wall-clock budget restarts instead of inheriting the
    // already-exhausted window.
    EXPECT_EQ(rp.escalate(base, 1).anchor,
              std::chrono::steady_clock::time_point{});
    EXPECT_EQ(rp.escalate(base, 2).anchor,
              std::chrono::steady_clock::time_point{});
}

TEST(RetryPolicy, TransientFaultRecoversBitIdentically)
{
    // The fault fails the first replay attempt only; with one retry the
    // job must succeed and its JSON line must match an undisturbed run
    // exactly (a successful result carries no attempts/quarantine
    // residue).
    std::vector<ExperimentJob> jobs{job("NN/euclid", "vgiw")};

    ExperimentEngine reference{EngineOptions{1}};
    auto ref = reference.run(jobs);
    ASSERT_EQ(ref.size(), 1u);
    ASSERT_TRUE(ref[0].ok()) << ref[0].error;

    FaultInjector inj;
    inj.armTransient(FaultInjector::Point::Replay, 0, 1);
    EngineOptions opts{1};
    opts.injector = &inj;
    opts.retry.maxAttempts = 2;
    ExperimentEngine engine(opts);
    auto results = engine.run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_FALSE(results[0].quarantined);
    EXPECT_EQ(inj.fired(), 1u);
    EXPECT_EQ(ExperimentEngine::toJsonLine(results[0]),
              ExperimentEngine::toJsonLine(ref[0]));
}

TEST(RetryPolicy, TransientFaultWithoutRetriesFailsOnce)
{
    FaultInjector inj;
    inj.armTransient(FaultInjector::Point::Replay, 0, 1);
    EngineOptions opts{1};
    opts.injector = &inj;  // default policy: maxAttempts == 1
    ExperimentEngine engine(opts);
    auto results = engine.run({job("NN/euclid", "vgiw")});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].errorKind, SimErrorKind::Internal);
    EXPECT_EQ(results[0].attempts, 1u);
    // maxAttempts == 1 means no retry budget existed to exhaust.
    EXPECT_FALSE(results[0].quarantined);
}

TEST(RetryPolicy, WatchdogExhaustionQuarantines)
{
    // A 10-cycle budget trips on every attempt even after x4/x16
    // escalation, so the job burns all three attempts and lands in
    // quarantine, with the failure fields in its JSON line.
    ExperimentJob j = job("NN/euclid", "vgiw");
    WatchdogConfig wd;
    wd.maxReplayCycles = 10;
    j.config.setWatchdog(wd);

    EngineOptions opts{1};
    opts.retry.maxAttempts = 3;
    ExperimentEngine engine(opts);
    auto results = engine.run({j});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].errorKind, SimErrorKind::Watchdog);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_TRUE(results[0].quarantined);

    const std::string line = ExperimentEngine::toJsonLine(results[0]);
    EXPECT_NE(line.find("\"attempts\":3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"quarantined\":true"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"error_kind\":\"watchdog\""),
              std::string::npos)
        << line;
}

TEST(RetryPolicy, DeterministicFailuresFailFast)
{
    // A golden mismatch retries the same deterministic computation; the
    // policy must not burn attempts on it, and it is never quarantined.
    ExperimentJob golden;
    golden.workload = "SYNTH/always_fails";
    golden.arch = "vgiw";
    golden.make = []() {
        WorkloadInstance w = makeWorkload("NN/euclid");
        w.suite = "SYNTH";
        w.check = [](const MemoryImage &, std::string &err) {
            err = "intentional mismatch";
            return false;
        };
        return w;
    };
    // Unknown architecture: a config-kind failure at job entry.
    ExperimentJob config = job("NN/euclid", "no-such-arch");

    EngineOptions opts{1};
    opts.retry.maxAttempts = 4;
    ExperimentEngine engine(opts);
    auto results = engine.run({golden, config});

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].errorKind, SimErrorKind::Golden);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_FALSE(results[0].quarantined);
    EXPECT_EQ(results[1].errorKind, SimErrorKind::Config);
    EXPECT_EQ(results[1].attempts, 1u);
    EXPECT_FALSE(results[1].quarantined);
}

TEST(RetryPolicy, PresetStopFlagDrainsEveryJob)
{
    std::atomic<bool> stop{true};
    EngineOptions opts{2};
    opts.stop = &stop;
    ExperimentEngine engine(opts);
    auto results = engine.run(
        {job("NN/euclid", "vgiw"), job("NN/euclid", "fermi"),
         job("NN/euclid", "sgmf")});

    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.drained);
        EXPECT_FALSE(r.ran);
        EXPECT_FALSE(r.quarantined);
    }
}

TEST(RetryPolicy, MidSweepStopFinishesInFlightAndDrainsTheRest)
{
    const std::string path =
        ::testing::TempDir() + "vgiw_drain_journal.jsonl";
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());

    std::vector<ExperimentJob> jobs{job("NN/euclid", "vgiw"),
                                    job("NN/euclid", "fermi"),
                                    job("NN/euclid", "sgmf")};

    ResultJournal journal;
    std::string err;
    ASSERT_TRUE(
        journal.create(path, ExperimentEngine::sweepHash(jobs), &err))
        << err;

    // One worker: the stop raised from the first job's callback is
    // visible before the second dequeue, so exactly one job completes
    // (and is journaled) and the rest come back drained.
    std::atomic<bool> stop{false};
    EngineOptions opts{1};
    opts.stop = &stop;
    opts.journal = &journal;
    opts.onResult = [&stop](size_t, const JobResult &) {
        stop.store(true);
    };
    ExperimentEngine engine(opts);
    auto results = engine.run(jobs);
    journal.close();

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_FALSE(results[0].drained);
    EXPECT_TRUE(results[1].drained);
    EXPECT_TRUE(results[2].drained);

    // Drained slots are not journaled: a resume re-enqueues them.
    auto loaded = ResultJournal::load(path);
    ASSERT_TRUE(loaded.valid) << loaded.error;
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries.count(ExperimentEngine::jobKey(jobs[0])),
              1u);
}

TEST(RetryPolicy, SigtermSetsTheDrainFlag)
{
    resetDrainFlag();
    installDrainHandlers();
    ASSERT_FALSE(drainRequested());

    std::raise(SIGTERM);

    EXPECT_TRUE(drainRequested());
    EXPECT_TRUE(drainFlag().load());
    EXPECT_EQ(drainSignal(), SIGTERM);

    resetDrainFlag();
    EXPECT_FALSE(drainRequested());
    EXPECT_EQ(drainSignal(), 0);
}

} // namespace
} // namespace vgiw
