/**
 * @file
 * Artifact-store tests: the byte codec is bounds-safe, blobs round-trip
 * through publish/load, every corruption mode (truncation, bit flips,
 * version skew, key collisions) demotes to a miss instead of crashing,
 * and the warm path through TraceCache / CompileCache / the engine
 * reproduces cold results byte-for-byte with zero functional executions
 * and zero compilations.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "driver/artifact_store.hh"
#include "driver/compile_cache.hh"
#include "driver/experiment_engine.hh"
#include "driver/system_config.hh"
#include "driver/trace_cache.hh"
#include "interp/trace.hh"
#include "workloads/workload.hh"

namespace vgiw
{
namespace
{

namespace fs = std::filesystem;

/** A fresh scratch store directory, removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path(::testing::TempDir() + "vgiw_store_" + tag)
    {
        fs::remove_all(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string path;
};

const WorkloadEntry &
entryFor(const std::string &name)
{
    for (const auto &e : workloadRegistry())
        if (e.name == name)
            return e;
    throw std::runtime_error("no entry " + name);
}

/** Overwrite one byte of a file (corruption injection). */
void
flipByteAt(const std::string &path, uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(std::streamoff(offset));
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x5a);
    f.seekp(std::streamoff(offset));
    f.write(&c, 1);
}

void
truncateAt(const std::string &path, uint64_t len)
{
    fs::resize_file(path, len);
}

// --------------------------------------------------------------------
// Byte codec
// --------------------------------------------------------------------

TEST(ByteCodec, RoundTripsEveryFieldType)
{
    std::string buf;
    ByteWriter w(buf);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i32(-42);
    w.f64(2.5);
    w.u8(7);
    const char raw[3] = {'a', 'b', 'c'};
    w.raw(raw, sizeof raw);

    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.f64(), 2.5);
    EXPECT_EQ(r.u8(), 7);
    const uint8_t *b = r.bytes(3);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(std::memcmp(b, raw, 3), 0);
    EXPECT_TRUE(r.done());
}

TEST(ByteCodec, TruncationIsStickyNotFatal)
{
    std::string buf;
    ByteWriter w(buf);
    w.u32(1);
    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u32(), 1u);
    // Reading past the end yields zeros and clears ok() permanently.
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.done());
    EXPECT_EQ(r.bytes(1), nullptr);
    // A subsequent in-bounds-sized read stays failed (sticky).
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(ByteCodec, TrailingGarbageFailsDone)
{
    std::string buf;
    ByteWriter w(buf);
    w.u32(1);
    w.u8(0);
    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u32(), 1u);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.done());  // one unread byte = corruption signal
}

// --------------------------------------------------------------------
// Store publish/load and corruption robustness
// --------------------------------------------------------------------

TEST(ArtifactStore, PublishThenLoadRoundTrips)
{
    ScratchDir dir("roundtrip");
    ArtifactStore store;
    std::string err;
    ASSERT_TRUE(store.open(dir.path, &err)) << err;

    const std::string payload = "the artifact payload bytes";
    ASSERT_TRUE(store.publish("t", "trace|abc|8x32", payload, &err))
        << err;

    ArtifactStore::Blob blob;
    ASSERT_TRUE(store.load("t", "trace|abc|8x32", &blob));
    ASSERT_EQ(blob.size, payload.size());
    EXPECT_EQ(std::memcmp(blob.payload, payload.data(), payload.size()),
              0);
    // The payload pointer is 8-aligned (TraceSet::deserialize relies
    // on it to overlay the thread index).
    EXPECT_EQ(uintptr_t(blob.payload) % 8, 0u);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);
    EXPECT_EQ(store.bytesMapped(), payload.size());
}

TEST(ArtifactStore, AbsentKeyIsAMiss)
{
    ScratchDir dir("absent");
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    ArtifactStore::Blob blob;
    EXPECT_FALSE(store.load("t", "no such key", &blob));
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.rejected(), 0u);  // absent, not invalid
}

TEST(ArtifactStore, EveryCorruptionModeIsAMissNeverACrash)
{
    ScratchDir dir("corrupt");
    const std::string key = "trace|feed|16x64";
    const std::string payload(1000, 'x');

    auto publish_fresh = [&](ArtifactStore &store) {
        ASSERT_TRUE(store.open(dir.path));
        ASSERT_TRUE(store.publish("t", key, payload));
    };
    const auto check_miss = [&](const char *what) {
        ArtifactStore fresh;
        ASSERT_TRUE(fresh.open(dir.path));
        ArtifactStore::Blob blob;
        EXPECT_FALSE(fresh.load("t", key, &blob)) << what;
        EXPECT_EQ(fresh.misses(), 1u) << what;
        EXPECT_EQ(fresh.rejected(), 1u) << what;
    };

    {
        ArtifactStore store;
        publish_fresh(store);
        const std::string obj = store.objectPath("t", key);

        truncateAt(obj, 100);  // mid-payload truncation
        check_miss("truncated payload");

        publish_fresh(store);
        truncateAt(obj, 16);  // inside the fixed header
        check_miss("truncated header");

        publish_fresh(store);
        flipByteAt(obj, 700);  // payload bit flip -> checksum mismatch
        check_miss("flipped payload byte");

        publish_fresh(store);
        flipByteAt(obj, 33);  // a key byte -> key mismatch
        check_miss("flipped key byte");

        publish_fresh(store);
        flipByteAt(obj, 4);  // the version word
        check_miss("wrong format version");

        publish_fresh(store);
        flipByteAt(obj, 0);  // the magic
        check_miss("wrong magic");

        // A blob copied to another key's address (simulated FNV
        // collision): the embedded key mismatches and demotes to miss.
        publish_fresh(store);
        const std::string other = "trace|beef|16x64";
        fs::copy_file(obj, store.objectPath("t", other),
                      fs::copy_options::overwrite_existing);
        ArtifactStore fresh;
        ASSERT_TRUE(fresh.open(dir.path));
        ArtifactStore::Blob blob;
        EXPECT_FALSE(fresh.load("t", other, &blob));
        EXPECT_EQ(fresh.rejected(), 1u);
    }
}

TEST(ArtifactStore, DoublePublishIsBenign)
{
    ScratchDir dir("double");
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    const std::string payload = "deterministic bytes";
    ASSERT_TRUE(store.publish("t", "k", payload));
    ASSERT_TRUE(store.publish("t", "k", payload));  // same-key republish
    ArtifactStore::Blob blob;
    ASSERT_TRUE(store.load("t", "k", &blob));
    ASSERT_EQ(blob.size, payload.size());
    EXPECT_EQ(std::memcmp(blob.payload, payload.data(), payload.size()),
              0);
}

// --------------------------------------------------------------------
// Cross-process publication races (the shard-worker sharing contract:
// `vgiw_run --shards N` forks workers that publish into one store).
// Fork-based — keep these out of the sanitizer allowlist filters.
// --------------------------------------------------------------------

/** Fork @p body as a child process; returns its pid (aborts on error). */
pid_t
forkChild(const std::function<int()> &body)
{
    ::fflush(stdout);
    ::fflush(stderr);
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0) << "fork failed";
    if (pid == 0)
        ::_exit(body());
    return pid;
}

int
waitExit(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(ArtifactStoreRace, ConcurrentPublishSameKeyBothSucceed)
{
    ScratchDir dir("race_publish");
    const std::string key = "trace|race|8x32";
    const std::string payload(4096, 'r');

    // Two processes hammer the same key concurrently. Publication is
    // write-temp + atomic-rename, so every attempt must succeed and
    // the final object must be one valid blob — never an interleaving.
    auto publisher = [&]() -> int {
        ArtifactStore store;
        if (!store.open(dir.path))
            return 2;
        for (int i = 0; i < 50; ++i)
            if (!store.publish("t", key, payload))
                return 1;
        return 0;
    };
    const pid_t child = forkChild(publisher);
    EXPECT_EQ(publisher(), 0);  // parent races the child
    EXPECT_EQ(waitExit(child), 0);

    ArtifactStore fresh;
    ASSERT_TRUE(fresh.open(dir.path));
    ArtifactStore::Blob blob;
    ASSERT_TRUE(fresh.load("t", key, &blob));
    ASSERT_EQ(blob.size, payload.size());
    EXPECT_EQ(std::memcmp(blob.payload, payload.data(), payload.size()),
              0);
    EXPECT_EQ(fresh.rejected(), 0u);
}

TEST(ArtifactStoreRace, FlippedByteUnderRepublishRace)
{
    ScratchDir dir("race_corrupt");
    const std::string key = "trace|heal|16x64";
    const std::string payload(2048, 'h');

    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    ASSERT_TRUE(store.publish("t", key, payload));
    const std::string obj = store.objectPath("t", key);

    // Corrupt the blob, then race two healers: each sees the
    // checksum-mismatch miss and republishes. Concurrent republication
    // over a corrupt object must leave exactly one valid blob.
    flipByteAt(obj, 1111);
    auto healer = [&]() -> int {
        ArtifactStore s;
        if (!s.open(dir.path))
            return 2;
        ArtifactStore::Blob b;
        if (s.load("t", key, &b))
            return 3;  // the corruption must demote to a miss
        return s.publish("t", key, payload) ? 0 : 1;
    };
    const pid_t child = forkChild(healer);
    EXPECT_EQ(healer(), 0);
    EXPECT_EQ(waitExit(child), 0);

    ArtifactStore fresh;
    ASSERT_TRUE(fresh.open(dir.path));
    ArtifactStore::Blob blob;
    ASSERT_TRUE(fresh.load("t", key, &blob));
    ASSERT_EQ(blob.size, payload.size());
    EXPECT_EQ(std::memcmp(blob.payload, payload.data(), payload.size()),
              0);
}

TEST(ArtifactStore, BlobOutlivesTheStore)
{
    ScratchDir dir("lifetime");
    ArtifactStore::Blob blob;
    {
        ArtifactStore store;
        ASSERT_TRUE(store.open(dir.path));
        ASSERT_TRUE(store.publish("t", "k", "still mapped"));
        ASSERT_TRUE(store.load("t", "k", &blob));
    }
    // The mapping is owned by blob.backing, not the store object.
    EXPECT_EQ(std::memcmp(blob.payload, "still mapped", blob.size), 0);
}

TEST(ArtifactStore, UnopenableDirectoryFailsOpenGracefully)
{
    ArtifactStore store;
    std::string err;
    EXPECT_FALSE(
        store.open("/proc/definitely/not/creatable/store", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(store.isOpen());
}

// --------------------------------------------------------------------
// TraceSet wire format
// --------------------------------------------------------------------

/** serializeInto bytes copied into 8-aligned storage. */
struct WireCopy
{
    explicit WireCopy(const TraceSet &ts)
    {
        std::string bytes;
        ts.serializeInto(bytes);
        words.resize((bytes.size() + 7) / 8);
        std::memcpy(words.data(), bytes.data(), bytes.size());
        len = bytes.size();
    }
    const uint8_t *data() const
    {
        return reinterpret_cast<const uint8_t *>(words.data());
    }
    std::vector<uint64_t> words;
    size_t len = 0;
};

void
expectSameDecodedTraces(const TraceSet &a, const TraceSet &b)
{
    ASSERT_EQ(a.numThreads(), b.numThreads());
    ASSERT_EQ(a.totalBlockExecs(), b.totalBlockExecs());
    ASSERT_EQ(a.totalAccesses(), b.totalAccesses());
    for (uint32_t tid = 0; tid < a.numThreads(); ++tid) {
        const ThreadTrace ta = a.decodeThread(tid);
        const ThreadTrace tb = b.decodeThread(tid);
        ASSERT_EQ(ta.execs.size(), tb.execs.size()) << "tid " << tid;
        ASSERT_EQ(ta.accesses.size(), tb.accesses.size())
            << "tid " << tid;
        for (size_t i = 0; i < ta.execs.size(); ++i) {
            EXPECT_EQ(ta.execs[i].block, tb.execs[i].block);
            EXPECT_EQ(ta.execs[i].succ, tb.execs[i].succ);
        }
        for (size_t i = 0; i < ta.accesses.size(); ++i) {
            EXPECT_EQ(ta.accesses[i].addr, tb.accesses[i].addr);
            EXPECT_EQ(ta.accesses[i].isStore, tb.accesses[i].isStore);
            EXPECT_EQ(ta.accesses[i].isShared, tb.accesses[i].isShared);
        }
    }
}

TEST(TraceSetWire, SerializeDeserializeRoundTripsDecodedStreams)
{
    TraceCache cache;
    TraceResult traced = cache.get(entryFor("BFS/Kernel"));
    ASSERT_TRUE(traced.ok());

    WireCopy wire(*traced.traces);
    TraceSet restored;
    ASSERT_TRUE(TraceSet::deserialize(wire.data(), wire.len, nullptr,
                                      traced.traces->kernel,
                                      traced.traces->launch, restored));
    EXPECT_TRUE(restored.storeBacked);
    EXPECT_EQ(restored.mappedBytes, wire.len);
    // The original carries an access-intern pool (the cache always
    // builds one); the restored copy does not — equal decoded streams
    // here also prove the interned fast path is observation-equivalent
    // to the varint decoder.
    EXPECT_TRUE(traced.traces->hasAccessIntern());
    EXPECT_FALSE(restored.hasAccessIntern());
    expectSameDecodedTraces(*traced.traces, restored);
}

TEST(TraceSetWire, MalformedBuffersAreRejectedNotFatal)
{
    TraceCache cache;
    TraceResult traced = cache.get(entryFor("NN/euclid"));
    ASSERT_TRUE(traced.ok());
    WireCopy wire(*traced.traces);
    const Kernel *k = traced.traces->kernel;
    const LaunchParams &lp = traced.traces->launch;

    TraceSet out;
    // Too short for even the fixed header.
    EXPECT_FALSE(TraceSet::deserialize(wire.data(), 8, nullptr, k, lp,
                                       out));
    // Truncated mid-stream: the length equation no longer holds.
    EXPECT_FALSE(TraceSet::deserialize(wire.data(), wire.len - 1,
                                       nullptr, k, lp, out));
    // Thread count inflated: index would run past the buffer.
    {
        std::vector<uint64_t> bad = wire.words;
        bad[0] = bad[0] * 2 + 1;
        EXPECT_FALSE(TraceSet::deserialize(
            reinterpret_cast<const uint8_t *>(bad.data()), wire.len,
            nullptr, k, lp, out));
    }
    // Stream length fields corrupted to huge values: overflow-guarded.
    {
        std::vector<uint64_t> bad = wire.words;
        bad[1] = ~0ull;
        EXPECT_FALSE(TraceSet::deserialize(
            reinterpret_cast<const uint8_t *>(bad.data()), wire.len,
            nullptr, k, lp, out));
        bad = wire.words;
        bad[2] = ~0ull - 7;
        EXPECT_FALSE(TraceSet::deserialize(
            reinterpret_cast<const uint8_t *>(bad.data()), wire.len,
            nullptr, k, lp, out));
    }
    // Misaligned base pointer.
    EXPECT_FALSE(TraceSet::deserialize(wire.data() + 1, wire.len - 1,
                                       nullptr, k, lp, out));
}

// --------------------------------------------------------------------
// Warm trace cache
// --------------------------------------------------------------------

TEST(ArtifactStoreTraceCache, WarmLoadSkipsFunctionalExecution)
{
    ScratchDir dir("warm_traces");
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));

    // Cold: one functional execution, traces published.
    TraceCache cold;
    cold.setStore(&store);
    TraceResult first = cold.get(entryFor("GE/Fan1"));
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(cold.functionalExecutions(), 1u);
    EXPECT_FALSE(first.traces->storeBacked);
    EXPECT_NE(first.traces->contentHash, 0u);

    // Warm: a fresh cache (fresh process, conceptually) over the same
    // store must not execute at all and must decode identical traces.
    ArtifactStore store2;
    ASSERT_TRUE(store2.open(dir.path));
    TraceCache warm;
    warm.setStore(&store2);
    TraceResult second = warm.get(entryFor("GE/Fan1"));
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.goldenPassed);
    EXPECT_EQ(warm.functionalExecutions(), 0u);
    EXPECT_TRUE(second.traces->storeBacked);
    EXPECT_GT(second.traces->mappedBytes, 0u);
    EXPECT_EQ(second.traces->contentHash, first.traces->contentHash);
    EXPECT_TRUE(second.traces->hasAccessIntern());
    expectSameDecodedTraces(*first.traces, *second.traces);
    EXPECT_EQ(store2.hits(), 1u);
}

TEST(ArtifactStoreTraceCache, CorruptBlobFallsBackToExecution)
{
    ScratchDir dir("corrupt_traces");
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    TraceCache cold;
    cold.setStore(&store);
    TraceResult first = cold.get(entryFor("NN/euclid"));
    ASSERT_TRUE(first.ok());

    // Corrupt the published blob's payload region.
    fs::path obj;
    for (const auto &e : fs::recursive_directory_iterator(dir.path))
        if (e.is_regular_file())
            obj = e.path();
    ASSERT_FALSE(obj.empty());
    flipByteAt(obj.string(), fs::file_size(obj) - 16);

    // The warm attempt demotes to a miss and recomputes; the job still
    // succeeds with identical traces.
    ArtifactStore store2;
    ASSERT_TRUE(store2.open(dir.path));
    TraceCache warm;
    warm.setStore(&store2);
    TraceResult second = warm.get(entryFor("NN/euclid"));
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(warm.functionalExecutions(), 1u);
    EXPECT_FALSE(second.traces->storeBacked);
    EXPECT_GE(store2.rejected(), 1u);
    expectSameDecodedTraces(*first.traces, *second.traces);
}

TEST(ArtifactStoreTraceCache, GoldenFailuresAreNeverPublished)
{
    ScratchDir dir("golden_fail");
    auto failing = []() {
        WorkloadInstance w = makeWorkload("NN/euclid");
        w.check = [](const MemoryImage &, std::string &err) {
            err = "bad output";
            return false;
        };
        return w;
    };
    {
        ArtifactStore store;
        ASSERT_TRUE(store.open(dir.path));
        TraceCache cache;
        cache.setStore(&store);
        TraceResult r = cache.get("SYNTH/fails", failing);
        EXPECT_FALSE(r.ok());
    }
    // Nothing landed in the store: a later run re-executes (and fails
    // again) instead of trusting a failed run's traces.
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    TraceCache cache;
    cache.setStore(&store);
    TraceResult r = cache.get("SYNTH/fails", failing);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(cache.functionalExecutions(), 1u);
    EXPECT_EQ(store.hits(), 0u);
}

// --------------------------------------------------------------------
// Warm compile cache
// --------------------------------------------------------------------

TEST(ArtifactStoreCompileCache, WarmLoadSkipsCompilationOnAllArchs)
{
    ScratchDir dir("warm_ck");
    SystemConfig cfg;
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));

    // Cold: trace + compile each architecture once, publishing both.
    TraceCache cold_traces;
    cold_traces.setStore(&store);
    TraceResult traced = cold_traces.get(entryFor("BFS/Kernel"));
    ASSERT_TRUE(traced.ok());
    const std::string kkey =
        TraceCache::keyFor("BFS/Kernel", traced.traces->launch);
    CompileCache cold;
    cold.setStore(&store);
    std::vector<RunStats> cold_stats;
    for (const auto &model : makeCoreModels(cfg)) {
        auto compiled = cold.get(*model, kkey, traced.traces);
        ASSERT_NE(compiled, nullptr);
        cold_stats.push_back(model->run(*traced.traces, *compiled));
    }
    EXPECT_EQ(cold.compilations(), knownArchitectures().size());

    // Warm: fresh caches over the same store — zero executions, zero
    // compilations, and replay statistics identical on every arch.
    ArtifactStore store2;
    ASSERT_TRUE(store2.open(dir.path));
    TraceCache warm_traces;
    warm_traces.setStore(&store2);
    TraceResult warm_traced = warm_traces.get(entryFor("BFS/Kernel"));
    ASSERT_TRUE(warm_traced.ok());
    EXPECT_EQ(warm_traces.functionalExecutions(), 0u);
    CompileCache warm;
    warm.setStore(&store2);
    size_t arch = 0;
    for (const auto &model : makeCoreModels(cfg)) {
        CompileCache::FetchInfo info;
        auto compiled =
            warm.get(*model, kkey, warm_traced.traces, &info);
        ASSERT_NE(compiled, nullptr) << model->name();
        EXPECT_TRUE(info.storeBacked) << model->name();
        EXPECT_GT(info.mappedBytes, 0u) << model->name();
        RunStats warm_stats =
            model->run(*warm_traced.traces, *compiled);
        JobResult ra, rb;
        ra.ran = rb.ran = true;
        ra.stats = cold_stats[arch++];
        rb.stats = warm_stats;
        EXPECT_EQ(ExperimentEngine::toJsonLine(ra),
                  ExperimentEngine::toJsonLine(rb))
            << model->name();
    }
    EXPECT_EQ(warm.compilations(), 0u);
}

TEST(ArtifactStoreCompileCache, CorruptArtifactRecompiles)
{
    ScratchDir dir("corrupt_ck");
    SystemConfig cfg;
    ArtifactStore store;
    ASSERT_TRUE(store.open(dir.path));
    TraceCache traces;
    traces.setStore(&store);
    TraceResult traced = traces.get(entryFor("NN/euclid"));
    ASSERT_TRUE(traced.ok());
    const std::string kkey =
        TraceCache::keyFor("NN/euclid", traced.traces->launch);
    {
        CompileCache cold;
        cold.setStore(&store);
        auto model = makeCoreModel("vgiw", cfg);
        ASSERT_NE(cold.get(*model, kkey, traced.traces), nullptr);
    }

    // Flip a byte in every .ck blob (payload region, past the header).
    for (const auto &e : fs::recursive_directory_iterator(dir.path))
        if (e.is_regular_file() &&
            e.path().string().find(".ck") != std::string::npos)
            flipByteAt(e.path().string(), fs::file_size(e.path()) - 4);

    ArtifactStore store2;
    ASSERT_TRUE(store2.open(dir.path));
    CompileCache warm;
    warm.setStore(&store2);
    auto model = makeCoreModel("vgiw", cfg);
    CompileCache::FetchInfo info;
    auto compiled = warm.get(*model, kkey, traced.traces, &info);
    ASSERT_NE(compiled, nullptr);
    EXPECT_FALSE(info.storeBacked);
    EXPECT_EQ(warm.compilations(), 1u);
    RunStats rs = model->run(*traced.traces, *compiled);
    EXPECT_GT(rs.cycles, 0u);
}

// --------------------------------------------------------------------
// Engine-level bit identity
// --------------------------------------------------------------------

TEST(ArtifactStoreEngine, WarmSweepIsByteIdenticalWithZeroWork)
{
    ScratchDir dir("engine");
    const char *kernels[] = {"NN/euclid", "BFS/Kernel", "GE/Fan1"};
    std::vector<ExperimentJob> jobs;
    for (const char *name : kernels) {
        for (const auto &arch : knownArchitectures()) {
            for (uint32_t kb : {32u, 128u}) {
                ExperimentJob job;
                job.workload = name;
                job.arch = arch;
                job.configLabel = std::to_string(kb) + "KB";
                job.config.vgiw.lvcBytes = kb * 1024;
                jobs.push_back(std::move(job));
            }
        }
    }

    auto run_with = [&](ArtifactStore *store) {
        EngineOptions opts{2};
        opts.artifactStore = store;
        ExperimentEngine engine{opts};
        auto results = engine.run(jobs);
        std::vector<std::string> lines;
        for (const auto &r : results) {
            EXPECT_TRUE(r.ok()) << r.workload << ": " << r.error;
            lines.push_back(ExperimentEngine::toJsonLine(r));
        }
        struct Out
        {
            std::vector<std::string> lines;
            uint64_t execs, comps;
        };
        return Out{std::move(lines),
                   engine.traceCache().functionalExecutions(),
                   engine.compileCache().compilations()};
    };

    // Reference: no store at all.
    auto plain = run_with(nullptr);

    ArtifactStore cold_store;
    ASSERT_TRUE(cold_store.open(dir.path));
    auto cold = run_with(&cold_store);
    EXPECT_EQ(cold.execs, std::size(kernels));
    EXPECT_GT(cold.comps, 0u);

    ArtifactStore warm_store;
    ASSERT_TRUE(warm_store.open(dir.path));
    auto warm = run_with(&warm_store);
    EXPECT_EQ(warm.execs, 0u);
    EXPECT_EQ(warm.comps, 0u);
    EXPECT_GT(warm_store.hits(), 0u);

    ASSERT_EQ(plain.lines.size(), warm.lines.size());
    for (size_t i = 0; i < plain.lines.size(); ++i) {
        EXPECT_EQ(plain.lines[i], cold.lines[i]) << jobs[i].workload;
        EXPECT_EQ(plain.lines[i], warm.lines[i]) << jobs[i].workload;
    }
}

} // namespace
} // namespace vgiw
